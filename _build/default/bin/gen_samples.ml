(* Regenerates the sampleResult/ directory: the artifact the original
   project shipped with its release (per-tool timing files, the
   validation matrix, stored benchmark graphs, a recorded trace).

     dune exec bin/gen_samples.exe [-- --out DIR]

   Everything is deterministic (fixed seeds), so the files are stable
   across regenerations. *)

let out_dir = ref "sampleResult"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let write name text =
  let path = Filename.concat !out_dir name in
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  (match Sys.argv with
  | [| _; "--out"; dir |] -> out_dir := dir
  | _ -> ());
  mkdir_p !out_dir;
  (* Full validation run per tool: timing CSVs (the original's
     spade.time / opus.time / camflow.time) and the matrix. *)
  let matrix =
    List.map
      (fun tool ->
        let config = Provmark.Config.default tool in
        (tool, List.map (Provmark.Runner.run config) Provmark.Bench_registry.all))
      Recorders.Recorder.all_tools
  in
  List.iter
    (fun (tool, results) ->
      let name =
        Printf.sprintf "%s.time" (String.lowercase_ascii (Recorders.Recorder.tool_name tool))
      in
      write name (Provmark.Report.timing_csv results))
    matrix;
  write "validation_matrix.txt" (Provmark.Report.validation_matrix matrix);
  (* Stored benchmark graphs, in the Datalog format the regression use
     case keeps (one per tool for the rename benchmark). *)
  List.iter
    (fun (tool, results) ->
      match
        List.find_opt (fun (r : Provmark.Result.t) -> r.Provmark.Result.syscall = "rename") results
      with
      | Some { Provmark.Result.status = Provmark.Result.Target g; _ } ->
          write
            (Printf.sprintf "benchmark_%s_rename.dl"
               (String.lowercase_ascii (Recorders.Recorder.tool_name tool)))
            (Provmark.Transform.to_datalog ~gid:"1" g)
      | _ -> ())
    matrix;
  (* One recorded trace, replayable without the kernel simulator. *)
  write "trace_open_fg.json"
    (Oskernel.Trace_io.to_string
       (Oskernel.Kernel.run ~run_id:1 (Provmark.Bench_registry.find_exn "open")
          Oskernel.Program.Foreground));
  (* The coverage summary. *)
  write "coverage.txt" (Provmark.Coverage.render (Provmark.Coverage.of_matrix matrix));
  print_endline "sample results regenerated"
