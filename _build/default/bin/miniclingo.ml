(* Standalone driver for the mini answer-set / Datalog engine: the role
   clingo plays in the original ProvMark, usable on its own.

     miniclingo solve program.lp facts.dl     # ground + search (+ optimize)
     miniclingo eval  program.dl facts.dl -q reach   # deductive fixpoint
     miniclingo ground program.lp facts.dl    # show the ground program *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_program path = Asp.Parser.parse_program (read_file path)
let load_facts path = Datalog.Parser.parse_base (read_file path)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"ASP/Datalog program file.")

let facts_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"FACTS" ~doc:"Ground fact file.")

let handle_errors f =
  match f () with
  | () -> 0
  | exception Asp.Parser.Parse_error m ->
      Printf.eprintf "parse error: %s\n" m;
      1
  | exception Datalog.Parser.Parse_error m ->
      Printf.eprintf "fact parse error: %s\n" m;
      1
  | exception Asp.Ground.Ground_error m ->
      Printf.eprintf "ground error: %s\n" m;
      1
  | exception Asp.Eval.Eval_error m ->
      Printf.eprintf "eval error: %s\n" m;
      1
  | exception Sys_error m ->
      Printf.eprintf "%s\n" m;
      1

let solve_cmd =
  let max_steps =
    Arg.(value & opt int 10_000_000 & info [ "max-steps" ] ~docv:"N" ~doc:"Decision budget.")
  in
  let first_model =
    Arg.(value & flag & info [ "first-model" ] ~doc:"Stop at the first model (skip optimization).")
  in
  let run program facts max_steps first_model =
    exit
      (handle_errors (fun () ->
           let rules = load_program program in
           let base = load_facts facts in
           let ground = Asp.Ground.ground rules base in
           match Asp.Solver.solve ~max_steps ~find_optimal:(not first_model) ground with
           | Asp.Solver.Unsat -> print_endline "UNSATISFIABLE"
           | Asp.Solver.Unknown -> print_endline "UNKNOWN (step budget exhausted)"
           | Asp.Solver.Model { cost; atoms; optimal } ->
               Printf.printf "%s (cost %d)\n"
                 (if optimal then "OPTIMUM FOUND" else "SATISFIABLE (budget exhausted)")
                 cost;
               List.iter (fun f -> print_endline (Datalog.Fact.to_string f)) atoms))
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Ground the program and search for an (optimal) answer set.")
    Term.(const run $ program_arg $ facts_arg $ max_steps $ first_model)

let eval_cmd =
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "query"; "q" ] ~docv:"PRED" ~doc:"Only print facts of this predicate.")
  in
  let run program facts query =
    exit
      (handle_errors (fun () ->
           let derived = Asp.Eval.evaluate (load_program program) (load_facts facts) in
           let facts =
             match query with
             | Some pred -> Datalog.Base.facts_with_pred derived pred
             | None -> Datalog.Base.to_list derived
           in
           List.iter (fun f -> print_endline (Datalog.Fact.to_string f)) facts))
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a positive Datalog program to fixpoint.")
    Term.(const run $ program_arg $ facts_arg $ query)

let ground_cmd =
  let run program facts =
    exit
      (handle_errors (fun () ->
           let g = Asp.Ground.ground (load_program program) (load_facts facts) in
           Printf.printf "%% %d atoms, %d cardinality groups, %d clauses, %d cost groups%s\n"
             g.Asp.Ground.atom_count
             (List.length g.Asp.Ground.groups)
             (List.length g.Asp.Ground.clauses)
             (List.length g.Asp.Ground.costs)
             (if g.Asp.Ground.statically_unsat then " (statically UNSAT)" else "");
           Array.iteri
             (fun i f -> Printf.printf "%% atom %d = %s\n" i (Datalog.Fact.to_string f))
             g.Asp.Ground.atom_names))
  in
  Cmd.v
    (Cmd.info "ground" ~doc:"Ground the program and print the propositional form.")
    Term.(const run $ program_arg $ facts_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "miniclingo" ~version:"1.0.0"
             ~doc:"mini answer-set solver (the ProvMark reproduction's clingo substitute)")
          [ solve_cmd; eval_cmd; ground_cmd ]))
