examples/concurrent_workers.ml: Format List Oskernel Pgraph Printf Provmark Recorders
