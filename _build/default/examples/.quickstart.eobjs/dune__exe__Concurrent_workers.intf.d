examples/concurrent_workers.mli:
