examples/config_validation.ml: List Oskernel Pgraph Printf Provmark Recorders
