examples/config_validation.mli:
