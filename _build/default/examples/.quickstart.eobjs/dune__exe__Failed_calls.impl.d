examples/failed_calls.ml: Format List Oskernel Pgraph Printf Provmark Recorders
