examples/failed_calls.mli:
