examples/query_provenance.ml: Datalog List Oskernel Pgraph Printf Provmark Recorders
