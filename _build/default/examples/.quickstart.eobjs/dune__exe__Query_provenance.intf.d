examples/query_provenance.mli:
