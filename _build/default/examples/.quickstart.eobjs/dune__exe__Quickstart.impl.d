examples/quickstart.ml: Format Pgraph Printf Provmark Recorders
