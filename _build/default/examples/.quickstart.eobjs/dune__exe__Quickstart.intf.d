examples/quickstart.mli:
