examples/regression_testing.ml: Filename List Pgraph Printf Provmark Recorders String
