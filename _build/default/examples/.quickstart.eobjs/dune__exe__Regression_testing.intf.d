examples/regression_testing.mli:
