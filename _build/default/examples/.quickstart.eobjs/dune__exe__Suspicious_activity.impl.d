examples/suspicious_activity.ml: Format List Oskernel Pgraph Printf Provmark Recorders
