examples/suspicious_activity.mli:
