(* Nondeterministic target activity — the paper's Section 5.4 future
   work, prototyped in Provmark.Nondet.

   Two concurrent threads race on a shared file:

     thread A:  creat /staging/shared.txt;  write it
     thread B:  open  /staging/shared.txt;  read it

   Depending on the schedule, B's open lands before or after A's creat:
   in the first case it fails with ENOENT, and SPADE's success-only
   audit rules make the whole of thread B invisible.  A single
   representative pair cannot describe this benchmark; the
   multi-behaviour pipeline groups trials by graph structure and reports
   one target graph per observed behaviour.

     dune exec examples/concurrent_workers.exe *)

module Syscall = Oskernel.Syscall

let spec =
  {
    Provmark.Nondet.name = "cmdSharedFileRace";
    staging = [];
    setup = [];
    threads =
      [
        [
          Syscall.Creat { path = "/staging/shared.txt"; ret = "a" };
          Syscall.Write { fd = "a"; count = 16 };
        ];
        [
          Syscall.Open { path = "/staging/shared.txt"; flags = [ Syscall.O_RDONLY ]; ret = "b" };
          Syscall.Read { fd = "b"; count = 16 };
        ];
      ];
  }

let () =
  Printf.printf "schedules of the two threads: %d\n\n"
    (List.length (Provmark.Nondet.schedules spec));
  let config =
    { (Provmark.Config.default Recorders.Recorder.Spade) with
      Provmark.Config.trials = 16; flakiness = 0. }
  in
  match Provmark.Nondet.benchmark config spec with
  | Error e -> Printf.printf "failed: %s\n" (Provmark.Nondet.failure_to_string e)
  | Ok o ->
      Printf.printf
        "%d trials drew %d of %d schedules and exhibited %d distinct behaviour(s):\n\n"
        o.Provmark.Nondet.trials o.Provmark.Nondet.schedules_exercised
        o.Provmark.Nondet.schedules_total
        (List.length o.Provmark.Nondet.behaviours);
      List.iteri
        (fun i (b : Provmark.Nondet.behaviour) ->
          Printf.printf "--- behaviour %d (seen in %d trials) ---\n" (i + 1)
            b.Provmark.Nondet.observations;
          if Pgraph.Graph.size b.Provmark.Nondet.target = 0 then
            print_endline "target indistinguishable from background"
          else Format.printf "%a@." Pgraph.Graph.pp b.Provmark.Nondet.target;
          print_newline ())
        o.Provmark.Nondet.behaviours;
      print_endline
        "Interpretation: the behaviour where B's open wins the race shows both the\n\
         writer's and the reader's edges; in the losing schedule the reader thread\n\
         leaves no trace under SPADE's success-only audit rules.  This matches the\n\
         approach sketched in the paper's Section 5.4 (group runs by structure,\n\
         benchmark each group), including its caveat: schedule coverage is\n\
         probabilistic, so rare schedules may remain unobserved."
