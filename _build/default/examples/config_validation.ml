(* "Configuration validation" (paper Section 3.1, Bob's use case).

   A system administrator benchmarks alternative SPADE configurations:

   1. disabling `simplify` makes SPADE monitor setresgid/setresuid
      explicitly — and exposes a tc-e3 bug where the new process vertex
      shows up as a *disconnected subgraph* whose edge carries a
      property initialized to a random value;
   2. enabling the `IORuns` filter should coalesce runs of read/write
      operations, but has *no effect* because the filter looks up a
      property key the reporter does not emit; the fixed key works.

     dune exec examples/config_validation.exe *)

module Syscall = Oskernel.Syscall

let spade_config_with spade =
  { (Provmark.Config.default Recorders.Recorder.Spade) with Provmark.Config.spade }

(* --- Part 1: the simplify flag and the setres* bug ----------------- *)

let part1 () =
  print_endline "=== simplify flag ===";
  let bench = Provmark.Bench_registry.find_exn "setresgid" in
  let with_simplify = Provmark.Runner.run (spade_config_with Recorders.Spade.default_config) bench in
  Printf.printf "setresgid, simplify on (default): %s\n" (Provmark.Result.summary with_simplify);
  let no_simplify_cfg =
    spade_config_with { Recorders.Spade.default_config with Recorders.Spade.simplify = false }
  in
  let without_simplify = Provmark.Runner.run no_simplify_cfg bench in
  Printf.printf "setresgid, simplify off:          %s\n" (Provmark.Result.summary without_simplify);
  (match without_simplify.Provmark.Result.status with
  | Provmark.Result.Target g when Provmark.Result.has_disconnected_node g ->
      print_endline "  -> the call is now monitored, BUT the result contains a disconnected"
  | Provmark.Result.Target _ -> print_endline "  -> monitored, connected (bug not visible?)"
  | _ -> print_endline "  -> unexpected empty/failed");
  (* Inspect two raw recordings to find the culprit: a background edge
     property initialized to a random value. *)
  let raw run_id =
    Recorders.Spade.build
      ~config:{ Recorders.Spade.default_config with Recorders.Spade.simplify = false }
      (Oskernel.Kernel.run ~run_id bench Oskernel.Program.Foreground)
  in
  let flags_of g =
    List.filter_map
      (fun (e : Pgraph.Graph.edge) -> Pgraph.Props.find "flags" e.Pgraph.Graph.edge_props)
      (Pgraph.Graph.edges g)
  in
  (match (flags_of (raw 1), flags_of (raw 2)) with
  | [ f1 ], [ f2 ] ->
      Printf.printf
        "     subgraph; its edge property `flags` is random per run (%s vs %s) —\n\
        \     the bug Bob reported to the SPADE developers.\n"
        f1 f2
  | _ -> print_endline "     (could not locate the random-valued property)");
  print_newline ()

(* --- Part 2: the IORuns filter bug --------------------------------- *)

let part2 () =
  print_endline "=== IORuns filter ===";
  (* A benchmark with a run of three writes. *)
  let triple_write =
    Oskernel.Program.make ~name:"cmdTripleWrite" ~syscall:"write"
      ~staging:[ Oskernel.Program.staged_file "/staging/test.txt" ]
      ~setup:[ Syscall.Open { path = "/staging/test.txt"; flags = [ Syscall.O_RDWR ]; ret = "id" } ]
      ~target:
        [
          Syscall.Write { fd = "id"; count = 32 };
          Syscall.Write { fd = "id"; count = 32 };
          Syscall.Write { fd = "id"; count = 32 };
        ]
      ()
  in
  let edges_with cfg =
    match (Provmark.Runner.run (spade_config_with cfg) triple_write).Provmark.Result.status with
    | Provmark.Result.Target g -> Pgraph.Graph.edge_count g
    | _ -> -1
  in
  let base = Recorders.Spade.default_config in
  let off = edges_with base in
  let buggy = edges_with { base with Recorders.Spade.io_runs = true } in
  let fixed = edges_with { base with Recorders.Spade.io_runs = true; io_runs_fixed = true } in
  Printf.printf "three writes, IORuns off:            %d edges in the target graph\n" off;
  Printf.printf "three writes, IORuns on (benchmarked version): %d edges\n" buggy;
  Printf.printf "three writes, IORuns on (fixed property key):  %d edges\n" fixed;
  if off = buggy && fixed < buggy then
    print_endline
      "  -> enabling the filter has NO effect (property-name mismatch between the\n\
      \     filter and the reporter); with the fix the run is coalesced — both\n\
      \     findings were reported upstream and fixed, per the paper."

let () =
  part1 ();
  part2 ()
