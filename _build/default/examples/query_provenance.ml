(* Querying provenance graphs with Datalog.

   ProvMark's common representation is Datalog (paper Listing 1), which
   makes captured graphs directly queryable by recursive rules — the
   analysis a detector performs once it has the escalation signature of
   the suspicious-activity use case.

     dune exec examples/query_provenance.exe

   We capture the privilege-escalation program with CamFlow, then ask:
   which entities can the escalated task (transitively) influence, and
   does information flow from the protected file back into the task? *)

module Graph = Pgraph.Graph

let () =
  (* Capture one foreground run of the escalation program. *)
  let trace =
    Oskernel.Kernel.run ~run_id:1 Provmark.Bench_registry.privilege_escalation
      Oskernel.Program.Foreground
  in
  let g = Recorders.Camflow.build trace in
  Printf.printf "captured CamFlow graph: %s\n\n" (Graph.summary g);

  (* Transitive reachability via the built-in rules. *)
  let pairs = Provmark.Analysis.reachable g in
  Printf.printf "reach/2 has %d derived pairs\n\n" (List.length pairs);

  (* Which nodes read /etc/shadow?  Custom rules over the encoded graph:
     a task that an entity named "/etc/shadow" flows into. *)
  let rules =
    Provmark.Analysis.reachability_rules
    ^ {|
shadow(F) :- pq(P,"cf:pathname","/etc/shadow"), eq(E,P,F,"named").
tainted(T) :- shadow(F), nq(T,"task"), reach(T,F).
|}
  in
  let tainted = Provmark.Analysis.run ~rules g ~pred:"tainted" in
  Printf.printf "tasks with a path to the protected file (query `tainted`):\n";
  List.iter (fun f -> Printf.printf "  %s\n" (Datalog.Fact.to_string f)) tainted;

  (* Cross-check with the direct graph API. *)
  let shadow_file =
    List.find_map
      (fun (e : Graph.edge) ->
        if e.Graph.edge_label = "named" then
          match Graph.find_node g e.Graph.edge_src with
          | Some n when Pgraph.Props.find "cf:pathname" n.Graph.node_props = Some "/etc/shadow" ->
              Some e.Graph.edge_tgt
          | _ -> None
        else None)
      (Graph.edges g)
  in
  (match shadow_file with
  | Some file ->
      let readers =
        List.filter
          (fun (n : Graph.node) ->
            n.Graph.node_label = "task"
            && Provmark.Analysis.reaches g ~src:n.Graph.node_id ~tgt:file)
          (Graph.nodes g)
      in
      Printf.printf "\ncross-check via Analysis.reaches: %d task version(s) reach the file\n"
        (List.length readers)
  | None -> print_endline "\n(unexpected: no named edge for /etc/shadow)");

  print_endline
    "\nInterpretation: the Datalog layer turns any captured or benchmarked graph\n\
     into a deductive database — the same representation ProvMark stores, now\n\
     queryable for detection patterns."
