lib/asp/engine.ml: Datalog Ground List Listings Parser Rule Solver String
