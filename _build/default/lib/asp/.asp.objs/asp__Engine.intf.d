lib/asp/engine.mli: Datalog Solver
