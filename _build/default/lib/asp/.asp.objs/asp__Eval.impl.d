lib/asp/eval.ml: Datalog Hashtbl List Option Printf Rule String Term
