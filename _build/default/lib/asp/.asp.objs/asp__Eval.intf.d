lib/asp/eval.mli: Datalog Rule
