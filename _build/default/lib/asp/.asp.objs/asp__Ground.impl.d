lib/asp/ground.ml: Array Datalog Hashtbl Int List Map Option Printf Rule String Term
