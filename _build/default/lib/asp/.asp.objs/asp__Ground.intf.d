lib/asp/ground.mli: Datalog Rule
