lib/asp/listings.ml:
