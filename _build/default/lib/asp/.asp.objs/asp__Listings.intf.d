lib/asp/listings.mli:
