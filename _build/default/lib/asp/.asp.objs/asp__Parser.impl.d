lib/asp/parser.ml: Buffer Datalog List Printf Rule String Term
