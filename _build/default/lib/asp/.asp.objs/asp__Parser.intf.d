lib/asp/parser.mli: Rule
