lib/asp/rule.ml: Format List Printf String Term
