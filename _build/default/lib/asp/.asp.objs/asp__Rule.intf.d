lib/asp/rule.mli: Format Term
