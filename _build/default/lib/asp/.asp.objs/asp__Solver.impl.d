lib/asp/solver.ml: Array Datalog Ground Hashtbl Int List Queue
