lib/asp/solver.mli: Datalog Ground
