lib/asp/term.ml: Datalog Format Int Map String
