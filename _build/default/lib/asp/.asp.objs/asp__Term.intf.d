lib/asp/term.mli: Datalog Format
