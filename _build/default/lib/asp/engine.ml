module Fact = Datalog.Fact

type outcome = Solver.outcome =
  | Unsat
  | Model of { cost : int; atoms : Fact.t list; optimal : bool }
  | Unknown

let run ?max_steps ?find_optimal ~program ~facts () =
  let rules = Parser.parse_program program in
  let ground = Ground.ground rules facts in
  let shows =
    List.filter_map (function Rule.Show (p, n) -> Some (p, n) | _ -> None) rules
  in
  match Solver.solve ?max_steps ?find_optimal ground with
  | Model { cost; atoms; optimal } when shows <> [] ->
      let atoms =
        List.filter
          (fun (f : Fact.t) -> List.mem (f.Fact.pred, List.length f.Fact.args) shows)
          atoms
      in
      Model { cost; atoms; optimal }
  | outcome -> outcome

let matching_of_atoms atoms =
  List.filter_map
    (fun (f : Fact.t) ->
      if String.equal f.Fact.pred Listings.matching_predicate then
        match f.Fact.args with
        | [ x; y ] -> Some (Fact.string_of_term x, Fact.string_of_term y)
        | _ -> None
      else None)
    atoms
