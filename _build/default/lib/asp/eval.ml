module Fact = Datalog.Fact
module Base = Datalog.Base

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let check_rules program =
  List.filter_map
    (function
      | Rule.Show _ -> None
      | Rule.Define (head, body) ->
          List.iter
            (function
              | Rule.Pos _ | Rule.Builtin _ | Rule.Neg _ -> ())
            body;
          Some (head, body)
      | r -> fail "Eval supports definite rules only, got: %s" (Rule.to_string r))
    program

let match_atom subst (a : Rule.atom) (f : Fact.t) =
  if not (String.equal a.Rule.pred f.Fact.pred) then None
  else if List.length a.Rule.args <> List.length f.Fact.args then None
  else
    List.fold_left2
      (fun acc pat value ->
        match acc with None -> None | Some s -> Term.Subst.match_term s pat value)
      (Some subst) a.Rule.args f.Fact.args

let term_ground subst t =
  match Term.Subst.apply subst t with Term.Con c -> Some c | Term.Var _ | Term.Any -> None

let builtin_holds subst b =
  match b with
  | Rule.Neq (x, y) -> (
      match (term_ground subst x, term_ground subst y) with
      | Some cx, Some cy -> Some (not (Fact.equal_term cx cy))
      | _ -> None)
  | Rule.Eq (x, y) -> (
      match (term_ground subst x, term_ground subst y) with
      | Some cx, Some cy -> Some (Fact.equal_term cx cy)
      | _ -> None)

let atom_vars_bound subst (a : Rule.atom) =
  List.for_all
    (fun t ->
      match t with
      | Term.Var v -> Option.is_some (Term.Subst.find v subst)
      | Term.Any | Term.Con _ -> true)
    a.Rule.args

let instantiate_head subst (head : Rule.atom) =
  Fact.make head.Rule.pred
    (List.map
       (fun t ->
         match Term.Subst.apply subst t with
         | Term.Con c -> c
         | Term.Var v -> fail "unsafe head variable %s in %s" v (Rule.atom_to_string head)
         | Term.Any -> fail "anonymous variable in head of %s" (Rule.atom_to_string head))
       head.Rule.args)

(* Enumerate the solutions of [body].  Positive literals are matched
   against [lookup]; the literal at index [delta_at] (if any) is matched
   against [delta_lookup] instead — the semi-naive restriction.  Negated
   literals and builtins are checked once their variables are bound;
   the body is processed left-to-right, deferring undecidable checks. *)
let solve_body ~lookup ~delta_lookup ~delta_at body ~on_solution =
  let rec go i subst deferred body =
    match body with
    | [] ->
        let ok =
          List.for_all
            (fun lit ->
              match lit with
              | Rule.Builtin b -> (
                  match builtin_holds subst b with
                  | Some v -> v
                  | None -> fail "unbound builtin %s" (Rule.literal_to_string lit))
              | Rule.Neg a ->
                  if atom_vars_bound subst a then
                    not (List.exists (fun f -> Option.is_some (match_atom subst a f)) (lookup a.Rule.pred))
                  else fail "unbound negation %s" (Rule.literal_to_string lit)
              | Rule.Pos _ -> true)
            deferred
        in
        if ok then on_solution subst
    | Rule.Pos a :: rest ->
        let facts = if Some i = delta_at then delta_lookup a.Rule.pred else lookup a.Rule.pred in
        List.iter
          (fun f ->
            match match_atom subst a f with
            | Some subst' -> go (i + 1) subst' deferred rest
            | None -> ())
          facts
    | (Rule.Builtin b as lit) :: rest -> (
        match builtin_holds subst b with
        | Some true -> go (i + 1) subst deferred rest
        | Some false -> ()
        | None -> go (i + 1) subst (lit :: deferred) rest)
    | (Rule.Neg a as lit) :: rest ->
        if atom_vars_bound subst a then (
          if not (List.exists (fun f -> Option.is_some (match_atom subst a f)) (lookup a.Rule.pred))
          then go (i + 1) subst deferred rest)
        else go (i + 1) subst (lit :: deferred) rest
  in
  go 0 Term.Subst.empty [] body

let evaluate ?(max_iterations = 10_000) program base =
  let rules = check_rules program in
  (* Working store: predicate -> fact list, plus a membership set. *)
  let store : (string, Fact.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let seen : (Fact.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let add f =
    if Hashtbl.mem seen f then false
    else begin
      Hashtbl.replace seen f ();
      (match Hashtbl.find_opt store f.Fact.pred with
      | Some r -> r := f :: !r
      | None -> Hashtbl.replace store f.Fact.pred (ref [ f ]));
      true
    end
  in
  List.iter (fun f -> ignore (add f)) (Base.to_list base);
  let lookup pred = match Hashtbl.find_opt store pred with Some r -> !r | None -> [] in
  (* Semi-naive: each round only considers derivations using at least one
     fact from the previous round's delta. *)
  let delta = ref (Base.to_list base) in
  let rounds = ref 0 in
  while !delta <> [] do
    incr rounds;
    if !rounds > max_iterations then fail "fixpoint did not converge in %d rounds" max_iterations;
    let delta_by_pred : (string, Fact.t list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (f : Fact.t) ->
        match Hashtbl.find_opt delta_by_pred f.Fact.pred with
        | Some r -> r := f :: !r
        | None -> Hashtbl.replace delta_by_pred f.Fact.pred (ref [ f ]))
      !delta;
    let delta_lookup pred =
      match Hashtbl.find_opt delta_by_pred pred with Some r -> !r | None -> []
    in
    let next = ref [] in
    List.iter
      (fun (head, body) ->
        let positives = List.length (List.filter (function Rule.Pos _ -> true | _ -> false) body) in
        let pos_indices =
          (* Indices (counting all literals) of positive literals. *)
          List.filteri (fun _ _ -> true) (List.mapi (fun i l -> (i, l)) body)
          |> List.filter_map (fun (i, l) -> match l with Rule.Pos _ -> Some i | _ -> None)
        in
        let emit subst =
          let f = instantiate_head subst head in
          if add f then next := f :: !next
        in
        if positives = 0 then (
          (* Facts written as rules: derive once, in the first round. *)
          if !rounds = 1 then
            solve_body ~lookup ~delta_lookup ~delta_at:None body ~on_solution:emit)
        else
          List.iter
            (fun di -> solve_body ~lookup ~delta_lookup ~delta_at:(Some di) body ~on_solution:emit)
            pos_indices)
      rules;
    delta := !next
  done;
  Hashtbl.fold (fun _ r acc -> List.fold_left (fun acc f -> Base.add f acc) acc !r) store Base.empty

let query ?max_iterations program base pred =
  Base.facts_with_pred (evaluate ?max_iterations program base) pred
