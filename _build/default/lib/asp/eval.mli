(** Bottom-up evaluation of positive Datalog programs — the deductive
    half of the mini-clingo: {!Rule.Define} rules with positive bodies
    (and bound builtins) evaluated to a fixpoint over a fact base by
    semi-naive iteration.

    This complements the model search of {!Solver}: ProvMark represents
    every graph as Datalog facts (paper Listing 1), so recursive rules
    make benchmark graphs queryable — e.g. reachability between a
    process and the files it can influence, the kind of question the
    suspicious-activity use case (Section 3.1) ultimately asks. *)

exception Eval_error of string

(** [evaluate program base] returns [base] extended with every derivable
    fact.  Only {!Rule.Define} rules are accepted; choice rules,
    constraints and [#minimize] raise {!Eval_error}, as do rules whose
    head contains a variable not bound by a positive body literal.
    Negated body literals are checked against the facts known at the
    time of the check (stratified use is the caller's responsibility).

    [max_iterations] bounds the fixpoint loop (default 10_000) as a
    runaway guard; exceeding it raises {!Eval_error}. *)
val evaluate : ?max_iterations:int -> Rule.program -> Datalog.Base.t -> Datalog.Base.t

(** [query program base pred] evaluates and returns the facts of
    predicate [pred]. *)
val query :
  ?max_iterations:int -> Rule.program -> Datalog.Base.t -> string -> Datalog.Fact.t list
