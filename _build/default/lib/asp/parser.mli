(** Parser for the ASP fragment of {!Rule}.  Accepts the concrete syntax
    of the paper's Listings 3 and 4 (clingo-style): choice rules with
    cardinality bounds, integrity constraints, definite rules, and
    [#minimize] statements.  ['%'] starts a line comment. *)

exception Parse_error of string

val parse_program : string -> Rule.program
