module Fact = Datalog.Fact

type outcome =
  | Unsat
  | Model of { cost : int; atoms : Fact.t list; optimal : bool }
  | Unknown

exception Step_limit
exception Done

let solve ?(max_steps = 10_000_000) ?(find_optimal = true) (g : Ground.t) =
  if g.Ground.statically_unsat then Unsat
  else
    let n = g.Ground.atom_count in
    let groups = Array.of_list g.Ground.groups in
    let clauses = Array.of_list (List.map Array.of_list g.Ground.clauses) in
    let costs = Array.of_list g.Ground.costs in
    let ngroups = Array.length groups in

    (* Occurrence lists. *)
    let atom_groups = Array.make n [] in
    Array.iteri
      (fun gi (grp : Ground.group) ->
        List.iter (fun a -> atom_groups.(a) <- gi :: atom_groups.(a)) grp.Ground.atoms)
      groups;
    let atom_clauses = Array.make n [] in
    Array.iteri
      (fun ci lits ->
        Array.iter (fun (a, _) -> atom_clauses.(a) <- ci :: atom_clauses.(a)) lits)
      clauses;
    let atom_costs = Array.make n [] in
    Array.iteri
      (fun ki (c : Ground.cost_group) ->
        List.iter (fun a -> atom_costs.(a) <- ki :: atom_costs.(a)) c.Ground.disj)
      costs;

    (* Assignment state: -1 unassigned, 0 false, 1 true. *)
    let value = Array.make n (-1) in
    let group_true = Array.make ngroups 0 in
    let group_unassigned = Array.map (fun (grp : Ground.group) -> List.length grp.Ground.atoms) groups in
    (* #minimize levels, highest priority first; costs are compared
       lexicographically across levels (clingo's W@P semantics). *)
    let levels =
      List.sort_uniq
        (fun a b -> Int.compare b a)
        (List.map (fun (c : Ground.cost_group) -> c.Ground.level) g.Ground.costs
        @ List.map fst g.Ground.base_costs)
    in
    let levels = Array.of_list levels in
    let nlevels = Array.length levels in
    let level_index = Hashtbl.create 4 in
    Array.iteri (fun i l -> Hashtbl.replace level_index l i) levels;
    let base_vector () =
      let v = Array.make nlevels 0 in
      List.iter
        (fun (l, w) -> v.(Hashtbl.find level_index l) <- v.(Hashtbl.find level_index l) + w)
        g.Ground.base_costs;
      v
    in
    (* Number of true atoms per cost group, for incremental lower bounds. *)
    let cost_true = Array.make (Array.length costs) 0 in
    let lower_bound = base_vector () in
    let level_of ki = Hashtbl.find level_index costs.(ki).Ground.level in
    (* Lexicographic comparison over the descending-priority vector. *)
    let lex_compare a b =
      let rec go i =
        if i >= nlevels then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in

    let trail = ref [] in
    let pending = Queue.create () in

    let assign a v =
      if value.(a) >= 0 then value.(a) = v
      else (
        value.(a) <- v;
        trail := a :: !trail;
        List.iter
          (fun gi ->
            group_unassigned.(gi) <- group_unassigned.(gi) - 1;
            if v = 1 then group_true.(gi) <- group_true.(gi) + 1)
          atom_groups.(a);
        if v = 1 then
          List.iter
            (fun ki ->
              if cost_true.(ki) = 0 then
                lower_bound.(level_of ki) <- lower_bound.(level_of ki) + costs.(ki).Ground.weight;
              cost_true.(ki) <- cost_true.(ki) + 1)
            atom_costs.(a);
        Queue.push a pending;
        true)
    in

    let unassign a =
      let v = value.(a) in
      value.(a) <- -1;
      List.iter
        (fun gi ->
          group_unassigned.(gi) <- group_unassigned.(gi) + 1;
          if v = 1 then group_true.(gi) <- group_true.(gi) - 1)
        atom_groups.(a);
      if v = 1 then
        List.iter
          (fun ki ->
            cost_true.(ki) <- cost_true.(ki) - 1;
            if cost_true.(ki) = 0 then
              lower_bound.(level_of ki) <- lower_bound.(level_of ki) - costs.(ki).Ground.weight)
          atom_costs.(a)
    in

    let undo_to mark =
      Queue.clear pending;
      let rec pop () =
        match !trail with
        | [] -> ()
        | _ when !trail == mark -> ()
        | a :: rest ->
            unassign a;
            trail := rest;
            pop ()
      in
      pop ()
    in

    let check_group gi =
      let grp = groups.(gi) in
      let t = group_true.(gi) and u = group_unassigned.(gi) in
      if t > grp.Ground.bound then false
      else if t + u < grp.Ground.bound then false
      else if t = grp.Ground.bound && u > 0 then
        List.for_all
          (fun a -> if value.(a) = -1 then assign a 0 else true)
          grp.Ground.atoms
      else if t + u = grp.Ground.bound && u > 0 then
        List.for_all
          (fun a -> if value.(a) = -1 then assign a 1 else true)
          grp.Ground.atoms
      else true
    in

    let check_clause ci =
      let lits = clauses.(ci) in
      let satisfied = ref false in
      let unassigned = ref [] in
      Array.iter
        (fun (a, want) ->
          match value.(a) with
          | -1 -> unassigned := (a, want) :: !unassigned
          | v -> if (v = 1) = want then satisfied := true)
        lits;
      if !satisfied then true
      else
        match !unassigned with
        | [] -> false
        | [ (a, want) ] -> assign a (if want then 1 else 0)
        | _ :: _ -> true
    in

    let propagate () =
      let ok = ref true in
      while !ok && not (Queue.is_empty pending) do
        let a = Queue.pop pending in
        ok := List.for_all check_group atom_groups.(a);
        if !ok then ok := List.for_all check_clause atom_clauses.(a)
      done;
      if not !ok then Queue.clear pending;
      !ok
    in

    (* Initial propagation: groups that are already forced (e.g. a single
       candidate) and unit clauses. *)
    let initial_ok =
      (let ok = ref true in
       Array.iteri (fun gi _ -> if !ok then ok := check_group gi) groups;
       Array.iteri (fun ci _ -> if !ok then ok := check_clause ci) clauses;
       !ok)
      && propagate ()
    in

    let best_cost = ref None in
    let best_model = ref None in
    let steps = ref 0 in

    let record_model () =
      let better =
        match !best_cost with None -> true | Some b -> lex_compare lower_bound b < 0
      in
      if better then (
        best_cost := Some (Array.copy lower_bound);
        let atoms = ref [] in
        Array.iteri (fun a v -> if v = 1 then atoms := g.Ground.atom_names.(a) :: !atoms) value;
        best_model := Some (Array.fold_left ( + ) 0 lower_bound, List.rev !atoms))
    in

    let pick_group () =
      (* Most-constrained-first: the unfinished group with the fewest
         unassigned candidates. *)
      let best = ref (-1) in
      let best_u = ref max_int in
      Array.iteri
        (fun gi (grp : Ground.group) ->
          if group_true.(gi) < grp.Ground.bound && group_unassigned.(gi) < !best_u then (
            best := gi;
            best_u := group_unassigned.(gi)))
        groups;
      !best
    in

    let marginal_cost a =
      List.fold_left
        (fun acc ki -> if cost_true.(ki) = 0 then acc + costs.(ki).Ground.weight else acc)
        0 atom_costs.(a)
    in

    let rec search () =
      let pruned =
        find_optimal
        && match !best_cost with Some b -> lex_compare lower_bound b >= 0 | None -> false
      in
      if pruned then ()
      else
        let gi = pick_group () in
        if gi < 0 then (
          record_model ();
          if not find_optimal then raise Done;
          match !best_cost with
          | Some b when lex_compare b (base_vector ()) <= 0 -> raise Done (* cannot improve *)
          | _ -> ())
        else (
          incr steps;
          if !steps > max_steps then raise Step_limit;
          let candidates =
            List.filter (fun a -> value.(a) = -1) groups.(gi).Ground.atoms
          in
          (* Binary branching on one candidate: include it or exclude it.
             The exclusion branch recurses, so propagation-forced choices
             of sibling candidates are explored too. *)
          let a =
            if find_optimal then
              List.fold_left
                (fun best c -> if marginal_cost c < marginal_cost best then c else best)
                (List.hd candidates) (List.tl candidates)
            else List.hd candidates
          in
          let mark = !trail in
          if assign a 1 && propagate () then search ();
          undo_to mark;
          if assign a 0 && propagate () then search ();
          undo_to mark)
    in

    let limited = ref false in
    (if initial_ok then
       try search () with
       | Done -> ()
       | Step_limit -> limited := true);
    match !best_model with
    | Some (cost, atoms) -> Model { cost; atoms; optimal = not !limited }
    | None -> if !limited then Unknown else Unsat
