module Fact = Datalog.Fact

type t =
  | Var of string
  | Any
  | Con of Fact.term

let equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Any, Any -> true
  | Con x, Con y -> Fact.equal_term x y
  | (Var _ | Any | Con _), _ -> false

let compare a b =
  let rank = function Var _ -> 0 | Any -> 1 | Con _ -> 2 in
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Any, Any -> 0
  | Con x, Con y -> Fact.compare_term x y
  | _ -> Int.compare (rank a) (rank b)

let is_ground = function Con _ -> true | Var _ | Any -> false

let to_string = function
  | Var x -> x
  | Any -> "_"
  | Con c -> Fact.term_to_string c

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Subst = struct
  module Smap = Map.Make (String)

  type nonrec t = Fact.term Smap.t

  let empty = Smap.empty
  let find = Smap.find_opt
  let bind = Smap.add

  let apply s t =
    match t with
    | Con _ | Any -> t
    | Var x -> ( match Smap.find_opt x s with Some c -> Con c | None -> t)

  let match_term s pattern value =
    match pattern with
    | Any -> Some s
    | Con c -> if Fact.equal_term c value then Some s else None
    | Var x -> (
        match Smap.find_opt x s with
        | Some c -> if Fact.equal_term c value then Some s else None
        | None -> Some (Smap.add x value s))
end
