(** Terms of the non-ground ASP language: variables (capitalized, as in
    clingo), the anonymous variable [_], and constants (which reuse the
    ground Datalog term type). *)

type t =
  | Var of string  (** named variable, e.g. [X] *)
  | Any  (** anonymous variable [_]; each occurrence is independent *)
  | Con of Datalog.Fact.term

val equal : t -> t -> bool
val compare : t -> t -> int

val is_ground : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Substitutions} *)

module Subst : sig
  type term := t

  (** Finite maps from variable names to ground constants. *)
  type t

  val empty : t
  val find : string -> t -> Datalog.Fact.term option
  val bind : string -> Datalog.Fact.term -> t -> t

  (** [apply s t] replaces bound variables by their constants.  Unbound
      variables and [_] are left untouched. *)
  val apply : t -> term -> term

  (** [match_term s pattern value] refines [s] so that [pattern]
      instantiates to [value], or returns [None] if impossible.  [Any]
      matches anything without binding. *)
  val match_term : t -> term -> Datalog.Fact.term -> t option
end
