lib/core/analysis.ml: Asp Datalog List String
