lib/core/analysis.mli: Datalog Pgraph
