lib/core/bench_gen.ml: Bench_registry List Option Oskernel Printf String
