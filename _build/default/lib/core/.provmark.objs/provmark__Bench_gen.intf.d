lib/core/bench_gen.mli: Oskernel
