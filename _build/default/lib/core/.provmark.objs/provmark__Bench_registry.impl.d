lib/core/bench_registry.ml: List Oskernel Recorders Result String
