lib/core/bench_registry.mli: Oskernel Recorders Result
