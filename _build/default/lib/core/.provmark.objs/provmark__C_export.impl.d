lib/core/c_export.ml: Bench_registry Buffer Filename List Oskernel Printf String Sys Unix
