lib/core/c_export.mli: Oskernel
