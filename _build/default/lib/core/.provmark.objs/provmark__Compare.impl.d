lib/core/compare.ml: Gmatch List Pgraph
