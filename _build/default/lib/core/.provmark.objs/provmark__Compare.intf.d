lib/core/compare.mli: Gmatch Pgraph
