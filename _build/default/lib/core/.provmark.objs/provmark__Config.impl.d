lib/core/config.ml: Gmatch Recorders
