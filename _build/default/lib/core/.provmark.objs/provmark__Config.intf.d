lib/core/config.mli: Gmatch Recorders
