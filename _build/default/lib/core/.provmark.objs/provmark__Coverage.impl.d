lib/core/coverage.ml: Bench_registry Buffer List Printf Recorders Result
