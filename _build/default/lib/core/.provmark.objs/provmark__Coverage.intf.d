lib/core/coverage.mli: Recorders Report Result
