lib/core/generalize.ml: Config Fingerprint Gmatch Graph List Map Pgraph Props
