lib/core/generalize.mli: Config Gmatch Pgraph
