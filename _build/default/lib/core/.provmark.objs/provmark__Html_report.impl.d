lib/core/html_report.ml: Bench_registry Buffer Filename List Oskernel Pgraph Printf Recorders Report Result String Sys Unix Vis
