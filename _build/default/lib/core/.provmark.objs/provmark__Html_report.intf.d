lib/core/html_report.mli: Report Result
