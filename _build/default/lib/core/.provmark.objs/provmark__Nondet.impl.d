lib/core/nondet.ml: Array Compare Config Generalize Gmatch Int Int64 List Oskernel Pgraph Recording Transform
