lib/core/nondet.mli: Config Oskernel Pgraph
