lib/core/recording.ml: Char Config Graphstore Int64 List Oskernel Recorders String
