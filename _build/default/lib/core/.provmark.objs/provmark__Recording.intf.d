lib/core/recording.mli: Config Oskernel Recorders
