lib/core/regression.ml: Array Datalog Filename Gmatch List Pgraph Printf Recorders String Sys Unix
