lib/core/regression.mli: Pgraph Recorders
