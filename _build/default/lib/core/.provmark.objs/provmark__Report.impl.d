lib/core/report.ml: Bench_registry Buffer List Oskernel Pgraph Printf Recorders Result String
