lib/core/report.mli: Recorders Result
