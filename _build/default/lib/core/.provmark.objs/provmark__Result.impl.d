lib/core/result.ml: Hashtbl List Map Pgraph Printf Recorders String
