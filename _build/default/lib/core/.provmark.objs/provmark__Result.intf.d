lib/core/result.mli: Pgraph Recorders
