lib/core/runner.ml: Bench_registry Compare Config Generalize Gmatch Oskernel Pgraph Recording Result Transform Unix
