lib/core/runner.mli: Config Oskernel Result
