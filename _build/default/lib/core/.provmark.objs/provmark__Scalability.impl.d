lib/core/scalability.ml: List Oskernel Printf
