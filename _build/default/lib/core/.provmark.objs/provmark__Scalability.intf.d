lib/core/scalability.mli: Oskernel
