lib/core/transform.ml: Datalog Graphstore List Recorders Recording
