lib/core/transform.mli: Pgraph Recorders Recording
