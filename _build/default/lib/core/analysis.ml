let gid = "q"

let reachability_rules =
  {|
reach(X,Y) :- eq(E,X,Y,L).
reach(X,Z) :- reach(X,Y), eq(E,Y,Z,L).
|}

let encode g = Datalog.Encode.graph_to_base ~gid g

let run ~rules g ~pred =
  let program = Asp.Parser.parse_program rules in
  Asp.Eval.query program (encode g) pred

let reachable g =
  List.filter_map
    (fun (f : Datalog.Fact.t) ->
      match f.Datalog.Fact.args with
      | [ x; y ] -> Some (Datalog.Fact.string_of_term x, Datalog.Fact.string_of_term y)
      | _ -> None)
    (run ~rules:reachability_rules g ~pred:"reach")

let reaches g ~src ~tgt =
  List.exists (fun (x, y) -> String.equal x src && String.equal y tgt) (reachable g)

let influence_of g id =
  List.sort String.compare
    (List.filter_map (fun (x, y) -> if String.equal x id then Some y else None) (reachable g))
