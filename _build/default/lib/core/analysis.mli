(** Datalog queries over provenance graphs.

    Benchmark and capture graphs are already Datalog fact bases (paper
    Listing 1); this module runs recursive queries over them with the
    deductive engine ({!Asp.Eval}).  It answers the kind of question the
    suspicious-activity use case poses: given a signature or a captured
    graph, what can reach what? *)

(** Facts are encoded under graph id ["q"]: predicates [nq/2], [eq/4],
    [pq/3]. *)
val gid : string

(** The transitive-closure program over [eq/4], defining [reach/2]. *)
val reachability_rules : string

(** [reachable g] returns every ordered pair [(x, y)] with a directed
    path from [x] to [y] (1 or more edges). *)
val reachable : Pgraph.Graph.t -> (string * string) list

(** [reaches g ~src ~tgt] — is there a directed path? *)
val reaches : Pgraph.Graph.t -> src:string -> tgt:string -> bool

(** Nodes reachable from [id], sorted. *)
val influence_of : Pgraph.Graph.t -> string -> string list

(** [run ~rules g ~pred] encodes [g], appends the paper's-style rule
    text, evaluates, and returns the derived facts of [pred].  Rules use
    the graph predicates [nq]/[eq]/[pq] directly.  Raises
    {!Asp.Parser.Parse_error} / {!Asp.Eval.Eval_error} on bad programs. *)
val run : rules:string -> Pgraph.Graph.t -> pred:string -> Datalog.Fact.t list
