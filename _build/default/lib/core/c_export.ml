module Program = Oskernel.Program
module Syscall = Oskernel.Syscall

let flags_to_c flags =
  let one = function
    | Syscall.O_RDONLY -> "O_RDONLY"
    | Syscall.O_WRONLY -> "O_WRONLY"
    | Syscall.O_RDWR -> "O_RDWR"
    | Syscall.O_CREAT -> "O_CREAT"
    | Syscall.O_TRUNC -> "O_TRUNC"
    | Syscall.O_APPEND -> "O_APPEND"
  in
  match flags with [] -> "O_RDONLY" | fs -> String.concat " | " (List.map one fs)

(* Each call renders to one or more C statements.  A fresh counter keeps
   scratch identifiers (pipe fd arrays, buffers) unique. *)
let call_to_c fresh (c : Syscall.t) =
  match c with
  | Syscall.Open { path; flags; ret } ->
      [ Printf.sprintf "int %s = open(\"%s\", %s);" ret path (flags_to_c flags) ]
  | Syscall.Openat { path; flags; ret } ->
      [ Printf.sprintf "int %s = openat(AT_FDCWD, \"%s\", %s);" ret path (flags_to_c flags) ]
  | Syscall.Creat { path; ret } -> [ Printf.sprintf "int %s = creat(\"%s\", 0644);" ret path ]
  | Syscall.Close r -> [ Printf.sprintf "close(%s);" r ]
  | Syscall.Dup { fd; ret } -> [ Printf.sprintf "int %s = dup(%s);" ret fd ]
  | Syscall.Dup2 { fd; newfd; ret } -> [ Printf.sprintf "int %s = dup2(%s, %d);" ret fd newfd ]
  | Syscall.Dup3 { fd; newfd; ret } ->
      [ Printf.sprintf "int %s = dup3(%s, %d, 0);" ret fd newfd ]
  | Syscall.Link { old_path; new_path } ->
      [ Printf.sprintf "link(\"%s\", \"%s\");" old_path new_path ]
  | Syscall.Linkat { old_path; new_path } ->
      [ Printf.sprintf "linkat(AT_FDCWD, \"%s\", AT_FDCWD, \"%s\", 0);" old_path new_path ]
  | Syscall.Symlink { target; link_path } ->
      [ Printf.sprintf "symlink(\"%s\", \"%s\");" target link_path ]
  | Syscall.Symlinkat { target; link_path } ->
      [ Printf.sprintf "symlinkat(\"%s\", AT_FDCWD, \"%s\");" target link_path ]
  | Syscall.Mknod { path } -> [ Printf.sprintf "mknod(\"%s\", S_IFIFO | 0644, 0);" path ]
  | Syscall.Mknodat { path } ->
      [ Printf.sprintf "mknodat(AT_FDCWD, \"%s\", S_IFIFO | 0644, 0);" path ]
  | Syscall.Read { fd; count } ->
      let buf = fresh "buf" in
      [
        Printf.sprintf "char %s[%d];" buf count;
        Printf.sprintf "read(%s, %s, sizeof %s);" fd buf buf;
      ]
  | Syscall.Pread { fd; count; offset } ->
      let buf = fresh "buf" in
      [
        Printf.sprintf "char %s[%d];" buf count;
        Printf.sprintf "pread(%s, %s, sizeof %s, %d);" fd buf buf offset;
      ]
  | Syscall.Write { fd; count } ->
      let buf = fresh "buf" in
      [
        Printf.sprintf "char %s[%d] = {0};" buf count;
        Printf.sprintf "write(%s, %s, sizeof %s);" fd buf buf;
      ]
  | Syscall.Pwrite { fd; count; offset } ->
      let buf = fresh "buf" in
      [
        Printf.sprintf "char %s[%d] = {0};" buf count;
        Printf.sprintf "pwrite(%s, %s, sizeof %s, %d);" fd buf buf offset;
      ]
  | Syscall.Rename { old_path; new_path } ->
      [ Printf.sprintf "rename(\"%s\", \"%s\");" old_path new_path ]
  | Syscall.Renameat { old_path; new_path } ->
      [ Printf.sprintf "renameat(AT_FDCWD, \"%s\", AT_FDCWD, \"%s\");" old_path new_path ]
  | Syscall.Truncate { path; length } ->
      [ Printf.sprintf "truncate(\"%s\", %d);" path length ]
  | Syscall.Ftruncate { fd; length } -> [ Printf.sprintf "ftruncate(%s, %d);" fd length ]
  | Syscall.Unlink { path } -> [ Printf.sprintf "unlink(\"%s\");" path ]
  | Syscall.Unlinkat { path } -> [ Printf.sprintf "unlinkat(AT_FDCWD, \"%s\", 0);" path ]
  | Syscall.Clone -> [ "if (syscall(SYS_clone, SIGCHLD, 0) == 0) _exit(0);" ]
  | Syscall.Execve { path } ->
      let argv = fresh "argv" in
      [
        Printf.sprintf "char *%s[] = {\"%s\", NULL};" argv path;
        Printf.sprintf "execve(\"%s\", %s, NULL);" path argv;
      ]
  | Syscall.Exit { status } -> [ Printf.sprintf "_exit(%d);" status ]
  | Syscall.Fork -> [ "if (fork() == 0) _exit(0);" ]
  | Syscall.Vfork -> [ "if (vfork() == 0) _exit(0);" ]
  | Syscall.Kill { signal } -> [ Printf.sprintf "kill(getpid(), %d);" signal ]
  | Syscall.Chmod { path; mode } -> [ Printf.sprintf "chmod(\"%s\", 0%o);" path mode ]
  | Syscall.Fchmod { fd; mode } -> [ Printf.sprintf "fchmod(%s, 0%o);" fd mode ]
  | Syscall.Fchmodat { path; mode } ->
      [ Printf.sprintf "fchmodat(AT_FDCWD, \"%s\", 0%o, 0);" path mode ]
  | Syscall.Chown { path; uid; gid } -> [ Printf.sprintf "chown(\"%s\", %d, %d);" path uid gid ]
  | Syscall.Fchown { fd; uid; gid } -> [ Printf.sprintf "fchown(%s, %d, %d);" fd uid gid ]
  | Syscall.Fchownat { path; uid; gid } ->
      [ Printf.sprintf "fchownat(AT_FDCWD, \"%s\", %d, %d, 0);" path uid gid ]
  | Syscall.Setgid { gid } -> [ Printf.sprintf "setgid(%d);" gid ]
  | Syscall.Setregid { rgid; egid } -> [ Printf.sprintf "setregid(%d, %d);" rgid egid ]
  | Syscall.Setresgid { rgid; egid; sgid } ->
      [ Printf.sprintf "setresgid(%d, %d, %d);" rgid egid sgid ]
  | Syscall.Setuid { uid } -> [ Printf.sprintf "setuid(%d);" uid ]
  | Syscall.Setreuid { ruid; euid } -> [ Printf.sprintf "setreuid(%d, %d);" ruid euid ]
  | Syscall.Setresuid { ruid; euid; suid } ->
      [ Printf.sprintf "setresuid(%d, %d, %d);" ruid euid suid ]
  | Syscall.Pipe { ret_read; ret_write } | Syscall.Pipe2 { ret_read; ret_write } ->
      let arr = fresh "fds" in
      let call =
        match c with Syscall.Pipe2 _ -> Printf.sprintf "pipe2(%s, 0);" arr | _ -> Printf.sprintf "pipe(%s);" arr
      in
      [
        Printf.sprintf "int %s[2];" arr;
        call;
        Printf.sprintf "int %s = %s[0];" ret_read arr;
        Printf.sprintf "int %s = %s[1];" ret_write arr;
      ]
  | Syscall.Tee { fd_in; fd_out } -> [ Printf.sprintf "tee(%s, %s, 16, 0);" fd_in fd_out ]

let includes =
  [
    "#define _GNU_SOURCE";
    "#include <fcntl.h>";
    "#include <unistd.h>";
    "#include <signal.h>";
    "#include <sys/stat.h>";
    "#include <sys/syscall.h>";
    "#include <sys/types.h>";
  ]

let c_source (p : Program.t) =
  let buf = Buffer.create 1024 in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  Buffer.add_string buf
    (Printf.sprintf "/* %s.c — benchmark program for the %s syscall (generated). */\n"
       p.Program.name p.Program.syscall);
  List.iter (fun line -> Buffer.add_string buf (line ^ "\n")) includes;
  Buffer.add_string buf "\nint main() {\n";
  List.iter
    (fun call -> List.iter (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n")) (call_to_c fresh call))
    p.Program.setup;
  Buffer.add_string buf "#ifdef TARGET\n";
  List.iter
    (fun call -> List.iter (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n")) (call_to_c fresh call))
    p.Program.target;
  Buffer.add_string buf "#endif\n";
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let setup_script (p : Program.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "#!/bin/sh\n# Prepare the staging directory (generated).\n";
  Buffer.add_string buf "mkdir -p /staging\n";
  List.iter
    (fun (f : Program.staged_file) ->
      (match f.Program.sf_kind with
      | `File -> Buffer.add_string buf (Printf.sprintf "touch %s\n" f.Program.sf_path)
      | `Fifo -> Buffer.add_string buf (Printf.sprintf "mkfifo %s\n" f.Program.sf_path));
      Buffer.add_string buf (Printf.sprintf "chmod 0%o %s\n" f.Program.sf_mode f.Program.sf_path);
      Buffer.add_string buf
        (Printf.sprintf "chown %d:%d %s\n" f.Program.sf_uid f.Program.sf_gid f.Program.sf_path))
    p.Program.staging;
  Buffer.contents buf

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let export_all ~dir () =
  let count = ref 0 in
  List.iter
    (fun (p : Program.t) ->
      let subdir =
        Filename.concat dir
          (Filename.concat
             ("grp" ^ String.capitalize_ascii p.Program.syscall)
             p.Program.name)
      in
      mkdir_p subdir;
      let write name text =
        let oc = open_out (Filename.concat subdir name) in
        output_string oc text;
        close_out oc
      in
      write (p.Program.name ^ ".c") (c_source p);
      write "setup.sh" (setup_script p);
      incr count)
    Bench_registry.all;
  !count
