(** Export benchmark programs as the C sources the original ProvMark
    shipped in its [benchmarkProgram/] directory: one small program per
    syscall whose target section is guarded by [#ifdef TARGET]
    (Section 3's [close.c] example), plus a [setup.sh] staging script.

    The generated C is what the benchmark {e means}; the simulator
    executes the same call sequence.  Generating the sources keeps the
    two representations visibly in sync and gives users of a real
    ProvMark deployment ready-made benchmark programs. *)

(** [c_source program] renders the benchmark as a single C file. *)
val c_source : Oskernel.Program.t -> string

(** [setup_script program] renders the staging commands ([mkdir],
    [touch], [chmod], [chown]) that prepare the staging directory. *)
val setup_script : Oskernel.Program.t -> string

(** [export_all ~dir ()] writes
    [dir/grp<Syscall>/cmd<Syscall>/{cmd<Syscall>.c, setup.sh}] for every
    registry benchmark, mirroring the original layout.  Returns the
    number of benchmarks written. *)
val export_all : dir:string -> unit -> int
