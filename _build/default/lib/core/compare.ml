type failure = Background_not_embeddable

let failure_to_string = function
  | Background_not_embeddable ->
      "background graph does not embed into the foreground graph"

type outcome = {
  target : Pgraph.Graph.t;
  matching_cost : int;
}

let compare ~backend ~bg ~fg =
  match Gmatch.Engine.subgraph_matching ~backend bg fg with
  | None -> Error Background_not_embeddable
  | Some m ->
      let matched_nodes = List.map snd m.Gmatch.Matching.node_map in
      let matched_edges = List.map snd m.Gmatch.Matching.edge_map in
      Ok
        {
          target = Pgraph.Graph.subtract_matched fg ~matched_nodes ~matched_edges;
          matching_cost = m.Gmatch.Matching.cost;
        }
