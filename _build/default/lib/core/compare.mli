(** Stage 4 — graph comparison (paper Section 3.5).

    Matches the generalized background graph to a subgraph of the
    generalized foreground graph (approximate subgraph isomorphism,
    minimizing mismatched properties) and subtracts the matched part.
    What remains is the target graph; endpoints of surviving edges that
    were subtracted are kept as dummy nodes. *)

type failure =
  | Background_not_embeddable
      (** provenance recording was not monotonic for this benchmark: the
          background structure does not appear in the foreground *)

val failure_to_string : failure -> string

type outcome = {
  target : Pgraph.Graph.t;  (** empty graph when the target activity was not detected *)
  matching_cost : int;  (** residual property mismatches of the embedding *)
}

val compare :
  backend:Gmatch.Engine.backend ->
  bg:Pgraph.Graph.t ->
  fg:Pgraph.Graph.t ->
  (outcome, failure) result
