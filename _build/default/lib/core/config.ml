type pair_choice = Smallest | Largest

type t = {
  tool : Recorders.Recorder.tool;
  trials : int;
  filter_graphs : bool;
  pair_choice : pair_choice;
  backend : Gmatch.Engine.backend;
  seed : int;
  flakiness : float;
  spade : Recorders.Spade.config;
  opus : Recorders.Opus.config;
  camflow : Recorders.Camflow.config;
}

let default_trials = function
  | Recorders.Recorder.Spade | Recorders.Recorder.Spade_camflow
  | Recorders.Recorder.Spade_neo4j -> 3
  | Recorders.Recorder.Opus -> 2
  | Recorders.Recorder.Camflow -> 5

let default tool =
  {
    tool;
    trials = default_trials tool;
    filter_graphs = (tool = Recorders.Recorder.Camflow);
    pair_choice = Smallest;
    backend = Gmatch.Engine.default_backend;
    seed = 1;
    flakiness = 0.08;
    spade = Recorders.Spade.default_config;
    opus = Recorders.Opus.default_config;
    camflow = Recorders.Camflow.default_config;
  }

let tool_name t = Recorders.Recorder.tool_name t.tool
