type group_score = {
  group : int;
  group_name : string;
  recorded : int;
  total : int;
}

type t = {
  tool : Recorders.Recorder.tool;
  groups : group_score list;
  recorded : int;
  total : int;
}

let group_names = [ (1, "Files"); (2, "Processes"); (3, "Permissions"); (4, "Pipes") ]

let is_recorded (r : Result.t) =
  match r.Result.status with Result.Target _ -> true | Result.Empty | Result.Failed _ -> false

let score tool results =
  let groups =
    List.map
      (fun (group, group_name) ->
        let members =
          List.filter (fun (r : Result.t) -> Bench_registry.group_of r.Result.syscall = group) results
        in
        {
          group;
          group_name;
          recorded = List.length (List.filter is_recorded members);
          total = List.length members;
        })
      group_names
  in
  {
    tool;
    groups;
    recorded = List.fold_left (fun acc (g : group_score) -> acc + g.recorded) 0 groups;
    total = List.fold_left (fun acc (g : group_score) -> acc + g.total) 0 groups;
  }

let of_matrix matrix = List.map (fun (tool, results) -> score tool results) matrix

let render scores =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-14s" "Group");
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf " %-14s" (Recorders.Recorder.tool_name s.tool)))
    scores;
  Buffer.add_char buf '\n';
  List.iter
    (fun (group, name) ->
      Buffer.add_string buf (Printf.sprintf "%d %-12s" group name);
      List.iter
        (fun s ->
          match List.find_opt (fun g -> g.group = group) s.groups with
          | Some g -> Buffer.add_string buf (Printf.sprintf " %2d/%-11d" g.recorded g.total)
          | None -> Buffer.add_string buf (Printf.sprintf " %-14s" "-"))
        scores;
      Buffer.add_char buf '\n')
    group_names;
  Buffer.add_string buf (Printf.sprintf "%-14s" "overall");
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf " %2d/%-11d" s.recorded s.total))
    scores;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let delta a b =
  List.filter_map
    (fun (ra : Result.t) ->
      match
        List.find_opt (fun (rb : Result.t) -> rb.Result.syscall = ra.Result.syscall) b
      with
      | Some rb when Result.status_word ra <> Result.status_word rb ->
          Some (ra.Result.syscall, Result.status_word ra, Result.status_word rb)
      | _ -> None)
    a
