(** Expressiveness coverage summaries over a validation run: the
    quantitative reading of Table 2 that the paper's Section 4 discusses
    qualitatively (which tool records which class of activity). *)

type group_score = {
  group : int;  (** Table 1 group (1–4) *)
  group_name : string;
  recorded : int;  (** benchmarks with a non-empty target graph *)
  total : int;
}

type t = {
  tool : Recorders.Recorder.tool;
  groups : group_score list;
  recorded : int;
  total : int;
}

(** [score tool results] tallies non-empty benchmarks per Table 1 group. *)
val score : Recorders.Recorder.tool -> Result.t list -> t

(** [of_matrix m] scores every tool of a validation matrix. *)
val of_matrix : Report.matrix -> t list

(** Render a small comparison table, e.g. for the bench output. *)
val render : t list -> string

(** [delta a b] lists the syscalls whose recorded/empty status differs
    between two result sets (e.g. two configurations of one tool),
    as [(syscall, status_a, status_b)]. *)
val delta : Result.t list -> Result.t list -> (string * string * string) list
