(** Stage 3 — graph generalization (paper Section 3.4).

    From the trial graphs of one variant, find a representative pair of
    similar graphs, align them with an optimal (property-mismatch
    minimizing) isomorphism, and keep only the property values that
    agree — discarding transient data such as timestamps, pids and
    identifiers. *)

type failure =
  | No_trials
  | No_consistent_pair
      (** every graph was only similar to itself — all runs failed *)
  | Alignment_failed of string

val failure_to_string : failure -> string

type outcome = {
  general : Pgraph.Graph.t;  (** the generalized representative *)
  class_size : int;  (** size of the similarity class the pair came from *)
  classes : int;  (** number of similarity classes among kept trials *)
  discarded : int;  (** trials dropped (filtering + singleton classes) *)
}

(** [generalize ~backend ~filter ~pair_choice graphs] implements the
    stage: optional pre-filtering of obviously incomplete graphs,
    similarity classing (with a fingerprint pre-bucketing before the
    exact solver), discarding singleton classes, choosing the
    smallest/largest eligible class, and property intersection over an
    optimal matching of the chosen pair. *)
val generalize :
  backend:Gmatch.Engine.backend ->
  filter:bool ->
  pair_choice:Config.pair_choice ->
  Pgraph.Graph.t list ->
  (outcome, failure) result

(** [intersect_props g1 g2 m] keeps, for every element of [g1], only the
    properties that agree with its [m]-image in [g2] — the property
    generalization step, exposed for the multi-behaviour pipeline
    ({!Nondet}). *)
val intersect_props : Pgraph.Graph.t -> Pgraph.Graph.t -> Gmatch.Matching.t -> Pgraph.Graph.t
