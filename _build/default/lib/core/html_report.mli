(** HTML result pages — the original ProvMark's [rh] result type
    (finalResult/index.html): the validation matrix with, per benchmark,
    the rendered target graph and the generalized foreground/background
    graphs, drawn in the paper's visual language (blue process
    rectangles, yellow artifact ovals, green dummy ovals). *)

(** [render matrix] produces a self-contained HTML document. *)
val render : Report.matrix -> string

(** [render_single result] produces a page for one benchmark run. *)
val render_single : Result.t -> string

(** [write_file path html] writes the document, creating parent
    directories as needed. *)
val write_file : string -> string -> unit
