module Program = Oskernel.Program
module Syscall = Oskernel.Syscall
module Prng = Oskernel.Prng

type spec = {
  name : string;
  staging : Program.staged_file list;
  setup : Syscall.t list;
  threads : Syscall.t list list;
}

(* All merges of the thread sequences, depth-first with the earlier
   thread preferred, truncated at [limit]. *)
let schedules ?(limit = 64) spec =
  let out = ref [] in
  let count = ref 0 in
  let rec go acc threads =
    if !count >= limit then ()
    else if List.for_all (fun t -> t = []) threads then (
      incr count;
      out := List.rev acc :: !out)
    else
      List.iteri
        (fun i thread ->
          match thread with
          | [] -> ()
          | call :: rest ->
              let threads' = List.mapi (fun j t -> if i = j then rest else t) threads in
              go (call :: acc) threads')
        threads
  in
  go [] spec.threads;
  List.rev !out

type behaviour = {
  target : Pgraph.Graph.t;
  observations : int;
}

type outcome = {
  behaviours : behaviour list;
  trials : int;
  schedules_total : int;
  schedules_exercised : int;
  discarded : int;
}

type failure =
  | No_background
  | No_behaviour

let failure_to_string = function
  | No_background -> "background generalization failed"
  | No_behaviour -> "no foreground behaviour was observed at least twice"

let program_for spec target =
  Program.make ~name:spec.name ~syscall:spec.name ~staging:spec.staging ~setup:spec.setup
    ~target ()

let benchmark (config : Config.t) spec =
  let scheds = Array.of_list (schedules spec) in
  if Array.length scheds = 0 || List.for_all (fun t -> t = []) spec.threads then
    Error No_behaviour
  else begin
    let backend = config.Config.backend in
    (* Background: the usual deterministic pipeline on setup only. *)
    let bg_prog = program_for spec [] in
    let bg_recs = Recording.record_variant config bg_prog Program.Background in
    let bg_graphs = Transform.batch bg_recs in
    match
      Generalize.generalize ~backend ~filter:config.Config.filter_graphs
        ~pair_choice:config.Config.pair_choice bg_graphs
    with
    | Error _ -> Error No_background
    | Ok bg ->
        (* Foreground: one run per trial, schedule drawn per trial. *)
        let prng = Prng.create ~seed:(Int64.of_int ((config.Config.seed * 7919) + 13)) in
        let drawn = ref [] in
        let fg_graphs =
          List.init config.Config.trials (fun trial ->
              let s = Prng.int prng (Array.length scheds) in
              drawn := s :: !drawn;
              let prog = program_for spec scheds.(s) in
              let recs =
                Recording.record_variant
                  { config with Config.trials = 1; seed = config.Config.seed + (trial * 131) }
                  prog Program.Foreground
              in
              List.hd (Transform.batch recs))
        in
        (* Group trials by structure (the paper's "fingerprinting"). *)
        let classes : (Pgraph.Fingerprint.t * Pgraph.Graph.t list ref) list ref = ref [] in
        List.iter
          (fun g ->
            let fp = Pgraph.Fingerprint.of_graph g in
            let rec place = function
              | [] -> classes := !classes @ [ (fp, ref [ g ]) ]
              | (fp', members) :: rest ->
                  if
                    Pgraph.Fingerprint.equal fp fp'
                    && match !members with m :: _ -> Gmatch.Engine.similar ~backend g m | [] -> false
                  then members := g :: !members
                  else place rest
            in
            place !classes)
          fg_graphs;
        let eligible, singletons =
          List.partition (fun (_, members) -> List.length !members >= 2) !classes
        in
        let behaviours =
          List.filter_map
            (fun (_, members) ->
              match !members with
              | g1 :: g2 :: _ -> (
                  match Gmatch.Engine.generalization_matching ~backend g1 g2 with
                  | None -> None
                  | Some m ->
                      let general = Generalize.intersect_props g1 g2 m in
                      let target =
                        if Gmatch.Engine.similar ~backend bg.Generalize.general general then
                          Pgraph.Graph.empty
                        else
                          match Compare.compare ~backend ~bg:bg.Generalize.general ~fg:general with
                          | Ok o -> o.Compare.target
                          | Error _ -> Pgraph.Graph.empty
                      in
                      Some { target; observations = List.length !members })
              | _ -> None)
            eligible
        in
        if behaviours = [] then Error No_behaviour
        else
          Ok
            {
              behaviours =
                List.sort (fun a b -> Int.compare b.observations a.observations) behaviours;
              trials = config.Config.trials;
              schedules_total = Array.length scheds;
              schedules_exercised = List.length (List.sort_uniq Int.compare !drawn);
              discarded = List.length singletons;
            }
  end
