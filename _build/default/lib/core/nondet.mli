(** Prototype support for nondeterministic target activity — the future
    work the paper sketches in Section 5.4: when the target consists of
    concurrent threads, both foreground runs and their graphs depend on
    the schedule, so a single representative pair no longer exists.
    Following the paper's sketch, trial graphs are grouped by structure
    ("fingerprinting or graph structure summarization to group the
    different possible graphs according to schedule") and each group is
    generalized and compared separately, yielding a {e set} of possible
    target graphs.

    Limitations, as expected of the paper's sketch: completeness over
    schedules is not guaranteed (observed schedules are reported against
    the total count), and threads are interleaved at syscall
    granularity. *)

type spec = {
  name : string;
  staging : Oskernel.Program.staged_file list;
  setup : Oskernel.Syscall.t list;
  threads : Oskernel.Syscall.t list list;  (** concurrent target threads *)
}

(** All interleavings of the threads (in a fixed deterministic order),
    capped at [limit] (default 64). *)
val schedules : ?limit:int -> spec -> Oskernel.Syscall.t list list

(** One observed behaviour class. *)
type behaviour = {
  target : Pgraph.Graph.t;  (** target graph for this class (may be empty) *)
  observations : int;  (** trials that landed in this class *)
}

type outcome = {
  behaviours : behaviour list;  (** distinct behaviours, most frequent first *)
  trials : int;
  schedules_total : int;
  schedules_exercised : int;  (** distinct schedules drawn across trials *)
  discarded : int;  (** trial classes too small to generalize (singletons) *)
}

type failure =
  | No_background
  | No_behaviour  (** every foreground class was a singleton *)

val failure_to_string : failure -> string

(** [benchmark config spec] runs the multi-behaviour pipeline: records
    [config.trials] foreground runs with a schedule drawn per trial
    (deterministically from the config seed), a background batch as
    usual, then groups, generalizes and compares per class.  Use more
    trials than for deterministic benchmarks (2 per expected behaviour
    at minimum). *)
val benchmark : Config.t -> spec -> (outcome, failure) result
