(** Stage 1 — recording (paper Section 3.2).

    Runs the benchmark program under the simulated kernel once per trial
    and variant, drives the configured capture tool over each trace, and
    returns the tool's native outputs.  Per-run transient values are
    derived from the configuration seed, the benchmark name and the
    trial number; SPADE and CamFlow runs are occasionally perturbed
    (truncated output / small structural variation) with probability
    [config.flakiness], reproducing the instabilities the paper works
    around by recording extra trials. *)

type recorded = {
  variant : Oskernel.Program.variant;
  trial : int;
  run_id : int;
  output : Recorders.Recorder.output;
}

(** [record_variant config program variant] produces [config.trials]
    recordings. *)
val record_variant :
  Config.t -> Oskernel.Program.t -> Oskernel.Program.variant -> recorded list

(** Both variants: (backgrounds, foregrounds). *)
val record_all : Config.t -> Oskernel.Program.t -> recorded list * recorded list
