type store = { dir : string }

let gid = "r"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let open_store dir =
  mkdir_p dir;
  { dir }

let key ~tool ~benchmark =
  Printf.sprintf "%s/%s" (String.lowercase_ascii (Recorders.Recorder.tool_name tool)) benchmark

let sanitize k = String.map (function '/' -> '_' | c -> c) k

let path_of store k = Filename.concat store.dir (sanitize k ^ ".dl")

let save store ~key g =
  let oc = open_out (path_of store key) in
  output_string oc (Datalog.Encode.graph_to_string ~gid g);
  close_out oc

let load store ~key =
  let path = path_of store key in
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    Some (Datalog.Encode.graph_of_string ~gid text)

let keys store =
  Sys.readdir store.dir |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".dl" f)
  |> List.sort String.compare

type verdict =
  | Unchanged
  | Changed of { baseline : Pgraph.Graph.t }
  | New

let check store ~key g =
  match load store ~key with
  | None -> New
  | Some baseline ->
      if Gmatch.Engine.similar baseline g then Unchanged else Changed { baseline }

let accept = save
