(** Regression testing support (the Section 3.1 "Regression testing" use
    case): store benchmark graphs as Datalog fact files and compare a
    fresh benchmarking run against the stored baseline with the same
    isomorphism machinery the pipeline uses. *)

type store

(** [open_store dir] uses [dir] as the baseline directory, creating it
    if missing. *)
val open_store : string -> store

(** Key under which a result is stored, e.g. ["spade/open"]. *)
val key : tool:Recorders.Recorder.tool -> benchmark:string -> string

val save : store -> key:string -> Pgraph.Graph.t -> unit

val load : store -> key:string -> Pgraph.Graph.t option

val keys : store -> string list

type verdict =
  | Unchanged  (** new graph is similar (shape-equal) to the baseline *)
  | Changed of { baseline : Pgraph.Graph.t }  (** shapes differ: investigate or accept *)
  | New  (** no baseline stored yet *)

(** [check store ~key g] compares a fresh benchmark graph to the stored
    baseline. *)
val check : store -> key:string -> Pgraph.Graph.t -> verdict

(** [accept store ~key g] replaces the baseline (the "changes are
    expected" path). *)
val accept : store -> key:string -> Pgraph.Graph.t -> unit
