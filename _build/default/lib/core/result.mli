(** Benchmark results and their classification against the vocabulary of
    the paper's Table 2. *)

(** Table 2 notes explaining empty or unusual results. *)
type note =
  | Nr  (** behavior not recorded (by default configuration) *)
  | Sc  (** only state changes monitored *)
  | Lp  (** limitation in ProvMark *)
  | Dv  (** disconnected vforked process *)

val note_to_string : note -> string

type status =
  | Target of Pgraph.Graph.t  (** non-empty target graph *)
  | Empty  (** foreground and background were indistinguishable *)
  | Failed of string  (** the pipeline could not produce a benchmark *)

type stage_times = {
  recording_s : float;
  transformation_s : float;
  generalization_s : float;
  comparison_s : float;
}

val total_time : stage_times -> float

type t = {
  benchmark : string;
  syscall : string;
  tool : Recorders.Recorder.tool;
  status : status;
  times : stage_times;
  bg_general : Pgraph.Graph.t option;
  fg_general : Pgraph.Graph.t option;
  trials : int;
}

(** "ok" / "empty" / "failed", as printed in the validation matrix. *)
val status_word : t -> string

(** A target graph containing a non-dummy node with no incident edges —
    how the disconnected-vfork quirk (DV) manifests. *)
val has_disconnected_node : Pgraph.Graph.t -> bool

(** One-line human summary, e.g. ["ok (3n/2e)"]. *)
val summary : t -> string
