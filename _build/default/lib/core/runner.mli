(** Full pipeline orchestration: recording → transformation →
    generalization → comparison, with wall-clock timing of each stage
    (the quantities behind the paper's Figures 5–10). *)

(** [run_once config program] executes the four stages exactly once. *)
val run_once : Config.t -> Oskernel.Program.t -> Result.t

(** [run config program] is {!run_once} with ProvMark's retry policy:
    when flaky recorder runs leave no usable trial pair, the benchmark
    is re-recorded with a growing number of trials (Section 3.2), up to
    three attempts.  Stage times accumulate across attempts. *)
val run : Config.t -> Oskernel.Program.t -> Result.t

(** [run_syscall config name] looks the benchmark up in
    {!Bench_registry} by syscall name.  Raises [Not_found] for unknown
    names. *)
val run_syscall : Config.t -> string -> Result.t
