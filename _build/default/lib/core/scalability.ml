module Program = Oskernel.Program
module Syscall = Oskernel.Syscall

let program n =
  if n < 1 then invalid_arg "Scalability.program: factor must be >= 1";
  let target =
    List.concat
      (List.init n (fun i ->
           let path = Printf.sprintf "/staging/scale_%d.txt" i in
           [
             Syscall.Creat { path; ret = Printf.sprintf "fd%d" i };
             Syscall.Unlink { path };
           ]))
  in
  Program.make ~name:(Printf.sprintf "scale%d" n) ~syscall:"creat+unlink" ~target ()

let factors = [ 1; 2; 4; 8 ]

let all = List.map program factors
