(** The scalability series of Section 5.2: scale1 creates and deletes a
    file; scale2/scale4/scale8 repeat the action 2/4/8 times (on
    distinct files, so the target graph grows with the scale factor). *)

(** [program n] is the scale-[n] benchmark. *)
val program : int -> Oskernel.Program.t

(** The paper's four scale factors: 1, 2, 4, 8. *)
val factors : int list

val all : Oskernel.Program.t list
