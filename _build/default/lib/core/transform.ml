module Recorder = Recorders.Recorder

exception Transform_error of string

let to_pgraph output =
  match output with
  | Recorder.Dot_text text -> (
      match Recorders.Dot.of_string text with
      | exception Recorders.Dot.Parse_error m -> raise (Transform_error ("DOT: " ^ m))
      | dot -> Recorders.Dot.to_pgraph dot)
  | Recorder.Store_dump dump -> (
      match Graphstore.Store.load dump with
      | exception Failure m -> raise (Transform_error ("store: " ^ m))
      | store ->
          (* Pay the database startup cost before querying, as ProvMark
             does when extracting OPUS graphs from Neo4j. *)
          Graphstore.Store.open_db store;
          Recorders.Opus.store_to_pgraph store)
  | Recorder.Prov_json text -> (
      match Recorders.Provjson.of_string text with
      | exception Recorders.Provjson.Format_error m -> raise (Transform_error ("PROV-JSON: " ^ m))
      | g -> g)

let to_datalog ~gid g = Datalog.Encode.graph_to_string ~gid g

let batch recs = List.map (fun (r : Recording.recorded) -> to_pgraph r.Recording.output) recs
