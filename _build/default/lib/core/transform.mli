(** Stage 2 — transformation (paper Section 3.3).

    Maps each tool's native output to the uniform property-graph /
    Datalog representation.  This is where OPUS pays its database
    startup and query cost: the store dump is loaded and opened before
    the graph can be exported, mirroring the Neo4j/JVM startup that
    dominates OPUS timings in Figures 6 and 9. *)

exception Transform_error of string

(** Parse a native output into a property graph. *)
val to_pgraph : Recorders.Recorder.output -> Pgraph.Graph.t

(** The Datalog fact-file text for a graph under the given graph id —
    the format all later stages (and the regression store) use. *)
val to_datalog : gid:string -> Pgraph.Graph.t -> string

(** Convenience: transform a whole recording batch. *)
val batch : Recording.recorded list -> Pgraph.Graph.t list
