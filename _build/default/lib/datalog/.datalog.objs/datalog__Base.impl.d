lib/datalog/base.ml: Fact Format List Map Set String
