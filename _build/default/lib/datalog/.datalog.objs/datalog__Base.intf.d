lib/datalog/base.mli: Fact Format
