lib/datalog/encode.ml: Base Fact Graph List Parser Pgraph Printf Props
