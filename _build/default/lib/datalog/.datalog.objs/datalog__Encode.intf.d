lib/datalog/encode.mli: Base Fact Pgraph
