lib/datalog/fact.ml: Buffer Format Int List Printf String
