lib/datalog/fact.mli: Format
