lib/datalog/parser.ml: Base Buffer Fact List Printf String
