lib/datalog/parser.mli: Base Fact
