(** Conversion between property graphs and their Datalog representation
    (paper Listing 1): for graph identifier [gid],

    - node [v] with label [l] becomes [n<gid>(v, "l").]
    - edge [e = (v, w)] with label [l] becomes [e<gid>(e, v, w, "l").]
    - property [prop(x, k) = s] becomes [p<gid>(x, "k", "s").] *)

exception Decode_error of string

(** [graph_to_facts ~gid g] encodes [g] under graph identifier [gid]
    (e.g. ["g1"], ["1"], ["bg"]). *)
val graph_to_facts : gid:string -> Pgraph.Graph.t -> Fact.t list

val graph_to_base : gid:string -> Pgraph.Graph.t -> Base.t

(** [graph_of_base ~gid b] rebuilds the graph encoded under [gid] in [b].
    Raises {!Decode_error} on malformed fact shapes (wrong arities,
    properties attached to unknown elements, edges with missing
    endpoints). *)
val graph_of_base : gid:string -> Base.t -> Pgraph.Graph.t

(** [graph_to_string ~gid g] renders the fact file text. *)
val graph_to_string : gid:string -> Pgraph.Graph.t -> string

(** [graph_of_string ~gid s] parses a fact file and rebuilds the graph. *)
val graph_of_string : gid:string -> string -> Pgraph.Graph.t
