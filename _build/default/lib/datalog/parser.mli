(** Parser for files of ground Datalog facts, one [pred(args).] per
    statement.  Whitespace is insignificant and ['%'] starts a comment
    running to end of line (clingo convention).  This is the format the
    regression-testing use case stores benchmark graphs in. *)

exception Parse_error of string

(** [parse_facts s] parses every fact in [s]. *)
val parse_facts : string -> Fact.t list

(** [parse_base s] is [Base.of_list (parse_facts s)]. *)
val parse_base : string -> Base.t
