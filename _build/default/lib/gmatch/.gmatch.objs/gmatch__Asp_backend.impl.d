lib/gmatch/asp_backend.ml: Asp Datalog Matching
