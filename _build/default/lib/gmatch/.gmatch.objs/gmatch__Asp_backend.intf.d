lib/gmatch/asp_backend.mli: Matching Pgraph
