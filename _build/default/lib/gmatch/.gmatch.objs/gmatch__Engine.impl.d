lib/gmatch/engine.ml: Asp_backend Incremental Printf Vf2
