lib/gmatch/engine.mli: Matching Pgraph
