lib/gmatch/incremental.ml: Array Graph Int List Matching Pgraph Props Result String Vf2
