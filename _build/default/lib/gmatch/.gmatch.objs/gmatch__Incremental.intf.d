lib/gmatch/incremental.mli: Matching Pgraph
