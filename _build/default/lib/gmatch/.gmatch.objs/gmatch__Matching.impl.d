lib/gmatch/matching.ml: Format Graph List Pgraph Printf Props Result Set String
