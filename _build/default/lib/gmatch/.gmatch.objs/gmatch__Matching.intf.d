lib/gmatch/matching.mli: Format Pgraph
