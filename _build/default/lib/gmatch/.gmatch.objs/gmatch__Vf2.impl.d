lib/gmatch/vf2.ml: Graph Hashtbl Int List Map Matching Option Pgraph Props String
