lib/gmatch/vf2.mli: Matching Pgraph
