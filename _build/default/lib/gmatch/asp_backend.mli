(** Graph matching through the mini-ASP solver, using the paper's
    Listing 3 / Listing 4 specifications verbatim: the two graphs are
    encoded as Datalog facts under graph ids [1] and [2], the program is
    parsed, grounded and solved, and the [h/2] atoms of the optimal model
    are decoded back into a {!Matching.t}. *)

(** Step budget handed to the solver; raise for very large graphs. *)
val default_max_steps : int

val similar : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

val iso_min_cost : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

val sub_iso_min_cost : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
