type backend = Asp | Direct | Incremental

let default_backend = Direct

let backend_of_string = function
  | "asp" -> Ok Asp
  | "direct" | "vf2" -> Ok Direct
  | "incremental" | "inc" -> Ok Incremental
  | s -> Error (Printf.sprintf "unknown matching backend %S (expected asp, direct or incremental)" s)

let backend_to_string = function
  | Asp -> "asp"
  | Direct -> "direct"
  | Incremental -> "incremental"

let similar ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> Asp_backend.similar g1 g2
  | Direct -> Vf2.similar g1 g2
  | Incremental -> Incremental.similar g1 g2

let generalization_matching ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> Asp_backend.iso_min_cost g1 g2
  | Direct -> Vf2.iso_min_cost g1 g2
  | Incremental -> Incremental.iso_min_cost g1 g2

let subgraph_matching ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> Asp_backend.sub_iso_min_cost g1 g2
  | Direct -> Vf2.sub_iso_min_cost g1 g2
  | Incremental -> Incremental.sub_iso_min_cost g1 g2
