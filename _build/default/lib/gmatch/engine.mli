(** Backend-dispatching entry points used by the ProvMark pipeline.

    [Asp] runs the paper's Listing 3/4 specifications through the
    mini-ASP solver (the reference semantics); [Direct] runs the native
    VF2-style matcher (much faster on larger graphs).  Both compute the
    same answers — this is enforced by the property-based test suite. *)

type backend =
  | Asp
  | Direct
  | Incremental
      (** creation-order greedy alignment with certified optimality and
          exact fallback (the paper's Section 5.4 suggestion); always
          returns the same answers as [Direct] *)

val default_backend : backend

val backend_of_string : string -> (backend, string) result
val backend_to_string : backend -> string

(** Shape similarity (Section 3.4): do the two graphs admit a label- and
    structure-preserving bijection? *)
val similar : ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

(** Optimal bijective matching between two similar graphs, minimizing
    property mismatches — the generalization-stage matching. *)
val generalization_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** Optimal embedding of the first graph into the second, minimizing
    property mismatches — the comparison-stage matching (background into
    foreground). *)
val subgraph_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
