(** Incremental matching — the optimization the paper suggests in
    Section 5.4: "if matched nodes are usually produced in the same
    order (according to timestamps), then it may be possible to
    incrementally match the foreground and background graphs".

    Elements are aligned greedily in creation order (recorders assign
    monotonically increasing identifiers, standing in for timestamps),
    label-compatibly.  The greedy matching is {e certified}: it is
    returned only when it verifies structurally and its property cost
    reaches an admissible lower bound — i.e. when it is provably
    optimal.  Otherwise the exact {!Vf2} search runs, so results are
    always identical to the exact backend; only the time differs. *)

(** How often the fast path succeeded since program start, as
    [(certified, fallbacks)] — exposed so benchmarks can report the hit
    rate. *)
val stats : unit -> int * int

val reset_stats : unit -> unit

val similar : Pgraph.Graph.t -> Pgraph.Graph.t -> bool

val iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

val sub_iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
