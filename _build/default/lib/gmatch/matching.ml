open Pgraph

type t = {
  node_map : (string * string) list;
  edge_map : (string * string) list;
  cost : int;
}

let empty = { node_map = []; edge_map = []; cost = 0 }

let find_node m id = List.assoc_opt id m.node_map
let find_edge m id = List.assoc_opt id m.edge_map

let of_pairs g1 pairs cost =
  let node_map, edge_map =
    List.partition (fun (x, _) -> Graph.mem_node g1 x) pairs
  in
  { node_map; edge_map; cost }

let injective pairs =
  let module Sset = Set.Make (String) in
  let rec go dom rng = function
    | [] -> true
    | (x, y) :: rest ->
        (not (Sset.mem x dom)) && (not (Sset.mem y rng))
        && go (Sset.add x dom) (Sset.add y rng) rest
  in
  go Sset.empty Sset.empty pairs

let is_injective m = injective m.node_map && injective m.edge_map

let verify ~sub g1 g2 m =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* () = if is_injective m then Ok () else err "matching is not injective" in
  let* () =
    if List.length m.node_map = Graph.node_count g1 then Ok ()
    else err "not all left nodes are matched"
  in
  let* () =
    if List.length m.edge_map = Graph.edge_count g1 then Ok ()
    else err "not all left edges are matched"
  in
  let* () =
    if sub then Ok ()
    else if
      List.length m.node_map = Graph.node_count g2
      && List.length m.edge_map = Graph.edge_count g2
    then Ok ()
    else err "matching is not surjective"
  in
  let check_node (x, y) =
    match (Graph.find_node g1 x, Graph.find_node g2 y) with
    | Some n1, Some n2 ->
        if String.equal n1.Graph.node_label n2.Graph.node_label then Ok ()
        else err "node %s -> %s changes label" x y
    | _ -> err "node pair %s -> %s refers to missing nodes" x y
  in
  let check_edge (x, y) =
    match (Graph.find_edge g1 x, Graph.find_edge g2 y) with
    | Some e1, Some e2 ->
        if not (String.equal e1.Graph.edge_label e2.Graph.edge_label) then
          err "edge %s -> %s changes label" x y
        else if
          not
            (find_node m e1.Graph.edge_src = Some e2.Graph.edge_src
            && find_node m e1.Graph.edge_tgt = Some e2.Graph.edge_tgt)
        then err "edge %s -> %s does not preserve endpoints" x y
        else Ok ()
    | _ -> err "edge pair %s -> %s refers to missing edges" x y
  in
  let rec all f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        all f rest
  in
  let* () = all check_node m.node_map in
  all check_edge m.edge_map

let cost_of g1 g2 m =
  let node_cost =
    List.fold_left
      (fun acc (x, y) ->
        match (Graph.find_node g1 x, Graph.find_node g2 y) with
        | Some n1, Some n2 -> acc + Props.mismatch_cost n1.Graph.node_props n2.Graph.node_props
        | _ -> acc)
      0 m.node_map
  in
  let edge_cost =
    List.fold_left
      (fun acc (x, y) ->
        match (Graph.find_edge g1 x, Graph.find_edge g2 y) with
        | Some e1, Some e2 -> acc + Props.mismatch_cost e1.Graph.edge_props e2.Graph.edge_props
        | _ -> acc)
      0 m.edge_map
  in
  node_cost + edge_cost

let pp ppf m =
  let pp_pair ppf (x, y) = Format.fprintf ppf "%s->%s" x y in
  let pp_list = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_pair in
  Format.fprintf ppf "@[<v>nodes: %a@,edges: %a@,cost: %d@]" pp_list m.node_map pp_list
    m.edge_map m.cost
