(** Graph matchings: the output of similarity / subgraph-isomorphism
    solving — a mapping from the elements of a left graph to elements of
    a right graph, together with the property-mismatch cost of the
    paper's Listing 4 cost model. *)

type t = {
  node_map : (string * string) list;  (** left node id -> right node id *)
  edge_map : (string * string) list;  (** left edge id -> right edge id *)
  cost : int;  (** number of left properties with no equal counterpart *)
}

val empty : t

(** [find_node m id] looks up the right-hand node matched to [id]. *)
val find_node : t -> string -> string option

val find_edge : t -> string -> string option

(** [of_pairs g1 pairs cost] splits solver [h] pairs into node and edge
    components according to which identifiers are nodes of [g1]. *)
val of_pairs : Pgraph.Graph.t -> (string * string) list -> int -> t

(** [is_injective m] checks both maps are injective functions. *)
val is_injective : t -> bool

(** [verify ~sub g1 g2 m] re-checks that [m] is a label- and
    structure-preserving matching of [g1] into [g2]; with [sub:false] it
    additionally checks the matching is surjective (a full isomorphism).
    Returns an error message naming the violated condition. *)
val verify : sub:bool -> Pgraph.Graph.t -> Pgraph.Graph.t -> t -> (unit, string) result

(** Recompute the Listing-4 cost of a matching (left properties without an
    equal right counterpart). *)
val cost_of : Pgraph.Graph.t -> Pgraph.Graph.t -> t -> int

val pp : Format.formatter -> t -> unit
