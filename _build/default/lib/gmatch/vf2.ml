open Pgraph

(* The search matches left nodes to right nodes one at a time
   (most-constrained-first), and as soon as both endpoints of a left edge
   are matched, branches over the compatible right edges.  Injectivity is
   maintained with "used" tables; for the bijective modes a cardinality
   precheck on label multisets guarantees that an injective total matching
   is in fact a bijection. *)

type mode = Bijective | Injective

type search_state = {
  g1 : Graph.t;
  g2 : Graph.t;
  mode : mode;
  with_cost : bool;
  node_assign : (string, string) Hashtbl.t;
  used2_nodes : (string, unit) Hashtbl.t;
  edge_assign : (string, string) Hashtbl.t;
  used2_edges : (string, unit) Hashtbl.t;
  mutable cost : int;
  mutable best_cost : int;
  mutable best : (((string * string) list * (string * string) list) * int) option;
}

let node_cost st (n1 : Graph.node) (n2 : Graph.node) =
  if st.with_cost then Props.mismatch_cost n1.Graph.node_props n2.Graph.node_props else 0

let edge_cost st (e1 : Graph.edge) (e2 : Graph.edge) =
  if st.with_cost then Props.mismatch_cost e1.Graph.edge_props e2.Graph.edge_props else 0

(* Right-edge candidates for a left edge whose endpoints are matched. *)
let edge_candidates st (e1 : Graph.edge) =
  match
    ( Hashtbl.find_opt st.node_assign e1.Graph.edge_src,
      Hashtbl.find_opt st.node_assign e1.Graph.edge_tgt )
  with
  | Some src2, Some tgt2 ->
      List.filter
        (fun (e2 : Graph.edge) ->
          String.equal e2.Graph.edge_label e1.Graph.edge_label
          && String.equal e2.Graph.edge_tgt tgt2
          && not (Hashtbl.mem st.used2_edges e2.Graph.edge_id))
        (Graph.out_edges st.g2 src2)
  | _ -> []

(* Left edges both of whose endpoints are matched but which are not yet
   assigned. *)
let pending_edges st =
  List.filter
    (fun (e1 : Graph.edge) ->
      (not (Hashtbl.mem st.edge_assign e1.Graph.edge_id))
      && Hashtbl.mem st.node_assign e1.Graph.edge_src
      && Hashtbl.mem st.node_assign e1.Graph.edge_tgt)
    (Graph.edges st.g1)

let degree_ok st (n1 : Graph.node) (n2 : Graph.node) =
  let d1o = List.length (Graph.out_edges st.g1 n1.Graph.node_id)
  and d1i = List.length (Graph.in_edges st.g1 n1.Graph.node_id)
  and d2o = List.length (Graph.out_edges st.g2 n2.Graph.node_id)
  and d2i = List.length (Graph.in_edges st.g2 n2.Graph.node_id) in
  match st.mode with
  | Bijective -> d1o = d2o && d1i = d2i
  | Injective -> d1o <= d2o && d1i <= d2i

(* Candidates for an unmatched left node: unused right nodes of the same
   label, degree-compatible, and consistent with the edges already
   connecting [n1] to the matched region. *)
let node_candidates st (n1 : Graph.node) =
  let consistent (n2 : Graph.node) =
    let ok_edge (e1 : Graph.edge) other pick_required =
      match Hashtbl.find_opt st.node_assign other with
      | None -> true
      | Some other2 ->
          let required_src, required_tgt = pick_required n2.Graph.node_id other2 in
          List.exists
            (fun (e2 : Graph.edge) ->
              String.equal e2.Graph.edge_label e1.Graph.edge_label
              && String.equal e2.Graph.edge_src required_src
              && String.equal e2.Graph.edge_tgt required_tgt
              && not (Hashtbl.mem st.used2_edges e2.Graph.edge_id))
            (Graph.incident_edges st.g2 required_src)
    in
    List.for_all
      (fun (e1 : Graph.edge) ->
        if String.equal e1.Graph.edge_src n1.Graph.node_id then
          ok_edge e1 e1.Graph.edge_tgt (fun me other -> (me, other))
        else ok_edge e1 e1.Graph.edge_src (fun me other -> (other, me)))
      (Graph.incident_edges st.g1 n1.Graph.node_id)
  in
  List.filter
    (fun (n2 : Graph.node) ->
      String.equal n2.Graph.node_label n1.Graph.node_label
      && (not (Hashtbl.mem st.used2_nodes n2.Graph.node_id))
      && degree_ok st n1 n2
      && consistent n2)
    (Graph.nodes st.g2)

(* Admissible lower bound on the cost still to be paid: every unmatched
   left node must map to SOME unused same-label right node, so it pays at
   least the cheapest such pairing (structure ignored — admissible).  An
   unmatched node with no remaining candidate makes the branch dead. *)
let remaining_cost_lower_bound st =
  let rec fold_nodes nodes acc =
    match nodes with
    | [] -> Some acc
    | (n1 : Graph.node) :: rest ->
        if Hashtbl.mem st.node_assign n1.Graph.node_id then fold_nodes rest acc
        else
          let best = ref max_int in
          List.iter
            (fun (n2 : Graph.node) ->
              if
                String.equal n2.Graph.node_label n1.Graph.node_label
                && not (Hashtbl.mem st.used2_nodes n2.Graph.node_id)
              then (
                let c = node_cost st n1 n2 in
                if c < !best then best := c))
            (Graph.nodes st.g2);
          if !best = max_int then None else fold_nodes rest (acc + !best)
  in
  (* Same reasoning for edges, ignoring endpoint compatibility (still
     admissible).  Transient per-event properties (timestamps, event
     ids) make every edge pairing pay a fixed floor, which is what makes
     this bound bite on symmetric graphs. *)
  let rec fold_edges edges acc =
    match edges with
    | [] -> Some acc
    | (e1 : Graph.edge) :: rest ->
        if Hashtbl.mem st.edge_assign e1.Graph.edge_id then fold_edges rest acc
        else
          let best = ref max_int in
          List.iter
            (fun (e2 : Graph.edge) ->
              if
                String.equal e2.Graph.edge_label e1.Graph.edge_label
                && not (Hashtbl.mem st.used2_edges e2.Graph.edge_id)
              then (
                let c = edge_cost st e1 e2 in
                if c < !best then best := c))
            (Graph.edges st.g2);
          if !best = max_int then None else fold_edges rest (acc + !best)
  in
  match fold_nodes (Graph.nodes st.g1) 0 with
  | None -> None
  | Some n -> ( match fold_edges (Graph.edges st.g1) 0 with None -> None | Some e -> Some (n + e))

let record_model st =
  if st.cost < st.best_cost then (
    st.best_cost <- st.cost;
    let nodes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.node_assign [] in
    let edges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.edge_assign [] in
    st.best <- Some ((nodes, edges), st.cost))

exception Found

let rec search st ~first_only =
  if
    st.with_cost
    && (st.cost >= st.best_cost
       ||
       match remaining_cost_lower_bound st with
       | None -> true
       | Some lb -> st.cost + lb >= st.best_cost)
  then ()
  else
    match pending_edges st with
    | e1 :: _ ->
        (* Resolve determined edges before extending the node matching.
           Candidates are tried cheapest-first so the initial descent
           reaches a near-optimal matching and branch-and-bound prunes
           aggressively on symmetric graphs. *)
        let candidates =
          if st.with_cost then
            List.sort
              (fun a b -> Int.compare (edge_cost st e1 a) (edge_cost st e1 b))
              (edge_candidates st e1)
          else edge_candidates st e1
        in
        List.iter
          (fun (e2 : Graph.edge) ->
            Hashtbl.replace st.edge_assign e1.Graph.edge_id e2.Graph.edge_id;
            Hashtbl.replace st.used2_edges e2.Graph.edge_id ();
            let c = edge_cost st e1 e2 in
            st.cost <- st.cost + c;
            search st ~first_only;
            st.cost <- st.cost - c;
            Hashtbl.remove st.used2_edges e2.Graph.edge_id;
            Hashtbl.remove st.edge_assign e1.Graph.edge_id)
          candidates
    | [] -> (
        let unmatched =
          List.filter
            (fun (n : Graph.node) -> not (Hashtbl.mem st.node_assign n.Graph.node_id))
            (Graph.nodes st.g1)
        in
        match unmatched with
        | [] ->
            record_model st;
            if first_only then raise Found
        | _ ->
            (* Most-constrained node first. *)
            let scored = List.map (fun n -> (n, node_candidates st n)) unmatched in
            let n1, cands =
              List.fold_left
                (fun (bn, bc) (n, c) -> if List.length c < List.length bc then (n, c) else (bn, bc))
                (List.hd scored) (List.tl scored)
            in
            let cands =
              if st.with_cost then
                List.sort (fun a b -> Int.compare (node_cost st n1 a) (node_cost st n1 b)) cands
              else cands
            in
            List.iter
              (fun (n2 : Graph.node) ->
                Hashtbl.replace st.node_assign n1.Graph.node_id n2.Graph.node_id;
                Hashtbl.replace st.used2_nodes n2.Graph.node_id ();
                let c = node_cost st n1 n2 in
                st.cost <- st.cost + c;
                search st ~first_only;
                st.cost <- st.cost - c;
                Hashtbl.remove st.used2_nodes n2.Graph.node_id;
                Hashtbl.remove st.node_assign n1.Graph.node_id)
              cands)

let make_state ~mode ~with_cost g1 g2 =
  {
    g1;
    g2;
    mode;
    with_cost;
    node_assign = Hashtbl.create 32;
    used2_nodes = Hashtbl.create 32;
    edge_assign = Hashtbl.create 32;
    used2_edges = Hashtbl.create 32;
    cost = 0;
    best_cost = max_int;
    best = None;
  }

let bijective_precheck g1 g2 =
  Graph.node_count g1 = Graph.node_count g2
  && Graph.edge_count g1 = Graph.edge_count g2
  && List.equal String.equal (Graph.node_label_multiset g1) (Graph.node_label_multiset g2)
  && List.equal String.equal (Graph.edge_label_multiset g1) (Graph.edge_label_multiset g2)

let injective_precheck g1 g2 =
  let module Smap = Map.Make (String) in
  let hist labels =
    List.fold_left
      (fun m l -> Smap.update l (function None -> Some 1 | Some n -> Some (n + 1)) m)
      Smap.empty labels
  in
  let covers h1 h2 =
    Smap.for_all (fun l c -> match Smap.find_opt l h2 with Some c2 -> c <= c2 | None -> false) h1
  in
  covers (hist (Graph.node_label_multiset g1)) (hist (Graph.node_label_multiset g2))
  && covers (hist (Graph.edge_label_multiset g1)) (hist (Graph.edge_label_multiset g2))

let similar g1 g2 =
  bijective_precheck g1 g2
  &&
  let st = make_state ~mode:Bijective ~with_cost:false g1 g2 in
  match search st ~first_only:true with
  | () -> Option.is_some st.best
  | exception Found -> true

let run_min_cost ~mode g1 g2 =
  let precheck = match mode with Bijective -> bijective_precheck | Injective -> injective_precheck in
  if not (precheck g1 g2) then None
  else
    let st = make_state ~mode ~with_cost:true g1 g2 in
    search st ~first_only:false;
    Option.map
      (fun ((nodes, edges), cost) -> { Matching.node_map = nodes; edge_map = edges; cost })
      st.best

let iso_min_cost g1 g2 = run_min_cost ~mode:Bijective g1 g2
let sub_iso_min_cost g1 g2 = run_min_cost ~mode:Injective g1 g2
