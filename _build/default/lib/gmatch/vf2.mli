(** Direct VF2-style branch-and-bound graph matcher.

    This is the fast native backend; the {!Asp_backend} solves the same
    problems from the paper's ASP specifications, and the two are
    cross-checked in the test suite (they must agree on satisfiability
    and on optimal cost; optimal matchings themselves need not be
    unique). *)

(** [similar g1 g2] decides shape similarity (paper Section 3.4):
    existence of a bijection preserving labels and edge incidences,
    ignoring properties. *)
val similar : Pgraph.Graph.t -> Pgraph.Graph.t -> bool

(** [iso_min_cost g1 g2] finds a similarity bijection minimizing the
    Listing-4 property-mismatch cost, or [None] when the graphs are not
    similar. *)
val iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** [sub_iso_min_cost g1 g2] finds an injection of [g1] into [g2]
    preserving labels and incidences and minimizing the property-mismatch
    cost, or [None] if no embedding exists. *)
val sub_iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
