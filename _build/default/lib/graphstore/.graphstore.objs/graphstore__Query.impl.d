lib/graphstore/query.ml: List Option Store String
