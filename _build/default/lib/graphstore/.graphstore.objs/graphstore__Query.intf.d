lib/graphstore/query.mli: Store
