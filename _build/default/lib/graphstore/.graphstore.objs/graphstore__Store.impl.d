lib/graphstore/store.ml: Buffer Hashtbl Int Int64 List Printf String
