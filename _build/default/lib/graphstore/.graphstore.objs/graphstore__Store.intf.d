lib/graphstore/store.mli:
