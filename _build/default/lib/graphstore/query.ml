let has_props (n : Store.node_record) props =
  List.for_all
    (fun (k, v) ->
      match List.assoc_opt k n.Store.n_props with Some w -> String.equal v w | None -> false)
    props

let match_nodes store ?label ?(props = []) () =
  let base =
    match label with
    | Some l -> Store.nodes_with_label store l
    | None -> Store.all_nodes store
  in
  List.filter (fun n -> has_props n props) base

let expand store ~from ?rel_type dir =
  let rels =
    match dir with
    | `Out -> Store.rels_from store from
    | `In -> Store.rels_to store from
    | `Both -> Store.rels_from store from @ Store.rels_to store from
  in
  let rels =
    match rel_type with
    | Some t -> List.filter (fun (r : Store.rel_record) -> String.equal r.Store.r_type t) rels
    | None -> rels
  in
  List.filter_map
    (fun (r : Store.rel_record) ->
      let far = if r.Store.r_src = from then r.Store.r_tgt else r.Store.r_src in
      Option.map (fun n -> (r, n)) (Store.find_node store far))
    rels

let export_all store = (Store.all_nodes store, Store.all_rels store)

let degree store id =
  List.length (Store.rels_from store id) + List.length (Store.rels_to store id)
