(** Query layer over {!Store}: the subset of graph-pattern operations the
    OPUS transformation module needs (match by label and properties,
    expand relationships, full export).  All queries require the store to
    be opened and raise {!Store.Closed} otherwise. *)

(** [match_nodes store ?label ?props ()] returns nodes carrying [label]
    (if given) whose properties include all bindings in [props]. *)
val match_nodes :
  Store.t -> ?label:string -> ?props:(string * string) list -> unit -> Store.node_record list

(** [expand store ~from ?rel_type dir] follows relationships from node
    [from] in the given direction, returning each relationship with the
    node at its far end. *)
val expand :
  Store.t ->
  from:int ->
  ?rel_type:string ->
  [ `Out | `In | `Both ] ->
  (Store.rel_record * Store.node_record) list

(** Export the full graph as (nodes, relationships) — what ProvMark's
    OPUS transformation performs after each run. *)
val export_all : Store.t -> Store.node_record list * Store.rel_record list

(** Degree of a node, counting both directions. *)
val degree : Store.t -> int -> int
