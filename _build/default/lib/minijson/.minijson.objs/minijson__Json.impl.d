lib/minijson/json.ml: Bool Buffer Char Float Format List Printf String
