lib/minijson/json.mli: Format
