lib/oskernel/cred.ml: Errno Format
