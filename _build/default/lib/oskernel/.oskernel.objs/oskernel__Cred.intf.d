lib/oskernel/cred.mli: Errno Format
