lib/oskernel/errno.ml: Format
