lib/oskernel/errno.mli: Format
