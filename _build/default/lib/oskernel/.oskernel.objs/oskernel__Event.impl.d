lib/oskernel/event.ml: Errno Format Printf
