lib/oskernel/event.mli: Errno Format
