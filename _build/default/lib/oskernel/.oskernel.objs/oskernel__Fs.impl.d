lib/oskernel/fs.ml: Cred Errno Hashtbl List String
