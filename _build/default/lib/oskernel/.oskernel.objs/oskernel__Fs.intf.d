lib/oskernel/fs.mli: Cred Errno
