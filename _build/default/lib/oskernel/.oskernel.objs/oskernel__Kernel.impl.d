lib/oskernel/kernel.ml: Cred Errno Event Fs Hashtbl Int64 List Option Printf Prng Process Program String Syscall Trace
