lib/oskernel/kernel.mli: Program Trace
