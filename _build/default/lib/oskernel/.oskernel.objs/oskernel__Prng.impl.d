lib/oskernel/prng.ml: Int64 Printf
