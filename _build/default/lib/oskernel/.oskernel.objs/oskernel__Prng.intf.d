lib/oskernel/prng.mli:
