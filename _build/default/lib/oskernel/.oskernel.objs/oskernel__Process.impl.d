lib/oskernel/process.ml: Cred Hashtbl Syscall
