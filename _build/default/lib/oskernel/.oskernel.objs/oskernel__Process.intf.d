lib/oskernel/process.mli: Cred Hashtbl Syscall
