lib/oskernel/program.ml: Cred Syscall
