lib/oskernel/program.mli: Cred Syscall
