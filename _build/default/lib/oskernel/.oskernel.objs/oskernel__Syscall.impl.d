lib/oskernel/syscall.ml: Format
