lib/oskernel/syscall.mli: Format
