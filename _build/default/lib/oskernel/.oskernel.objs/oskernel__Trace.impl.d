lib/oskernel/trace.ml: Event Format Int List
