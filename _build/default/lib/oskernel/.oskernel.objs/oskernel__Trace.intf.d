lib/oskernel/trace.mli: Event Format
