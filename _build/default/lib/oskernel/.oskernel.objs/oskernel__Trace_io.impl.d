lib/oskernel/trace_io.ml: Errno Event Float Json List Minijson Printf Trace
