lib/oskernel/trace_io.mli: Trace
