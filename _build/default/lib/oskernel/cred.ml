type t = {
  ruid : int;
  euid : int;
  suid : int;
  rgid : int;
  egid : int;
  sgid : int;
}

let make ~uid ~gid = { ruid = uid; euid = uid; suid = uid; rgid = gid; egid = gid; sgid = gid }
let root = make ~uid:0 ~gid:0
let is_root c = c.euid = 0

let allowed_uid c id = id = c.ruid || id = c.euid || id = c.suid
let allowed_gid c id = id = c.rgid || id = c.egid || id = c.sgid

let setuid c id =
  if is_root c then Ok { c with ruid = id; euid = id; suid = id }
  else if allowed_uid c id then Ok { c with euid = id }
  else Error Errno.EPERM

let setgid c id =
  if is_root c then Ok { c with rgid = id; egid = id; sgid = id }
  else if allowed_gid c id then Ok { c with egid = id }
  else Error Errno.EPERM

let pick current requested = if requested = -1 then current else requested

let setreuid c r e =
  let r' = pick c.ruid r and e' = pick c.euid e in
  let ok = is_root c || ((r = -1 || allowed_uid c r) && (e = -1 || allowed_uid c e)) in
  if not ok then Error Errno.EPERM
  else
    (* If the real uid changes or the effective uid differs from the old
       real uid, the saved uid becomes the new effective uid. *)
    let s' = if r <> -1 || e' <> c.ruid then e' else c.suid in
    Ok { c with ruid = r'; euid = e'; suid = s' }

let setregid c r e =
  let r' = pick c.rgid r and e' = pick c.egid e in
  let ok = is_root c || ((r = -1 || allowed_gid c r) && (e = -1 || allowed_gid c e)) in
  if not ok then Error Errno.EPERM
  else
    let s' = if r <> -1 || e' <> c.rgid then e' else c.sgid in
    Ok { c with rgid = r'; egid = e'; sgid = s' }

let setresuid c r e s =
  let ok =
    is_root c
    || (r = -1 || allowed_uid c r) && (e = -1 || allowed_uid c e) && (s = -1 || allowed_uid c s)
  in
  if not ok then Error Errno.EPERM
  else Ok { c with ruid = pick c.ruid r; euid = pick c.euid e; suid = pick c.suid s }

let setresgid c r e s =
  let ok =
    is_root c
    || (r = -1 || allowed_gid c r) && (e = -1 || allowed_gid c e) && (s = -1 || allowed_gid c s)
  in
  if not ok then Error Errno.EPERM
  else Ok { c with rgid = pick c.rgid r; egid = pick c.egid e; sgid = pick c.sgid s }

let equal a b = a = b

let pp ppf c =
  Format.fprintf ppf "uid %d/%d/%d gid %d/%d/%d" c.ruid c.euid c.suid c.rgid c.egid c.sgid
