(** Process credentials: real, effective and saved user/group ids, with
    the POSIX transition rules needed by the [set*uid]/[set*gid]
    benchmark group. *)

type t = {
  ruid : int;
  euid : int;
  suid : int;
  rgid : int;
  egid : int;
  sgid : int;
}

val make : uid:int -> gid:int -> t

val root : t

val is_root : t -> bool

(** Each setter returns [Error EPERM] when the caller lacks the
    privilege for the requested transition, mirroring the kernel rules:
    an unprivileged process may only set ids to one of its current
    real/effective/saved ids.  [-1] arguments mean "leave unchanged"
    (for the [setre*]/[setres*] forms). *)

val setuid : t -> int -> (t, Errno.t) result
val setgid : t -> int -> (t, Errno.t) result
val setreuid : t -> int -> int -> (t, Errno.t) result
val setregid : t -> int -> int -> (t, Errno.t) result
val setresuid : t -> int -> int -> int -> (t, Errno.t) result
val setresgid : t -> int -> int -> int -> (t, Errno.t) result

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
