type t =
  | EACCES
  | EBADF
  | EEXIST
  | EINVAL
  | EISDIR
  | ENOENT
  | ENOTDIR
  | EPERM
  | ESRCH

let to_string = function
  | EACCES -> "EACCES"
  | EBADF -> "EBADF"
  | EEXIST -> "EEXIST"
  | EINVAL -> "EINVAL"
  | EISDIR -> "EISDIR"
  | ENOENT -> "ENOENT"
  | ENOTDIR -> "ENOTDIR"
  | EPERM -> "EPERM"
  | ESRCH -> "ESRCH"

let code = function
  | EPERM -> 1
  | ENOENT -> 2
  | ESRCH -> 3
  | EACCES -> 13
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | EBADF -> 9

let equal a b = a = b
let pp ppf e = Format.pp_print_string ppf (to_string e)
