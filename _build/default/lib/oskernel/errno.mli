(** The error codes the simulated kernel can return. *)

type t =
  | EACCES
  | EBADF
  | EEXIST
  | EINVAL
  | EISDIR
  | ENOENT
  | ENOTDIR
  | EPERM
  | ESRCH

val to_string : t -> string

(** Conventional Linux numeric code (positive). *)
val code : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
