type fd_info = { fd : int; ino : int; path : string option }

type audit_record = {
  a_seq : int;
  a_time : int;
  a_syscall : string;
  a_args : (string * string) list;
  a_exit : int;
  a_success : bool;
  a_pid : int;
  a_ppid : int;
  a_uid : int;
  a_euid : int;
  a_gid : int;
  a_egid : int;
  a_comm : string;
  a_exe : string;
  a_paths : string list;
  a_fds : fd_info list;
}

type libc_record = {
  l_seq : int;
  l_time : int;
  l_func : string;
  l_args : (string * string) list;
  l_ret : int;
  l_errno : Errno.t option;
  l_pid : int;
  l_comm : string;
  l_fds : fd_info list;
}

type lsm_object =
  | Obj_inode of { ino : int; path : string option; kind : string }
  | Obj_process of { pid : int }
  | Obj_cred of { uid : int; gid : int }

type lsm_record = {
  s_seq : int;
  s_time : int;
  s_hook : string;
  s_pid : int;
  s_obj : lsm_object;
  s_extra : (string * string) list;
  s_allowed : bool;
}

type t =
  | Audit of audit_record
  | Libc of libc_record
  | Lsm of lsm_record

let pp ppf = function
  | Audit a ->
      Format.fprintf ppf "audit[%d] %s pid=%d exit=%d success=%b" a.a_seq a.a_syscall a.a_pid
        a.a_exit a.a_success
  | Libc l ->
      Format.fprintf ppf "libc[%d] %s pid=%d ret=%d" l.l_seq l.l_func l.l_pid l.l_ret
  | Lsm s ->
      let obj =
        match s.s_obj with
        | Obj_inode { ino; path; kind } ->
            Printf.sprintf "inode %d (%s%s)" ino kind
              (match path with Some p -> " " ^ p | None -> "")
        | Obj_process { pid } -> Printf.sprintf "process %d" pid
        | Obj_cred { uid; gid } -> Printf.sprintf "cred %d:%d" uid gid
      in
      Format.fprintf ppf "lsm[%d] %s pid=%d obj=%s allowed=%b" s.s_seq s.s_hook s.s_pid obj
        s.s_allowed
