(** Observation events: what each capture layer sees when the simulated
    kernel executes a syscall.  Three parallel streams mirror the
    architectures of Figure 2:

    - the {e audit} stream is what the Linux Audit service reports
      (syscall-exit records with argument and path metadata) — consumed
      by the SPADE recorder;
    - the {e libc} stream is the sequence of C-library calls visible to a
      userspace interposition layer — consumed by the OPUS recorder;
    - the {e LSM} stream is the sequence of security-hook invocations
      inside the kernel — consumed by the CamFlow recorder. *)

type fd_info = { fd : int; ino : int; path : string option }

type audit_record = {
  a_seq : int;
  a_time : int;  (** kernel clock ticks at syscall exit *)
  a_syscall : string;
  a_args : (string * string) list;
  a_exit : int;  (** return value, or negated errno code *)
  a_success : bool;
  a_pid : int;
  a_ppid : int;
  a_uid : int;
  a_euid : int;
  a_gid : int;
  a_egid : int;
  a_comm : string;
  a_exe : string;
  a_paths : string list;  (** audit PATH records attached to the event *)
  a_fds : fd_info list;
}

type libc_record = {
  l_seq : int;
  l_time : int;
  l_func : string;  (** C library function name *)
  l_args : (string * string) list;
  l_ret : int;
  l_errno : Errno.t option;
  l_pid : int;
  l_comm : string;
  l_fds : fd_info list;
}

type lsm_object =
  | Obj_inode of { ino : int; path : string option; kind : string }
  | Obj_process of { pid : int }
  | Obj_cred of { uid : int; gid : int }

type lsm_record = {
  s_seq : int;
  s_time : int;
  s_hook : string;  (** LSM hook name, e.g. ["file_open"] *)
  s_pid : int;
  s_obj : lsm_object;
  s_extra : (string * string) list;
  s_allowed : bool;  (** false when the hook denied the operation *)
}

type t =
  | Audit of audit_record
  | Libc of libc_record
  | Lsm of lsm_record

val pp : Format.formatter -> t -> unit
