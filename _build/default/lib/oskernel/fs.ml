type ftype =
  | Regular
  | Directory
  | Fifo
  | Chardev
  | Symlink of string

type inode = {
  ino : int;
  ftype : ftype;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable size : int;
  mutable version : int;
}

type t = {
  inodes : (int, inode) Hashtbl.t;
  paths : (string, int) Hashtbl.t;
  mutable next_ino : int;
}

let create ?(first_ino = 2) () =
  let fs = { inodes = Hashtbl.create 64; paths = Hashtbl.create 64; next_ino = max 2 first_ino } in
  (* Root directory. *)
  let root =
    { ino = 1; ftype = Directory; mode = 0o755; uid = 0; gid = 0; nlink = 1; size = 0; version = 0 }
  in
  Hashtbl.replace fs.inodes 1 root;
  Hashtbl.replace fs.paths "/" 1;
  fs

let alloc fs ~ftype ~mode ~uid ~gid =
  let ino = fs.next_ino in
  fs.next_ino <- ino + 1;
  let inode = { ino; ftype; mode; uid; gid; nlink = 0; size = 0; version = 0 } in
  Hashtbl.replace fs.inodes ino inode;
  inode

let lookup fs path =
  match Hashtbl.find_opt fs.paths path with
  | None -> None
  | Some ino -> Hashtbl.find_opt fs.inodes ino

let find_inode fs ino = Hashtbl.find_opt fs.inodes ino

let resolve fs path =
  match lookup fs path with
  | Some { ftype = Symlink target; _ } -> lookup fs target
  | other -> other

let path_exists fs path = Hashtbl.mem fs.paths path

let parent_of path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let rec ensure_dir fs path =
  if not (path_exists fs path) then (
    if not (String.equal path "/") then ensure_dir fs (parent_of path);
    let d = alloc fs ~ftype:Directory ~mode:0o755 ~uid:0 ~gid:0 in
    d.nlink <- 1;
    Hashtbl.replace fs.paths path d.ino)

let bind fs path inode =
  Hashtbl.replace fs.paths path inode.ino;
  inode.nlink <- inode.nlink + 1

let unbind fs path =
  match Hashtbl.find_opt fs.paths path with
  | None -> None
  | Some ino ->
      Hashtbl.remove fs.paths path;
      let inode = Hashtbl.find_opt fs.inodes ino in
      (match inode with
      | Some i ->
          i.nlink <- i.nlink - 1;
          if i.nlink <= 0 then Hashtbl.remove fs.inodes ino
      | None -> ());
      inode

let mknod_at fs ~path ~ftype ~mode ~uid ~gid =
  if path_exists fs path then Error Errno.EEXIST
  else (
    ensure_dir fs (parent_of path);
    let inode = alloc fs ~ftype ~mode ~uid ~gid in
    bind fs path inode;
    Ok inode)

let mkfile fs ~path ~mode ~uid ~gid = mknod_at fs ~path ~ftype:Regular ~mode ~uid ~gid

let mkdir fs ~path ~mode ~uid ~gid =
  match lookup fs path with
  | Some ({ ftype = Directory; _ } as d) -> Ok d
  | Some _ -> Error Errno.EEXIST
  | None -> mknod_at fs ~path ~ftype:Directory ~mode ~uid ~gid

let make_pipe fs =
  let inode = alloc fs ~ftype:Fifo ~mode:0o600 ~uid:0 ~gid:0 in
  inode.nlink <- 1;
  inode

let paths_of_ino fs ino =
  Hashtbl.fold (fun path i acc -> if i = ino then path :: acc else acc) fs.paths []
  |> List.sort String.compare

let link fs ~old_path ~new_path =
  match lookup fs old_path with
  | None -> Error Errno.ENOENT
  | Some { ftype = Directory; _ } -> Error Errno.EPERM
  | Some inode ->
      if path_exists fs new_path then Error Errno.EEXIST
      else (
        ensure_dir fs (parent_of new_path);
        bind fs new_path inode;
        Ok inode)

let symlink fs ~target ~link_path ~uid ~gid =
  if path_exists fs link_path then Error Errno.EEXIST
  else (
    ensure_dir fs (parent_of link_path);
    let inode = alloc fs ~ftype:(Symlink target) ~mode:0o777 ~uid ~gid in
    bind fs link_path inode;
    Ok inode)

let unlink fs path =
  match lookup fs path with
  | None -> Error Errno.ENOENT
  | Some { ftype = Directory; _ } -> Error Errno.EISDIR
  | Some _ -> ( match unbind fs path with Some i -> Ok i | None -> Error Errno.ENOENT)

let rename fs ~old_path ~new_path =
  match lookup fs old_path with
  | None -> Error Errno.ENOENT
  | Some inode ->
      if path_exists fs new_path then ignore (unbind fs new_path);
      ensure_dir fs (parent_of new_path);
      Hashtbl.remove fs.paths old_path;
      Hashtbl.replace fs.paths new_path inode.ino;
      Ok inode

let truncate fs path ~length =
  match resolve fs path with
  | None -> Error Errno.ENOENT
  | Some { ftype = Directory; _ } -> Error Errno.EISDIR
  | Some inode ->
      inode.size <- length;
      inode.version <- inode.version + 1;
      Ok inode

let chmod fs path ~mode =
  match resolve fs path with
  | None -> Error Errno.ENOENT
  | Some inode ->
      inode.mode <- mode;
      Ok inode

let chown fs path ~uid ~gid =
  match resolve fs path with
  | None -> Error Errno.ENOENT
  | Some inode ->
      if uid >= 0 then inode.uid <- uid;
      if gid >= 0 then inode.gid <- gid;
      Ok inode

let may_write inode (cred : Cred.t) =
  Cred.is_root cred
  || (inode.uid = cred.Cred.euid && inode.mode land 0o200 <> 0)
  || (inode.gid = cred.Cred.egid && inode.mode land 0o020 <> 0)
  || inode.mode land 0o002 <> 0

let may_read inode (cred : Cred.t) =
  Cred.is_root cred
  || (inode.uid = cred.Cred.euid && inode.mode land 0o400 <> 0)
  || (inode.gid = cred.Cred.egid && inode.mode land 0o040 <> 0)
  || inode.mode land 0o004 <> 0

let may_exec inode (cred : Cred.t) =
  Cred.is_root cred
  || (inode.uid = cred.Cred.euid && inode.mode land 0o100 <> 0)
  || (inode.gid = cred.Cred.egid && inode.mode land 0o010 <> 0)
  || inode.mode land 0o001 <> 0

let may_modify_dir_of fs path cred =
  match lookup fs (parent_of path) with
  | None -> true  (* parent will be created by staging; treat as writable *)
  | Some dir -> may_write dir cred
