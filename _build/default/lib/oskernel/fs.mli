(** In-memory filesystem for the simulated kernel: a path table over an
    inode table.  Paths are absolute, ['/']-separated; intermediate
    directories are created implicitly when staging.  Pipes are
    anonymous inodes with no path. *)

type ftype =
  | Regular
  | Directory
  | Fifo
  | Chardev
  | Symlink of string  (** link target path *)

type inode = {
  ino : int;
  ftype : ftype;
  mutable mode : int;  (** permission bits, e.g. 0o644 *)
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable size : int;
  mutable version : int;  (** bumped on every content write/truncate *)
}

type t

(** [create ?first_ino ()] builds a filesystem containing only the root
    directory.  [first_ino] (default 2) lets runs allocate from a
    run-specific base so inode numbers behave like the transient values
    real systems produce. *)
val create : ?first_ino:int -> unit -> t

(** [mkfile fs ~path ~mode ~uid ~gid] creates a regular file, creating
    missing parent directories (owned by root).  Returns [Error EEXIST]
    if the path exists. *)
val mkfile : t -> path:string -> mode:int -> uid:int -> gid:int -> (inode, Errno.t) result

val mknod_at : t -> path:string -> ftype:ftype -> mode:int -> uid:int -> gid:int -> (inode, Errno.t) result

(** Create a directory (with its missing parents, which are root-owned).
    Creating an existing directory is a no-op returning its inode. *)
val mkdir : t -> path:string -> mode:int -> uid:int -> gid:int -> (inode, Errno.t) result

(** Anonymous FIFO inode for [pipe]. *)
val make_pipe : t -> inode

val lookup : t -> string -> inode option

(** Resolve one level of symlink indirection. *)
val resolve : t -> string -> inode option

val path_exists : t -> string -> bool

(** All paths currently bound to the given inode number, sorted. *)
val paths_of_ino : t -> int -> string list

(** Hard link: bind [new_path] to the inode at [old_path]. *)
val link : t -> old_path:string -> new_path:string -> (inode, Errno.t) result

val symlink : t -> target:string -> link_path:string -> uid:int -> gid:int -> (inode, Errno.t) result

val unlink : t -> string -> (inode, Errno.t) result

(** [rename fs ~old_path ~new_path] moves the binding; an existing
    target is replaced (its inode link count drops). *)
val rename : t -> old_path:string -> new_path:string -> (inode, Errno.t) result

val truncate : t -> string -> length:int -> (inode, Errno.t) result

val chmod : t -> string -> mode:int -> (inode, Errno.t) result

val chown : t -> string -> uid:int -> gid:int -> (inode, Errno.t) result

(** Write access check against permission bits and ownership ([euid] 0
    bypasses). *)
val may_write : inode -> Cred.t -> bool

val may_read : inode -> Cred.t -> bool

(** Execute-permission check (for [execve]). *)
val may_exec : inode -> Cred.t -> bool

(** Parent-directory write permission for creating/removing entries at
    [path]. *)
val may_modify_dir_of : t -> string -> Cred.t -> bool

val find_inode : t -> int -> inode option
