let default_uid = 1000
let default_gid = 1000

type state = {
  fs : Fs.t;
  procs : (int, Process.t) Hashtbl.t;
  mutable clock : int;
  mutable next_pid : int;
  mutable seq : int;
  mutable audit : Event.audit_record list;
  mutable libc : Event.libc_record list;
  mutable lsm : Event.lsm_record list;
  regs : (string, int) Hashtbl.t;
}

let tick st =
  st.clock <- st.clock + 1;
  st.clock

let next_seq st =
  st.seq <- st.seq + 1;
  st.seq

(* ------------------------------------------------------------------ *)
(* Event emission                                                      *)
(* ------------------------------------------------------------------ *)

let emit_audit st (p : Process.t) ~syscall ~args ~ret ~errno ~paths ~fds =
  let c = p.Process.cred in
  st.audit <-
    {
      Event.a_seq = next_seq st;
      a_time = tick st;
      a_syscall = syscall;
      a_args = args;
      a_exit = (match errno with None -> ret | Some e -> -Errno.code e);
      a_success = Option.is_none errno;
      a_pid = p.Process.pid;
      a_ppid = p.Process.ppid;
      a_uid = c.Cred.ruid;
      a_euid = c.Cred.euid;
      a_gid = c.Cred.rgid;
      a_egid = c.Cred.egid;
      a_comm = p.Process.comm;
      a_exe = p.Process.exe;
      a_paths = paths;
      a_fds = fds;
    }
    :: st.audit

let emit_libc st (p : Process.t) ~func ~args ~ret ~errno ~fds =
  st.libc <-
    {
      Event.l_seq = next_seq st;
      l_time = tick st;
      l_func = func;
      l_args = args;
      l_ret = (match errno with None -> ret | Some _ -> -1);
      l_errno = errno;
      l_pid = p.Process.pid;
      l_comm = p.Process.comm;
      l_fds = fds;
    }
    :: st.libc

let emit_lsm st (p : Process.t) ~hook ~obj ?(extra = []) ~allowed () =
  st.lsm <-
    {
      Event.s_seq = next_seq st;
      s_time = tick st;
      s_hook = hook;
      s_pid = p.Process.pid;
      s_obj = obj;
      s_extra = extra;
      s_allowed = allowed;
    }
    :: st.lsm

let inode_obj st (inode : Fs.inode) =
  let kind =
    match inode.Fs.ftype with
    | Fs.Regular -> "file"
    | Fs.Directory -> "directory"
    | Fs.Fifo -> "fifo"
    | Fs.Chardev -> "chardev"
    | Fs.Symlink _ -> "symlink"
  in
  let path = match Fs.paths_of_ino st.fs inode.Fs.ino with [] -> None | p :: _ -> Some p in
  Event.Obj_inode { ino = inode.Fs.ino; path; kind }

let fd_info st (p : Process.t) fd =
  match Process.find_fd p fd with
  | None -> { Event.fd; ino = -1; path = None }
  | Some entry ->
      let path =
        match Fs.paths_of_ino st.fs entry.Process.ino with [] -> None | x :: _ -> Some x
      in
      { Event.fd; ino = entry.Process.ino; path }

(* ------------------------------------------------------------------ *)
(* Register (symbolic fd) environment                                  *)
(* ------------------------------------------------------------------ *)

let reg st r = Hashtbl.find_opt st.regs r
let bind_reg st r fd = Hashtbl.replace st.regs r fd

(* ------------------------------------------------------------------ *)
(* Syscall execution                                                   *)
(* ------------------------------------------------------------------ *)

let flags_to_string flags =
  let one = function
    | Syscall.O_RDONLY -> "O_RDONLY"
    | Syscall.O_WRONLY -> "O_WRONLY"
    | Syscall.O_RDWR -> "O_RDWR"
    | Syscall.O_CREAT -> "O_CREAT"
    | Syscall.O_TRUNC -> "O_TRUNC"
    | Syscall.O_APPEND -> "O_APPEND"
  in
  match flags with [] -> "O_RDONLY" | fs -> String.concat "|" (List.map one fs)

let wants_write flags =
  List.exists
    (function
      | Syscall.O_WRONLY | Syscall.O_RDWR | Syscall.O_TRUNC | Syscall.O_APPEND -> true
      | Syscall.O_RDONLY | Syscall.O_CREAT -> false)
    flags

(* Emit the full event triple for a simple call: LSM hooks already
   emitted by the caller; this adds the audit-exit and libc records. *)
let finish st p ~syscall ?func ~args ~ret ~errno ?(paths = []) ?(fds = []) () =
  emit_audit st p ~syscall ~args ~ret ~errno ~paths ~fds;
  emit_libc st p ~func:(Option.value func ~default:syscall) ~args ~ret ~errno ~fds;
  (ret, errno)

let exec_open st (p : Process.t) ~syscall ~path ~flags ~ret_reg =
  let args = [ ("filename", path); ("flags", flags_to_string flags) ] in
  let finish_fail errno = finish st p ~syscall ~args ~ret:(-1) ~errno:(Some errno) ~paths:[ path ] () in
  match Fs.resolve st.fs path with
  | Some inode ->
      let permitted =
        if wants_write flags then Fs.may_write inode p.Process.cred
        else Fs.may_read inode p.Process.cred
      in
      emit_lsm st p ~hook:"file_open" ~obj:(inode_obj st inode) ~allowed:permitted ();
      if not permitted then finish_fail Errno.EACCES
      else (
        if List.mem Syscall.O_TRUNC flags then (
          inode.Fs.size <- 0;
          inode.Fs.version <- inode.Fs.version + 1);
        let fd = Process.alloc_fd p ~ino:inode.Fs.ino ~flags in
        bind_reg st ret_reg fd;
        finish st p ~syscall ~args ~ret:fd ~errno:None ~paths:[ path ] ~fds:[ fd_info st p fd ] ())
  | None ->
      let creating = List.mem Syscall.O_CREAT flags in
      if not creating then finish_fail Errno.ENOENT
      else if not (Fs.may_modify_dir_of st.fs path p.Process.cred) then (
        emit_lsm st p
          ~hook:"inode_create"
          ~obj:(Event.Obj_inode { ino = -1; path = Some path; kind = "file" })
          ~allowed:false ();
        finish_fail Errno.EACCES)
      else (
        match
          Fs.mkfile st.fs ~path ~mode:0o644 ~uid:p.Process.cred.Cred.euid
            ~gid:p.Process.cred.Cred.egid
        with
        | Error e -> finish_fail e
        | Ok inode ->
            emit_lsm st p ~hook:"inode_create" ~obj:(inode_obj st inode) ~allowed:true ();
            emit_lsm st p ~hook:"file_open" ~obj:(inode_obj st inode) ~allowed:true ();
            let fd = Process.alloc_fd p ~ino:inode.Fs.ino ~flags in
            bind_reg st ret_reg fd;
            finish st p ~syscall ~args ~ret:fd ~errno:None ~paths:[ path ]
              ~fds:[ fd_info st p fd ] ())

let exec_rw st (p : Process.t) ~syscall ~fd_reg ~count ~write =
  let args = [ ("count", string_of_int count) ] in
  match reg st fd_reg with
  | None -> finish st p ~syscall ~args ~ret:(-1) ~errno:(Some Errno.EBADF) ()
  | Some fd -> (
      match Process.find_fd p fd with
      | None -> finish st p ~syscall ~args ~ret:(-1) ~errno:(Some Errno.EBADF) ()
      | Some entry ->
          let inode = Fs.find_inode st.fs entry.Process.ino in
          (match inode with
          | Some inode ->
              emit_lsm st p ~hook:"file_permission" ~obj:(inode_obj st inode)
                ~extra:[ ("mode", if write then "MAY_WRITE" else "MAY_READ") ]
                ~allowed:true ();
              if write then (
                inode.Fs.size <- max inode.Fs.size (entry.Process.offset + count);
                inode.Fs.version <- inode.Fs.version + 1)
          | None -> ());
          entry.Process.offset <- entry.Process.offset + count;
          let args = ("fd", string_of_int fd) :: args in
          finish st p ~syscall ~args ~ret:count ~errno:None ~fds:[ fd_info st p fd ] ())

(* Create a child process.  [vfork] changes the stream ordering: the
   child's records appear before the parent's own syscall-exit record,
   because Linux Audit logs on exit and the vforking parent is suspended
   until the child terminates (the paper's explanation of SPADE's
   disconnected vfork graphs). *)
let exec_fork st (p : Process.t) ~syscall =
  let child_pid = st.next_pid in
  st.next_pid <- child_pid + 1;
  let child = Process.fork_into p ~pid:child_pid in
  Hashtbl.replace st.procs child_pid child;
  p.Process.last_child <- Some child_pid;
  emit_lsm st p ~hook:"task_alloc" ~obj:(Event.Obj_process { pid = child_pid }) ~allowed:true ();
  let child_exit () =
    child.Process.alive <- false;
    child.Process.exit_status <- Some 0;
    emit_lsm st child ~hook:"task_free" ~obj:(Event.Obj_process { pid = child_pid }) ~allowed:true ();
    emit_audit st child ~syscall:"exit" ~args:[ ("status", "0") ] ~ret:0 ~errno:None ~paths:[]
      ~fds:[]
  in
  let args = [] in
  if String.equal syscall "vfork" then (
    child_exit ();
    finish st p ~syscall ~args ~ret:child_pid ~errno:None ())
  else
    let r = finish st p ~syscall ~args ~ret:child_pid ~errno:None () in
    child_exit ();
    r

(* The dynamic loader's activity after execve: visible to the audit
   stream (SPADE's large execve graphs) but not to the libc interposer
   (the loader performs raw syscalls before library interposition is in
   place) and only as a file_open to the LSM layer. *)
let loader_activity st (p : Process.t) =
  match Fs.resolve st.fs "/lib/x86_64-linux-gnu/libc.so.6" with
  | None -> ()
  | Some libc ->
      let path = "/lib/x86_64-linux-gnu/libc.so.6" in
      emit_lsm st p ~hook:"file_open" ~obj:(inode_obj st libc) ~allowed:true ();
      let fd = Process.alloc_fd p ~ino:libc.Fs.ino ~flags:[ Syscall.O_RDONLY ] in
      emit_audit st p ~syscall:"openat"
        ~args:[ ("filename", path); ("flags", "O_RDONLY|O_CLOEXEC") ]
        ~ret:fd ~errno:None ~paths:[ path ] ~fds:[ fd_info st p fd ];
      emit_audit st p ~syscall:"read"
        ~args:[ ("fd", string_of_int fd); ("count", "832") ]
        ~ret:832 ~errno:None ~paths:[] ~fds:[ fd_info st p fd ];
      emit_audit st p ~syscall:"mmap"
        ~args:[ ("fd", string_of_int fd); ("prot", "PROT_READ|PROT_EXEC") ]
        ~ret:0 ~errno:None ~paths:[] ~fds:[ fd_info st p fd ];
      ignore (Process.close_fd p fd);
      emit_audit st p ~syscall:"close"
        ~args:[ ("fd", string_of_int fd) ]
        ~ret:0 ~errno:None ~paths:[] ~fds:[]

let exec_execve st (p : Process.t) ~path =
  let args = [ ("filename", path); ("argc", "1") ] in
  match Fs.resolve st.fs path with
  | None -> finish st p ~syscall:"execve" ~args ~ret:(-1) ~errno:(Some Errno.ENOENT) ~paths:[ path ] ()
  | Some inode when not (Fs.may_exec inode p.Process.cred) ->
      emit_lsm st p ~hook:"bprm_check" ~obj:(inode_obj st inode) ~allowed:false ();
      finish st p ~syscall:"execve" ~args ~ret:(-1) ~errno:(Some Errno.EACCES) ~paths:[ path ] ()
  | Some inode ->
      emit_lsm st p ~hook:"bprm_check" ~obj:(inode_obj st inode) ~allowed:true ();
      p.Process.exe <- path;
      (p.Process.comm <-
        (match String.rindex_opt path '/' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path));
      emit_lsm st p ~hook:"bprm_committed_creds" ~obj:(Event.Obj_process { pid = p.Process.pid })
        ~allowed:true ();
      let r = finish st p ~syscall:"execve" ~args ~ret:0 ~errno:None ~paths:[ path ] () in
      loader_activity st p;
      r

let path_op_denied st p ~syscall ~hook ~args ~paths ~kind ~path =
  emit_lsm st p ~hook ~obj:(Event.Obj_inode { ino = -1; path = Some path; kind }) ~allowed:false ();
  finish st p ~syscall ~args ~ret:(-1) ~errno:(Some Errno.EACCES) ~paths ()

let exec_setcred st p ~syscall ~args ~apply ~hook =
  let before = p.Process.cred in
  match apply before with
  | Ok after ->
      let changed = not (Cred.equal before after) in
      emit_lsm st p ~hook
        ~obj:(Event.Obj_cred { uid = after.Cred.euid; gid = after.Cred.egid })
        ~extra:[ ("changed", string_of_bool changed) ]
        ~allowed:true ();
      p.Process.cred <- after;
      finish st p ~syscall ~args ~ret:0 ~errno:None ()
  | Error e ->
      emit_lsm st p ~hook
        ~obj:(Event.Obj_cred { uid = before.Cred.euid; gid = before.Cred.egid })
        ~allowed:false ();
      finish st p ~syscall ~args ~ret:(-1) ~errno:(Some e) ()

let exec_call st (p : Process.t) call =
  let cred = p.Process.cred in
  let fail ~syscall ~args ?(paths = []) errno =
    finish st p ~syscall ~args ~ret:(-1) ~errno:(Some errno) ~paths ()
  in
  match (call : Syscall.t) with
  | Syscall.Open { path; flags; ret } -> exec_open st p ~syscall:"open" ~path ~flags ~ret_reg:ret
  | Syscall.Openat { path; flags; ret } -> exec_open st p ~syscall:"openat" ~path ~flags ~ret_reg:ret
  | Syscall.Creat { path; ret } ->
      exec_open st p ~syscall:"creat" ~path
        ~flags:[ Syscall.O_CREAT; Syscall.O_WRONLY; Syscall.O_TRUNC ]
        ~ret_reg:ret
  | Syscall.Close r -> (
      let args_of fd = [ ("fd", string_of_int fd) ] in
      match reg st r with
      | None -> fail ~syscall:"close" ~args:[ ("fd", "-1") ] Errno.EBADF
      | Some fd ->
          (* Capture descriptor metadata before the entry disappears. *)
          let info = fd_info st p fd in
          if Process.close_fd p fd then
            (* CamFlow observes the close only when the kernel finally
               frees the file structure, which ProvMark does not reliably
               catch (Table 2 note LP) — so no LSM hook is emitted. *)
            finish st p ~syscall:"close" ~args:(args_of fd) ~ret:0 ~errno:None
              ~paths:(match info.Event.path with Some p -> [ p ] | None -> [])
              ~fds:[ info ] ()
          else fail ~syscall:"close" ~args:(args_of fd) Errno.EBADF)
  | Syscall.Dup { fd = r; ret } -> (
      match Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) with
      | None -> fail ~syscall:"dup" ~args:[ ("oldfd", "-1") ] Errno.EBADF
      | Some (fd, entry) ->
          (* fd duplication is process-local state: no LSM hook fires. *)
          let nfd = Process.alloc_fd p ~ino:entry.Process.ino ~flags:entry.Process.flags in
          bind_reg st ret nfd;
          finish st p ~syscall:"dup"
            ~args:[ ("oldfd", string_of_int fd) ]
            ~ret:nfd ~errno:None
            ~fds:[ fd_info st p fd; fd_info st p nfd ]
            ())
  | Syscall.Dup2 { fd = r; newfd; ret } | Syscall.Dup3 { fd = r; newfd; ret } -> (
      let syscall = match call with Syscall.Dup3 _ -> "dup3" | _ -> "dup2" in
      match Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) with
      | None -> fail ~syscall ~args:[ ("oldfd", "-1") ] Errno.EBADF
      | Some (fd, entry) ->
          Process.install_fd p newfd ~ino:entry.Process.ino ~flags:entry.Process.flags;
          bind_reg st ret newfd;
          finish st p ~syscall
            ~args:[ ("oldfd", string_of_int fd); ("newfd", string_of_int newfd) ]
            ~ret:newfd ~errno:None
            ~fds:[ fd_info st p fd; fd_info st p newfd ]
            ())
  | Syscall.Link { old_path; new_path } | Syscall.Linkat { old_path; new_path } ->
      let syscall = match call with Syscall.Linkat _ -> "linkat" | _ -> "link" in
      let args = [ ("oldname", old_path); ("newname", new_path) ] in
      let paths = [ old_path; new_path ] in
      if not (Fs.may_modify_dir_of st.fs new_path cred) then
        path_op_denied st p ~syscall ~hook:"inode_link" ~args ~paths ~kind:"file" ~path:old_path
      else (
        match Fs.link st.fs ~old_path ~new_path with
        | Error e -> fail ~syscall ~args ~paths e
        | Ok inode ->
            emit_lsm st p ~hook:"inode_link" ~obj:(inode_obj st inode)
              ~extra:[ ("new_path", new_path) ] ~allowed:true ();
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths ())
  | Syscall.Symlink { target; link_path } | Syscall.Symlinkat { target; link_path } -> (
      let syscall = match call with Syscall.Symlinkat _ -> "symlinkat" | _ -> "symlink" in
      let args = [ ("oldname", target); ("newname", link_path) ] in
      let paths = [ link_path ] in
      if not (Fs.may_modify_dir_of st.fs link_path cred) then
        path_op_denied st p ~syscall ~hook:"inode_symlink" ~args ~paths ~kind:"symlink"
          ~path:link_path
      else
        match
          Fs.symlink st.fs ~target ~link_path ~uid:cred.Cred.euid ~gid:cred.Cred.egid
        with
        | Error e -> fail ~syscall ~args ~paths e
        | Ok inode ->
            emit_lsm st p ~hook:"inode_symlink" ~obj:(inode_obj st inode)
              ~extra:[ ("target", target) ] ~allowed:true ();
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths ())
  | Syscall.Mknod { path } | Syscall.Mknodat { path } -> (
      let syscall = match call with Syscall.Mknodat _ -> "mknodat" | _ -> "mknod" in
      let args = [ ("filename", path); ("mode", "S_IFIFO|0644") ] in
      if not (Fs.may_modify_dir_of st.fs path cred) then
        path_op_denied st p ~syscall ~hook:"inode_mknod" ~args ~paths:[ path ] ~kind:"fifo" ~path
      else
        match
          Fs.mknod_at st.fs ~path ~ftype:Fs.Fifo ~mode:0o644 ~uid:cred.Cred.euid
            ~gid:cred.Cred.egid
        with
        | Error e -> fail ~syscall ~args ~paths:[ path ] e
        | Ok inode ->
            emit_lsm st p ~hook:"inode_mknod" ~obj:(inode_obj st inode) ~allowed:true ();
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths:[ path ] ())
  | Syscall.Read { fd; count } -> exec_rw st p ~syscall:"read" ~fd_reg:fd ~count ~write:false
  | Syscall.Pread { fd; count; offset = _ } ->
      exec_rw st p ~syscall:"pread" ~fd_reg:fd ~count ~write:false
  | Syscall.Write { fd; count } -> exec_rw st p ~syscall:"write" ~fd_reg:fd ~count ~write:true
  | Syscall.Pwrite { fd; count; offset = _ } ->
      exec_rw st p ~syscall:"pwrite" ~fd_reg:fd ~count ~write:true
  | Syscall.Rename { old_path; new_path } | Syscall.Renameat { old_path; new_path } -> (
      let syscall = match call with Syscall.Renameat _ -> "renameat" | _ -> "rename" in
      let args = [ ("oldname", old_path); ("newname", new_path) ] in
      let paths = [ old_path; new_path ] in
      let allowed =
        Fs.may_modify_dir_of st.fs old_path cred && Fs.may_modify_dir_of st.fs new_path cred
      in
      if not allowed then
        path_op_denied st p ~syscall ~hook:"inode_rename" ~args ~paths ~kind:"file" ~path:old_path
      else
        match Fs.rename st.fs ~old_path ~new_path with
        | Error e -> fail ~syscall ~args ~paths e
        | Ok inode ->
            emit_lsm st p ~hook:"inode_rename" ~obj:(inode_obj st inode)
              ~extra:[ ("old_path", old_path); ("new_path", new_path) ]
              ~allowed:true ();
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths ())
  | Syscall.Truncate { path; length } -> (
      let args = [ ("path", path); ("length", string_of_int length) ] in
      match Fs.resolve st.fs path with
      | None -> fail ~syscall:"truncate" ~args ~paths:[ path ] Errno.ENOENT
      | Some inode ->
          let allowed = Fs.may_write inode cred in
          emit_lsm st p ~hook:"file_truncate" ~obj:(inode_obj st inode) ~allowed ();
          if not allowed then fail ~syscall:"truncate" ~args ~paths:[ path ] Errno.EACCES
          else (
            ignore (Fs.truncate st.fs path ~length);
            finish st p ~syscall:"truncate" ~args ~ret:0 ~errno:None ~paths:[ path ] ()))
  | Syscall.Ftruncate { fd = r; length } -> (
      let args = [ ("length", string_of_int length) ] in
      match Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) with
      | None -> fail ~syscall:"ftruncate" ~args Errno.EBADF
      | Some (fd, entry) ->
          (match Fs.find_inode st.fs entry.Process.ino with
          | Some inode ->
              emit_lsm st p ~hook:"file_truncate" ~obj:(inode_obj st inode) ~allowed:true ();
              inode.Fs.size <- length;
              inode.Fs.version <- inode.Fs.version + 1
          | None -> ());
          finish st p ~syscall:"ftruncate"
            ~args:(("fd", string_of_int fd) :: args)
            ~ret:0 ~errno:None ~fds:[ fd_info st p fd ] ())
  | Syscall.Unlink { path } | Syscall.Unlinkat { path } -> (
      let syscall = match call with Syscall.Unlinkat _ -> "unlinkat" | _ -> "unlink" in
      let args = [ ("pathname", path) ] in
      if not (Fs.may_modify_dir_of st.fs path cred) then
        path_op_denied st p ~syscall ~hook:"inode_unlink" ~args ~paths:[ path ] ~kind:"file" ~path
      else
        match Fs.lookup st.fs path with
        | None -> fail ~syscall ~args ~paths:[ path ] Errno.ENOENT
        | Some inode ->
            emit_lsm st p ~hook:"inode_unlink" ~obj:(inode_obj st inode) ~allowed:true ();
            (match Fs.unlink st.fs path with
            | Ok _ -> finish st p ~syscall ~args ~ret:0 ~errno:None ~paths:[ path ] ()
            | Error e -> fail ~syscall ~args ~paths:[ path ] e))
  | Syscall.Clone -> exec_fork st p ~syscall:"clone"
  | Syscall.Fork -> exec_fork st p ~syscall:"fork"
  | Syscall.Vfork -> exec_fork st p ~syscall:"vfork"
  | Syscall.Execve { path } -> exec_execve st p ~path
  | Syscall.Exit { status } ->
      p.Process.alive <- false;
      p.Process.exit_status <- Some status;
      emit_lsm st p ~hook:"task_free" ~obj:(Event.Obj_process { pid = p.Process.pid })
        ~allowed:true ();
      emit_audit st p ~syscall:"exit" ~args:[ ("status", string_of_int status) ] ~ret:status
        ~errno:None ~paths:[] ~fds:[];
      (status, None)
  | Syscall.Kill { signal } ->
      (* The benchmark process signals itself with a fatal signal: it is
         torn down before the syscall exit is logged, so no record
         reaches any stream — the "limitation in ProvMark" (LP) cases of
         Table 2. *)
      p.Process.alive <- false;
      p.Process.exit_status <- Some (128 + signal);
      emit_lsm st p ~hook:"task_free" ~obj:(Event.Obj_process { pid = p.Process.pid })
        ~allowed:true ();
      (0, None)
  | Syscall.Chmod { path; mode } | Syscall.Fchmodat { path; mode } -> (
      let syscall = match call with Syscall.Fchmodat _ -> "fchmodat" | _ -> "chmod" in
      let args = [ ("filename", path); ("mode", Printf.sprintf "0%o" mode) ] in
      match Fs.resolve st.fs path with
      | None -> fail ~syscall ~args ~paths:[ path ] Errno.ENOENT
      | Some inode ->
          let allowed = Cred.is_root cred || inode.Fs.uid = cred.Cred.euid in
          emit_lsm st p ~hook:"inode_setattr" ~obj:(inode_obj st inode)
            ~extra:[ ("attr", "mode"); ("mode", Printf.sprintf "0%o" mode) ]
            ~allowed ();
          if not allowed then fail ~syscall ~args ~paths:[ path ] Errno.EPERM
          else (
            ignore (Fs.chmod st.fs path ~mode);
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths:[ path ] ()))
  | Syscall.Fchmod { fd = r; mode } -> (
      let args = [ ("mode", Printf.sprintf "0%o" mode) ] in
      match Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) with
      | None -> fail ~syscall:"fchmod" ~args Errno.EBADF
      | Some (fd, entry) ->
          (match Fs.find_inode st.fs entry.Process.ino with
          | Some inode ->
              emit_lsm st p ~hook:"inode_setattr" ~obj:(inode_obj st inode)
                ~extra:[ ("attr", "mode") ] ~allowed:true ();
              inode.Fs.mode <- mode
          | None -> ());
          finish st p ~syscall:"fchmod"
            ~args:(("fd", string_of_int fd) :: args)
            ~ret:0 ~errno:None ~fds:[ fd_info st p fd ] ())
  | Syscall.Chown { path; uid; gid } | Syscall.Fchownat { path; uid; gid } -> (
      let syscall = match call with Syscall.Fchownat _ -> "fchownat" | _ -> "chown" in
      let args =
        [ ("filename", path); ("user", string_of_int uid); ("group", string_of_int gid) ]
      in
      match Fs.resolve st.fs path with
      | None -> fail ~syscall ~args ~paths:[ path ] Errno.ENOENT
      | Some inode ->
          (* Only root may change the owner; the owner may change the
             group (to one of their groups — simplified). *)
          let allowed =
            Cred.is_root cred || (inode.Fs.uid = cred.Cred.euid && (uid = -1 || uid = inode.Fs.uid))
          in
          emit_lsm st p ~hook:"inode_setattr" ~obj:(inode_obj st inode)
            ~extra:[ ("attr", "owner") ] ~allowed ();
          if not allowed then fail ~syscall ~args ~paths:[ path ] Errno.EPERM
          else (
            ignore (Fs.chown st.fs path ~uid ~gid);
            finish st p ~syscall ~args ~ret:0 ~errno:None ~paths:[ path ] ()))
  | Syscall.Fchown { fd = r; uid; gid } -> (
      let args = [ ("user", string_of_int uid); ("group", string_of_int gid) ] in
      match Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) with
      | None -> fail ~syscall:"fchown" ~args Errno.EBADF
      | Some (fd, entry) ->
          (match Fs.find_inode st.fs entry.Process.ino with
          | Some inode ->
              emit_lsm st p ~hook:"inode_setattr" ~obj:(inode_obj st inode)
                ~extra:[ ("attr", "owner") ] ~allowed:true ();
              if uid >= 0 then inode.Fs.uid <- uid;
              if gid >= 0 then inode.Fs.gid <- gid
          | None -> ());
          finish st p ~syscall:"fchown"
            ~args:(("fd", string_of_int fd) :: args)
            ~ret:0 ~errno:None ~fds:[ fd_info st p fd ] ())
  | Syscall.Setuid { uid } ->
      exec_setcred st p ~syscall:"setuid"
        ~args:[ ("uid", string_of_int uid) ]
        ~apply:(fun c -> Cred.setuid c uid)
        ~hook:"task_fix_setuid"
  | Syscall.Setgid { gid } ->
      exec_setcred st p ~syscall:"setgid"
        ~args:[ ("gid", string_of_int gid) ]
        ~apply:(fun c -> Cred.setgid c gid)
        ~hook:"task_fix_setgid"
  | Syscall.Setreuid { ruid; euid } ->
      exec_setcred st p ~syscall:"setreuid"
        ~args:[ ("ruid", string_of_int ruid); ("euid", string_of_int euid) ]
        ~apply:(fun c -> Cred.setreuid c ruid euid)
        ~hook:"task_fix_setuid"
  | Syscall.Setregid { rgid; egid } ->
      exec_setcred st p ~syscall:"setregid"
        ~args:[ ("rgid", string_of_int rgid); ("egid", string_of_int egid) ]
        ~apply:(fun c -> Cred.setregid c rgid egid)
        ~hook:"task_fix_setgid"
  | Syscall.Setresuid { ruid; euid; suid } ->
      exec_setcred st p ~syscall:"setresuid"
        ~args:
          [
            ("ruid", string_of_int ruid); ("euid", string_of_int euid); ("suid", string_of_int suid);
          ]
        ~apply:(fun c -> Cred.setresuid c ruid euid suid)
        ~hook:"task_fix_setuid"
  | Syscall.Setresgid { rgid; egid; sgid } ->
      exec_setcred st p ~syscall:"setresgid"
        ~args:
          [
            ("rgid", string_of_int rgid); ("egid", string_of_int egid); ("sgid", string_of_int sgid);
          ]
        ~apply:(fun c -> Cred.setresgid c rgid egid sgid)
        ~hook:"task_fix_setgid"
  | Syscall.Pipe { ret_read; ret_write } | Syscall.Pipe2 { ret_read; ret_write } ->
      let syscall = match call with Syscall.Pipe2 _ -> "pipe2" | _ -> "pipe" in
      let inode = Fs.make_pipe st.fs in
      emit_lsm st p ~hook:"inode_alloc" ~obj:(inode_obj st inode) ~allowed:true ();
      let rfd = Process.alloc_fd p ~ino:inode.Fs.ino ~flags:[ Syscall.O_RDONLY ] in
      let wfd = Process.alloc_fd p ~ino:inode.Fs.ino ~flags:[ Syscall.O_WRONLY ] in
      bind_reg st ret_read rfd;
      bind_reg st ret_write wfd;
      finish st p ~syscall
        ~args:[ ("fds", Printf.sprintf "[%d,%d]" rfd wfd) ]
        ~ret:0 ~errno:None
        ~fds:[ fd_info st p rfd; fd_info st p wfd ]
        ()
  | Syscall.Tee { fd_in; fd_out } -> (
      let resolve r = Option.bind (reg st r) (fun fd -> Option.map (fun e -> (fd, e)) (Process.find_fd p fd)) in
      match (resolve fd_in, resolve fd_out) with
      | Some (ifd, ientry), Some (ofd, oentry) ->
          (match (Fs.find_inode st.fs ientry.Process.ino, Fs.find_inode st.fs oentry.Process.ino) with
          | Some iin, Some iout ->
              emit_lsm st p ~hook:"file_permission" ~obj:(inode_obj st iin)
                ~extra:[ ("mode", "MAY_READ") ] ~allowed:true ();
              emit_lsm st p ~hook:"file_permission" ~obj:(inode_obj st iout)
                ~extra:[ ("mode", "MAY_WRITE") ] ~allowed:true ();
              iout.Fs.size <- iout.Fs.size + 16;
              iout.Fs.version <- iout.Fs.version + 1
          | _ -> ());
          finish st p ~syscall:"tee"
            ~args:[ ("fd_in", string_of_int ifd); ("fd_out", string_of_int ofd); ("len", "16") ]
            ~ret:16 ~errno:None
            ~fds:[ fd_info st p ifd; fd_info st p ofd ]
            ()
      | _ -> fail ~syscall:"tee" ~args:[] Errno.EBADF)

(* ------------------------------------------------------------------ *)
(* Run orchestration                                                   *)
(* ------------------------------------------------------------------ *)

let system_files st =
  let root file mode = ignore (Fs.mkfile st.fs ~path:file ~mode ~uid:0 ~gid:0) in
  root "/bin/bash" 0o755;
  root "/lib/x86_64-linux-gnu/libc.so.6" 0o755;
  root "/etc/passwd" 0o644;
  root "/etc/shadow" 0o600

let stage_program st (prog : Program.t) =
  List.iter
    (fun (f : Program.staged_file) ->
      let ftype = match f.Program.sf_kind with `File -> Fs.Regular | `Fifo -> Fs.Fifo in
      ignore
        (Fs.mknod_at st.fs ~path:f.Program.sf_path ~ftype ~mode:f.Program.sf_mode
           ~uid:f.Program.sf_uid ~gid:f.Program.sf_gid))
    prog.Program.staging

let default_env prng =
  [
    ("PATH", "/usr/local/bin:/usr/bin:/bin");
    ("HOME", "/home/user");
    ("LANG", "en_US.UTF-8");
    ("SHELL", "/bin/bash");
    ("USER", "user");
    ("PWD", "/staging");
    ("TERM", "xterm-256color");
    ("LOGNAME", "user");
    (* Session-scoped values: different on every run, the transient data
       OPUS faithfully records and generalization must strip. *)
    ("XDG_SESSION_ID", string_of_int (100 + Prng.int prng 900));
    ("SSH_TTY", "/dev/pts/" ^ string_of_int (Prng.int prng 16));
  ]

let exe_path = "/staging/bench"

let run ?(uid = default_uid) ?(gid = default_gid) ~run_id (prog : Program.t) variant =
  let prng = Prng.create ~seed:(Int64.of_int ((run_id * 2654435761) + 97)) in
  let st =
    {
      fs = Fs.create ~first_ino:(100 + Prng.int prng 900) ();
      procs = Hashtbl.create 8;
      clock = 1_600_000_000 + (Prng.int prng 100_000 * 10);
      next_pid = 1_000 + Prng.int prng 20_000;
      (* Audit event ids count up from boot; each run resumes at a
         different point, so they are transient like timestamps. *)
      seq = Prng.int prng 1_000_000;
      audit = [];
      libc = [];
      lsm = [];
      regs = Hashtbl.create 8;
    }
  in
  system_files st;
  (* The staging directory belongs to the benchmark user so file
     creation, renaming and deletion inside it succeed. *)
  ignore (Fs.mkdir st.fs ~path:"/staging" ~mode:0o755 ~uid ~gid);
  ignore (Fs.mkfile st.fs ~path:exe_path ~mode:0o755 ~uid ~gid);
  stage_program st prog;
  (* Shell parent process. *)
  let shell_pid = st.next_pid in
  st.next_pid <- shell_pid + 1;
  let shell =
    Process.create ~pid:shell_pid ~ppid:1 ~comm:"bash" ~exe:"/bin/bash"
      ~cred:(Cred.make ~uid ~gid)
  in
  Hashtbl.replace st.procs shell_pid shell;
  (* Boilerplate: shell forks the benchmark process... *)
  let bench_pid = st.next_pid in
  st.next_pid <- bench_pid + 1;
  let bench = Process.fork_into shell ~pid:bench_pid in
  (match prog.Program.cred with Some c -> bench.Process.cred <- c | None -> ());
  Hashtbl.replace st.procs bench_pid bench;
  shell.Process.last_child <- Some bench_pid;
  emit_lsm st shell ~hook:"task_alloc" ~obj:(Event.Obj_process { pid = bench_pid }) ~allowed:true ();
  emit_audit st shell ~syscall:"fork" ~args:[] ~ret:bench_pid ~errno:None ~paths:[] ~fds:[];
  (* ...which execs the benchmark binary (including loader activity)... *)
  ignore (exec_execve st bench ~path:exe_path);
  (* ...runs the selected program body... *)
  List.iter
    (fun call -> if bench.Process.alive then ignore (exec_call st bench call))
    (Program.body prog variant);
  (* ...and exits (implicitly, unless the program already terminated). *)
  if bench.Process.alive then ignore (exec_call st bench (Syscall.Exit { status = 0 }));
  {
    Trace.run_id;
    monitored_pid = bench_pid;
    shell_pid;
    exe_path;
    boot_id = Prng.hex_token prng;
    base_time = st.clock;
    env = default_env prng;
    audit = List.rev st.audit;
    libc = List.rev st.libc;
    lsm = List.rev st.lsm;
  }
