(** The kernel simulator: executes a benchmark program variant and
    produces the three observation streams.

    Each run simulates the full process life cycle the paper describes as
    "boilerplate" background activity: a shell process forks the
    benchmark process, which [execve]s the benchmark binary, the loader
    opens and maps the C library, the program body runs, and the process
    exits.  Foreground and background variants therefore share identical
    boilerplate, differing exactly in the target section.

    Transient values (timestamps, pids, inode numbers, the boot id) are
    derived from [run_id]; two runs with the same [run_id] are
    bit-identical, two runs with different [run_id]s differ in all
    transient values, exactly the reproducibility challenge ProvMark's
    generalization stage addresses (Section 3.4). *)

(** Default credentials of the monitored process (an unprivileged user). *)
val default_uid : int

val default_gid : int

(** [run ?uid ?gid ~run_id program variant] executes the program variant
    and returns the recorded trace.  The staging directory is populated
    from [program.staging] before the run; system files ([/etc/passwd],
    [/bin/bash], [/lib/libc.so.6], the benchmark binary) are always
    present. *)
val run : ?uid:int -> ?gid:int -> run_id:int -> Program.t -> Program.variant -> Trace.t
