type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create ~seed:(next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.0

let hex_token t = Printf.sprintf "%08Lx" (Int64.logand (next_int64 t) 0xFFFFFFFFL)
