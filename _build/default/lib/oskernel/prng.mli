(** Deterministic pseudo-random number generator (splitmix64).

    Every source of run-to-run variation in the simulator — transient
    identifiers, timestamp jitter, injected flaky runs — draws from a
    [Prng.t] seeded from the trial number, so experiments are exactly
    reproducible while still varying across trials the way real
    provenance recorders do. *)

type t

val create : seed:int64 -> t

(** Derive an independent stream, e.g. one per trial. *)
val split : t -> t

val next_int64 : t -> int64

(** [int t bound] draws uniformly from [0, bound). *)
val int : t -> int -> int

(** [float t] draws uniformly from [0, 1). *)
val float : t -> float

(** Eight-hex-digit token, for transient identifiers. *)
val hex_token : t -> string
