type fd_entry = {
  ino : int;
  flags : Syscall.open_flag list;
  mutable offset : int;
}

type t = {
  pid : int;
  ppid : int;
  mutable comm : string;
  mutable exe : string;
  mutable cred : Cred.t;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable alive : bool;
  mutable exit_status : int option;
  mutable last_child : int option;
}

let create ~pid ~ppid ~comm ~exe ~cred =
  {
    pid;
    ppid;
    comm;
    exe;
    cred;
    fds = Hashtbl.create 8;
    next_fd = 3;  (* 0-2 are stdio *)
    alive = true;
    exit_status = None;
    last_child = None;
  }

let alloc_fd p ~ino ~flags =
  let rec free n = if Hashtbl.mem p.fds n then free (n + 1) else n in
  let fd = free p.next_fd in
  Hashtbl.replace p.fds fd { ino; flags; offset = 0 };
  fd

let install_fd p fd ~ino ~flags = Hashtbl.replace p.fds fd { ino; flags; offset = 0 }

let find_fd p fd = Hashtbl.find_opt p.fds fd

let close_fd p fd =
  if Hashtbl.mem p.fds fd then (
    Hashtbl.remove p.fds fd;
    true)
  else false

let fork_into parent ~pid =
  let child = create ~pid ~ppid:parent.pid ~comm:parent.comm ~exe:parent.exe ~cred:parent.cred in
  Hashtbl.iter
    (fun fd entry -> Hashtbl.replace child.fds fd { entry with offset = entry.offset })
    parent.fds;
  child.next_fd <- parent.next_fd;
  child
