(** Simulated processes: identity, credentials, and the per-process file
    descriptor table. *)

type fd_entry = {
  ino : int;
  flags : Syscall.open_flag list;
  mutable offset : int;
}

type t = {
  pid : int;
  ppid : int;
  mutable comm : string;
  mutable exe : string;
  mutable cred : Cred.t;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable alive : bool;
  mutable exit_status : int option;
  mutable last_child : int option;  (** pid of the most recently forked child *)
}

val create : pid:int -> ppid:int -> comm:string -> exe:string -> cred:Cred.t -> t

(** Allocate the lowest unused descriptor number ≥ [next_fd]. *)
val alloc_fd : t -> ino:int -> flags:Syscall.open_flag list -> int

(** Install an entry at a specific descriptor number (for [dup2]/[dup3]),
    silently replacing any previous entry, as the kernel does. *)
val install_fd : t -> int -> ino:int -> flags:Syscall.open_flag list -> unit

val find_fd : t -> int -> fd_entry option

val close_fd : t -> int -> bool

(** Duplicate the fd table into a forked child. *)
val fork_into : t -> pid:int -> t
