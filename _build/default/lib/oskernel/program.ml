type staged_file = {
  sf_path : string;
  sf_mode : int;
  sf_uid : int;
  sf_gid : int;
  sf_kind : [ `File | `Fifo ];
}

type t = {
  name : string;
  syscall : string;
  staging : staged_file list;
  setup : Syscall.t list;
  target : Syscall.t list;
  cred : Cred.t option;
}

type variant = Background | Foreground

let body t = function
  | Background -> t.setup
  | Foreground -> t.setup @ t.target

let staged_file ?(mode = 0o644) ?(uid = 1000) ?(gid = 1000) ?(kind = `File) sf_path =
  { sf_path; sf_mode = mode; sf_uid = uid; sf_gid = gid; sf_kind = kind }

let make ~name ~syscall ?(staging = []) ?(setup = []) ?cred ~target () =
  { name; syscall; staging; setup; target; cred }
