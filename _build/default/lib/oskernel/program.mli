(** Benchmark programs.

    A program mirrors the paper's C benchmark layout (Section 3): a
    [setup] prefix that establishes the context (e.g. the [open] before a
    [close]), and a [target] section corresponding to the
    [#ifdef TARGET] region.  The {e background} variant runs only the
    setup; the {e foreground} variant runs setup followed by target.
    [staging] lists filesystem objects that the staging directory must
    contain before the run (e.g. the file an [unlink] benchmark
    deletes). *)

type staged_file = {
  sf_path : string;
  sf_mode : int;
  sf_uid : int;
  sf_gid : int;
  sf_kind : [ `File | `Fifo ];
}

type t = {
  name : string;  (** benchmark identifier, e.g. ["cmdCreat"] *)
  syscall : string;  (** the syscall family being benchmarked *)
  staging : staged_file list;
  setup : Syscall.t list;
  target : Syscall.t list;
  cred : Cred.t option;
      (** starting credentials of the benchmark process; [None] means the
          default unprivileged user.  The [setres*id] benchmarks use a
          saved id differing from the effective one so the target call
          performs an actual transition. *)
}

type variant = Background | Foreground

(** The syscalls actually executed for a given variant. *)
val body : t -> variant -> Syscall.t list

val staged_file : ?mode:int -> ?uid:int -> ?gid:int -> ?kind:[ `File | `Fifo ] -> string -> staged_file

val make :
  name:string -> syscall:string -> ?staging:staged_file list -> ?setup:Syscall.t list ->
  ?cred:Cred.t -> target:Syscall.t list -> unit -> t
