type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

type t =
  | Open of { path : string; flags : open_flag list; ret : string }
  | Openat of { path : string; flags : open_flag list; ret : string }
  | Creat of { path : string; ret : string }
  | Close of string
  | Dup of { fd : string; ret : string }
  | Dup2 of { fd : string; newfd : int; ret : string }
  | Dup3 of { fd : string; newfd : int; ret : string }
  | Link of { old_path : string; new_path : string }
  | Linkat of { old_path : string; new_path : string }
  | Symlink of { target : string; link_path : string }
  | Symlinkat of { target : string; link_path : string }
  | Mknod of { path : string }
  | Mknodat of { path : string }
  | Read of { fd : string; count : int }
  | Pread of { fd : string; count : int; offset : int }
  | Write of { fd : string; count : int }
  | Pwrite of { fd : string; count : int; offset : int }
  | Rename of { old_path : string; new_path : string }
  | Renameat of { old_path : string; new_path : string }
  | Truncate of { path : string; length : int }
  | Ftruncate of { fd : string; length : int }
  | Unlink of { path : string }
  | Unlinkat of { path : string }
  | Clone
  | Execve of { path : string }
  | Exit of { status : int }
  | Fork
  | Vfork
  | Kill of { signal : int }
  | Chmod of { path : string; mode : int }
  | Fchmod of { fd : string; mode : int }
  | Fchmodat of { path : string; mode : int }
  | Chown of { path : string; uid : int; gid : int }
  | Fchown of { fd : string; uid : int; gid : int }
  | Fchownat of { path : string; uid : int; gid : int }
  | Setgid of { gid : int }
  | Setregid of { rgid : int; egid : int }
  | Setresgid of { rgid : int; egid : int; sgid : int }
  | Setuid of { uid : int }
  | Setreuid of { ruid : int; euid : int }
  | Setresuid of { ruid : int; euid : int; suid : int }
  | Pipe of { ret_read : string; ret_write : string }
  | Pipe2 of { ret_read : string; ret_write : string }
  | Tee of { fd_in : string; fd_out : string }

let name = function
  | Open _ -> "open"
  | Openat _ -> "openat"
  | Creat _ -> "creat"
  | Close _ -> "close"
  | Dup _ -> "dup"
  | Dup2 _ -> "dup2"
  | Dup3 _ -> "dup3"
  | Link _ -> "link"
  | Linkat _ -> "linkat"
  | Symlink _ -> "symlink"
  | Symlinkat _ -> "symlinkat"
  | Mknod _ -> "mknod"
  | Mknodat _ -> "mknodat"
  | Read _ -> "read"
  | Pread _ -> "pread"
  | Write _ -> "write"
  | Pwrite _ -> "pwrite"
  | Rename _ -> "rename"
  | Renameat _ -> "renameat"
  | Truncate _ -> "truncate"
  | Ftruncate _ -> "ftruncate"
  | Unlink _ -> "unlink"
  | Unlinkat _ -> "unlinkat"
  | Clone -> "clone"
  | Execve _ -> "execve"
  | Exit _ -> "exit"
  | Fork -> "fork"
  | Vfork -> "vfork"
  | Kill _ -> "kill"
  | Chmod _ -> "chmod"
  | Fchmod _ -> "fchmod"
  | Fchmodat _ -> "fchmodat"
  | Chown _ -> "chown"
  | Fchown _ -> "fchown"
  | Fchownat _ -> "fchownat"
  | Setgid _ -> "setgid"
  | Setregid _ -> "setregid"
  | Setresgid _ -> "setresgid"
  | Setuid _ -> "setuid"
  | Setreuid _ -> "setreuid"
  | Setresuid _ -> "setresuid"
  | Pipe _ -> "pipe"
  | Pipe2 _ -> "pipe2"
  | Tee _ -> "tee"

let group = function
  | Open _ | Openat _ | Creat _ | Close _ | Dup _ | Dup2 _ | Dup3 _ | Link _ | Linkat _
  | Symlink _ | Symlinkat _ | Mknod _ | Mknodat _ | Read _ | Pread _ | Write _ | Pwrite _
  | Rename _ | Renameat _ | Truncate _ | Ftruncate _ | Unlink _ | Unlinkat _ -> 1
  | Clone | Execve _ | Exit _ | Fork | Vfork | Kill _ -> 2
  | Chmod _ | Fchmod _ | Fchmodat _ | Chown _ | Fchown _ | Fchownat _ | Setgid _ | Setregid _
  | Setresgid _ | Setuid _ | Setreuid _ | Setresuid _ -> 3
  | Pipe _ | Pipe2 _ | Tee _ -> 4

(* Table 2 order. *)
let all_names =
  [
    "close"; "creat"; "dup"; "dup2"; "dup3"; "link"; "linkat"; "symlink"; "symlinkat";
    "mknod"; "mknodat"; "open"; "openat"; "read"; "pread"; "rename"; "renameat";
    "truncate"; "ftruncate"; "unlink"; "unlinkat"; "write"; "pwrite";
    "clone"; "execve"; "exit"; "fork"; "kill"; "vfork";
    "chmod"; "fchmod"; "fchmodat"; "chown"; "fchown"; "fchownat";
    "setgid"; "setregid"; "setresgid"; "setuid"; "setreuid"; "setresuid";
    "pipe"; "pipe2"; "tee";
  ]

let pp ppf t = Format.pp_print_string ppf (name t)
