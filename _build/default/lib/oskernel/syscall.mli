(** The system calls covered by the benchmark suite (paper Table 1):
    22 families, 43 concrete calls across four groups (files, processes,
    permissions, pipes).

    File descriptors are referred to by symbolic register names bound by
    the call that produced them (mirroring the C benchmark programs,
    e.g. [int id = open(...); close(id);]). *)

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

type t =
  (* Group 1: files *)
  | Open of { path : string; flags : open_flag list; ret : string }
  | Openat of { path : string; flags : open_flag list; ret : string }
  | Creat of { path : string; ret : string }
  | Close of string
  | Dup of { fd : string; ret : string }
  | Dup2 of { fd : string; newfd : int; ret : string }
  | Dup3 of { fd : string; newfd : int; ret : string }
  | Link of { old_path : string; new_path : string }
  | Linkat of { old_path : string; new_path : string }
  | Symlink of { target : string; link_path : string }
  | Symlinkat of { target : string; link_path : string }
  | Mknod of { path : string }
  | Mknodat of { path : string }
  | Read of { fd : string; count : int }
  | Pread of { fd : string; count : int; offset : int }
  | Write of { fd : string; count : int }
  | Pwrite of { fd : string; count : int; offset : int }
  | Rename of { old_path : string; new_path : string }
  | Renameat of { old_path : string; new_path : string }
  | Truncate of { path : string; length : int }
  | Ftruncate of { fd : string; length : int }
  | Unlink of { path : string }
  | Unlinkat of { path : string }
  (* Group 2: processes *)
  | Clone
  | Execve of { path : string }
  | Exit of { status : int }
  | Fork
  | Vfork
  | Kill of { signal : int }  (** sent to the most recently forked child *)
  (* Group 3: permissions *)
  | Chmod of { path : string; mode : int }
  | Fchmod of { fd : string; mode : int }
  | Fchmodat of { path : string; mode : int }
  | Chown of { path : string; uid : int; gid : int }
  | Fchown of { fd : string; uid : int; gid : int }
  | Fchownat of { path : string; uid : int; gid : int }
  | Setgid of { gid : int }
  | Setregid of { rgid : int; egid : int }
  | Setresgid of { rgid : int; egid : int; sgid : int }
  | Setuid of { uid : int }
  | Setreuid of { ruid : int; euid : int }
  | Setresuid of { ruid : int; euid : int; suid : int }
  (* Group 4: pipes *)
  | Pipe of { ret_read : string; ret_write : string }
  | Pipe2 of { ret_read : string; ret_write : string }
  | Tee of { fd_in : string; fd_out : string }

(** Kernel-visible syscall name, e.g. ["openat"], ["setresuid"]. *)
val name : t -> string

(** Benchmark group number from Table 1 (1-4). *)
val group : t -> int

(** All 43 syscall names in Table 2 order. *)
val all_names : string list

val pp : Format.formatter -> t -> unit
