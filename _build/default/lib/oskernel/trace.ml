type t = {
  run_id : int;
  monitored_pid : int;
  shell_pid : int;
  exe_path : string;
  boot_id : string;
  base_time : int;
  env : (string * string) list;
  audit : Event.audit_record list;
  libc : Event.libc_record list;
  lsm : Event.lsm_record list;
}

let merged t =
  let items =
    List.map (fun a -> (a.Event.a_seq, Event.Audit a)) t.audit
    @ List.map (fun l -> (l.Event.l_seq, Event.Libc l)) t.libc
    @ List.map (fun s -> (s.Event.s_seq, Event.Lsm s)) t.lsm
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) items)

let audit_count t = List.length t.audit
let libc_count t = List.length t.libc
let lsm_count t = List.length t.lsm

let pp ppf t =
  Format.fprintf ppf "@[<v>run %d (pid %d, boot %s)@,%a@]" t.run_id t.monitored_pid t.boot_id
    (Format.pp_print_list Event.pp) (merged t)
