(** The result of one simulated run: the three observation streams in
    chronological order, plus the per-run transient context that
    provenance recorders fold into their output (and that ProvMark's
    generalization stage must strip back out). *)

type t = {
  run_id : int;
  monitored_pid : int;  (** the benchmark process *)
  shell_pid : int;  (** its parent *)
  exe_path : string;  (** path of the benchmark executable *)
  boot_id : string;  (** per-run transient token *)
  base_time : int;
  env : (string * string) list;
      (** environment of the monitored process (recorded by OPUS) *)
  audit : Event.audit_record list;
  libc : Event.libc_record list;
  lsm : Event.lsm_record list;
}

(** Events of all three streams merged, ordered by sequence number. *)
val merged : t -> Event.t list

val audit_count : t -> int
val libc_count : t -> int
val lsm_count : t -> int

val pp : Format.formatter -> t -> unit
