open Minijson

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let json_int n = Json.Number (float_of_int n)

let json_pairs kvs =
  Json.Array (List.map (fun (k, v) -> Json.Array [ Json.String k; Json.String v ]) kvs)

let json_fd (f : Event.fd_info) =
  Json.Object
    ([ ("fd", json_int f.Event.fd); ("ino", json_int f.Event.ino) ]
    @ match f.Event.path with Some p -> [ ("path", Json.String p) ] | None -> [])

let json_audit (a : Event.audit_record) =
  Json.Object
    [
      ("kind", Json.String "audit");
      ("seq", json_int a.Event.a_seq);
      ("time", json_int a.Event.a_time);
      ("syscall", Json.String a.Event.a_syscall);
      ("args", json_pairs a.Event.a_args);
      ("exit", json_int a.Event.a_exit);
      ("success", Json.Bool a.Event.a_success);
      ("pid", json_int a.Event.a_pid);
      ("ppid", json_int a.Event.a_ppid);
      ("uid", json_int a.Event.a_uid);
      ("euid", json_int a.Event.a_euid);
      ("gid", json_int a.Event.a_gid);
      ("egid", json_int a.Event.a_egid);
      ("comm", Json.String a.Event.a_comm);
      ("exe", Json.String a.Event.a_exe);
      ("paths", Json.Array (List.map (fun p -> Json.String p) a.Event.a_paths));
      ("fds", Json.Array (List.map json_fd a.Event.a_fds));
    ]

let json_libc (l : Event.libc_record) =
  Json.Object
    ([
       ("kind", Json.String "libc");
       ("seq", json_int l.Event.l_seq);
       ("time", json_int l.Event.l_time);
       ("func", Json.String l.Event.l_func);
       ("args", json_pairs l.Event.l_args);
       ("ret", json_int l.Event.l_ret);
       ("pid", json_int l.Event.l_pid);
       ("comm", Json.String l.Event.l_comm);
       ("fds", Json.Array (List.map json_fd l.Event.l_fds));
     ]
    @ match l.Event.l_errno with
      | Some e -> [ ("errno", Json.String (Errno.to_string e)) ]
      | None -> [])

let json_obj = function
  | Event.Obj_inode { ino; path; kind } ->
      Json.Object
        ([ ("type", Json.String "inode"); ("ino", json_int ino); ("inode_kind", Json.String kind) ]
        @ match path with Some p -> [ ("path", Json.String p) ] | None -> [])
  | Event.Obj_process { pid } ->
      Json.Object [ ("type", Json.String "process"); ("pid", json_int pid) ]
  | Event.Obj_cred { uid; gid } ->
      Json.Object [ ("type", Json.String "cred"); ("uid", json_int uid); ("gid", json_int gid) ]

let json_lsm (s : Event.lsm_record) =
  Json.Object
    [
      ("kind", Json.String "lsm");
      ("seq", json_int s.Event.s_seq);
      ("time", json_int s.Event.s_time);
      ("hook", Json.String s.Event.s_hook);
      ("pid", json_int s.Event.s_pid);
      ("obj", json_obj s.Event.s_obj);
      ("extra", json_pairs s.Event.s_extra);
      ("allowed", Json.Bool s.Event.s_allowed);
    ]

let to_json (t : Trace.t) =
  Json.Object
    [
      ("run_id", json_int t.Trace.run_id);
      ("monitored_pid", json_int t.Trace.monitored_pid);
      ("shell_pid", json_int t.Trace.shell_pid);
      ("exe_path", Json.String t.Trace.exe_path);
      ("boot_id", Json.String t.Trace.boot_id);
      ("base_time", json_int t.Trace.base_time);
      ("env", json_pairs t.Trace.env);
      ("audit", Json.Array (List.map json_audit t.Trace.audit));
      ("libc", Json.Array (List.map json_libc t.Trace.libc));
      ("lsm", Json.Array (List.map json_lsm t.Trace.lsm));
    ]

let to_string t = Json.to_string ~pretty:true (to_json t)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let get_int j key =
  match Json.member key j with
  | Json.Number f when Float.is_integer f -> int_of_float f
  | _ -> fail "missing or non-integer field %s" key

let get_str j key =
  match Json.member key j with Json.String s -> s | _ -> fail "missing string field %s" key

let get_bool j key =
  match Json.member key j with Json.Bool b -> b | _ -> fail "missing boolean field %s" key

let get_pairs j key =
  match Json.member key j with
  | Json.Array items ->
      List.map
        (function
          | Json.Array [ Json.String k; Json.String v ] -> (k, v)
          | _ -> fail "malformed pair in %s" key)
        items
  | _ -> fail "missing pair list %s" key

let get_list j key =
  match Json.member key j with Json.Array items -> items | _ -> fail "missing array %s" key

let fd_of_json j =
  {
    Event.fd = get_int j "fd";
    ino = get_int j "ino";
    path = (match Json.member "path" j with Json.String s -> Some s | _ -> None);
  }

let audit_of_json j =
  {
    Event.a_seq = get_int j "seq";
    a_time = get_int j "time";
    a_syscall = get_str j "syscall";
    a_args = get_pairs j "args";
    a_exit = get_int j "exit";
    a_success = get_bool j "success";
    a_pid = get_int j "pid";
    a_ppid = get_int j "ppid";
    a_uid = get_int j "uid";
    a_euid = get_int j "euid";
    a_gid = get_int j "gid";
    a_egid = get_int j "egid";
    a_comm = get_str j "comm";
    a_exe = get_str j "exe";
    a_paths =
      List.map (function Json.String s -> s | _ -> fail "bad path entry") (get_list j "paths");
    a_fds = List.map fd_of_json (get_list j "fds");
  }

let errno_of_string s =
  match s with
  | "EACCES" -> Errno.EACCES
  | "EBADF" -> Errno.EBADF
  | "EEXIST" -> Errno.EEXIST
  | "EINVAL" -> Errno.EINVAL
  | "EISDIR" -> Errno.EISDIR
  | "ENOENT" -> Errno.ENOENT
  | "ENOTDIR" -> Errno.ENOTDIR
  | "EPERM" -> Errno.EPERM
  | "ESRCH" -> Errno.ESRCH
  | other -> fail "unknown errno %s" other

let libc_of_json j =
  {
    Event.l_seq = get_int j "seq";
    l_time = get_int j "time";
    l_func = get_str j "func";
    l_args = get_pairs j "args";
    l_ret = get_int j "ret";
    l_errno =
      (match Json.member "errno" j with Json.String s -> Some (errno_of_string s) | _ -> None);
    l_pid = get_int j "pid";
    l_comm = get_str j "comm";
    l_fds = List.map fd_of_json (get_list j "fds");
  }

let obj_of_json j =
  match get_str j "type" with
  | "inode" ->
      Event.Obj_inode
        {
          ino = get_int j "ino";
          kind = get_str j "inode_kind";
          path = (match Json.member "path" j with Json.String s -> Some s | _ -> None);
        }
  | "process" -> Event.Obj_process { pid = get_int j "pid" }
  | "cred" -> Event.Obj_cred { uid = get_int j "uid"; gid = get_int j "gid" }
  | other -> fail "unknown lsm object type %s" other

let lsm_of_json j =
  {
    Event.s_seq = get_int j "seq";
    s_time = get_int j "time";
    s_hook = get_str j "hook";
    s_pid = get_int j "pid";
    s_obj = obj_of_json (Json.member "obj" j);
    s_extra = get_pairs j "extra";
    s_allowed = get_bool j "allowed";
  }

let of_string text =
  match Json.of_string text with
  | exception Json.Parse_error m -> fail "invalid JSON: %s" m
  | j ->
      {
        Trace.run_id = get_int j "run_id";
        monitored_pid = get_int j "monitored_pid";
        shell_pid = get_int j "shell_pid";
        exe_path = get_str j "exe_path";
        boot_id = get_str j "boot_id";
        base_time = get_int j "base_time";
        env = get_pairs j "env";
        audit = List.map audit_of_json (get_list j "audit");
        libc = List.map libc_of_json (get_list j "libc");
        lsm = List.map lsm_of_json (get_list j "lsm");
      }

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
