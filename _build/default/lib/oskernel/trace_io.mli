(** Serialization of traces, so recorder development can work from
    stored observation streams (the way the original project shipped
    sample results and recorded audit logs) without re-running the
    kernel simulator.

    The on-disk format is a JSON document with the run metadata, the
    environment, and the three event streams; {!of_string} rejects
    malformed or incomplete documents with {!Format_error}. *)

exception Format_error of string

val to_string : Trace.t -> string

val of_string : string -> Trace.t

val save : string -> Trace.t -> unit

val load : string -> Trace.t
