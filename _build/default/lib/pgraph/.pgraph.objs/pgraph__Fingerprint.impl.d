lib/pgraph/fingerprint.ml: Bytes Char Format Graph Int64 List Map Printf String
