lib/pgraph/fingerprint.mli: Format Graph
