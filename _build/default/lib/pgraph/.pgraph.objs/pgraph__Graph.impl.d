lib/pgraph/graph.ml: Format List Map Printf Props String
