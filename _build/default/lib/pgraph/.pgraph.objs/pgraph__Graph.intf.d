lib/pgraph/graph.mli: Format Props
