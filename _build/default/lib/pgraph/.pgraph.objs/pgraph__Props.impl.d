lib/pgraph/props.ml: Format List Map String
