lib/pgraph/props.mli: Format
