lib/pgraph/stats.ml: Format Graph Hashtbl List Map Printf Props String
