lib/pgraph/stats.mli: Format Graph
