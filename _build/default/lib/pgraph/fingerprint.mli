(** Cheap isomorphism-invariant fingerprints for property graphs.

    Two graphs with different fingerprints cannot be similar (isomorphic
    up to properties); equal fingerprints are only a heuristic signal.
    ProvMark's generalization stage uses fingerprints to bucket trial runs
    into candidate similarity classes before invoking the exact solver,
    and the regression-testing use case uses them as a fast change
    detector. *)

type t

(** [of_graph g] computes a fingerprint from label multisets and a
    bounded Weisfeiler–Leman colour refinement of the underlying
    directed labelled graph.  Properties are ignored (similarity is
    shape-only, per Section 3.4). *)
val of_graph : Graph.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Stable hexadecimal rendering, usable as a dictionary key. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit
