module Smap = Map.Make (String)

type node = {
  node_id : string;
  node_label : string;
  node_props : Props.t;
}

type edge = {
  edge_id : string;
  edge_src : string;
  edge_tgt : string;
  edge_label : string;
  edge_props : Props.t;
}

type t = {
  g_nodes : node Smap.t;
  g_edges : edge Smap.t;
}

let empty = { g_nodes = Smap.empty; g_edges = Smap.empty }

let mem_node g id = Smap.mem id g.g_nodes
let mem_edge g id = Smap.mem id g.g_edges

let add_node g ~id ~label ~props =
  if mem_node g id || mem_edge g id then
    invalid_arg (Printf.sprintf "Pgraph.Graph.add_node: duplicate identifier %s" id);
  { g with g_nodes = Smap.add id { node_id = id; node_label = label; node_props = props } g.g_nodes }

let add_edge g ~id ~src ~tgt ~label ~props =
  if mem_node g id || mem_edge g id then
    invalid_arg (Printf.sprintf "Pgraph.Graph.add_edge: duplicate identifier %s" id);
  if not (mem_node g src) then
    invalid_arg (Printf.sprintf "Pgraph.Graph.add_edge: unknown source %s" src);
  if not (mem_node g tgt) then
    invalid_arg (Printf.sprintf "Pgraph.Graph.add_edge: unknown target %s" tgt);
  { g with
    g_edges =
      Smap.add id
        { edge_id = id; edge_src = src; edge_tgt = tgt; edge_label = label; edge_props = props }
        g.g_edges }

let node_count g = Smap.cardinal g.g_nodes
let edge_count g = Smap.cardinal g.g_edges
let size g = node_count g + edge_count g

let find_node g id = Smap.find_opt id g.g_nodes
let find_edge g id = Smap.find_opt id g.g_edges

let nodes g = List.map snd (Smap.bindings g.g_nodes)
let edges g = List.map snd (Smap.bindings g.g_edges)

let node_ids g = List.map fst (Smap.bindings g.g_nodes)
let edge_ids g = List.map fst (Smap.bindings g.g_edges)

let incident_edges g id =
  List.filter (fun e -> String.equal e.edge_src id || String.equal e.edge_tgt id) (edges g)

let out_edges g id = List.filter (fun e -> String.equal e.edge_src id) (edges g)
let in_edges g id = List.filter (fun e -> String.equal e.edge_tgt id) (edges g)

let set_node_props g id props =
  match find_node g id with
  | None -> invalid_arg (Printf.sprintf "Pgraph.Graph.set_node_props: unknown node %s" id)
  | Some n -> { g with g_nodes = Smap.add id { n with node_props = props } g.g_nodes }

let set_edge_props g id props =
  match find_edge g id with
  | None -> invalid_arg (Printf.sprintf "Pgraph.Graph.set_edge_props: unknown edge %s" id)
  | Some e -> { g with g_edges = Smap.add id { e with edge_props = props } g.g_edges }

let remove_edge g id = { g with g_edges = Smap.remove id g.g_edges }

let remove_node g id =
  let g_edges =
    Smap.filter
      (fun _ e -> not (String.equal e.edge_src id || String.equal e.edge_tgt id))
      g.g_edges
  in
  { g_nodes = Smap.remove id g.g_nodes; g_edges }

let map_ids f g =
  let add_n acc n =
    let id = f n.node_id in
    if Smap.mem id acc then invalid_arg "Pgraph.Graph.map_ids: not injective on nodes";
    Smap.add id { n with node_id = id } acc
  in
  let add_e acc e =
    let id = f e.edge_id in
    if Smap.mem id acc then invalid_arg "Pgraph.Graph.map_ids: not injective on edges";
    Smap.add id { e with edge_id = id; edge_src = f e.edge_src; edge_tgt = f e.edge_tgt } acc
  in
  { g_nodes = List.fold_left add_n Smap.empty (nodes g);
    g_edges = List.fold_left add_e Smap.empty (edges g) }

let disjoint_union a b =
  let clash = Smap.exists (fun id _ -> mem_node a id || mem_edge a id) b.g_nodes
              || Smap.exists (fun id _ -> mem_node a id || mem_edge a id) b.g_edges in
  if clash then invalid_arg "Pgraph.Graph.disjoint_union: identifier clash";
  { g_nodes = Smap.union (fun _ n _ -> Some n) a.g_nodes b.g_nodes;
    g_edges = Smap.union (fun _ e _ -> Some e) a.g_edges b.g_edges }

let equal_structure a b =
  Smap.equal
    (fun n m -> String.equal n.node_label m.node_label)
    a.g_nodes b.g_nodes
  && Smap.equal
       (fun e f ->
         String.equal e.edge_label f.edge_label
         && String.equal e.edge_src f.edge_src
         && String.equal e.edge_tgt f.edge_tgt)
       a.g_edges b.g_edges

let equal a b =
  Smap.equal
    (fun n m -> String.equal n.node_label m.node_label && Props.equal n.node_props m.node_props)
    a.g_nodes b.g_nodes
  && Smap.equal
       (fun e f ->
         String.equal e.edge_label f.edge_label
         && String.equal e.edge_src f.edge_src
         && String.equal e.edge_tgt f.edge_tgt
         && Props.equal e.edge_props f.edge_props)
       a.g_edges b.g_edges

let node_label_multiset g = List.sort String.compare (List.map (fun n -> n.node_label) (nodes g))
let edge_label_multiset g = List.sort String.compare (List.map (fun e -> e.edge_label) (edges g))

let dummy_label = "dummy"

let is_dummy n = String.equal n.node_label dummy_label

let subtract_matched g ~matched_nodes ~matched_edges =
  let removed_nodes =
    List.fold_left (fun s id -> Smap.add id () s) Smap.empty matched_nodes
  in
  let removed_edges =
    List.fold_left (fun s id -> Smap.add id () s) Smap.empty matched_edges
  in
  let g_edges = Smap.filter (fun id _ -> not (Smap.mem id removed_edges)) g.g_edges in
  (* A removed node survives as a dummy when a surviving edge still touches
     it: the benchmark result must stay a well-formed graph (Section 3.5). *)
  let needed id =
    Smap.exists
      (fun _ e -> String.equal e.edge_src id || String.equal e.edge_tgt id)
      g_edges
  in
  let g_nodes =
    Smap.filter_map
      (fun id n ->
        if not (Smap.mem id removed_nodes) then Some n
        else if needed id then
          Some { n with node_label = dummy_label; node_props = Props.empty }
        else None)
      g.g_nodes
  in
  { g_nodes; g_edges }

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n -> Format.fprintf ppf "node %s [%s] %a@," n.node_id n.node_label Props.pp n.node_props)
    (nodes g);
  List.iter
    (fun e ->
      Format.fprintf ppf "edge %s: %s -> %s [%s] %a@," e.edge_id e.edge_src e.edge_tgt
        e.edge_label Props.pp e.edge_props)
    (edges g);
  Format.fprintf ppf "@]"

let summary g = Printf.sprintf "%d nodes, %d edges" (node_count g) (edge_count g)
