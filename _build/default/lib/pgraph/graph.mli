(** Property graphs [G = (V, E, src, tgt, lab, prop)] as defined in
    Section 3.3 of the paper.

    Nodes and edges carry string identifiers (disjoint sets), a label from
    the alphabet of node/edge labels, and a property dictionary.  Graphs
    are immutable; all operations return new graphs. *)

type node = {
  node_id : string;
  node_label : string;
  node_props : Props.t;
}

type edge = {
  edge_id : string;
  edge_src : string;
  edge_tgt : string;
  edge_label : string;
  edge_props : Props.t;
}

type t

val empty : t

(** [add_node g ~id ~label ~props] adds a node.  Raises [Invalid_argument]
    if a node or edge with the same identifier already exists. *)
val add_node : t -> id:string -> label:string -> props:Props.t -> t

(** [add_edge g ~id ~src ~tgt ~label ~props] adds an edge.  Raises
    [Invalid_argument] if the identifier is taken or if either endpoint is
    not a node of the graph. *)
val add_edge :
  t -> id:string -> src:string -> tgt:string -> label:string -> props:Props.t -> t

val node_count : t -> int
val edge_count : t -> int

(** Total number of elements (nodes plus edges). *)
val size : t -> int

val mem_node : t -> string -> bool
val mem_edge : t -> string -> bool

val find_node : t -> string -> node option
val find_edge : t -> string -> edge option

val nodes : t -> node list
val edges : t -> edge list

val node_ids : t -> string list
val edge_ids : t -> string list

(** Edges whose source or target is the given node. *)
val incident_edges : t -> string -> edge list

val out_edges : t -> string -> edge list
val in_edges : t -> string -> edge list

val set_node_props : t -> string -> Props.t -> t
val set_edge_props : t -> string -> Props.t -> t

(** [remove_edge g id] removes an edge; removing a missing edge is a no-op. *)
val remove_edge : t -> string -> t

(** [remove_node g id] removes a node and all its incident edges. *)
val remove_node : t -> string -> t

(** [map_ids f g] renames every node and edge identifier through [f],
    which must be injective on the identifiers of [g]. *)
val map_ids : (string -> string) -> t -> t

(** [disjoint_union a b] unions two graphs whose identifier sets must be
    disjoint (raises [Invalid_argument] otherwise). *)
val disjoint_union : t -> t -> t

(** [equal_structure a b] holds when the graphs are identical up to
    property dictionaries (same identifiers, labels and incidences). *)
val equal_structure : t -> t -> bool

(** Full equality including properties. *)
val equal : t -> t -> bool

(** Multiset of node labels, sorted. *)
val node_label_multiset : t -> string list

(** Multiset of edge labels, sorted. *)
val edge_label_multiset : t -> string list

(** [subtract_matched g ~matched_nodes ~matched_edges] removes the listed
    elements from [g], but keeps any removed node that is still an endpoint
    of a surviving edge, relabelling it as a dummy node (paper
    Section 3.5).  Dummy nodes keep their identifier, get label
    [dummy_label] and empty properties. *)
val subtract_matched :
  t -> matched_nodes:string list -> matched_edges:string list -> t

val dummy_label : string

val is_dummy : node -> bool

val pp : Format.formatter -> t -> unit

(** Deterministic human-readable summary such as ["3 nodes, 2 edges"]. *)
val summary : t -> string
