module Smap = Map.Make (String)

type t = string Smap.t

let empty = Smap.empty
let is_empty = Smap.is_empty
let of_list kvs = List.fold_left (fun m (k, v) -> Smap.add k v m) empty kvs
let to_list p = Smap.bindings p
let add = Smap.add
let remove = Smap.remove
let find k p = Smap.find_opt k p
let mem = Smap.mem
let cardinal = Smap.cardinal
let keys p = List.map fst (Smap.bindings p)
let equal = Smap.equal String.equal
let compare = Smap.compare String.compare

let intersect p q =
  Smap.filter
    (fun k v -> match Smap.find_opt k q with Some w -> String.equal v w | None -> false)
    p

let mismatch_cost p q =
  Smap.fold
    (fun k v acc ->
      match Smap.find_opt k q with
      | Some w when String.equal v w -> acc
      | Some _ | None -> acc + 1)
    p 0

let symmetric_mismatch p q = mismatch_cost p q + mismatch_cost q p

let union_preferring_left p q = Smap.union (fun _k v _w -> Some v) p q

let fold = Smap.fold
let iter = Smap.iter
let filter = Smap.filter

let pp ppf p =
  let pp_kv ppf (k, v) = Format.fprintf ppf "%s=%S" k v in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_kv) (to_list p)
