(** Key-value property dictionaries attached to nodes and edges.

    Properties are partial functions from string keys to string values,
    following the property-graph model of the paper (Section 3.3): for a
    node or edge [x], [prop(x, k)] (if defined) is the value for key [k]. *)

type t

val empty : t

val is_empty : t -> bool

(** [of_list kvs] builds a dictionary from an association list.  Later
    bindings for the same key override earlier ones. *)
val of_list : (string * string) list -> t

(** [to_list p] returns the bindings sorted by key. *)
val to_list : t -> (string * string) list

val add : string -> string -> t -> t

val remove : string -> t -> t

val find : string -> t -> string option

val mem : string -> t -> bool

val cardinal : t -> int

val keys : t -> string list

val equal : t -> t -> bool

val compare : t -> t -> int

(** [intersect p q] keeps only the bindings present with equal values in
    both dictionaries.  This is the operation used by graph generalization
    to discard transient property values. *)
val intersect : t -> t -> t

(** [mismatch_cost p q] counts keys of [p] that are absent from [q] or
    bound to a different value — the cost model of the paper's Listing 4. *)
val mismatch_cost : t -> t -> int

(** [symmetric_mismatch p q] is [mismatch_cost p q + mismatch_cost q p]. *)
val symmetric_mismatch : t -> t -> int

val union_preferring_left : t -> t -> t

val fold : (string -> string -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (string -> string -> unit) -> t -> unit

val filter : (string -> string -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
