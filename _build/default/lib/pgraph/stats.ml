type t = {
  nodes : int;
  edges : int;
  dummy_nodes : int;
  node_labels : (string * int) list;
  edge_labels : (string * int) list;
  properties : int;
  connected_components : int;
}

let histogram labels =
  let module Smap = Map.Make (String) in
  let m =
    List.fold_left
      (fun m l -> Smap.update l (function None -> Some 1 | Some n -> Some (n + 1)) m)
      Smap.empty labels
  in
  Smap.bindings m

(* Union-find over node identifiers for weak connectivity. *)
let components g =
  let module Smap = Map.Make (String) in
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p when String.equal p x -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace parent n.Graph.node_id n.Graph.node_id) (Graph.nodes g);
  List.iter (fun (e : Graph.edge) -> union e.Graph.edge_src e.Graph.edge_tgt) (Graph.edges g);
  let roots =
    List.fold_left
      (fun s (n : Graph.node) -> Smap.add (find n.Graph.node_id) () s)
      Smap.empty (Graph.nodes g)
  in
  Smap.cardinal roots

let of_graph g =
  let ns = Graph.nodes g and es = Graph.edges g in
  let properties =
    List.fold_left (fun acc (n : Graph.node) -> acc + Props.cardinal n.Graph.node_props) 0 ns
    + List.fold_left (fun acc (e : Graph.edge) -> acc + Props.cardinal e.Graph.edge_props) 0 es
  in
  {
    nodes = List.length ns;
    edges = List.length es;
    dummy_nodes = List.length (List.filter Graph.is_dummy ns);
    node_labels = histogram (Graph.node_label_multiset g);
    edge_labels = histogram (Graph.edge_label_multiset g);
    properties;
    connected_components = components g;
  }

let shape_line s =
  if s.connected_components <= 1 then Printf.sprintf "%dn/%de" s.nodes s.edges
  else Printf.sprintf "%dn/%de (%d components)" s.nodes s.edges s.connected_components

let pp ppf s =
  let pp_hist ppf h =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (l, n) -> Format.fprintf ppf "%s:%d" l n)
      ppf h
  in
  Format.fprintf ppf "@[<v>%s@,node labels: %a@,edge labels: %a@,properties: %d@]"
    (shape_line s) pp_hist s.node_labels pp_hist s.edge_labels s.properties
