(** Descriptive statistics over property graphs, used by the demonstration
    section reports (Table 3 shapes) and by the scalability analysis. *)

type t = {
  nodes : int;
  edges : int;
  dummy_nodes : int;
  node_labels : (string * int) list;  (** label histogram, sorted by label *)
  edge_labels : (string * int) list;
  properties : int;  (** total number of property bindings *)
  connected_components : int;  (** weakly connected components *)
}

val of_graph : Graph.t -> t

(** [shape_line s] renders e.g. ["4n/3e (2 components)"] for table cells. *)
val shape_line : t -> string

val pp : Format.formatter -> t -> unit
