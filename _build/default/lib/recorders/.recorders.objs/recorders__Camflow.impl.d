lib/recorders/camflow.ml: Graph Hashtbl Int64 List Option Oskernel Pgraph Printf Props Provjson
