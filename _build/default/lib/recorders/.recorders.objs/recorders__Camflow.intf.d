lib/recorders/camflow.mli: Oskernel Pgraph
