lib/recorders/dot.ml: Buffer Graph List Option Pgraph Printf Props String
