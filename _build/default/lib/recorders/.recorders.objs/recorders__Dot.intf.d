lib/recorders/dot.mli: Pgraph
