lib/recorders/opus.ml: Graphstore Hashtbl List Option Oskernel Store_bridge
