lib/recorders/opus.mli: Graphstore Oskernel Pgraph
