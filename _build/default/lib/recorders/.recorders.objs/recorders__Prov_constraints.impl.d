lib/recorders/prov_constraints.ml: Graph List Pgraph Printf Provjson
