lib/recorders/prov_constraints.mli: Pgraph
