lib/recorders/provjson.ml: Graph Hashtbl Json List Minijson Pgraph Printf Props String
