lib/recorders/provjson.mli: Minijson Pgraph
