lib/recorders/recorder.ml: Format Printf String
