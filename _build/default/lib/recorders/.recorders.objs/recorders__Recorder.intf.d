lib/recorders/recorder.mli: Format
