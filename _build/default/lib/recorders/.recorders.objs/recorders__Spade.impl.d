lib/recorders/spade.ml: Dot Graph Hashtbl Int Int64 List Option Oskernel Pgraph Printf Props Store_bridge String
