lib/recorders/spade.mli: Graphstore Oskernel Pgraph
