lib/recorders/spade_camflow.ml: Dot Graph Hashtbl List Oskernel Pgraph Printf Props
