lib/recorders/spade_camflow.mli: Oskernel Pgraph
