lib/recorders/store_bridge.ml: Graph Graphstore Hashtbl List Pgraph Printf Props
