lib/recorders/store_bridge.mli: Graphstore Pgraph
