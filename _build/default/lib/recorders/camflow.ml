open Pgraph
module Event = Oskernel.Event
module Trace = Oskernel.Trace
module Prng = Oskernel.Prng

type config = {
  reserialize : bool;
  track_self : bool;
  filter_types : string list;
}

let default_config = { reserialize = true; track_self = false; filter_types = [] }

type session = (string, unit) Hashtbl.t

let new_session () : session = Hashtbl.create 32

type builder = {
  mutable g : Graph.t;
  mutable next : int;
  boot_id : string;
  tasks : (int, string) Hashtbl.t;  (* pid -> current task vertex *)
  entities : (int, string) Hashtbl.t;  (* ino -> current entity vertex *)
  entity_versions : (int, int) Hashtbl.t;
  task_versions : (int, int) Hashtbl.t;
  paths : (string, string) Hashtbl.t;  (* pathname -> path vertex *)
  mutable machine : string option;
  session : session option;
  suppressed : (string, unit) Hashtbl.t;  (* vertices withheld from output *)
}

let fresh b =
  b.next <- b.next + 1;
  Printf.sprintf "cf:%s:%d" b.boot_id b.next

(* Old CamFlow serialized each node once per boot session.  When the
   workaround is off and the stable key was already seen, the node (and
   any edge touching it) is withheld from the serialized graph. *)
let add_node b ~stable_key ~label ~props =
  let id = fresh b in
  b.g <- Graph.add_node b.g ~id ~label ~props:(Props.of_list props);
  (match b.session with
  | Some session when Hashtbl.mem session stable_key -> Hashtbl.replace b.suppressed id ()
  | Some session -> Hashtbl.replace session stable_key ()
  | None -> ());
  id

let add_edge b ~src ~tgt ~label ~props =
  if Hashtbl.mem b.suppressed src || Hashtbl.mem b.suppressed tgt then ()
  else
    let id = fresh b in
    b.g <- Graph.add_edge b.g ~id ~src ~tgt ~label ~props:(Props.of_list props)

let base_props b time =
  [ ("cf:boot_id", b.boot_id); ("cf:date", string_of_int time) ]

let ensure_machine b time =
  match b.machine with
  | Some id -> id
  | None ->
      let id =
        add_node b ~stable_key:"machine" ~label:"machine"
          ~props:(("cf:machine_id", b.boot_id) :: base_props b time)
      in
      b.machine <- Some id;
      id

let ensure_task b ~pid ~time =
  match Hashtbl.find_opt b.tasks pid with
  | Some id -> id
  | None ->
      let id =
        add_node b
          ~stable_key:(Printf.sprintf "task:%d" pid)
          ~label:"task"
          ~props:(("cf:pid", string_of_int pid) :: ("cf:version", "0") :: base_props b time)
      in
      Hashtbl.replace b.tasks pid id;
      let m = ensure_machine b time in
      add_edge b ~src:id ~tgt:m ~label:"wasAssociatedWith" ~props:(base_props b time);
      id

let new_task_version b ~pid ~time ~operation =
  let old_id = ensure_task b ~pid ~time in
  let v = 1 + Option.value (Hashtbl.find_opt b.task_versions pid) ~default:0 in
  Hashtbl.replace b.task_versions pid v;
  let id =
    add_node b
      ~stable_key:(Printf.sprintf "task:%d:v%d" pid v)
      ~label:"task"
      ~props:
        (("cf:pid", string_of_int pid) :: ("cf:version", string_of_int v) :: base_props b time)
  in
  Hashtbl.replace b.tasks pid id;
  add_edge b ~src:id ~tgt:old_id ~label:"wasInformedBy"
    ~props:(("cf:type", operation) :: base_props b time);
  id

let ensure_path b ~pathname ~time =
  match Hashtbl.find_opt b.paths pathname with
  | Some id -> id
  | None ->
      let id =
        add_node b
          ~stable_key:("path:" ^ pathname)
          ~label:"path"
          ~props:(("cf:pathname", pathname) :: base_props b time)
      in
      Hashtbl.replace b.paths pathname id;
      id

let entity_stable_key ~kind ~path ~ino =
  match path with Some p -> Printf.sprintf "%s:%s" kind p | None -> Printf.sprintf "%s:%d" kind ino

let ensure_entity b ~ino ~kind ~path ~time =
  match Hashtbl.find_opt b.entities ino with
  | Some id -> id
  | None ->
      let id =
        add_node b
          ~stable_key:(entity_stable_key ~kind ~path ~ino)
          ~label:kind
          ~props:
            (("cf:ino", string_of_int ino) :: ("cf:version", "0") :: base_props b time)
      in
      Hashtbl.replace b.entities ino id;
      (* The file object is linked to its path entity. *)
      (match path with
      | Some pathname ->
          let p = ensure_path b ~pathname ~time in
          add_edge b ~src:p ~tgt:id ~label:"named" ~props:(base_props b time)
      | None -> ());
      id

let new_entity_version b ~ino ~kind ~path ~time ~operation =
  let old_id = ensure_entity b ~ino ~kind ~path ~time in
  let v = 1 + Option.value (Hashtbl.find_opt b.entity_versions ino) ~default:0 in
  Hashtbl.replace b.entity_versions ino v;
  let id =
    add_node b
      ~stable_key:(entity_stable_key ~kind ~path ~ino ^ Printf.sprintf ":v%d" v)
      ~label:kind
      ~props:(("cf:ino", string_of_int ino) :: ("cf:version", string_of_int v) :: base_props b time)
  in
  Hashtbl.replace b.entities ino id;
  add_edge b ~src:id ~tgt:old_id ~label:"wasDerivedFrom"
    ~props:(("cf:type", operation) :: base_props b time);
  id

let handle b (s : Event.lsm_record) =
  if not s.Event.s_allowed then ()
    (* CamFlow can in principle observe denied operations but does not
       record them in this configuration (Section 3.1). *)
  else
    let time = s.Event.s_time in
    let task () = ensure_task b ~pid:s.Event.s_pid ~time in
    let inode_parts () =
      match s.Event.s_obj with
      | Event.Obj_inode { ino; path; kind } -> Some (ino, path, kind)
      | Event.Obj_process _ | Event.Obj_cred _ -> None
    in
    match s.Event.s_hook with
    | "task_alloc" -> (
        match s.Event.s_obj with
        | Event.Obj_process { pid } ->
            let parent = task () in
            let child = ensure_task b ~pid ~time in
            add_edge b ~src:child ~tgt:parent ~label:"wasInformedBy"
              ~props:(("cf:type", "fork") :: base_props b time)
        | _ -> ())
    | "task_free" -> ()
    | "bprm_check" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            add_edge b ~src:t ~tgt:e ~label:"used"
              ~props:(("cf:type", "exec") :: base_props b time)
        | None -> ())
    | "bprm_committed_creds" ->
        ignore (new_task_version b ~pid:s.Event.s_pid ~time ~operation:"exec")
    | "file_open" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            add_edge b ~src:t ~tgt:e ~label:"used"
              ~props:(("cf:type", "open") :: base_props b time)
        | None -> ())
    | "inode_create" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            add_edge b ~src:e ~tgt:t ~label:"wasGeneratedBy"
              ~props:(("cf:type", "create") :: base_props b time)
        | None -> ())
    | "file_permission" -> (
        match inode_parts () with
        | Some (ino, path, kind) -> (
            let t = task () in
            match List.assoc_opt "mode" s.Event.s_extra with
            | Some "MAY_WRITE" ->
                let nv = new_entity_version b ~ino ~kind ~path ~time ~operation:"version" in
                add_edge b ~src:nv ~tgt:t ~label:"wasGeneratedBy"
                  ~props:(("cf:type", "write") :: base_props b time)
            | _ ->
                let e = ensure_entity b ~ino ~kind ~path ~time in
                add_edge b ~src:t ~tgt:e ~label:"used"
                  ~props:(("cf:type", "read") :: base_props b time))
        | None -> ())
    | "inode_link" | "inode_rename" -> (
        match inode_parts () with
        | Some (ino, path, kind) -> (
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            (* A new path entity is associated with the file object; the
               old path does not appear (Section 4.1, rename). *)
            let new_pathname =
              match List.assoc_opt "new_path" s.Event.s_extra with
              | Some p -> Some p
              | None -> List.assoc_opt "target" s.Event.s_extra
            in
            match new_pathname with
            | Some pathname ->
                let p = ensure_path b ~pathname ~time in
                add_edge b ~src:p ~tgt:e ~label:"named"
                  ~props:
                    (("cf:type", if s.Event.s_hook = "inode_link" then "link" else "rename")
                    :: base_props b time);
                add_edge b ~src:p ~tgt:t ~label:"wasGeneratedBy"
                  ~props:(("cf:type", "name") :: base_props b time)
            | None -> ())
        | None -> ())
    | "file_truncate" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let nv = new_entity_version b ~ino ~kind ~path ~time ~operation:"version" in
            add_edge b ~src:nv ~tgt:t ~label:"wasGeneratedBy"
              ~props:(("cf:type", "truncate") :: base_props b time)
        | None -> ())
    | "inode_unlink" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            add_edge b ~src:t ~tgt:e ~label:"used"
              ~props:(("cf:type", "unlink") :: base_props b time)
        | None -> ())
    | "inode_setattr" -> (
        match inode_parts () with
        | Some (ino, path, kind) ->
            let t = task () in
            let e = ensure_entity b ~ino ~kind ~path ~time in
            add_edge b ~src:e ~tgt:t ~label:"wasGeneratedBy"
              ~props:
                (("cf:type", "setattr")
                :: (match List.assoc_opt "attr" s.Event.s_extra with
                   | Some a -> [ ("cf:attr", a) ]
                   | None -> [])
                @ base_props b time)
        | None -> ())
    | "task_fix_setuid" ->
        ignore (new_task_version b ~pid:s.Event.s_pid ~time ~operation:"setuid")
    | "task_fix_setgid" ->
        ignore (new_task_version b ~pid:s.Event.s_pid ~time ~operation:"setgid")
    (* Hooks CamFlow 0.4.5 does not serialize (NR rows of Table 2). *)
    | "inode_symlink" | "inode_mknod" | "inode_alloc" | "task_kill" -> ()
    | _ -> ()

(* The recorder's own relay activity: camflowd reading the relay
   channel.  The number of reads varies run to run, which is why the
   paper's configuration excludes ProvMark's own processes. *)
let self_activity b (trace : Trace.t) =
  let prng = Prng.create ~seed:(Int64.of_string ("0x" ^ trace.Trace.boot_id)) in
  let time = trace.Trace.base_time in
  let daemon =
    add_node b ~stable_key:"task:camflowd" ~label:"task"
      ~props:(("cf:pid", "97") :: ("cf:comm", "camflowd") :: base_props b time)
  in
  let relay =
    add_node b ~stable_key:"entity:relay" ~label:"file"
      ~props:(("cf:pathname", "/sys/kernel/debug/provenance") :: base_props b time)
  in
  for _ = 1 to 1 + Prng.int prng 3 do
    add_edge b ~src:daemon ~tgt:relay ~label:"used"
      ~props:(("cf:type", "read") :: base_props b time)
  done

let strip_suppressed b =
  Hashtbl.fold (fun id () g -> Graph.remove_node g id) b.suppressed b.g

let build ?(config = default_config) ?session ?drop_edge_index (trace : Trace.t) =
  (match (config.reserialize, session) with
  | false, None ->
      invalid_arg "Camflow.build: reserialize = false requires a session"
  | _ -> ());
  let b =
    {
      g = Graph.empty;
      next = 0;
      boot_id = trace.Trace.boot_id;
      tasks = Hashtbl.create 8;
      entities = Hashtbl.create 8;
      entity_versions = Hashtbl.create 8;
      task_versions = Hashtbl.create 8;
      paths = Hashtbl.create 8;
      machine = None;
      session = (if config.reserialize then None else session);
      suppressed = Hashtbl.create 8;
    }
  in
  if config.track_self then self_activity b trace;
  List.iter (fun s -> handle b s) trace.Trace.lsm;
  let g = strip_suppressed b in
  (* Capture filters: drop nodes of the filtered types (and with them
     their incident edges). *)
  let g =
    List.fold_left
      (fun g (n : Graph.node) ->
        if List.mem n.Graph.node_label config.filter_types then
          Graph.remove_node g n.Graph.node_id
        else g)
      g (Graph.nodes g)
  in
  match drop_edge_index with
  | None -> g
  | Some i -> (
      match Graph.edge_ids g with
      | [] -> g
      | ids -> Graph.remove_edge g (List.nth ids (i mod List.length ids)))

let record ?config ?session ?drop_edge_index trace =
  Provjson.to_string (build ?config ?session ?drop_edge_index trace)
