(** Simulation of CamFlow 0.4.5: whole-system provenance captured from
    LSM hooks inside the kernel, reported as W3C PROV-JSON.

    Behaviours reproduced from the paper:

    - coverage follows the LSM hook set: [dup] and [pipe] never reach a
      hook CamFlow serializes, and 0.4.5 does not serialize
      [symlink]/[mknod] (NR rows of Table 2);
    - [close] is only observed when the kernel frees the file structure,
      which the benchmark cannot reliably catch (LP);
    - failed permission checks are not recorded in this configuration
      (the failed-call use case of Section 3.1);
    - a [rename] adds a {e new path} entity associated with the file
      object; the old path does not appear in the difference;
    - entities and tasks are versioned; writes derive new versions;
    - with [reserialize] off (the pre-0.4.5 behaviour), nodes already
      serialized in the same {!session} are not emitted again, producing
      inconsistent graphs across runs — the problem the paper reports
      working around with the CamFlow developers;
    - with [track_self] on, the recorder's own relay activity pollutes
      the graph with a run-varying number of events (why ProvMark's
      configuration excludes it). *)

type config = {
  reserialize : bool;  (** default true: the 0.4.5 workaround *)
  track_self : bool;  (** default false: ProvMark excludes its own activity *)
  filter_types : string list;
      (** CamFlow capture filters: node types excluded from the report
          (nodes of these types and their incident edges are not
          serialized); default [[]] *)
}

val default_config : config

(** Cross-run serialization state, used to emulate the pre-workaround
    behaviour ([reserialize = false]).  With the default configuration a
    session is unnecessary. *)
type session

val new_session : unit -> session

val build :
  ?config:config -> ?session:session -> ?drop_edge_index:int -> Oskernel.Trace.t -> Pgraph.Graph.t

(** Render one run as PROV-JSON.  [drop_edge_index] removes the n-th
    edge (modulo edge count), simulating the occasional small structural
    variations the paper observed in CamFlow output. *)
val record :
  ?config:config -> ?session:session -> ?drop_edge_index:int -> Oskernel.Trace.t -> string
