type node = { n_id : string; n_attrs : (string * string) list }
type edge = { e_src : string; e_tgt : string; e_attrs : (string * string) list }
type graph = { g_name : string; g_nodes : node list; g_edges : edge list }

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
      " ["
      ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" (quote k) (quote v)) attrs)
      ^ "]"

let to_string g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n" (quote g.g_name));
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "  %s%s;\n" (quote n.n_id) (attrs_to_string n.n_attrs)))
    g.g_nodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s%s;\n" (quote e.e_src) (quote e.e_tgt) (attrs_to_string e.e_attrs)))
    g.g_edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tarrow
  | Tlbracket
  | Trbracket
  | Tlbrace
  | Trbrace
  | Teq
  | Tcomma
  | Tsemi

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '{' -> toks := Tlbrace :: !toks; incr pos
    | '}' -> toks := Trbrace :: !toks; incr pos
    | '[' -> toks := Tlbracket :: !toks; incr pos
    | ']' -> toks := Trbracket :: !toks; incr pos
    | '=' -> toks := Teq :: !toks; incr pos
    | ',' -> toks := Tcomma :: !toks; incr pos
    | ';' -> toks := Tsemi :: !toks; incr pos
    | '-' ->
        if !pos + 1 < n && src.[!pos + 1] = '>' then (
          toks := Tarrow :: !toks;
          pos := !pos + 2)
        else fail "expected ->"
    | '"' ->
        incr pos;
        let b = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then fail "unterminated string"
          else
            match src.[!pos] with
            | '"' -> incr pos
            | '\\' ->
                incr pos;
                if !pos >= n then fail "unterminated escape";
                (match src.[!pos] with
                | 'n' -> Buffer.add_char b '\n'
                | c -> Buffer.add_char b c);
                incr pos;
                loop ()
            | c ->
                Buffer.add_char b c;
                incr pos;
                loop ()
        in
        loop ();
        toks := Tid (Buffer.contents b) :: !toks
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' ->
        let start = !pos in
        while
          !pos < n
          && match src.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true | _ -> false
        do
          incr pos
        done;
        toks := Tid (String.sub src start (!pos - start)) :: !toks
    | '/' ->
        (* // comment *)
        if !pos + 1 < n && src.[!pos + 1] = '/' then
          while !pos < n && src.[!pos] <> '\n' do
            incr pos
          done
        else fail "unexpected /"
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !toks

let of_string src =
  let toks = ref (tokenize src) in
  let fail msg = raise (Parse_error msg) in
  let next () =
    match !toks with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
        toks := rest;
        t
  in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let expect t = if next () <> t then fail "unexpected token" in
  (match next () with
  | Tid "digraph" -> ()
  | _ -> fail "expected digraph");
  let name = match next () with Tid s -> s | _ -> fail "expected graph name" in
  expect Tlbrace;
  let nodes = ref [] in
  let edges = ref [] in
  let parse_attrs () =
    match peek () with
    | Some Tlbracket ->
        ignore (next ());
        let rec loop acc =
          match next () with
          | Trbracket -> List.rev acc
          | Tid k -> (
              expect Teq;
              match next () with
              | Tid v -> (
                  match peek () with
                  | Some Tcomma ->
                      ignore (next ());
                      loop ((k, v) :: acc)
                  | _ -> loop ((k, v) :: acc))
              | _ -> fail "expected attribute value")
          | Tcomma -> loop acc
          | _ -> fail "expected attribute"
        in
        loop []
    | _ -> []
  in
  let rec stmts () =
    match next () with
    | Trbrace -> ()
    | Tid id -> (
        match peek () with
        | Some Tarrow ->
            ignore (next ());
            let tgt = match next () with Tid t -> t | _ -> fail "expected edge target" in
            let attrs = parse_attrs () in
            (match peek () with Some Tsemi -> ignore (next ()) | _ -> ());
            edges := { e_src = id; e_tgt = tgt; e_attrs = attrs } :: !edges;
            stmts ()
        | _ ->
            let attrs = parse_attrs () in
            (match peek () with Some Tsemi -> ignore (next ()) | _ -> ());
            nodes := { n_id = id; n_attrs = attrs } :: !nodes;
            stmts ())
    | Tsemi -> stmts ()
    | _ -> fail "expected statement"
  in
  stmts ();
  { g_name = name; g_nodes = List.rev !nodes; g_edges = List.rev !edges }

(* ------------------------------------------------------------------ *)
(* Property-graph conversion                                           *)
(* ------------------------------------------------------------------ *)

let type_attr = "type"

let to_pgraph g =
  let open Pgraph in
  let graph =
    List.fold_left
      (fun acc n ->
        let label = Option.value (List.assoc_opt type_attr n.n_attrs) ~default:"Unknown" in
        let props = Props.of_list (List.remove_assoc type_attr n.n_attrs) in
        Graph.add_node acc ~id:n.n_id ~label ~props)
      Graph.empty g.g_nodes
  in
  let graph, _ =
    List.fold_left
      (fun (acc, i) e ->
        let label = Option.value (List.assoc_opt type_attr e.e_attrs) ~default:"Unknown" in
        let props = Props.of_list (List.remove_assoc type_attr e.e_attrs) in
        if not (Graph.mem_node acc e.e_src) then
          raise (Parse_error (Printf.sprintf "edge references undeclared node %s" e.e_src));
        if not (Graph.mem_node acc e.e_tgt) then
          raise (Parse_error (Printf.sprintf "edge references undeclared node %s" e.e_tgt));
        (Graph.add_edge acc ~id:(Printf.sprintf "e%d" i) ~src:e.e_src ~tgt:e.e_tgt ~label ~props, i + 1))
      (graph, 0) g.g_edges
  in
  graph

let of_pgraph ~name g =
  let open Pgraph in
  {
    g_name = name;
    g_nodes =
      List.map
        (fun (n : Graph.node) ->
          {
            n_id = n.Graph.node_id;
            n_attrs = (type_attr, n.Graph.node_label) :: Props.to_list n.Graph.node_props;
          })
        (Graph.nodes g);
    g_edges =
      List.map
        (fun (e : Graph.edge) ->
          {
            e_src = e.Graph.edge_src;
            e_tgt = e.Graph.edge_tgt;
            e_attrs = (type_attr, e.Graph.edge_label) :: Props.to_list e.Graph.edge_props;
          })
        (Graph.edges g);
  }
