open Pgraph

type violation = {
  edge_id : string;
  rule : string;
}

let category_of_label label =
  if List.mem label Provjson.activity_labels then `Activity
  else if List.mem label Provjson.agent_labels then `Agent
  else `Entity

let category_name = function `Activity -> "activity" | `Agent -> "agent" | `Entity -> "entity"

(* PROV-DM endpoint typing per relation, as (source, target) categories.
   [named] is CamFlow's path-to-file association: entity -> entity. *)
let expected_endpoints = function
  | "used" -> Some (`Activity, `Entity)
  | "wasGeneratedBy" -> Some (`Entity, `Activity)
  | "wasInformedBy" -> Some (`Activity, `Activity)
  | "wasAssociatedWith" -> Some (`Activity, `Agent)
  | "wasDerivedFrom" -> Some (`Entity, `Entity)
  | "named" -> Some (`Entity, `Entity)
  | _ -> None

let check g =
  List.filter_map
    (fun (e : Graph.edge) ->
      match expected_endpoints e.Graph.edge_label with
      | None -> None
      | Some (want_src, want_tgt) -> (
          match (Graph.find_node g e.Graph.edge_src, Graph.find_node g e.Graph.edge_tgt) with
          | Some src, Some tgt ->
              let src_cat = category_of_label src.Graph.node_label in
              let tgt_cat = category_of_label tgt.Graph.node_label in
              if src_cat = want_src && tgt_cat = want_tgt then None
              else
                Some
                  {
                    edge_id = e.Graph.edge_id;
                    rule =
                      Printf.sprintf "%s: %s -> %s (found %s -> %s)" e.Graph.edge_label
                        (category_name want_src) (category_name want_tgt)
                        (category_name src_cat) (category_name tgt_cat);
                  }
          | _ -> Some { edge_id = e.Graph.edge_id; rule = "edge endpoints missing" }))
    (Graph.edges g)

let violation_to_string v = Printf.sprintf "%s violates %s" v.edge_id v.rule
