(** Structural well-formedness checks for W3C PROV-style provenance
    graphs: each relation must connect nodes of the right categories
    (e.g. [used] goes from an activity to an entity, [wasInformedBy]
    connects two activities).  The CamFlow simulator's output is checked
    against these constraints in the test suite — a lightweight version
    of the static analysis of Pasquier et al. the paper cites as related
    work (CCS'18). *)

type violation = {
  edge_id : string;
  rule : string;  (** human-readable constraint, e.g. ["used: activity -> entity"] *)
}

(** Node category according to {!Provjson.activity_labels} /
    [agent_labels]: [`Activity], [`Agent] or [`Entity]. *)
val category_of_label : string -> [ `Activity | `Agent | `Entity ]

(** [check g] returns all violations; the empty list means the graph is
    well-formed PROV.  Edges with labels outside the PROV-DM relation
    vocabulary (e.g. CamFlow's [named]) are checked against CamFlow's
    own conventions where known and ignored otherwise. *)
val check : Pgraph.Graph.t -> violation list

val violation_to_string : violation -> string
