(** W3C PROV-JSON serialization, the format CamFlow reports provenance
    in.  Nodes are binned into the [entity] / [activity] / [agent]
    sections according to their label; the specific CamFlow type (file,
    path, task, ...) travels in the [prov:type] property.  Edges map to
    the standard relation sections with their [prov:*] endpoint keys;
    non-standard relation labels use a generic [relation] section. *)

exception Format_error of string

(** Labels serialized into the [activity] section; [agent_labels] into
    [agent]; everything else is an [entity]. *)
val activity_labels : string list

val agent_labels : string list

val of_pgraph : Pgraph.Graph.t -> Minijson.Json.t

(** Raises {!Format_error} when the document does not follow the
    PROV-JSON structure produced by {!of_pgraph} (unknown sections,
    missing endpoint keys, dangling references). *)
val to_pgraph : Minijson.Json.t -> Pgraph.Graph.t

val to_string : Pgraph.Graph.t -> string

val of_string : string -> Pgraph.Graph.t
