type tool = Spade | Opus | Camflow | Spade_camflow | Spade_neo4j

type output =
  | Dot_text of string
  | Store_dump of string
  | Prov_json of string

let tool_name = function
  | Spade -> "SPADE"
  | Opus -> "OPUS"
  | Camflow -> "CamFlow"
  | Spade_camflow -> "SPADE+CamFlow"
  | Spade_neo4j -> "SPADE+Neo4j"

let tool_of_string s =
  match String.lowercase_ascii s with
  | "spg" | "spade" -> Ok Spade
  | "opu" | "opus" -> Ok Opus
  | "cam" | "camflow" -> Ok Camflow
  | "spc" | "spade+camflow" | "spade_camflow" -> Ok Spade_camflow
  | "spn" | "spade+neo4j" | "spade_neo4j" -> Ok Spade_neo4j
  | _ -> Error (Printf.sprintf "unknown tool %S (expected spg, opu, cam, spc or spn)" s)

let all_tools = [ Spade; Opus; Camflow ]

let format_name = function
  | Spade | Spade_camflow -> "DOT"
  | Opus | Spade_neo4j -> "Neo4j"
  | Camflow -> "PROV-JSON"

let pp_tool ppf t = Format.pp_print_string ppf (tool_name t)
