(** Common recorder vocabulary: tool identifiers and the native output
    formats the transformation stage must handle (paper Section 3.3). *)

type tool =
  | Spade
  | Opus
  | Camflow
  | Spade_camflow
      (** SPADE fed by the CamFlow reporter instead of Linux Audit — the
          configuration the paper mentions but had not yet tried.  Not
          part of {!all_tools} (the paper's Table 2 has no column for
          it); exercised by the extension benchmark. *)
  | Spade_neo4j
      (** SPADE with the Neo4j storage backend instead of Graphviz — the
          original ProvMark's [spn] profile.  Coverage is identical to
          {!Spade}; only the transformation cost changes (database
          startup), which the extension benchmark measures. *)

(** Native provenance output of one recording session. *)
type output =
  | Dot_text of string  (** SPADE with the Graphviz storage *)
  | Store_dump of string  (** OPUS: text dump of the embedded Neo4j substitute *)
  | Prov_json of string  (** CamFlow: W3C PROV-JSON *)

val tool_name : tool -> string

(** Parses the CLI names used by the original ProvMark scripts:
    ["spg"] (SPADE+Graphviz), ["opu"] (OPUS), ["cam"] (CamFlow), plus
    the plain tool names, ["spc"] (SPADE with the CamFlow reporter) and
    ["spn"] (SPADE with Neo4j storage). *)
val tool_of_string : string -> (tool, string) result

(** The three systems benchmarked in the paper. *)
val all_tools : tool list

(** Format name for reports, e.g. ["DOT"]. *)
val format_name : tool -> string

val pp_tool : Format.formatter -> tool -> unit
