open Pgraph
module Event = Oskernel.Event
module Trace = Oskernel.Trace
module Prng = Oskernel.Prng

type config = {
  simplify : bool;
  io_runs : bool;
  io_runs_fixed : bool;
  versioning : bool;
  success_only : bool;
  use_procfs : bool;
}

let default_config =
  {
    simplify = true;
    io_runs = false;
    io_runs_fixed = false;
    versioning = false;
    success_only = true;
    use_procfs = false;
  }

type builder = {
  mutable g : Graph.t;
  mutable next : int;
  procs : (int, string) Hashtbl.t;  (* pid -> current process vertex *)
  artifacts : (string, string) Hashtbl.t;  (* path -> current artifact vertex *)
  versions : (string, int) Hashtbl.t;  (* path -> version counter *)
  prng : Prng.t;
}

let fresh b prefix =
  b.next <- b.next + 1;
  Printf.sprintf "%s%d" prefix b.next

let add_node b ~label ~props =
  let id = fresh b "v" in
  b.g <- Graph.add_node b.g ~id ~label ~props:(Props.of_list props);
  id

let add_edge b ~src ~tgt ~label ~props =
  let id = fresh b "r" in
  b.g <- Graph.add_edge b.g ~id ~src ~tgt ~label ~props:(Props.of_list props);
  id

let process_props ?(config = default_config) (r : Event.audit_record) =
  [
    ("pid", string_of_int r.Event.a_pid);
    ("ppid", string_of_int r.Event.a_ppid);
    ("name", r.Event.a_comm);
    ("exe", r.Event.a_exe);
    ("uid", string_of_int r.Event.a_uid);
    ("euid", string_of_int r.Event.a_euid);
    ("gid", string_of_int r.Event.a_gid);
    ("egid", string_of_int r.Event.a_egid);
    ("start time", string_of_int r.Event.a_time);
  ]
  @
  (* procfs enrichment: stable metadata SPADE reads from /proc when the
     option is enabled. *)
  if config.use_procfs then [ ("cwd", "/staging"); ("cmdline", r.Event.a_exe) ] else []

let ensure_process b ~config (r : Event.audit_record) =
  match Hashtbl.find_opt b.procs r.Event.a_pid with
  | Some id -> id
  | None ->
      let id = add_node b ~label:"Process" ~props:(process_props ~config r) in
      Hashtbl.replace b.procs r.Event.a_pid id;
      id

let version_of b path = Option.value (Hashtbl.find_opt b.versions path) ~default:0

let artifact_key path version = Printf.sprintf "%s#%d" path version

let ensure_artifact b ~config path =
  let version = if config.versioning then version_of b path else 0 in
  let key = artifact_key path version in
  match Hashtbl.find_opt b.artifacts key with
  | Some id -> id
  | None ->
      let id =
        add_node b ~label:"Artifact"
          ~props:[ ("path", path); ("version", string_of_int version) ]
      in
      Hashtbl.replace b.artifacts key id;
      id

(* With versioning on, a write makes a fresh artifact version derived
   from the previous one. *)
let bump_version b ~config ~time path proc =
  if not config.versioning then ensure_artifact b ~config path
  else begin
    let old_id = ensure_artifact b ~config path in
    let v = version_of b path + 1 in
    Hashtbl.replace b.versions path v;
    let id =
      add_node b ~label:"Artifact" ~props:[ ("path", path); ("version", string_of_int v) ]
    in
    Hashtbl.replace b.artifacts (artifact_key path v) id;
    ignore
      (add_edge b ~src:id ~tgt:old_id ~label:"WasDerivedFrom"
         ~props:[ ("operation", "version"); ("time", string_of_int time) ]);
    ignore proc;
    id
  end

let first_path (r : Event.audit_record) =
  match r.Event.a_paths with p :: _ -> Some p | [] -> None

let fd_path (r : Event.audit_record) =
  match r.Event.a_fds with { Event.path = Some p; _ } :: _ -> Some p | _ -> None

let arg r key = List.assoc_opt key r.Event.a_args

let time_prop (r : Event.audit_record) = ("time", string_of_int r.Event.a_time)

let event_id_prop (r : Event.audit_record) = ("event id", string_of_int r.Event.a_seq)

(* Replace the process vertex for a pid, connecting the new vertex to
   the old one: how SPADE represents execve and credential changes. *)
let new_process_state b ~config (r : Event.audit_record) ~operation =
  let old_id = ensure_process b ~config r in
  let new_id = add_node b ~label:"Process" ~props:(process_props ~config r) in
  Hashtbl.replace b.procs r.Event.a_pid new_id;
  ignore
    (add_edge b ~src:new_id ~tgt:old_id ~label:"WasTriggeredBy"
       ~props:[ ("operation", operation); time_prop r; event_id_prop r ]);
  new_id

let handle_record b ~config (r : Event.audit_record) =
  let syscall = r.Event.a_syscall in
  (* State-change monitoring: SPADE notices credential changes through
     the uid/gid fields of subsequent records even for calls its audit
     rules do not report explicitly (the SC rows of Table 2). *)
  let explicit_cred_change =
    List.mem syscall [ "setuid"; "setreuid"; "setgid"; "setregid"; "setresuid"; "setresgid"; "execve" ]
  in
  (if not explicit_cred_change then
     match Hashtbl.find_opt b.procs r.Event.a_pid with
     | Some id -> (
         match Graph.find_node b.g id with
         | Some node ->
             let differs key v =
               match Props.find key node.Graph.node_props with
               | Some w -> not (String.equal w v)
               | None -> false
             in
             if
               differs "euid" (string_of_int r.Event.a_euid)
               || differs "egid" (string_of_int r.Event.a_egid)
             then ignore (new_process_state b ~config r ~operation:"update")
         | None -> ())
     | None -> ());
  let proc () = ensure_process b ~config r in
  let used ?(operation = syscall) path =
    let p = proc () in
    let a = ensure_artifact b ~config path in
    ignore
      (add_edge b ~src:p ~tgt:a ~label:"Used"
         ~props:[ ("operation", operation); time_prop r; event_id_prop r ])
  in
  let generated ?(operation = syscall) ?(extra = []) path =
    let p = proc () in
    let a = bump_version b ~config ~time:r.Event.a_time path p in
    ignore
      (add_edge b ~src:a ~tgt:p ~label:"WasGeneratedBy"
         ~props:(((("operation", operation) :: extra) @ [ time_prop r; event_id_prop r ])))
  in
  let derived ~old_path ~new_path =
    let p = proc () in
    let old_a = ensure_artifact b ~config old_path in
    let new_a = ensure_artifact b ~config new_path in
    ignore
      (add_edge b ~src:new_a ~tgt:old_a ~label:"WasDerivedFrom"
         ~props:[ ("operation", syscall); time_prop r; event_id_prop r ]);
    ignore
      (add_edge b ~src:new_a ~tgt:p ~label:"WasGeneratedBy"
         ~props:[ ("operation", syscall); time_prop r; event_id_prop r ]);
    (old_a, new_a)
  in
  match syscall with
  | "fork" | "clone" ->
      let parent = proc () in
      let child_pid = r.Event.a_exit in
      (match Hashtbl.find_opt b.procs child_pid with
      | Some _ -> ()
      | None ->
          let child =
            add_node b ~label:"Process"
              ~props:
                [
                  ("pid", string_of_int child_pid);
                  ("ppid", string_of_int r.Event.a_pid);
                  ("name", r.Event.a_comm);
                  ("exe", r.Event.a_exe);
                  ("uid", string_of_int r.Event.a_uid);
                  ("euid", string_of_int r.Event.a_euid);
                  ("gid", string_of_int r.Event.a_gid);
                  ("egid", string_of_int r.Event.a_egid);
                  ("start time", string_of_int r.Event.a_time);
                ]
          in
          Hashtbl.replace b.procs child_pid child;
          ignore
            (add_edge b ~src:child ~tgt:parent ~label:"WasTriggeredBy"
               ~props:[ ("operation", syscall); time_prop r; event_id_prop r ]))
  | "vfork" ->
      (* The child was already seen (Audit reports at syscall exit, and
         the vforking parent was suspended until the child exited), and
         SPADE tc-e3 does not connect it: the disconnected-vfork quirk. *)
      ignore (proc ());
      let child_pid = r.Event.a_exit in
      if not (Hashtbl.mem b.procs child_pid) then (
        let child =
          add_node b ~label:"Process"
            ~props:[ ("pid", string_of_int child_pid); ("start time", string_of_int r.Event.a_time) ]
        in
        Hashtbl.replace b.procs child_pid child)
  | "execve" -> (
      ignore (new_process_state b ~config r ~operation:"execve");
      match first_path r with
      | Some path -> used ~operation:"load" path
      | None -> ())
  | "exit" ->
      (* Ensures a vertex exists for processes first seen here (the
         vfork child); adds nothing for known processes. *)
      ignore (proc ())
  | "open" | "openat" -> (
      match first_path r with
      | Some path ->
          let flags = Option.value (arg r "flags") ~default:"" in
          (* An open that creates or truncates generates the artifact;
             a plain open reads it. *)
          let sub = (fun needle hay ->
            let ln = String.length needle and lh = String.length hay in
            let rec go i = i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1)) in
            ln > 0 && go 0) in
          if sub "O_CREAT" flags || sub "O_TRUNC" flags then generated ~operation:syscall path
          else used path
      | None -> ())
  | "creat" -> ( match first_path r with Some path -> generated path | None -> ())
  | "close" -> ( match fd_path r with Some path -> used path | None -> ())
  | "read" | "pread" -> ( match fd_path r with Some path -> used path | None -> ())
  | "mmap" -> ( match fd_path r with Some path -> used path | None -> ())
  | "write" | "pwrite" -> (
      match fd_path r with Some path -> generated path | None -> ())
  | "truncate" -> ( match first_path r with Some path -> generated path | None -> ())
  | "ftruncate" -> ( match fd_path r with Some path -> generated path | None -> ())
  | "rename" | "renameat" -> (
      match r.Event.a_paths with
      | [ old_path; new_path ] ->
          let old_a, _ = derived ~old_path ~new_path in
          let p = Hashtbl.find b.procs r.Event.a_pid in
          ignore
            (add_edge b ~src:p ~tgt:old_a ~label:"Used"
               ~props:[ ("operation", syscall); time_prop r; event_id_prop r ])
      | _ -> ())
  | "link" | "linkat" | "symlink" | "symlinkat" -> (
      match r.Event.a_paths with
      | [ old_path; new_path ] -> ignore (derived ~old_path ~new_path)
      | [ new_path ] -> (
          match arg r "oldname" with
          | Some old_path -> ignore (derived ~old_path ~new_path)
          | None -> ())
      | _ -> ())
  | "unlink" | "unlinkat" -> (
      match first_path r with Some path -> used path | None -> ())
  | "chmod" | "fchmodat" -> (
      match first_path r with
      | Some path ->
          generated ~extra:(match arg r "mode" with Some m -> [ ("mode", m) ] | None -> []) path
      | None -> ())
  | "fchmod" -> (
      match fd_path r with
      | Some path ->
          generated ~extra:(match arg r "mode" with Some m -> [ ("mode", m) ] | None -> []) path
      | None -> ())
  | "setuid" | "setreuid" | "setgid" | "setregid" ->
      ignore (new_process_state b ~config r ~operation:syscall)
  | "setresuid" | "setresgid" ->
      if not config.simplify then (
        (* tc-e3 bug: the fresh process vertex is attached to a spurious
           vertex, and the connecting edge carries a property initialized
           from uninitialized memory — random per run. *)
        let new_id = add_node b ~label:"Process" ~props:(process_props ~config r) in
        Hashtbl.replace b.procs r.Event.a_pid new_id;
        let spurious = add_node b ~label:"Process" ~props:[] in
        ignore
          (add_edge b ~src:new_id ~tgt:spurious ~label:"WasTriggeredBy"
             ~props:
               [
                 ("operation", syscall);
                 ("flags", Prng.hex_token b.prng);
                 time_prop r;
                 event_id_prop r;
               ]))
  (* With simplify on, the audit rules do not include setres*; the
     change is still caught by state-change monitoring above (SC). *)
  | "mknod" | "mknodat" | "dup" | "dup2" | "dup3" | "chown" | "fchown" | "fchownat" | "pipe"
  | "pipe2" | "tee" | "kill" ->
      (* Not recorded by SPADE's handler (NR/SC rows of Table 2). *)
      ()
  | _ -> ()

(* The IORuns filter coalesces runs of read/write edges between the same
   endpoints.  The benchmarked SPADE version looks up property key "op",
   but the reporter emits "operation" — so the filter silently does
   nothing until the fixed key is used (the inconsistency the paper's
   configuration-validation use case uncovered). *)
let io_runs_filter ~fixed g =
  let key = if fixed then "operation" else "op" in
  let is_io e =
    match Props.find key e.Graph.edge_props with
    | Some ("read" | "write" | "pread" | "pwrite") -> true
    | Some _ | None -> false
  in
  let edges = Graph.edges g in
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc e ->
      if not (is_io e) then acc
      else
        let group_key =
          ( e.Graph.edge_src,
            e.Graph.edge_tgt,
            e.Graph.edge_label,
            Option.value (Props.find key e.Graph.edge_props) ~default:"" )
        in
        match Hashtbl.find_opt seen group_key with
        | None ->
            Hashtbl.replace seen group_key (e.Graph.edge_id, 1);
            acc
        | Some (first_id, n) ->
            Hashtbl.replace seen group_key (first_id, n + 1);
            (* Fold this edge into the first one of the run. *)
            let acc = Graph.remove_edge acc e.Graph.edge_id in
            (match Graph.find_edge acc first_id with
            | Some first ->
                Graph.set_edge_props acc first_id
                  (Props.add "count" (string_of_int (n + 1)) first.Graph.edge_props)
            | None -> acc))
    g edges

let build ?(config = default_config) (trace : Trace.t) =
  let b =
    {
      g = Graph.empty;
      next = 0;
      procs = Hashtbl.create 8;
      artifacts = Hashtbl.create 8;
      versions = Hashtbl.create 8;
      prng = Prng.create ~seed:(Int64.of_string ("0x" ^ trace.Trace.boot_id));
    }
  in
  List.iter
    (fun (r : Event.audit_record) ->
      if r.Event.a_success || not config.success_only then handle_record b ~config r)
    trace.Trace.audit;
  if config.io_runs then io_runs_filter ~fixed:config.io_runs_fixed b.g else b.g

(* Edge identifiers are r<k> with k increasing in insertion order; a
   truncated flush drops the numerically largest ones. *)
let truncate g truncate_edges =
  if truncate_edges <= 0 then g
  else
    let numeric id =
      match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
      | Some n -> n
      | None -> 0
    in
    let edge_ids =
      List.sort (fun a b -> Int.compare (numeric b) (numeric a)) (Graph.edge_ids g)
    in
    let rec drop g ids k =
      match (ids, k) with
      | _, 0 | [], _ -> g
      | id :: rest, k -> drop (Graph.remove_edge g id) rest (k - 1)
    in
    drop g edge_ids truncate_edges

let record ?(config = default_config) ?(truncate_edges = 0) trace =
  Dot.to_string (Dot.of_pgraph ~name:"spade" (truncate (build ~config trace) truncate_edges))

let record_to_store ?(config = default_config) ?(truncate_edges = 0) trace =
  Store_bridge.to_store (truncate (build ~config trace) truncate_edges)

let store_to_pgraph = Store_bridge.of_store
