(** Simulation of SPADEv2 (tag tc-e3) with the Linux Audit reporter and
    Graphviz storage.

    SPADE consumes the audit stream and builds an OPM-style graph of
    [Process] and [Artifact] vertices.  The simulation reproduces the
    behaviours the paper reports for the real system:

    - audit rules only report {e successful} calls by default, so failed
      calls leave no trace (Section 3.1, "Tracking failed calls");
    - [dup], [mknod], [chown], [pipe] and [tee] are not recorded
      (Table 2 notes SC/NR);
    - the [vfork] child appears as a {e disconnected} process node,
      because Linux Audit logs calls at syscall exit and the suspended
      parent's [vfork] record arrives after the child already appeared
      (note DV);
    - with [simplify] off, [setresuid]/[setresgid] are explicitly
      monitored, and the tc-e3 bug is reproduced: the new process vertex
      hangs off a spurious vertex through an edge carrying a
      random-valued property (Section 3.1, "Configuration validation");
    - the [IORuns] filter looks up the wrong property key ([op] instead
      of the emitted [operation]), so enabling it has no effect unless
      [io_runs_fixed] applies the upstream fix;
    - [versioning] gives file artifacts explicit versions on writes. *)

type config = {
  simplify : bool;  (** default true *)
  io_runs : bool;  (** coalesce runs of reads/writes (default false) *)
  io_runs_fixed : bool;  (** use the fixed property key in the filter *)
  versioning : bool;  (** default false *)
  success_only : bool;  (** audit rules report only successful calls (default true) *)
  use_procfs : bool;
      (** enrich process vertices with procfs metadata (cwd, cmdline) —
          one of the alternative configurations Section 2 mentions;
          default false (the paper's baseline) *)
}

val default_config : config

(** Build the provenance graph for one run. *)
val build : ?config:config -> Oskernel.Trace.t -> Pgraph.Graph.t

(** [record ?config ?truncate_edges trace] renders the graph in DOT.
    [truncate_edges] drops that many trailing edges, simulating the
    flushing race the paper describes (stopping SPADE before its graph
    generation completed). *)
val record : ?config:config -> ?truncate_edges:int -> Oskernel.Trace.t -> string

(** Same graph, written to the Neo4j-substitute store instead of DOT —
    the original ProvMark's [spn] profile. *)
val record_to_store : ?config:config -> ?truncate_edges:int -> Oskernel.Trace.t -> Graphstore.Store.t

(** Read side of the store path, used by the transformation stage. *)
val store_to_pgraph : Graphstore.Store.t -> Pgraph.Graph.t
