open Pgraph
module Event = Oskernel.Event
module Trace = Oskernel.Trace

type builder = {
  mutable g : Graph.t;
  mutable next : int;
  procs : (int, string) Hashtbl.t;
  artifacts : (int, string) Hashtbl.t;  (* keyed by inode number *)
}

let fresh b prefix =
  b.next <- b.next + 1;
  Printf.sprintf "%s%d" prefix b.next

let add_node b ~label ~props =
  let id = fresh b "v" in
  b.g <- Graph.add_node b.g ~id ~label ~props:(Props.of_list props);
  id

let add_edge b ~src ~tgt ~label ~props =
  let id = fresh b "r" in
  b.g <- Graph.add_edge b.g ~id ~src ~tgt ~label ~props:(Props.of_list props)

let time_prop (s : Event.lsm_record) = ("time", string_of_int s.Event.s_time)

let ensure_process b (s : Event.lsm_record) =
  match Hashtbl.find_opt b.procs s.Event.s_pid with
  | Some id -> id
  | None ->
      let id =
        add_node b ~label:"Process"
          ~props:[ ("pid", string_of_int s.Event.s_pid); ("source", "camflow"); time_prop s ]
      in
      Hashtbl.replace b.procs s.Event.s_pid id;
      id

let ensure_artifact b ~ino ~path ~kind ~time =
  match Hashtbl.find_opt b.artifacts ino with
  | Some id -> id
  | None ->
      let props =
        [ ("ino", string_of_int ino); ("subtype", kind); ("time", string_of_int time) ]
        @ (match path with Some p -> [ ("path", p) ] | None -> [])
      in
      let id = add_node b ~label:"Artifact" ~props in
      Hashtbl.replace b.artifacts ino id;
      id

let inode_parts (s : Event.lsm_record) =
  match s.Event.s_obj with
  | Event.Obj_inode { ino; path; kind } -> Some (ino, path, kind)
  | Event.Obj_process _ | Event.Obj_cred _ -> None

(* Replace the process vertex (execve / credential changes), as the
   Audit-based SPADE reporter does. *)
let new_process_state b (s : Event.lsm_record) ~operation =
  let old_id = ensure_process b s in
  let new_id =
    add_node b ~label:"Process"
      ~props:[ ("pid", string_of_int s.Event.s_pid); ("source", "camflow"); time_prop s ]
  in
  Hashtbl.replace b.procs s.Event.s_pid new_id;
  add_edge b ~src:new_id ~tgt:old_id ~label:"WasTriggeredBy"
    ~props:[ ("operation", operation); time_prop s ]

let handle b (s : Event.lsm_record) =
  if not s.Event.s_allowed then ()
  else
    let used ?(operation = "") () =
      match inode_parts s with
      | Some (ino, path, kind) ->
          let p = ensure_process b s in
          let a = ensure_artifact b ~ino ~path ~kind ~time:s.Event.s_time in
          add_edge b ~src:p ~tgt:a ~label:"Used" ~props:[ ("operation", operation); time_prop s ]
      | None -> ()
    in
    let generated ?(operation = "") () =
      match inode_parts s with
      | Some (ino, path, kind) ->
          let p = ensure_process b s in
          let a = ensure_artifact b ~ino ~path ~kind ~time:s.Event.s_time in
          add_edge b ~src:a ~tgt:p ~label:"WasGeneratedBy"
            ~props:[ ("operation", operation); time_prop s ]
      | None -> ()
    in
    match s.Event.s_hook with
    | "task_alloc" -> (
        match s.Event.s_obj with
        | Event.Obj_process { pid } ->
            let parent = ensure_process b s in
            (* LSM reports the fork when it happens (not at syscall
               exit), so the child connects even for vfork. *)
            let child =
              add_node b ~label:"Process"
                ~props:[ ("pid", string_of_int pid); ("source", "camflow"); time_prop s ]
            in
            Hashtbl.replace b.procs pid child;
            add_edge b ~src:child ~tgt:parent ~label:"WasTriggeredBy"
              ~props:[ ("operation", "fork"); time_prop s ]
        | _ -> ())
    | "bprm_check" -> used ~operation:"execve" ()
    | "bprm_committed_creds" -> new_process_state b s ~operation:"execve"
    | "file_open" -> used ~operation:"open" ()
    | "inode_create" -> generated ~operation:"create" ()
    | "file_permission" -> (
        match List.assoc_opt "mode" s.Event.s_extra with
        | Some "MAY_WRITE" -> generated ~operation:"write" ()
        | _ -> used ~operation:"read" ())
    | "inode_link" | "inode_rename" -> (
        match inode_parts s with
        | Some (ino, path, kind) -> (
            let p = ensure_process b s in
            let a = ensure_artifact b ~ino ~path ~kind ~time:s.Event.s_time in
            let op = if s.Event.s_hook = "inode_link" then "link" else "rename" in
            match
              match List.assoc_opt "new_path" s.Event.s_extra with
              | Some np -> Some np
              | None -> List.assoc_opt "target" s.Event.s_extra
            with
            | Some new_path ->
                let new_a =
                  add_node b ~label:"Artifact"
                    ~props:[ ("path", new_path); ("subtype", kind); time_prop s ]
                in
                add_edge b ~src:new_a ~tgt:a ~label:"WasDerivedFrom"
                  ~props:[ ("operation", op); time_prop s ];
                add_edge b ~src:new_a ~tgt:p ~label:"WasGeneratedBy"
                  ~props:[ ("operation", op); time_prop s ]
            | None -> ())
        | None -> ())
    | "file_truncate" -> generated ~operation:"truncate" ()
    | "inode_unlink" -> used ~operation:"unlink" ()
    | "inode_setattr" ->
        generated
          ~operation:
            (match List.assoc_opt "attr" s.Event.s_extra with
            | Some a -> "setattr:" ^ a
            | None -> "setattr")
          ()
    | "task_fix_setuid" -> new_process_state b s ~operation:"setuid"
    | "task_fix_setgid" -> new_process_state b s ~operation:"setgid"
    (* Hooks CamFlow 0.4.5 does not serialize: same blind spots. *)
    | "inode_symlink" | "inode_mknod" | "inode_alloc" | "task_free" | "task_kill" -> ()
    | _ -> ()

let build (trace : Trace.t) =
  let b = { g = Graph.empty; next = 0; procs = Hashtbl.create 8; artifacts = Hashtbl.create 8 } in
  List.iter (handle b) trace.Trace.lsm;
  b.g

let record trace = Dot.to_string (Dot.of_pgraph ~name:"spade_camflow" (build trace))
