(** SPADE with CamFlow as its reporter — the configuration the paper
    mentions but had "not yet experimented with" (Section 2): CamFlow
    replaces Linux Audit as SPADE's event source, so the graph uses
    SPADE's OPM vocabulary (Process/Artifact vertices, Used /
    WasGeneratedBy / WasTriggeredBy edges, DOT output) while coverage
    follows the LSM hook set.

    The interesting expressiveness deltas versus SPADE+Audit, which the
    extension benchmark in [bench/main.ml] measures:

    - [chown]/[fchown]/[fchownat] become visible (the [inode_setattr]
      hook fires, while SPADE's audit handler ignores chown);
    - [read]/[write] and most file calls stay covered;
    - [symlink]/[mknod]/[pipe]/[dup] become invisible (CamFlow 0.4.5
      does not serialize those hooks), where Audit-based SPADE recorded
      symlink;
    - failed calls stay invisible (denied hooks are not reported);
    - [vfork] is no longer disconnected: LSM's [task_alloc] fires at
      fork time, not at syscall exit, so the DV quirk disappears. *)

val build : Oskernel.Trace.t -> Pgraph.Graph.t

(** DOT output, like SPADE's Graphviz storage. *)
val record : Oskernel.Trace.t -> string
