open Pgraph
module Store = Graphstore.Store
module Query = Graphstore.Query

let to_store g =
  let store = Store.create () in
  let ids = Hashtbl.create 32 in
  List.iter
    (fun (n : Graph.node) ->
      let id =
        Store.create_node store ~labels:[ n.Graph.node_label ]
          ~props:(Props.to_list n.Graph.node_props)
      in
      Hashtbl.replace ids n.Graph.node_id id)
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      ignore
        (Store.create_rel store
           ~src:(Hashtbl.find ids e.Graph.edge_src)
           ~tgt:(Hashtbl.find ids e.Graph.edge_tgt)
           ~rel_type:e.Graph.edge_label
           ~props:(Props.to_list e.Graph.edge_props)))
    (Graph.edges g);
  store

let of_store store =
  let nodes, rels = Query.export_all store in
  let g =
    List.fold_left
      (fun acc (n : Store.node_record) ->
        let label = match n.Store.n_labels with l :: _ -> l | [] -> "Node" in
        Graph.add_node acc
          ~id:(Printf.sprintf "n%d" n.Store.n_id)
          ~label ~props:(Props.of_list n.Store.n_props))
      Graph.empty nodes
  in
  List.fold_left
    (fun acc (r : Store.rel_record) ->
      Graph.add_edge acc
        ~id:(Printf.sprintf "r%d" r.Store.r_id)
        ~src:(Printf.sprintf "n%d" r.Store.r_src)
        ~tgt:(Printf.sprintf "n%d" r.Store.r_tgt)
        ~label:r.Store.r_type ~props:(Props.of_list r.Store.r_props))
    g rels
