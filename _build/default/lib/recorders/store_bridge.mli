(** Conversion between property graphs and the Neo4j-substitute store,
    shared by the recorders that use database storage (OPUS, and SPADE's
    [spn] profile). *)

(** [to_store g] writes nodes then edges into a fresh store; identifiers
    are re-assigned (database ids), so conversion is identity only up to
    renaming. *)
val to_store : Pgraph.Graph.t -> Graphstore.Store.t

(** [of_store store] reads the whole store back (requires it opened);
    nodes become [n<id>], relationships [r<id>]. *)
val of_store : Graphstore.Store.t -> Pgraph.Graph.t
