lib/vis/layout.ml: Array Float Graph Hashtbl List Pgraph String
