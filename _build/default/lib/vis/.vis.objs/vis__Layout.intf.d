lib/vis/layout.mli: Pgraph
