lib/vis/svg.ml: Buffer Graph Layout List Pgraph Printf Props String
