lib/vis/svg.mli: Pgraph
