open Pgraph

type position = { x : float; y : float }

type t = {
  positions : (string, position) Hashtbl.t;
  layers : (string, int) Hashtbl.t;
  width : float;
  height : float;
}

(* Break cycles: run a DFS in node-id order and drop back edges; the
   remaining DAG determines the ranking.  Only the ranking uses the
   reduced edge set — all edges are still drawn. *)
let acyclic_out_edges g =
  let state = Hashtbl.create 16 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let kept = Hashtbl.create 32 in
  let rec dfs id =
    Hashtbl.replace state id 1;
    List.iter
      (fun (e : Graph.edge) ->
        let tgt = e.Graph.edge_tgt in
        match Hashtbl.find_opt state tgt with
        | Some 1 -> ()  (* back edge: drop from ranking *)
        | Some _ -> Hashtbl.replace kept e.Graph.edge_id ()
        | None ->
            Hashtbl.replace kept e.Graph.edge_id ();
            dfs tgt)
      (List.sort
         (fun (a : Graph.edge) b -> String.compare a.Graph.edge_id b.Graph.edge_id)
         (Graph.out_edges g id));
    Hashtbl.replace state id 2
  in
  List.iter
    (fun (n : Graph.node) -> if not (Hashtbl.mem state n.Graph.node_id) then dfs n.Graph.node_id)
    (Graph.nodes g);
  fun id ->
    List.filter (fun (e : Graph.edge) -> Hashtbl.mem kept e.Graph.edge_id) (Graph.out_edges g id)

(* Longest-path ranking over the acyclic reduction. *)
let rank g =
  let out = acyclic_out_edges g in
  let memo = Hashtbl.create 16 in
  let rec depth id =
    match Hashtbl.find_opt memo id with
    | Some d -> d
    | None ->
        (* Pre-mark to guard against any residual cycle. *)
        Hashtbl.replace memo id 0;
        let d =
          List.fold_left
            (fun acc (e : Graph.edge) -> max acc (1 + depth e.Graph.edge_tgt))
            0 (out id)
        in
        Hashtbl.replace memo id d;
        d
  in
  let max_depth =
    List.fold_left (fun acc (n : Graph.node) -> max acc (depth n.Graph.node_id)) 0 (Graph.nodes g)
  in
  (* Flip so that sources (roots of the longest paths) sit on layer 0. *)
  let layers = Hashtbl.create 16 in
  List.iter
    (fun (n : Graph.node) ->
      Hashtbl.replace layers n.Graph.node_id (max_depth - depth n.Graph.node_id))
    (Graph.nodes g);
  (layers, max_depth)

let barycenter_passes = 4

let compute ?(h_gap = 160.) ?(v_gap = 90.) g =
  let layers, max_depth = rank g in
  (* Initial within-layer order: node id (deterministic). *)
  let layer_members = Array.make (max_depth + 1) [] in
  List.iter
    (fun (n : Graph.node) ->
      let l = Hashtbl.find layers n.Graph.node_id in
      layer_members.(l) <- n.Graph.node_id :: layer_members.(l))
    (Graph.nodes g);
  Array.iteri
    (fun i members -> layer_members.(i) <- List.sort String.compare members)
    layer_members;
  (* Barycenter ordering: alternate downward and upward sweeps, sorting
     each layer by the mean index of its neighbours in the fixed layer. *)
  let index_of = Hashtbl.create 16 in
  let refresh_indices l =
    List.iteri (fun i id -> Hashtbl.replace index_of id (float_of_int i)) layer_members.(l)
  in
  for l = 0 to max_depth do
    refresh_indices l
  done;
  let neighbours id ~upward =
    let edges = if upward then Graph.out_edges g id else Graph.in_edges g id in
    List.filter_map
      (fun (e : Graph.edge) ->
        let other = if upward then e.Graph.edge_tgt else e.Graph.edge_src in
        Hashtbl.find_opt index_of other)
      edges
  in
  let sort_layer l ~upward =
    let score id =
      match neighbours id ~upward with
      | [] -> Hashtbl.find index_of id
      | ns -> List.fold_left ( +. ) 0. ns /. float_of_int (List.length ns)
    in
    let scored = List.map (fun id -> (score id, id)) layer_members.(l) in
    layer_members.(l) <-
      List.map snd
        (List.sort
           (fun (a, ida) (b, idb) ->
             let c = Float.compare a b in
             if c <> 0 then c else String.compare ida idb)
           scored);
    refresh_indices l
  in
  for _ = 1 to barycenter_passes do
    for l = 1 to max_depth do
      sort_layer l ~upward:false
    done;
    for l = max_depth - 1 downto 0 do
      sort_layer l ~upward:true
    done
  done;
  (* Coordinates: centre every layer horizontally. *)
  let widest =
    Array.fold_left (fun acc members -> max acc (List.length members)) 1 layer_members
  in
  let width = (float_of_int widest +. 0.5) *. h_gap in
  let height = (float_of_int (max_depth + 1) +. 0.5) *. v_gap in
  let positions = Hashtbl.create 16 in
  Array.iteri
    (fun l members ->
      let k = List.length members in
      let x0 = (width -. (float_of_int (k - 1) *. h_gap)) /. 2. in
      List.iteri
        (fun i id ->
          Hashtbl.replace positions id
            { x = x0 +. (float_of_int i *. h_gap); y = (float_of_int l +. 0.75) *. v_gap })
        members)
    layer_members;
  let layer_tbl = Hashtbl.create 16 in
  Hashtbl.iter (fun id l -> Hashtbl.replace layer_tbl id l) layers;
  { positions; layers = layer_tbl; width; height }

let position t id =
  match Hashtbl.find_opt t.positions id with Some p -> p | None -> raise Not_found

let layer t id =
  match Hashtbl.find_opt t.layers id with Some l -> l | None -> raise Not_found

let extent t = (t.width, t.height)

let node_ids t =
  List.sort String.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.positions [])
