(** Layered (Sugiyama-style) layout for provenance graphs: nodes are
    ranked by longest path along edge direction (cycles broken on DFS
    back edges), ordered within each layer by iterated barycenter
    passes, and placed on a grid.  Deterministic: the same graph always
    yields the same drawing. *)

type position = { x : float; y : float }

type t

(** [compute ?h_gap ?v_gap g] lays out [g].  [h_gap]/[v_gap] are the
    horizontal/vertical grid spacings in pixels (defaults 160 and 90). *)
val compute : ?h_gap:float -> ?v_gap:float -> Pgraph.Graph.t -> t

(** Position of a node's centre.  Raises [Not_found] for unknown ids. *)
val position : t -> string -> position

(** Layer index (0 = top) of a node. *)
val layer : t -> string -> int

(** Drawing-area size as [(width, height)] in pixels. *)
val extent : t -> float * float

val node_ids : t -> string list
