open Pgraph

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&#39;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type shape = Rect | Oval

(* The paper's colour code: blue rectangles are processes, yellow ovals
   are artifacts/resources, green/grey ovals are dummy nodes. *)
let style_of_label label =
  match String.lowercase_ascii label with
  | "process" | "task" | "activity" | "event" -> (Rect, "#a7c7e7", "#20496b")
  | "dummy" -> (Oval, "#c8e6c9", "#56695a")
  | "agent" | "machine" -> (Rect, "#e6ccf2", "#5b3f6b")
  | _ -> (Oval, "#f7e39c", "#6b5c1e")

let node_w = 120.
let node_h = 42.

let tooltip_of props =
  match Props.to_list props with
  | [] -> ""
  | kvs ->
      Printf.sprintf "<title>%s</title>"
        (escape (String.concat "\n" (List.map (fun (k, v) -> k ^ " = " ^ v) kvs)))

let truncate_label s = if String.length s <= 18 then s else String.sub s 0 17 ^ "…"

let render_node buf layout (n : Graph.node) =
  let { Layout.x; y } = Layout.position layout n.Graph.node_id in
  let shape, fill, stroke = style_of_label n.Graph.node_label in
  let tooltip = tooltip_of n.Graph.node_props in
  (match shape with
  | Rect ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"6\" fill=\"%s\" \
            stroke=\"%s\">%s</rect>\n"
           (x -. (node_w /. 2.)) (y -. (node_h /. 2.)) node_w node_h fill stroke tooltip)
  | Oval ->
      Buffer.add_string buf
        (Printf.sprintf
           "<ellipse cx=\"%.1f\" cy=\"%.1f\" rx=\"%.1f\" ry=\"%.1f\" fill=\"%s\" stroke=\"%s\">%s</ellipse>\n"
           x y (node_w /. 2.) (node_h /. 2.) fill stroke tooltip));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"12\" fill=\"%s\">%s</text>\n"
       x (y +. 4.) stroke
       (escape (truncate_label n.Graph.node_label)))

(* Clip the edge line against the elliptical/rectangular node boundary so
   arrowheads end at the border rather than the centre. *)
let clip_towards (from_ : Layout.position) (to_ : Layout.position) =
  let dx = to_.Layout.x -. from_.Layout.x and dy = to_.Layout.y -. from_.Layout.y in
  let len = sqrt ((dx *. dx) +. (dy *. dy)) in
  if len < 1. then to_
  else
    let shrink = 30. in
    {
      Layout.x = to_.Layout.x -. (dx /. len *. shrink);
      Layout.y = to_.Layout.y -. (dy /. len *. shrink);
    }

let render_edge buf layout (e : Graph.edge) =
  let src = Layout.position layout e.Graph.edge_src in
  let tgt = Layout.position layout e.Graph.edge_tgt in
  if e.Graph.edge_src = e.Graph.edge_tgt then
    (* Self loop: a small circular arc beside the node. *)
    Buffer.add_string buf
      (Printf.sprintf
         "<path d=\"M %.1f %.1f C %.1f %.1f, %.1f %.1f, %.1f %.1f\" fill=\"none\" \
          stroke=\"#777\" marker-end=\"url(#arrow)\"/>\n"
         (src.Layout.x +. 40.) (src.Layout.y -. 10.) (src.Layout.x +. 110.)
         (src.Layout.y -. 40.) (src.Layout.x +. 110.) (src.Layout.y +. 40.)
         (src.Layout.x +. 45.) (src.Layout.y +. 12.))
  else begin
    let tip = clip_towards src tgt in
    let start = clip_towards tgt src in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#777\" \
          marker-end=\"url(#arrow)\">%s</line>\n"
         start.Layout.x start.Layout.y tip.Layout.x tip.Layout.y (tooltip_of e.Graph.edge_props));
    let mx = (src.Layout.x +. tgt.Layout.x) /. 2. and my = (src.Layout.y +. tgt.Layout.y) /. 2. in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"10\" fill=\"#555\">%s</text>\n"
         mx (my -. 4.)
         (escape (truncate_label e.Graph.edge_label)))
  end

let render ?h_gap ?v_gap g =
  let layout = Layout.compute ?h_gap ?v_gap g in
  let width, height = Layout.extent layout in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\">\n"
       width height width height);
  Buffer.add_string buf
    "<defs><marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\" refX=\"7\" refY=\"3\" \
     orient=\"auto\"><path d=\"M0,0 L7,3 L0,6 z\" fill=\"#777\"/></marker></defs>\n";
  List.iter (render_edge buf layout) (Graph.edges g);
  List.iter (render_node buf layout) (Graph.nodes g);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render_titled ~title g =
  Printf.sprintf
    "<figure class=\"graph\"><figcaption>%s (%s)</figcaption>%s</figure>\n" (escape title)
    (escape (Graph.summary g)) (render g)
