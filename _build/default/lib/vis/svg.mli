(** SVG rendering of provenance graphs, following the visual language of
    the paper's figures: blue rectangles for processes/activities,
    yellow ovals for artifacts/entities, green/grey ovals for the dummy
    nodes that mark where a benchmark result attaches to the background
    graph.  Properties are embedded as hover tooltips. *)

(** [render g] draws the graph with the default layout. *)
val render : ?h_gap:float -> ?v_gap:float -> Pgraph.Graph.t -> string

(** A small legend + caption wrapper used by the HTML report. *)
val render_titled : title:string -> Pgraph.Graph.t -> string

(** XML-escape a string for use in attribute or text context. *)
val escape : string -> string
