test/helpers.ml: Array Format Graph List Oskernel Pgraph Printf Props QCheck QCheck_alcotest Random String
