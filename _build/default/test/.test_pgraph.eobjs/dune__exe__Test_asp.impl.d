test/test_asp.ml: Alcotest Asp Datalog Graph Helpers List Pgraph Printf Props String
