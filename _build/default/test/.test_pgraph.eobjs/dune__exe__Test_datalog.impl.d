test/test_datalog.ml: Alcotest Base Datalog Encode Fact Graph Helpers List Parser Pgraph Props Stats String
