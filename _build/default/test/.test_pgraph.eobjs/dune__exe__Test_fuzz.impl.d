test/test_fuzz.ml: Alcotest Gmatch Graph Graphstore Helpers List Oskernel Pgraph Props Provmark Recorders
