test/test_gmatch.ml: Alcotest Asp_backend Engine Gmatch Graph Helpers Incremental Matching Option Pgraph Props QCheck Random Result Vf2
