test/test_gmatch.mli:
