test/test_graphstore.ml: Alcotest Graphstore List Query Store String
