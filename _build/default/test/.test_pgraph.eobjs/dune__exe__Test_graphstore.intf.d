test/test_graphstore.mli:
