test/test_minijson.ml: Alcotest Helpers Json List Minijson Printf QCheck Random
