test/test_minijson.mli:
