test/test_oskernel.ml: Alcotest Cred Errno Event Filename Fs Int Int64 Kernel List Option Oskernel Prng Process Program String Sys Syscall Trace Trace_io
