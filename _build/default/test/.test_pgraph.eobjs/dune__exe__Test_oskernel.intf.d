test/test_oskernel.mli:
