test/test_pgraph.ml: Alcotest Fingerprint Graph Helpers List Option Pgraph Props Stats
