test/test_pgraph.mli:
