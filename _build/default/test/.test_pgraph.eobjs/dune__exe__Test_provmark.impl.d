test/test_provmark.ml: Alcotest Array Datalog Filename Gmatch Graph Helpers Int List Option Oskernel Pgraph Printf Props Provmark Recorders Set String Sys
