test/test_provmark.mli:
