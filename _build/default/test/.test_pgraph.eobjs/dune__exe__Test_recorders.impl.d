test/test_recorders.ml: Alcotest Gmatch Graph Graphstore Json List Minijson Option Oskernel Pgraph Props Recorders String
