test/test_recorders.mli:
