test/test_vis.ml: Alcotest Graph Helpers List Pgraph Props String Vis
