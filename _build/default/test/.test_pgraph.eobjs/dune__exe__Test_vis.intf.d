test/test_vis.mli:
