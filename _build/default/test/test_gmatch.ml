open Pgraph
open Gmatch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let props = Props.of_list

(* A small provenance-flavoured graph: process reads a file. *)
let read_graph () =
  let g = Graph.add_node Graph.empty ~id:"p1" ~label:"Process" ~props:(props [ ("pid", "100") ]) in
  let g = Graph.add_node g ~id:"f1" ~label:"Artifact" ~props:(props [ ("path", "/tmp/x") ]) in
  Graph.add_edge g ~id:"u1" ~src:"p1" ~tgt:"f1" ~label:"Used" ~props:(props [ ("t", "1") ])

let test_similar_reflexive () =
  let g = read_graph () in
  check_bool "direct" true (Vf2.similar g g);
  check_bool "asp" true (Asp_backend.similar g g)

let test_similar_renamed () =
  let g = read_graph () in
  let h = Helpers.rename_with_prefix "other_" g in
  check_bool "direct" true (Vf2.similar g h);
  check_bool "asp" true (Asp_backend.similar g h)

let test_similar_ignores_props () =
  let g = read_graph () in
  let h = Graph.set_node_props g "p1" (props [ ("pid", "999"); ("extra", "1") ]) in
  check_bool "direct" true (Vf2.similar g h);
  check_bool "asp" true (Asp_backend.similar g h)

let test_not_similar_extra_edge () =
  let g = read_graph () in
  let h = Graph.add_edge g ~id:"u2" ~src:"p1" ~tgt:"f1" ~label:"Used" ~props:Props.empty in
  check_bool "direct" false (Vf2.similar g h);
  check_bool "asp" false (Asp_backend.similar g h)

let test_iso_min_cost_counts_transients () =
  (* Same structure, one transient property differs: cost 1 each way. *)
  let g = read_graph () in
  let h = Graph.set_edge_props (Helpers.rename_with_prefix "r" g) "ru1" (props [ ("t", "2") ]) in
  (match Vf2.iso_min_cost g h with
  | Some m -> check_int "direct cost" 1 m.Matching.cost
  | None -> Alcotest.fail "direct: expected matching");
  match Asp_backend.iso_min_cost g h with
  | Some m -> check_int "asp cost" 1 m.Matching.cost
  | None -> Alcotest.fail "asp: expected matching"

let test_subgraph_in_larger () =
  let bg = read_graph () in
  (* Foreground adds one node and edge — the "target activity". *)
  let fg = Graph.add_node (Helpers.rename_with_prefix "F" bg) ~id:"new" ~label:"Artifact" ~props:Props.empty in
  let fg = Graph.add_edge fg ~id:"gen" ~src:"Fp1" ~tgt:"new" ~label:"WasGeneratedBy" ~props:Props.empty in
  (match Vf2.sub_iso_min_cost bg fg with
  | Some m ->
      check_int "direct cost" 0 m.Matching.cost;
      Alcotest.(check (result unit string)) "verifies" (Ok ()) (Matching.verify ~sub:true bg fg m)
  | None -> Alcotest.fail "direct: expected embedding");
  match Asp_backend.sub_iso_min_cost bg fg with
  | Some m ->
      check_int "asp cost" 0 m.Matching.cost;
      Alcotest.(check (result unit string)) "verifies" (Ok ()) (Matching.verify ~sub:true bg fg m)
  | None -> Alcotest.fail "asp: expected embedding"

let test_matching_verify_detects_garbage () =
  let g = read_graph () in
  let h = Helpers.rename_with_prefix "X" g in
  let bogus = { Matching.node_map = [ ("p1", "Xf1") ]; edge_map = []; cost = 0 } in
  check_bool "rejects label change" true (Result.is_error (Matching.verify ~sub:true g h bogus))

let test_paper_choice_note () =
  (* Section 3.4: matching the larger graph into the smaller one fails,
     while smaller-into-larger succeeds. *)
  let small = read_graph () in
  let large = Graph.add_node (Helpers.rename_with_prefix "L" small) ~id:"extra" ~label:"Artifact" ~props:Props.empty in
  let large = Graph.add_edge large ~id:"e_extra" ~src:"Lp1" ~tgt:"extra" ~label:"Used" ~props:Props.empty in
  check_bool "small embeds in large" true (Option.is_some (Vf2.sub_iso_min_cost small large));
  check_bool "large does not embed in small" true (Option.is_none (Vf2.sub_iso_min_cost large small))

let test_engine_dispatch () =
  let g = read_graph () in
  check_bool "asp backend" true (Engine.similar ~backend:Engine.Asp g g);
  check_bool "direct backend" true (Engine.similar ~backend:Engine.Direct g g);
  check_bool "of_string" true (Engine.backend_of_string "asp" = Ok Engine.Asp);
  check_bool "of_string bad" true (Result.is_error (Engine.backend_of_string "nope"))

let small_arb = Helpers.graph_arbitrary ~max_nodes:4 ~max_edges:4 ()

let pair_arb = QCheck.pair small_arb small_arb

(* ------------------------------------------------------------------ *)
(* Incremental backend (Section 5.4 suggestion)                        *)
(* ------------------------------------------------------------------ *)

let test_incremental_certifies_aligned_graphs () =
  Incremental.reset_stats ();
  (* Two runs of the same deterministic program produce elements in the
     same creation order: the greedy path must certify. *)
  let g1 = read_graph () in
  let g2 = Graph.set_edge_props (Helpers.rename_with_prefix "x" (read_graph ())) "xu1"
      (props [ ("t", "99") ]) in
  (match Incremental.iso_min_cost g1 g2 with
  | Some m -> check_int "optimal cost via fast path" 1 m.Matching.cost
  | None -> Alcotest.fail "expected matching");
  let cert, fb = Incremental.stats () in
  check_int "certified" 1 cert;
  check_int "no fallback" 0 fb

let test_incremental_falls_back () =
  Incremental.reset_stats ();
  (* Reversed creation order breaks the greedy alignment (labels land in
     a different sequence), forcing the exact fallback — same result. *)
  let g1 = read_graph () in
  let g2 = Helpers.permute_ids (Graph.set_node_props g1 "p1" (props [ ("pid", "7") ])) in
  let direct = Vf2.iso_min_cost g1 g2 in
  let inc = Incremental.iso_min_cost g1 g2 in
  (match (direct, inc) with
  | Some a, Some b -> check_int "same cost" a.Matching.cost b.Matching.cost
  | None, None -> ()
  | _ -> Alcotest.fail "backends disagree")

let prop_incremental_agrees_with_direct =
  Helpers.qcheck ~count:80 "incremental backend returns exact costs" pair_arb (fun (g1, g2) ->
      match (Vf2.sub_iso_min_cost g1 g2, Incremental.sub_iso_min_cost g1 g2) with
      | None, None -> true
      | Some a, Some b -> a.Matching.cost = b.Matching.cost
      | Some _, None | None, Some _ -> false)

let prop_incremental_similar_agrees =
  Helpers.qcheck ~count:80 "incremental similarity equals direct" pair_arb (fun (g1, g2) ->
      Incremental.similar g1 g2 = Vf2.similar g1 g2)

(* ------------------------------------------------------------------ *)
(* Cross-checking the two backends on random graphs                    *)
(* ------------------------------------------------------------------ *)

let prop_backends_agree_similar =
  Helpers.qcheck ~count:60 "backends agree on similarity" pair_arb (fun (g1, g2) ->
      Vf2.similar g1 g2 = Asp_backend.similar g1 g2)

let prop_backends_agree_on_self_similarity =
  Helpers.qcheck ~count:60 "every graph is similar to a renamed copy (both backends)" small_arb
    (fun g ->
      let h = Helpers.permute_ids g in
      Vf2.similar g h && Asp_backend.similar g h)

let prop_backends_agree_subgraph_cost =
  Helpers.qcheck ~count:40 "backends agree on optimal embedding cost" pair_arb (fun (g1, g2) ->
      match (Vf2.sub_iso_min_cost g1 g2, Asp_backend.sub_iso_min_cost g1 g2) with
      | None, None -> true
      | Some a, Some b -> a.Matching.cost = b.Matching.cost
      | Some _, None | None, Some _ -> false)

let prop_subgraph_of_self_is_free =
  Helpers.qcheck ~count:60 "embedding a graph into itself has zero cost" small_arb (fun g ->
      match Vf2.sub_iso_min_cost g g with
      | Some m -> m.Matching.cost = 0
      | None -> false)

let prop_random_subgraph_embeds =
  Helpers.qcheck ~count:60 "a random subgraph embeds into its supergraph" small_arb (fun g ->
      let st = Random.State.make [| Graph.size g; 42 |] in
      let sub = Helpers.random_subgraph st g in
      match Vf2.sub_iso_min_cost sub g with
      | Some m -> m.Matching.cost = 0 && Result.is_ok (Matching.verify ~sub:true sub g m)
      | None -> false)

let prop_reported_cost_is_recomputable =
  Helpers.qcheck ~count:40 "reported cost equals recomputed cost" pair_arb (fun (g1, g2) ->
      match Vf2.sub_iso_min_cost g1 g2 with
      | None -> true
      | Some m -> m.Matching.cost = Matching.cost_of g1 g2 m)

let prop_matchings_verify =
  Helpers.qcheck ~count:40 "optimal matchings verify structurally (both backends)" pair_arb
    (fun (g1, g2) ->
      let ok = function
        | None -> true
        | Some m -> Result.is_ok (Matching.verify ~sub:true g1 g2 m)
      in
      ok (Vf2.sub_iso_min_cost g1 g2) && ok (Asp_backend.sub_iso_min_cost g1 g2))

let () =
  Alcotest.run "gmatch"
    [
      ( "similar",
        [
          Alcotest.test_case "reflexive" `Quick test_similar_reflexive;
          Alcotest.test_case "invariant under renaming" `Quick test_similar_renamed;
          Alcotest.test_case "ignores properties" `Quick test_similar_ignores_props;
          Alcotest.test_case "extra edge breaks similarity" `Quick test_not_similar_extra_edge;
        ] );
      ( "matching",
        [
          Alcotest.test_case "generalization counts transients" `Quick test_iso_min_cost_counts_transients;
          Alcotest.test_case "background embeds in foreground" `Quick test_subgraph_in_larger;
          Alcotest.test_case "verify rejects bogus matchings" `Quick test_matching_verify_detects_garbage;
          Alcotest.test_case "pair-choice note from section 3.4" `Quick test_paper_choice_note;
          Alcotest.test_case "engine dispatch" `Quick test_engine_dispatch;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "fast path certifies" `Quick test_incremental_certifies_aligned_graphs;
          Alcotest.test_case "fallback agrees" `Quick test_incremental_falls_back;
          prop_incremental_agrees_with_direct;
          prop_incremental_similar_agrees;
        ] );
      ( "properties",
        [
          prop_backends_agree_similar;
          prop_backends_agree_on_self_similarity;
          prop_backends_agree_subgraph_cost;
          prop_subgraph_of_self_is_free;
          prop_random_subgraph_embeds;
          prop_reported_cost_is_recomputable;
          prop_matchings_verify;
        ] );
    ]
