open Minijson

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let roundtrip j = Json.of_string (Json.to_string j)

let test_print_atoms () =
  check_string "null" "null" (Json.to_string Json.Null);
  check_string "true" "true" (Json.to_string (Json.Bool true));
  check_string "int-like number" "42" (Json.to_string (Json.Number 42.));
  check_string "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_print_escapes () =
  check_string "escapes" "\"a\\\"b\\\\c\\nd\\te\"" (Json.to_string (Json.String "a\"b\\c\nd\te"));
  check_string "control char" "\"\\u0001\"" (Json.to_string (Json.String "\001"))

let test_print_compound () =
  let j = Json.Object [ ("a", Json.Array [ Json.Number 1.; Json.Null ]); ("b", Json.Bool false) ] in
  check_string "object" "{\"a\":[1,null],\"b\":false}" (Json.to_string j)

let test_parse_basic () =
  check_bool "object roundtrip" true
    (Json.equal
       (Json.of_string "{ \"x\" : [1, 2.5, -3], \"y\": {\"z\": null} }")
       (Json.Object
          [
            ("x", Json.Array [ Json.Number 1.; Json.Number 2.5; Json.Number (-3.) ]);
            ("y", Json.Object [ ("z", Json.Null) ]);
          ]))

let test_parse_unicode_escape () =
  check_string "bmp escape" "A" (Json.to_str (Json.of_string "\"\\u0041\""));
  check_string "surrogate pair" "\xf0\x9f\x99\x82" (Json.to_str (Json.of_string "\"\\ud83d\\ude42\""))

let test_parse_errors () =
  let expect_fail s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter expect_fail
    [ "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "[1 2]"; "1 2"; "{'a':1}"; "" ]

let test_member () =
  let j = Json.of_string "{\"a\": 1, \"b\": \"x\"}" in
  check_bool "mem" true (Json.mem "a" j);
  check_bool "not mem" false (Json.mem "c" j);
  Alcotest.(check int) "to_int" 1 (Json.to_int (Json.member "a" j));
  check_string "missing member is Null" "null" (Json.to_string (Json.member "zz" j))

let test_pretty_roundtrip () =
  let j =
    Json.Object
      [ ("list", Json.Array [ Json.String "a"; Json.Object [ ("k", Json.Number 1.) ] ]) ]
  in
  check_bool "pretty parses back" true (Json.equal j (Json.of_string (Json.to_string ~pretty:true j)))

(* Random JSON generator for roundtrip property. *)
let rec random_json depth st =
  let open QCheck.Gen in
  if depth = 0 then
    generate1 ~rand:st
      (oneof
         [
           return Json.Null;
           map (fun b -> Json.Bool b) bool;
           map (fun n -> Json.Number (float_of_int n)) (int_range (-1000) 1000);
           map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
         ])
  else
    match Random.State.int st 3 with
    | 0 ->
        let n = Random.State.int st 4 in
        Json.Array (List.init n (fun _ -> random_json (depth - 1) st))
    | 1 ->
        let n = Random.State.int st 4 in
        Json.Object (List.init n (fun i -> (Printf.sprintf "k%d" i, random_json (depth - 1) st)))
    | _ -> random_json 0 st

let json_arb =
  QCheck.make ~print:(fun j -> Json.to_string ~pretty:true j) (random_json 3)

let prop_roundtrip =
  Helpers.qcheck "print/parse roundtrip" json_arb (fun j -> Json.equal j (roundtrip j))

let prop_pretty_equivalent =
  Helpers.qcheck "pretty and compact parse to the same value" json_arb (fun j ->
      Json.equal (Json.of_string (Json.to_string j)) (Json.of_string (Json.to_string ~pretty:true j)))

let () =
  Alcotest.run "minijson"
    [
      ( "print",
        [
          Alcotest.test_case "atoms" `Quick test_print_atoms;
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "compound" `Quick test_print_compound;
        ] );
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "unicode escapes" `Quick test_parse_unicode_escape;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "member access" `Quick test_member;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
        ] );
      ("properties", [ prop_roundtrip; prop_pretty_equivalent ]);
    ]
