open Oskernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  check_bool "different streams" false (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))

let test_prng_bounds () =
  let p = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int p 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float p in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_split_independent () =
  let parent = Prng.create ~seed:3L in
  let child = Prng.split parent in
  check_bool "split differs from parent continuation" false
    (Int64.equal (Prng.next_int64 child) (Prng.next_int64 parent))

let test_hex_token_shape () =
  let p = Prng.create ~seed:11L in
  let t = Prng.hex_token p in
  check_int "eight chars" 8 (String.length t);
  check_bool "hex digits" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) t)

(* ------------------------------------------------------------------ *)
(* Cred                                                                *)
(* ------------------------------------------------------------------ *)

let unpriv = Cred.make ~uid:1000 ~gid:1000

let test_cred_root_setuid () =
  match Cred.setuid Cred.root 42 with
  | Ok c ->
      check_int "ruid" 42 c.Cred.ruid;
      check_int "euid" 42 c.Cred.euid;
      check_int "suid" 42 c.Cred.suid
  | Error _ -> Alcotest.fail "root setuid must succeed"

let test_cred_unpriv_setuid_denied () =
  match Cred.setuid unpriv 0 with
  | Error Errno.EPERM -> ()
  | _ -> Alcotest.fail "unprivileged setuid(0) must fail with EPERM"

let test_cred_unpriv_setuid_to_own () =
  match Cred.setuid unpriv 1000 with
  | Ok c -> check_int "euid unchanged" 1000 c.Cred.euid
  | Error _ -> Alcotest.fail "setuid to own uid must succeed"

let test_cred_setresuid_saved_id () =
  (* A process with saved uid 2000 may switch its effective uid to it. *)
  let c = { unpriv with Cred.suid = 2000 } in
  match Cred.setresuid c (-1) 2000 (-1) with
  | Ok c' ->
      check_int "euid switched" 2000 c'.Cred.euid;
      check_int "ruid kept" 1000 c'.Cred.ruid;
      check_int "suid kept" 2000 c'.Cred.suid
  | Error _ -> Alcotest.fail "setresuid to saved uid must succeed"

let test_cred_setresuid_denied () =
  match Cred.setresuid unpriv (-1) 3000 (-1) with
  | Error Errno.EPERM -> ()
  | _ -> Alcotest.fail "setresuid to foreign uid must fail"

let test_cred_setresgid_noop () =
  match Cred.setresgid unpriv (-1) 1000 (-1) with
  | Ok c -> check_bool "no change" true (Cred.equal c unpriv)
  | Error _ -> Alcotest.fail "no-op setresgid must succeed"

let test_cred_setreuid_updates_saved () =
  let c = { unpriv with Cred.suid = 2000 } in
  match Cred.setreuid c 1000 2000 with
  | Ok c' ->
      check_int "euid" 2000 c'.Cred.euid;
      check_int "suid follows euid" 2000 c'.Cred.suid
  | Error _ -> Alcotest.fail "setreuid to permitted ids must succeed"

(* ------------------------------------------------------------------ *)
(* Fs                                                                  *)
(* ------------------------------------------------------------------ *)

let fs_with_file () =
  let fs = Fs.create () in
  match Fs.mkfile fs ~path:"/tmp/a.txt" ~mode:0o644 ~uid:1000 ~gid:1000 with
  | Ok inode -> (fs, inode)
  | Error _ -> Alcotest.fail "mkfile failed"

let test_fs_create_lookup () =
  let fs, inode = fs_with_file () in
  check_bool "path exists" true (Fs.path_exists fs "/tmp/a.txt");
  check_bool "parent implicitly created" true (Fs.path_exists fs "/tmp");
  (match Fs.lookup fs "/tmp/a.txt" with
  | Some i -> check_int "same inode" inode.Fs.ino i.Fs.ino
  | None -> Alcotest.fail "lookup failed");
  check_int "nlink" 1 inode.Fs.nlink

let test_fs_duplicate_rejected () =
  let fs, _ = fs_with_file () in
  match Fs.mkfile fs ~path:"/tmp/a.txt" ~mode:0o644 ~uid:0 ~gid:0 with
  | Error Errno.EEXIST -> ()
  | _ -> Alcotest.fail "duplicate creation must fail"

let test_fs_link_unlink () =
  let fs, inode = fs_with_file () in
  (match Fs.link fs ~old_path:"/tmp/a.txt" ~new_path:"/tmp/b.txt" with
  | Ok i ->
      check_int "same inode" inode.Fs.ino i.Fs.ino;
      check_int "nlink bumped" 2 i.Fs.nlink
  | Error _ -> Alcotest.fail "link failed");
  Alcotest.(check (list string))
    "paths of inode" [ "/tmp/a.txt"; "/tmp/b.txt" ]
    (Fs.paths_of_ino fs inode.Fs.ino);
  (match Fs.unlink fs "/tmp/a.txt" with
  | Ok i -> check_int "nlink back to one" 1 i.Fs.nlink
  | Error _ -> Alcotest.fail "unlink failed");
  check_bool "first path gone" false (Fs.path_exists fs "/tmp/a.txt");
  check_bool "inode survives via second link" true (Fs.find_inode fs inode.Fs.ino <> None);
  (match Fs.unlink fs "/tmp/b.txt" with Ok _ -> () | Error _ -> Alcotest.fail "unlink 2");
  check_bool "inode reclaimed" true (Fs.find_inode fs inode.Fs.ino = None)

let test_fs_unlink_missing () =
  let fs = Fs.create () in
  match Fs.unlink fs "/nope" with
  | Error Errno.ENOENT -> ()
  | _ -> Alcotest.fail "unlink of missing path must fail"

let test_fs_rename () =
  let fs, inode = fs_with_file () in
  (match Fs.rename fs ~old_path:"/tmp/a.txt" ~new_path:"/tmp/z.txt" with
  | Ok i -> check_int "inode preserved" inode.Fs.ino i.Fs.ino
  | Error _ -> Alcotest.fail "rename failed");
  check_bool "old gone" false (Fs.path_exists fs "/tmp/a.txt");
  check_bool "new present" true (Fs.path_exists fs "/tmp/z.txt")

let test_fs_rename_replaces_target () =
  let fs, _ = fs_with_file () in
  (match Fs.mkfile fs ~path:"/tmp/b.txt" ~mode:0o644 ~uid:1000 ~gid:1000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second file");
  let victim = Option.get (Fs.lookup fs "/tmp/b.txt") in
  (match Fs.rename fs ~old_path:"/tmp/a.txt" ~new_path:"/tmp/b.txt" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "rename onto existing failed");
  check_bool "victim inode reclaimed" true (Fs.find_inode fs victim.Fs.ino = None)

let test_fs_symlink_resolve () =
  let fs, inode = fs_with_file () in
  (match Fs.symlink fs ~target:"/tmp/a.txt" ~link_path:"/tmp/s" ~uid:1000 ~gid:1000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "symlink failed");
  match Fs.resolve fs "/tmp/s" with
  | Some i -> check_int "resolves to target inode" inode.Fs.ino i.Fs.ino
  | None -> Alcotest.fail "resolve failed"

let test_fs_truncate_versions () =
  let fs, inode = fs_with_file () in
  let v0 = inode.Fs.version in
  (match Fs.truncate fs "/tmp/a.txt" ~length:5 with
  | Ok i ->
      check_int "size" 5 i.Fs.size;
      check_int "version bumped" (v0 + 1) i.Fs.version
  | Error _ -> Alcotest.fail "truncate failed")

let test_fs_permissions () =
  let fs = Fs.create () in
  let root_file =
    match Fs.mkfile fs ~path:"/etc/passwd" ~mode:0o644 ~uid:0 ~gid:0 with
    | Ok i -> i
    | Error _ -> Alcotest.fail "mkfile"
  in
  let user = Cred.make ~uid:1000 ~gid:1000 in
  check_bool "user may read 0644 root file" true (Fs.may_read root_file user);
  check_bool "user may not write 0644 root file" false (Fs.may_write root_file user);
  check_bool "root may write" true (Fs.may_write root_file Cred.root);
  check_bool "user may not modify /etc" false (Fs.may_modify_dir_of fs "/etc/passwd" user)

let test_fs_mkdir_ownership () =
  let fs = Fs.create () in
  (match Fs.mkdir fs ~path:"/staging" ~mode:0o755 ~uid:1000 ~gid:1000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "mkdir failed");
  let user = Cred.make ~uid:1000 ~gid:1000 in
  check_bool "owner may create files there" true (Fs.may_modify_dir_of fs "/staging/x" user)

let test_fs_pipe_anonymous () =
  let fs = Fs.create () in
  let p = Fs.make_pipe fs in
  check_bool "fifo" true (p.Fs.ftype = Fs.Fifo);
  Alcotest.(check (list string)) "no paths" [] (Fs.paths_of_ino fs p.Fs.ino)

(* ------------------------------------------------------------------ *)
(* Process                                                             *)
(* ------------------------------------------------------------------ *)

let test_process_fd_alloc () =
  let p = Process.create ~pid:100 ~ppid:1 ~comm:"x" ~exe:"/x" ~cred:unpriv in
  let fd1 = Process.alloc_fd p ~ino:5 ~flags:[] in
  let fd2 = Process.alloc_fd p ~ino:6 ~flags:[] in
  check_int "first fd is 3" 3 fd1;
  check_int "next fd is 4" 4 fd2;
  check_bool "close" true (Process.close_fd p fd1);
  check_bool "double close fails" false (Process.close_fd p fd1);
  let fd3 = Process.alloc_fd p ~ino:7 ~flags:[] in
  check_int "freed slot reused" 3 fd3

let test_process_install_fd () =
  let p = Process.create ~pid:100 ~ppid:1 ~comm:"x" ~exe:"/x" ~cred:unpriv in
  Process.install_fd p 10 ~ino:5 ~flags:[];
  Process.install_fd p 10 ~ino:6 ~flags:[];
  match Process.find_fd p 10 with
  | Some e -> check_int "replaced silently" 6 e.Process.ino
  | None -> Alcotest.fail "fd 10 missing"

let test_process_fork_copies_fds () =
  let p = Process.create ~pid:100 ~ppid:1 ~comm:"x" ~exe:"/x" ~cred:unpriv in
  let fd = Process.alloc_fd p ~ino:5 ~flags:[] in
  let child = Process.fork_into p ~pid:101 in
  check_int "ppid" 100 child.Process.ppid;
  (match Process.find_fd child fd with
  | Some e -> check_int "fd inherited" 5 e.Process.ino
  | None -> Alcotest.fail "child lacks fd");
  ignore (Process.close_fd child fd);
  check_bool "parent unaffected by child close" true (Process.find_fd p fd <> None)

(* ------------------------------------------------------------------ *)
(* Syscall metadata                                                    *)
(* ------------------------------------------------------------------ *)

let test_syscall_names_complete () =
  check_int "44 calls in Table 2 order" 44 (List.length Syscall.all_names);
  check_int "no duplicates" 44 (List.length (List.sort_uniq String.compare Syscall.all_names))

let test_syscall_groups () =
  check_int "open in group 1" 1 (Syscall.group (Syscall.Open { path = "x"; flags = []; ret = "r" }));
  check_int "fork in group 2" 2 (Syscall.group Syscall.Fork);
  check_int "setuid in group 3" 3 (Syscall.group (Syscall.Setuid { uid = 0 }));
  check_int "tee in group 4" 4
    (Syscall.group (Syscall.Tee { fd_in = "a"; fd_out = "b" }))

(* ------------------------------------------------------------------ *)
(* Kernel runs                                                         *)
(* ------------------------------------------------------------------ *)

let open_bench =
  Program.make ~name:"t_open" ~syscall:"open"
    ~staging:[ Program.staged_file "/staging/test.txt" ]
    ~target:[ Syscall.Open { path = "/staging/test.txt"; flags = [ Syscall.O_RDWR ]; ret = "id" } ]
    ()

let test_kernel_deterministic () =
  let t1 = Kernel.run ~run_id:5 open_bench Program.Foreground in
  let t2 = Kernel.run ~run_id:5 open_bench Program.Foreground in
  check_bool "same run id, identical traces" true (t1 = t2)

let test_kernel_transients_vary () =
  let t1 = Kernel.run ~run_id:5 open_bench Program.Foreground in
  let t2 = Kernel.run ~run_id:6 open_bench Program.Foreground in
  check_bool "boot ids differ" false (String.equal t1.Trace.boot_id t2.Trace.boot_id);
  check_bool "pids differ" false (t1.Trace.monitored_pid = t2.Trace.monitored_pid);
  check_int "same audit length" (Trace.audit_count t1) (Trace.audit_count t2)

let test_kernel_boilerplate () =
  let t = Kernel.run ~run_id:1 open_bench Program.Background in
  let syscalls = List.map (fun (a : Event.audit_record) -> a.Event.a_syscall) t.Trace.audit in
  check_bool "fork from shell" true (List.mem "fork" syscalls);
  check_bool "execve of the binary" true (List.mem "execve" syscalls);
  check_bool "loader opens libc" true (List.mem "openat" syscalls);
  check_bool "loader mmap" true (List.mem "mmap" syscalls);
  check_bool "implicit exit" true (List.mem "exit" syscalls)

let test_kernel_fg_extends_bg () =
  let bg = Kernel.run ~run_id:1 open_bench Program.Background in
  let fg = Kernel.run ~run_id:1 open_bench Program.Foreground in
  check_int "one extra audit record (open)" (Trace.audit_count bg + 1) (Trace.audit_count fg)

let test_kernel_failed_rename () =
  let prog =
    Program.make ~name:"t_failren" ~syscall:"rename"
      ~staging:[ Program.staged_file "/staging/test.txt" ]
      ~target:[ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
      ()
  in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let rename_audit =
    List.find (fun (a : Event.audit_record) -> a.Event.a_syscall = "rename") t.Trace.audit
  in
  check_bool "audit marks failure" false rename_audit.Event.a_success;
  check_int "audit exit is -EACCES" (-13) rename_audit.Event.a_exit;
  let rename_libc =
    List.find (fun (l : Event.libc_record) -> l.Event.l_func = "rename") t.Trace.libc
  in
  check_int "libc returns -1" (-1) rename_libc.Event.l_ret;
  check_bool "libc errno EACCES" true (rename_libc.Event.l_errno = Some Errno.EACCES);
  let denied =
    List.find (fun (s : Event.lsm_record) -> s.Event.s_hook = "inode_rename") t.Trace.lsm
  in
  check_bool "LSM hook denied" false denied.Event.s_allowed

let test_kernel_vfork_ordering () =
  let prog = Program.make ~name:"t_vfork" ~syscall:"vfork" ~target:[ Syscall.Vfork ] () in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let audits = List.map (fun (a : Event.audit_record) -> (a.Event.a_syscall, a.Event.a_pid)) t.Trace.audit in
  let rec find_positions i = function
    | [] -> (None, None)
    | ("vfork", _) :: rest ->
        let e, _ = find_positions (i + 1) rest in
        (e, Some i)
    | ("exit", pid) :: rest when pid <> t.Trace.monitored_pid && pid <> t.Trace.shell_pid ->
        let _, v = find_positions (i + 1) rest in
        (Some i, v)
    | _ :: rest -> find_positions (i + 1) rest
  in
  match find_positions 0 audits with
  | Some exit_pos, Some vfork_pos ->
      check_bool "child exit logged before parent vfork" true (exit_pos < vfork_pos)
  | _ -> Alcotest.fail "expected both child exit and vfork records"

let test_kernel_fork_ordering () =
  let prog = Program.make ~name:"t_fork" ~syscall:"fork" ~target:[ Syscall.Fork ] () in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let names = List.map (fun (a : Event.audit_record) -> a.Event.a_syscall) t.Trace.audit in
  let fork_pos = ref (-1) and child_exit_pos = ref (-1) in
  List.iteri
    (fun i (a : Event.audit_record) ->
      if a.Event.a_syscall = "fork" && a.Event.a_pid = t.Trace.monitored_pid then fork_pos := i;
      if a.Event.a_syscall = "exit" && a.Event.a_pid <> t.Trace.monitored_pid
         && a.Event.a_pid <> t.Trace.shell_pid && !child_exit_pos < 0
      then child_exit_pos := i)
    t.Trace.audit;
  ignore names;
  check_bool "fork record precedes child exit" true (!fork_pos >= 0 && !fork_pos < !child_exit_pos)

let test_kernel_kill_self_leaves_no_record () =
  let prog = Program.make ~name:"t_kill" ~syscall:"kill" ~target:[ Syscall.Kill { signal = 9 } ] () in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  check_bool "no kill audit record" false
    (List.exists (fun (a : Event.audit_record) -> a.Event.a_syscall = "kill") t.Trace.audit);
  check_bool "no exit record from the killed process" false
    (List.exists
       (fun (a : Event.audit_record) ->
         a.Event.a_syscall = "exit" && a.Event.a_pid = t.Trace.monitored_pid)
       t.Trace.audit)

let test_kernel_bad_fd () =
  let prog = Program.make ~name:"t_badfd" ~syscall:"close" ~target:[ Syscall.Close "nope" ] () in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let close_libc =
    List.find (fun (l : Event.libc_record) -> l.Event.l_func = "close") t.Trace.libc
  in
  check_bool "EBADF" true (close_libc.Event.l_errno = Some Errno.EBADF)

let test_kernel_pipe_and_tee () =
  let prog =
    Program.make ~name:"t_tee" ~syscall:"tee"
      ~setup:
        [
          Syscall.Pipe { ret_read = "p1r"; ret_write = "p1w" };
          Syscall.Pipe { ret_read = "p2r"; ret_write = "p2w" };
          Syscall.Write { fd = "p1w"; count = 16 };
        ]
      ~target:[ Syscall.Tee { fd_in = "p1r"; fd_out = "p2w" } ]
      ()
  in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let tee = List.find (fun (l : Event.libc_record) -> l.Event.l_func = "tee") t.Trace.libc in
  check_int "tee moved bytes" 16 tee.Event.l_ret;
  let perm_hooks =
    List.filter (fun (s : Event.lsm_record) -> s.Event.s_hook = "file_permission") t.Trace.lsm
  in
  check_bool "tee emitted fifo permission hooks" true (List.length perm_hooks >= 3)

let test_kernel_setresuid_changes_euid () =
  let cred = { (Cred.make ~uid:1000 ~gid:1000) with Cred.suid = 2000 } in
  let prog =
    Program.make ~name:"t_setres" ~syscall:"setresuid" ~cred
      ~target:[ Syscall.Setresuid { ruid = -1; euid = 2000; suid = -1 } ]
      ()
  in
  let t = Kernel.run ~run_id:1 prog Program.Foreground in
  let exit_rec =
    List.find
      (fun (a : Event.audit_record) ->
        a.Event.a_syscall = "exit" && a.Event.a_pid = t.Trace.monitored_pid)
      t.Trace.audit
  in
  check_int "exit record carries new euid" 2000 exit_rec.Event.a_euid

let test_kernel_env_has_transient () =
  let t1 = Kernel.run ~run_id:1 open_bench Program.Foreground in
  let t2 = Kernel.run ~run_id:2 open_bench Program.Foreground in
  let session t = List.assoc "XDG_SESSION_ID" t.Trace.env in
  check_bool "session id varies" false (String.equal (session t1) (session t2));
  check_string "PATH stable" (List.assoc "PATH" t1.Trace.env) (List.assoc "PATH" t2.Trace.env)

(* ------------------------------------------------------------------ *)
(* Kernel edge cases                                                   *)
(* ------------------------------------------------------------------ *)

(* Last matching libc record: the boilerplate performs its own execve
   (and loader activity), so target calls are the most recent ones. *)
let libc_of t name =
  match
    List.filter (fun (l : Event.libc_record) -> l.Event.l_func = name) t.Trace.libc
  with
  | [] -> Alcotest.failf "no libc record for %s" name
  | records -> List.nth records (List.length records - 1)

let run_target ?(staging = [ Program.staged_file "/staging/test.txt" ]) ?setup ?cred target =
  let prog = Program.make ~name:"t_edge" ~syscall:"edge" ~staging ?setup ?cred ~target () in
  Kernel.run ~run_id:1 prog Program.Foreground

let test_edge_open_missing_file () =
  let t = run_target ~staging:[] [ Syscall.Open { path = "/staging/ghost"; flags = []; ret = "r" } ] in
  check_bool "ENOENT" true ((libc_of t "open").Event.l_errno = Some Errno.ENOENT)

let test_edge_open_creates_with_o_creat () =
  let t =
    run_target ~staging:[]
      [
        Syscall.Open { path = "/staging/new.txt"; flags = [ Syscall.O_CREAT; Syscall.O_RDWR ]; ret = "r" };
        Syscall.Read { fd = "r"; count = 4 };
      ]
  in
  check_bool "open ok" true ((libc_of t "open").Event.l_errno = None);
  check_bool "read on created file ok" true ((libc_of t "read").Event.l_errno = None)

let test_edge_open_write_denied () =
  let t = run_target [ Syscall.Open { path = "/etc/passwd"; flags = [ Syscall.O_WRONLY ]; ret = "r" } ] in
  check_bool "EACCES" true ((libc_of t "open").Event.l_errno = Some Errno.EACCES)

let test_edge_open_readonly_root_file_ok () =
  let t = run_target [ Syscall.Open { path = "/etc/passwd"; flags = [ Syscall.O_RDONLY ]; ret = "r" } ] in
  check_bool "read-only open permitted" true ((libc_of t "open").Event.l_errno = None)

let test_edge_dup2_names_specific_fd () =
  let t =
    run_target
      ~setup:[ Syscall.Open { path = "/staging/test.txt"; flags = [ Syscall.O_RDWR ]; ret = "a" } ]
      [ Syscall.Dup2 { fd = "a"; newfd = 42; ret = "b" }; Syscall.Write { fd = "b"; count = 3 } ]
  in
  check_int "dup2 returns requested fd" 42 (libc_of t "dup2").Event.l_ret;
  check_bool "write through duplicate ok" true ((libc_of t "write").Event.l_errno = None)

let test_edge_rename_missing_source () =
  let t =
    run_target ~staging:[]
      [ Syscall.Rename { old_path = "/staging/ghost"; new_path = "/staging/x" } ]
  in
  check_bool "ENOENT" true ((libc_of t "rename").Event.l_errno = Some Errno.ENOENT)

let test_edge_link_existing_target () =
  let t =
    run_target
      [ Syscall.Link { old_path = "/staging/test.txt"; new_path = "/staging/test.txt" } ]
  in
  check_bool "EEXIST" true ((libc_of t "link").Event.l_errno = Some Errno.EEXIST)

let test_edge_unlink_then_open_fails () =
  let t =
    run_target
      [
        Syscall.Unlink { path = "/staging/test.txt" };
        Syscall.Open { path = "/staging/test.txt"; flags = []; ret = "r" };
      ]
  in
  check_bool "unlink ok" true ((libc_of t "unlink").Event.l_errno = None);
  check_bool "subsequent open fails" true ((libc_of t "open").Event.l_errno = Some Errno.ENOENT)

let test_edge_chmod_not_owner () =
  let t = run_target [ Syscall.Chmod { path = "/etc/passwd"; mode = 0o777 } ] in
  check_bool "EPERM" true ((libc_of t "chmod").Event.l_errno = Some Errno.EPERM)

let test_edge_chown_to_other_uid_denied () =
  let t = run_target [ Syscall.Chown { path = "/staging/test.txt"; uid = 0; gid = 0 } ] in
  check_bool "EPERM" true ((libc_of t "chown").Event.l_errno = Some Errno.EPERM)

let test_edge_truncate_via_symlink () =
  let t =
    run_target
      ~setup:[ Syscall.Symlink { target = "/staging/test.txt"; link_path = "/staging/ln" } ]
      [ Syscall.Truncate { path = "/staging/ln"; length = 2 } ]
  in
  check_bool "truncate through symlink ok" true ((libc_of t "truncate").Event.l_errno = None)

let test_edge_execve_missing_and_noexec () =
  let t1 = run_target ~staging:[] [ Syscall.Execve { path = "/no/such/binary" } ] in
  check_bool "ENOENT" true ((libc_of t1 "execve").Event.l_errno = Some Errno.ENOENT);
  let t2 = run_target [ Syscall.Execve { path = "/staging/test.txt" } ] in
  check_bool "EACCES for non-executable" true
    ((libc_of t2 "execve").Event.l_errno = Some Errno.EACCES)

let test_edge_two_pipes_are_distinct () =
  let t =
    run_target ~staging:[]
      [
        Syscall.Pipe { ret_read = "r1"; ret_write = "w1" };
        Syscall.Pipe { ret_read = "r2"; ret_write = "w2" };
        Syscall.Write { fd = "w2"; count = 8 };
      ]
  in
  let pipes =
    List.filter (fun (l : Event.libc_record) -> l.Event.l_func = "pipe") t.Trace.libc
  in
  check_int "two pipe calls" 2 (List.length pipes);
  let inos =
    List.concat_map (fun (l : Event.libc_record) -> List.map (fun (f : Event.fd_info) -> f.Event.ino) l.Event.l_fds) pipes
  in
  check_int "two distinct pipe inodes" 2 (List.length (List.sort_uniq Int.compare inos))

(* ------------------------------------------------------------------ *)
(* Trace serialization                                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_io_roundtrip () =
  let t = Kernel.run ~run_id:9 open_bench Program.Foreground in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  check_bool "roundtrip equal" true (t = t')

let test_trace_io_rejects_garbage () =
  let expect_fail s =
    match Trace_io.of_string s with
    | exception Trace_io.Format_error _ -> ()
    | _ -> Alcotest.failf "expected format error for %S" s
  in
  List.iter expect_fail
    [ "not json"; "{}"; "{\"run_id\": \"nope\"}"; "{\"run_id\": 1, \"audit\": [{}]}" ]

let test_trace_io_file () =
  let path = Filename.temp_file "provmark_trace" ".json" in
  let t = Kernel.run ~run_id:3 open_bench Program.Background in
  Trace_io.save path t;
  let t' = Trace_io.load path in
  Sys.remove path;
  check_bool "file roundtrip" true (t = t')

let () =
  Alcotest.run "oskernel"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "hex token shape" `Quick test_hex_token_shape;
        ] );
      ( "cred",
        [
          Alcotest.test_case "root setuid" `Quick test_cred_root_setuid;
          Alcotest.test_case "unprivileged setuid denied" `Quick test_cred_unpriv_setuid_denied;
          Alcotest.test_case "setuid to own uid" `Quick test_cred_unpriv_setuid_to_own;
          Alcotest.test_case "setresuid via saved id" `Quick test_cred_setresuid_saved_id;
          Alcotest.test_case "setresuid denied" `Quick test_cred_setresuid_denied;
          Alcotest.test_case "no-op setresgid" `Quick test_cred_setresgid_noop;
          Alcotest.test_case "setreuid updates saved id" `Quick test_cred_setreuid_updates_saved;
        ] );
      ( "fs",
        [
          Alcotest.test_case "create and lookup" `Quick test_fs_create_lookup;
          Alcotest.test_case "duplicate rejected" `Quick test_fs_duplicate_rejected;
          Alcotest.test_case "link/unlink and nlink" `Quick test_fs_link_unlink;
          Alcotest.test_case "unlink missing" `Quick test_fs_unlink_missing;
          Alcotest.test_case "rename" `Quick test_fs_rename;
          Alcotest.test_case "rename replaces target" `Quick test_fs_rename_replaces_target;
          Alcotest.test_case "symlink resolution" `Quick test_fs_symlink_resolve;
          Alcotest.test_case "truncate bumps version" `Quick test_fs_truncate_versions;
          Alcotest.test_case "permission checks" `Quick test_fs_permissions;
          Alcotest.test_case "mkdir ownership" `Quick test_fs_mkdir_ownership;
          Alcotest.test_case "pipes are anonymous" `Quick test_fs_pipe_anonymous;
        ] );
      ( "process",
        [
          Alcotest.test_case "fd allocation" `Quick test_process_fd_alloc;
          Alcotest.test_case "install replaces" `Quick test_process_install_fd;
          Alcotest.test_case "fork copies fds" `Quick test_process_fork_copies_fds;
        ] );
      ( "syscall",
        [
          Alcotest.test_case "44 names" `Quick test_syscall_names_complete;
          Alcotest.test_case "groups" `Quick test_syscall_groups;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "deterministic per run id" `Quick test_kernel_deterministic;
          Alcotest.test_case "transients vary across runs" `Quick test_kernel_transients_vary;
          Alcotest.test_case "boilerplate present" `Quick test_kernel_boilerplate;
          Alcotest.test_case "foreground extends background" `Quick test_kernel_fg_extends_bg;
          Alcotest.test_case "failed rename observable per layer" `Quick test_kernel_failed_rename;
          Alcotest.test_case "vfork child logged first" `Quick test_kernel_vfork_ordering;
          Alcotest.test_case "fork logged before child exit" `Quick test_kernel_fork_ordering;
          Alcotest.test_case "kill-self leaves no record" `Quick test_kernel_kill_self_leaves_no_record;
          Alcotest.test_case "bad fd register" `Quick test_kernel_bad_fd;
          Alcotest.test_case "pipes and tee" `Quick test_kernel_pipe_and_tee;
          Alcotest.test_case "setresuid changes euid" `Quick test_kernel_setresuid_changes_euid;
          Alcotest.test_case "env transient vs stable" `Quick test_kernel_env_has_transient;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_trace_io_rejects_garbage;
          Alcotest.test_case "file save/load" `Quick test_trace_io_file;
        ] );
      ( "kernel-edges",
        [
          Alcotest.test_case "open missing file" `Quick test_edge_open_missing_file;
          Alcotest.test_case "O_CREAT creates" `Quick test_edge_open_creates_with_o_creat;
          Alcotest.test_case "write-open denied on root file" `Quick test_edge_open_write_denied;
          Alcotest.test_case "read-open allowed on root file" `Quick test_edge_open_readonly_root_file_ok;
          Alcotest.test_case "dup2 targets requested fd" `Quick test_edge_dup2_names_specific_fd;
          Alcotest.test_case "rename missing source" `Quick test_edge_rename_missing_source;
          Alcotest.test_case "link onto existing path" `Quick test_edge_link_existing_target;
          Alcotest.test_case "unlink then open" `Quick test_edge_unlink_then_open_fails;
          Alcotest.test_case "chmod needs ownership" `Quick test_edge_chmod_not_owner;
          Alcotest.test_case "chown to foreign uid denied" `Quick test_edge_chown_to_other_uid_denied;
          Alcotest.test_case "truncate through symlink" `Quick test_edge_truncate_via_symlink;
          Alcotest.test_case "execve failure modes" `Quick test_edge_execve_missing_and_noexec;
          Alcotest.test_case "distinct pipes" `Quick test_edge_two_pipes_are_distinct;
        ] );
    ]
