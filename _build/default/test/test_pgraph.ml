open Pgraph

let props l = Props.of_list l

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Props                                                               *)
(* ------------------------------------------------------------------ *)

let test_props_basic () =
  let p = props [ ("a", "1"); ("b", "2") ] in
  check_int "cardinal" 2 (Props.cardinal p);
  check_bool "mem a" true (Props.mem "a" p);
  Alcotest.(check (option string)) "find b" (Some "2") (Props.find "b" p);
  Alcotest.(check (option string)) "find missing" None (Props.find "c" p);
  let p' = Props.remove "a" p in
  check_int "after remove" 1 (Props.cardinal p');
  check_bool "empty" true (Props.is_empty Props.empty)

let test_props_override () =
  let p = props [ ("k", "old"); ("k", "new") ] in
  Alcotest.(check (option string)) "later wins" (Some "new") (Props.find "k" p);
  check_int "single binding" 1 (Props.cardinal p)

let test_props_intersect () =
  let p = props [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  let q = props [ ("a", "1"); ("b", "different"); ("d", "4") ] in
  let i = Props.intersect p q in
  Alcotest.(check (list (pair string string))) "keeps equal bindings" [ ("a", "1") ] (Props.to_list i)

let test_props_mismatch_cost () =
  let p = props [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  let q = props [ ("a", "1"); ("b", "x") ] in
  check_int "cost p->q" 2 (Props.mismatch_cost p q);
  check_int "cost q->p" 1 (Props.mismatch_cost q p);
  check_int "symmetric" 3 (Props.symmetric_mismatch p q);
  check_int "self cost" 0 (Props.mismatch_cost p p)

let test_props_sorted () =
  let p = props [ ("z", "1"); ("a", "2"); ("m", "3") ] in
  Alcotest.(check (list string)) "keys sorted" [ "a"; "m"; "z" ] (Props.keys p)

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let two_node_graph () =
  let g = Graph.empty in
  let g = Graph.add_node g ~id:"n1" ~label:"entity" ~props:(props [ ("name", "f" ) ]) in
  let g = Graph.add_node g ~id:"n2" ~label:"activity" ~props:Props.empty in
  Graph.add_edge g ~id:"e1" ~src:"n2" ~tgt:"n1" ~label:"used" ~props:Props.empty

let test_graph_basic () =
  let g = two_node_graph () in
  check_int "nodes" 2 (Graph.node_count g);
  check_int "edges" 1 (Graph.edge_count g);
  check_int "size" 3 (Graph.size g);
  check_bool "mem n1" true (Graph.mem_node g "n1");
  check_bool "no n3" false (Graph.mem_node g "n3");
  check_string "summary" "2 nodes, 1 edges" (Graph.summary g)

let test_graph_duplicate_node () =
  let g = two_node_graph () in
  Alcotest.check_raises "duplicate node id"
    (Invalid_argument "Pgraph.Graph.add_node: duplicate identifier n1") (fun () ->
      ignore (Graph.add_node g ~id:"n1" ~label:"x" ~props:Props.empty))

let test_graph_dangling_edge () =
  let g = two_node_graph () in
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Pgraph.Graph.add_edge: unknown source nope") (fun () ->
      ignore (Graph.add_edge g ~id:"e2" ~src:"nope" ~tgt:"n1" ~label:"x" ~props:Props.empty))

let test_graph_edge_id_clash_with_node () =
  let g = two_node_graph () in
  Alcotest.check_raises "edge id reuses node id"
    (Invalid_argument "Pgraph.Graph.add_edge: duplicate identifier n1") (fun () ->
      ignore (Graph.add_edge g ~id:"n1" ~src:"n2" ~tgt:"n1" ~label:"x" ~props:Props.empty))

let test_incidence () =
  let g = two_node_graph () in
  check_int "out of n2" 1 (List.length (Graph.out_edges g "n2"));
  check_int "in of n2" 0 (List.length (Graph.in_edges g "n2"));
  check_int "incident n1" 1 (List.length (Graph.incident_edges g "n1"))

let test_remove_node_cascades () =
  let g = two_node_graph () in
  let g = Graph.remove_node g "n1" in
  check_int "node removed" 1 (Graph.node_count g);
  check_int "incident edge removed" 0 (Graph.edge_count g)

let test_map_ids () =
  let g = two_node_graph () in
  let g' = Graph.map_ids (fun id -> "p_" ^ id) g in
  check_bool "renamed node" true (Graph.mem_node g' "p_n1");
  check_bool "old id gone" false (Graph.mem_node g' "n1");
  let e = Option.get (Graph.find_edge g' "p_e1") in
  check_string "edge src renamed" "p_n2" e.Graph.edge_src

let test_disjoint_union () =
  let g = two_node_graph () in
  let h = Graph.map_ids (fun id -> "h_" ^ id) g in
  let u = Graph.disjoint_union g h in
  check_int "union nodes" 4 (Graph.node_count u);
  Alcotest.check_raises "clash rejected"
    (Invalid_argument "Pgraph.Graph.disjoint_union: identifier clash") (fun () ->
      ignore (Graph.disjoint_union g g))

let test_equality () =
  let g = two_node_graph () in
  let h = two_node_graph () in
  check_bool "equal" true (Graph.equal g h);
  check_bool "equal structure" true (Graph.equal_structure g h);
  let h' = Graph.set_node_props h "n1" (props [ ("name", "other") ]) in
  check_bool "props differ" false (Graph.equal g h');
  check_bool "structure same" true (Graph.equal_structure g h')

(* ------------------------------------------------------------------ *)
(* Subtraction with dummy nodes                                        *)
(* ------------------------------------------------------------------ *)

let test_subtract_keeps_dummies () =
  (* n1 -> n2 -> n3; subtracting n1, n2 and the first edge must keep n2
     as a dummy because the surviving edge e2 still points out of it. *)
  let g = Graph.empty in
  let g = Graph.add_node g ~id:"n1" ~label:"a" ~props:Props.empty in
  let g = Graph.add_node g ~id:"n2" ~label:"b" ~props:(props [ ("k", "v") ]) in
  let g = Graph.add_node g ~id:"n3" ~label:"c" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e1" ~src:"n1" ~tgt:"n2" ~label:"x" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e2" ~src:"n2" ~tgt:"n3" ~label:"y" ~props:Props.empty in
  let d = Graph.subtract_matched g ~matched_nodes:[ "n1"; "n2" ] ~matched_edges:[ "e1" ] in
  check_int "nodes left" 2 (Graph.node_count d);
  check_int "edges left" 1 (Graph.edge_count d);
  let n2 = Option.get (Graph.find_node d "n2") in
  check_bool "n2 is dummy" true (Graph.is_dummy n2);
  check_bool "dummy props cleared" true (Props.is_empty n2.Graph.node_props);
  check_bool "n1 fully gone" false (Graph.mem_node d "n1")

let test_subtract_all () =
  let g = two_node_graph () in
  let d =
    Graph.subtract_matched g ~matched_nodes:[ "n1"; "n2" ] ~matched_edges:[ "e1" ]
  in
  check_int "empty result" 0 (Graph.size d)

let test_subtract_nothing () =
  let g = two_node_graph () in
  let d = Graph.subtract_matched g ~matched_nodes:[] ~matched_edges:[] in
  check_bool "unchanged" true (Graph.equal g d)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  let g = two_node_graph () in
  let s = Stats.of_graph g in
  check_int "nodes" 2 s.Stats.nodes;
  check_int "edges" 1 s.Stats.edges;
  check_int "props" 1 s.Stats.properties;
  check_int "components" 1 s.Stats.connected_components;
  check_string "shape" "2n/1e" (Stats.shape_line s)

let test_stats_components () =
  let g = Graph.empty in
  let g = Graph.add_node g ~id:"a" ~label:"x" ~props:Props.empty in
  let g = Graph.add_node g ~id:"b" ~label:"x" ~props:Props.empty in
  let s = Stats.of_graph g in
  check_int "two components" 2 s.Stats.connected_components;
  check_string "shape mentions components" "2n/0e (2 components)" (Stats.shape_line s)

(* ------------------------------------------------------------------ *)
(* Fingerprints (property-based)                                       *)
(* ------------------------------------------------------------------ *)

let arb = Helpers.graph_arbitrary ()

let prop_fingerprint_rename_invariant =
  Helpers.qcheck "fingerprint invariant under id renaming" arb (fun g ->
      Fingerprint.equal (Fingerprint.of_graph g)
        (Fingerprint.of_graph (Helpers.rename_with_prefix "z" g)))

let prop_fingerprint_permute_invariant =
  Helpers.qcheck "fingerprint invariant under id permutation" arb (fun g ->
      Fingerprint.equal (Fingerprint.of_graph g) (Fingerprint.of_graph (Helpers.permute_ids g)))

let prop_fingerprint_ignores_props =
  Helpers.qcheck "fingerprint ignores properties" arb (fun g ->
      let stripped =
        List.fold_left
          (fun acc (n : Graph.node) -> Graph.set_node_props acc n.Graph.node_id Props.empty)
          g (Graph.nodes g)
      in
      Fingerprint.equal (Fingerprint.of_graph g) (Fingerprint.of_graph stripped))

let prop_fingerprint_detects_label_change =
  Helpers.qcheck "fingerprint changes when a node label changes" arb (fun g ->
      match Graph.nodes g with
      | [] -> true
      | (n : Graph.node) :: _ ->
          let changed =
            Graph.remove_node g n.Graph.node_id |> fun g' ->
            Graph.add_node g' ~id:n.Graph.node_id ~label:"completely-fresh-label"
              ~props:n.Graph.node_props
          in
          (* Removing the node also removes its incident edges, so only
             compare when the node was isolated. *)
          Graph.incident_edges g n.Graph.node_id <> []
          || not (Fingerprint.equal (Fingerprint.of_graph g) (Fingerprint.of_graph changed)))

let prop_subtract_never_raises =
  Helpers.qcheck "subtract_matched total on arbitrary subsets" arb (fun g ->
      let nodes = Graph.node_ids g in
      let edges = Graph.edge_ids g in
      let half l = List.filteri (fun i _ -> i mod 2 = 0) l in
      let d = Graph.subtract_matched g ~matched_nodes:(half nodes) ~matched_edges:(half edges) in
      Graph.size d <= Graph.size g)

let prop_components_bounds =
  Helpers.qcheck "component count is between 1 and node count" arb (fun g ->
      let s = Stats.of_graph g in
      s.Stats.connected_components >= min 1 s.Stats.nodes
      && s.Stats.connected_components <= max 1 s.Stats.nodes)

let () =
  Alcotest.run "pgraph"
    [
      ( "props",
        [
          Alcotest.test_case "basic operations" `Quick test_props_basic;
          Alcotest.test_case "later binding wins" `Quick test_props_override;
          Alcotest.test_case "intersect keeps equal bindings" `Quick test_props_intersect;
          Alcotest.test_case "mismatch cost" `Quick test_props_mismatch_cost;
          Alcotest.test_case "keys sorted" `Quick test_props_sorted;
        ] );
      ( "graph",
        [
          Alcotest.test_case "construction and counts" `Quick test_graph_basic;
          Alcotest.test_case "duplicate node rejected" `Quick test_graph_duplicate_node;
          Alcotest.test_case "dangling edge rejected" `Quick test_graph_dangling_edge;
          Alcotest.test_case "edge/node id clash rejected" `Quick test_graph_edge_id_clash_with_node;
          Alcotest.test_case "incidence queries" `Quick test_incidence;
          Alcotest.test_case "remove node cascades" `Quick test_remove_node_cascades;
          Alcotest.test_case "map_ids renames consistently" `Quick test_map_ids;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "equality" `Quick test_equality;
        ] );
      ( "subtract",
        [
          Alcotest.test_case "keeps endpoints as dummies" `Quick test_subtract_keeps_dummies;
          Alcotest.test_case "full subtraction empties graph" `Quick test_subtract_all;
          Alcotest.test_case "empty subtraction is identity" `Quick test_subtract_nothing;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic stats" `Quick test_stats;
          Alcotest.test_case "components" `Quick test_stats_components;
        ] );
      ( "properties",
        [
          prop_fingerprint_rename_invariant;
          prop_fingerprint_permute_invariant;
          prop_fingerprint_ignores_props;
          prop_fingerprint_detects_label_change;
          prop_subtract_never_raises;
          prop_components_bounds;
        ] );
    ]
