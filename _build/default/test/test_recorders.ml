open Pgraph
module Event = Oskernel.Event
module Program = Oskernel.Program
module Syscall = Oskernel.Syscall
module Kernel = Oskernel.Kernel
module Trace = Oskernel.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* DOT                                                                 *)
(* ------------------------------------------------------------------ *)

let sample_pgraph () =
  let g = Graph.add_node Graph.empty ~id:"a" ~label:"Process" ~props:(Props.of_list [ ("pid", "12") ]) in
  let g = Graph.add_node g ~id:"b" ~label:"Artifact" ~props:(Props.of_list [ ("path", "/x y") ]) in
  Graph.add_edge g ~id:"e0" ~src:"a" ~tgt:"b" ~label:"Used" ~props:(Props.of_list [ ("op", "read") ])

let test_dot_roundtrip () =
  let g = sample_pgraph () in
  let text = Recorders.Dot.to_string (Recorders.Dot.of_pgraph ~name:"t" g) in
  let g' = Recorders.Dot.to_pgraph (Recorders.Dot.of_string text) in
  check_bool "roundtrip" true (Graph.equal g g')

let test_dot_escapes () =
  let g =
    Graph.add_node Graph.empty ~id:"n\"1" ~label:"L"
      ~props:(Props.of_list [ ("k", "va\\lue\nnext") ])
  in
  let text = Recorders.Dot.to_string (Recorders.Dot.of_pgraph ~name:"t" g) in
  let g' = Recorders.Dot.to_pgraph (Recorders.Dot.of_string text) in
  check_bool "escape roundtrip" true (Graph.equal g g')

let test_dot_parse_plain () =
  let g =
    Recorders.Dot.of_string
      {|digraph "spade" {
        "v1" ["type"="Process", "pid"="5"];
        "v2" ["type"="Artifact"];
        "v1" -> "v2" ["type"="Used"];
      }|}
  in
  check_int "nodes" 2 (List.length g.Recorders.Dot.g_nodes);
  check_int "edges" 1 (List.length g.Recorders.Dot.g_edges);
  let pg = Recorders.Dot.to_pgraph g in
  check_string "label from type attr" "Process"
    (Option.get (Graph.find_node pg "v1")).Graph.node_label

let test_dot_parse_errors () =
  let expect_fail s =
    match Recorders.Dot.of_string s with
    | exception Recorders.Dot.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected DOT parse error for %S" s
  in
  List.iter expect_fail
    [ "graph g {}"; "digraph g { \"a\" -> ; }"; "digraph g { \"a\" [x=]; }"; "digraph g {" ]

let test_dot_undeclared_edge_node () =
  match
    Recorders.Dot.to_pgraph
      (Recorders.Dot.of_string "digraph g { \"a\" [\"type\"=\"X\"]; \"a\" -> \"ghost\"; }")
  with
  | exception Recorders.Dot.Parse_error _ -> ()
  | _ -> Alcotest.fail "edge to undeclared node must be rejected"

(* ------------------------------------------------------------------ *)
(* PROV-JSON                                                           *)
(* ------------------------------------------------------------------ *)

let camflow_like_graph () =
  let g = Graph.add_node Graph.empty ~id:"t1" ~label:"task" ~props:(Props.of_list [ ("cf:pid", "9") ]) in
  let g = Graph.add_node g ~id:"f1" ~label:"file" ~props:(Props.of_list [ ("cf:ino", "77") ]) in
  let g = Graph.add_node g ~id:"p1" ~label:"path" ~props:(Props.of_list [ ("cf:pathname", "/z") ]) in
  let g = Graph.add_node g ~id:"m1" ~label:"machine" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"u1" ~src:"t1" ~tgt:"f1" ~label:"used" ~props:(Props.of_list [ ("cf:type", "open") ]) in
  let g = Graph.add_edge g ~id:"n1" ~src:"p1" ~tgt:"f1" ~label:"named" ~props:Props.empty in
  Graph.add_edge g ~id:"a1" ~src:"t1" ~tgt:"m1" ~label:"wasAssociatedWith" ~props:Props.empty

let test_provjson_roundtrip () =
  let g = camflow_like_graph () in
  let g' = Recorders.Provjson.of_string (Recorders.Provjson.to_string g) in
  check_bool "roundtrip" true (Graph.equal g g')

let test_provjson_sections () =
  let j = Recorders.Provjson.of_pgraph (camflow_like_graph ()) in
  let open Minijson in
  check_bool "task in activity section" true (Json.mem "t1" (Json.member "activity" j));
  check_bool "file in entity section" true (Json.mem "f1" (Json.member "entity" j));
  check_bool "path in entity section" true (Json.mem "p1" (Json.member "entity" j));
  check_bool "machine in agent section" true (Json.mem "m1" (Json.member "agent" j));
  check_bool "used section" true (Json.mem "u1" (Json.member "used" j));
  check_bool "named in generic relation section" true (Json.mem "n1" (Json.member "relation" j));
  (* Endpoint keys follow the PROV-JSON conventions. *)
  let u = Json.member "u1" (Json.member "used" j) in
  check_string "prov:activity" "t1" (Json.to_str (Json.member "prov:activity" u));
  check_string "prov:entity" "f1" (Json.to_str (Json.member "prov:entity" u))

let test_provjson_errors () =
  let expect_fail s =
    match Recorders.Provjson.of_string s with
    | exception Recorders.Provjson.Format_error _ -> ()
    | _ -> Alcotest.failf "expected PROV-JSON error for %S" s
  in
  List.iter expect_fail
    [
      "[]";
      "{\"mystery\": {\"x\": {}}}";
      "{\"used\": {\"u\": {\"prov:activity\": \"ghost\", \"prov:entity\": \"also-ghost\"}}}";
      "{\"entity\": {\"e\": {}}, \"used\": {\"u\": {\"prov:activity\": \"e\"}}}";
      "not json at all";
    ]

(* ------------------------------------------------------------------ *)
(* SPADE                                                               *)
(* ------------------------------------------------------------------ *)

let run_prog ?(run_id = 1) prog variant = Kernel.run ~run_id prog variant

let staged = [ Program.staged_file "/staging/test.txt" ]

let prog_of ?(staging = staged) ?(setup = []) ?cred syscall target =
  Program.make ~name:("t_" ^ syscall) ~syscall ~staging ~setup ?cred ~target ()

let open_setup = [ Syscall.Open { path = "/staging/test.txt"; flags = [ Syscall.O_RDWR ]; ret = "id" } ]

let spade_graph ?config prog variant =
  Recorders.Spade.build ?config (run_prog prog variant)

let test_spade_open_adds_node_and_edge () =
  let prog = prog_of "open" open_setup in
  let bg = spade_graph prog Program.Background in
  let fg = spade_graph prog Program.Foreground in
  check_int "one extra node" (Graph.node_count bg + 1) (Graph.node_count fg);
  check_int "one extra edge" (Graph.edge_count bg + 1) (Graph.edge_count fg)

let test_spade_failed_calls_invisible () =
  let prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
  in
  let bg = spade_graph prog Program.Background in
  let fg = spade_graph prog Program.Foreground in
  check_bool "success-only audit rules" true (Graph.equal_structure bg fg)

let test_spade_success_only_off_records_failures () =
  let prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
  in
  let config = { Recorders.Spade.default_config with Recorders.Spade.success_only = false } in
  let bg = spade_graph ~config prog Program.Background in
  let fg = spade_graph ~config prog Program.Foreground in
  check_bool "failed call now visible" true (Graph.size fg > Graph.size bg)

let test_spade_vfork_disconnected () =
  let prog = prog_of ~staging:[] "vfork" [ Syscall.Vfork ] in
  let g = spade_graph prog Program.Foreground in
  (* The vfork child process vertex exists but has no incident edge. *)
  let disconnected =
    List.filter
      (fun (n : Graph.node) ->
        n.Graph.node_label = "Process" && Graph.incident_edges g n.Graph.node_id = [])
      (Graph.nodes g)
  in
  check_int "exactly one disconnected process" 1 (List.length disconnected)

let test_spade_fork_connected () =
  let prog = prog_of ~staging:[] "fork" [ Syscall.Fork ] in
  let g = spade_graph prog Program.Foreground in
  let disconnected =
    List.filter (fun (n : Graph.node) -> Graph.incident_edges g n.Graph.node_id = []) (Graph.nodes g)
  in
  check_int "no disconnected vertices" 0 (List.length disconnected)

let test_spade_dup_not_recorded () =
  let prog = prog_of "dup" ~setup:open_setup [ Syscall.Dup { fd = "id"; ret = "id2" } ] in
  let bg = spade_graph prog Program.Background in
  let fg = spade_graph prog Program.Foreground in
  check_bool "dup invisible" true (Graph.equal_structure bg fg)

let test_spade_versioning () =
  let prog = prog_of "write" ~setup:open_setup [ Syscall.Write { fd = "id"; count = 8 } ] in
  let plain = spade_graph prog Program.Foreground in
  let config = { Recorders.Spade.default_config with Recorders.Spade.versioning = true } in
  let versioned = spade_graph ~config prog Program.Foreground in
  check_bool "versioning adds artifact versions" true (Graph.size versioned > Graph.size plain)

let test_spade_truncate_edges () =
  let prog = prog_of "open" open_setup in
  let full = Recorders.Dot.to_pgraph (Recorders.Dot.of_string (Recorders.Spade.record (run_prog prog Program.Foreground))) in
  let truncated =
    Recorders.Dot.to_pgraph
      (Recorders.Dot.of_string (Recorders.Spade.record ~truncate_edges:2 (run_prog prog Program.Foreground)))
  in
  check_int "two edges dropped" (Graph.edge_count full - 2) (Graph.edge_count truncated)

let test_spade_transients_differ_across_runs () =
  let prog = prog_of "open" open_setup in
  let g1 = spade_graph ~config:Recorders.Spade.default_config prog Program.Foreground in
  let g2 = Recorders.Spade.build (run_prog ~run_id:2 prog Program.Foreground) in
  check_bool "same shape" true (Gmatch.Vf2.similar g1 g2);
  check_bool "but not property-equal (transients)" false
    (match Gmatch.Vf2.iso_min_cost g1 g2 with Some m -> m.Gmatch.Matching.cost = 0 | None -> true)

let test_spade_setres_bug () =
  let prog =
    prog_of ~staging:[] "setresgid" [ Syscall.Setresgid { rgid = -1; egid = 1000; sgid = -1 } ]
  in
  let config = { Recorders.Spade.default_config with Recorders.Spade.simplify = false } in
  let g = spade_graph ~config prog Program.Foreground in
  let flags_edges =
    List.filter (fun (e : Graph.edge) -> Props.mem "flags" e.Graph.edge_props) (Graph.edges g)
  in
  check_int "buggy edge present" 1 (List.length flags_edges);
  (* And with simplify on, the call leaves nothing behind. *)
  let clean = spade_graph prog Program.Foreground in
  let clean_bg = spade_graph prog Program.Background in
  check_bool "invisible with simplify" true (Graph.equal_structure clean clean_bg)

let test_spade_procfs_enrichment () =
  let prog = prog_of "open" open_setup in
  let plain = spade_graph prog Program.Foreground in
  let enriched =
    spade_graph ~config:{ Recorders.Spade.default_config with Recorders.Spade.use_procfs = true }
      prog Program.Foreground
  in
  let has_cwd g =
    List.exists (fun (n : Graph.node) -> Props.mem "cwd" n.Graph.node_props) (Graph.nodes g)
  in
  check_bool "baseline has no procfs props" false (has_cwd plain);
  check_bool "procfs adds cwd/cmdline" true (has_cwd enriched);
  check_bool "same structure either way" true (Gmatch.Vf2.similar plain enriched)

(* ------------------------------------------------------------------ *)
(* OPUS                                                                *)
(* ------------------------------------------------------------------ *)

let opus_graph ?config prog variant =
  let store = Recorders.Opus.record ?config (run_prog prog variant) in
  Graphstore.Store.open_db store;
  Recorders.Opus.store_to_pgraph store

let test_opus_env_recorded () =
  let prog = prog_of "open" open_setup in
  let g = opus_graph prog Program.Background in
  let metas = List.filter (fun (n : Graph.node) -> n.Graph.node_label = "Meta") (Graph.nodes g) in
  check_int "ten environment nodes" 10 (List.length metas);
  let without_env =
    opus_graph ~config:{ Recorders.Opus.default_config with Recorders.Opus.record_env = false } prog
      Program.Background
  in
  check_bool "env accounts for the size difference" true
    (Graph.size g - Graph.size without_env = 20)

let test_opus_failed_rename_same_structure () =
  let ok_prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/staging/r.txt" } ]
  in
  let failed_prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
  in
  let g_ok = opus_graph ok_prog Program.Foreground in
  let g_fail = opus_graph failed_prog Program.Foreground in
  check_int "same node count" (Graph.node_count g_ok) (Graph.node_count g_fail);
  check_int "same edge count" (Graph.edge_count g_ok) (Graph.edge_count g_fail);
  let ret_of g =
    List.find_map
      (fun (n : Graph.node) ->
        match Props.find "op" n.Graph.node_props with
        | Some "rename" -> Props.find "ret" n.Graph.node_props
        | _ -> None)
      (Graph.nodes g)
  in
  Alcotest.(check (option string)) "success returns 0" (Some "0") (ret_of g_ok);
  Alcotest.(check (option string)) "failure returns -1" (Some "-1") (ret_of g_fail)

let test_opus_dup_two_unconnected_nodes () =
  let prog = prog_of "dup" ~setup:open_setup [ Syscall.Dup { fd = "id"; ret = "id2" } ] in
  let bg = opus_graph prog Program.Background in
  let fg = opus_graph prog Program.Foreground in
  check_int "two new nodes" (Graph.node_count bg + 2) (Graph.node_count fg);
  (* Find the two new-node ids and check no edge connects them directly. *)
  let bg_ids = Graph.node_ids bg in
  let new_ids = List.filter (fun id -> not (List.mem id bg_ids)) (Graph.node_ids fg) in
  check_int "names" 2 (List.length new_ids);
  match new_ids with
  | [ x; y ] ->
      check_bool "not directly connected" false
        (List.exists
           (fun (e : Graph.edge) ->
             (e.Graph.edge_src = x && e.Graph.edge_tgt = y)
             || (e.Graph.edge_src = y && e.Graph.edge_tgt = x))
           (Graph.edges fg))
  | _ -> Alcotest.fail "expected two new nodes"

let test_opus_clone_blind () =
  let prog = prog_of ~staging:[] "clone" [ Syscall.Clone ] in
  let bg = opus_graph prog Program.Background in
  let fg = opus_graph prog Program.Foreground in
  check_bool "clone invisible to interposition" true (Graph.equal_structure bg fg)

let test_opus_fork_large () =
  let prog = prog_of "fork" ~setup:open_setup [ Syscall.Fork ] in
  let bg = opus_graph prog Program.Background in
  let fg = opus_graph prog Program.Foreground in
  (* Event + child + cloned local binding and their edges. *)
  check_bool "fork graph notably larger" true (Graph.size fg - Graph.size bg >= 6)

let test_opus_record_io_flag () =
  let prog = prog_of "read" ~setup:open_setup [ Syscall.Read { fd = "id"; count = 8 } ] in
  let bg = opus_graph prog Program.Background in
  let fg = opus_graph prog Program.Foreground in
  check_bool "default config blind to reads" true (Graph.equal_structure bg fg);
  let io = { Recorders.Opus.default_config with Recorders.Opus.record_io = true } in
  let fg_io = opus_graph ~config:io prog Program.Foreground in
  let bg_io = opus_graph ~config:io prog Program.Background in
  check_bool "record_io surfaces the read" true (Graph.size fg_io > Graph.size bg_io)

(* ------------------------------------------------------------------ *)
(* CamFlow                                                             *)
(* ------------------------------------------------------------------ *)

let camflow_graph ?config ?session prog variant =
  Recorders.Camflow.build ?config ?session (run_prog prog variant)

let test_camflow_open_file_and_path () =
  let prog = prog_of "open" open_setup in
  let bg = camflow_graph prog Program.Background in
  let fg = camflow_graph prog Program.Foreground in
  let count label g =
    List.length (List.filter (fun (n : Graph.node) -> n.Graph.node_label = label) (Graph.nodes g))
  in
  check_int "adds a file entity" (count "file" bg + 1) (count "file" fg);
  check_int "adds a path entity" (count "path" bg + 1) (count "path" fg)

let test_camflow_denied_not_recorded () =
  let prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
  in
  let bg = camflow_graph prog Program.Background in
  let fg = camflow_graph prog Program.Foreground in
  check_bool "denied hook not serialized" true (Graph.equal_structure bg fg)

let test_camflow_rename_adds_new_path_only () =
  let prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/staging/r.txt" } ]
  in
  let fg = camflow_graph prog Program.Foreground in
  let pathnames =
    List.filter_map
      (fun (n : Graph.node) -> Props.find "cf:pathname" n.Graph.node_props)
      (Graph.nodes fg)
  in
  check_bool "new path present" true (List.mem "/staging/r.txt" pathnames);
  (* The old path was never opened in this program, so it does not
     appear at all — matching the paper's rename description. *)
  check_bool "old path absent" false (List.mem "/staging/test.txt" pathnames)

let test_camflow_skip_list () =
  List.iter
    (fun (syscall, target) ->
      let prog = prog_of ~staging:staged ~setup:open_setup syscall target in
      let bg = camflow_graph prog Program.Background in
      let fg = camflow_graph prog Program.Foreground in
      check_bool (syscall ^ " not serialized") true (Graph.equal_structure bg fg))
    [
      ("dup", [ Syscall.Dup { fd = "id"; ret = "id2" } ]);
      ("symlink", [ Syscall.Symlink { target = "/staging/test.txt"; link_path = "/staging/s" } ]);
      ("mknod", [ Syscall.Mknod { path = "/staging/f" } ]);
      ("pipe", [ Syscall.Pipe { ret_read = "r"; ret_write = "w" } ]);
      ("close", [ Syscall.Close "id" ]);
    ]

let test_camflow_write_versions () =
  let prog = prog_of "write" ~setup:open_setup [ Syscall.Write { fd = "id"; count = 4 } ] in
  let fg = camflow_graph prog Program.Foreground in
  let derived =
    List.filter (fun (e : Graph.edge) -> e.Graph.edge_label = "wasDerivedFrom") (Graph.edges fg)
  in
  check_bool "write derives a new entity version" true (List.length derived >= 1)

let test_camflow_reserialize_workaround () =
  let prog = prog_of "open" open_setup in
  (* With the 0.4.5 workaround (default), two runs have the same shape. *)
  let g1 = camflow_graph prog Program.Foreground in
  let g2 = Recorders.Camflow.build (run_prog ~run_id:2 prog Program.Foreground) in
  check_bool "workaround: consistent runs" true (Gmatch.Vf2.similar g1 g2);
  (* Without it, nodes already serialized in the session are withheld,
     so the second run's graph is smaller — the problem the paper
     reports having had to work around with the CamFlow developers. *)
  let config = { Recorders.Camflow.default_config with Recorders.Camflow.reserialize = false } in
  let session = Recorders.Camflow.new_session () in
  let h1 = Recorders.Camflow.build ~config ~session (run_prog ~run_id:1 prog Program.Foreground) in
  let h2 = Recorders.Camflow.build ~config ~session (run_prog ~run_id:2 prog Program.Foreground) in
  check_bool "first run complete" true (Graph.size h1 > Graph.size h2);
  check_bool "runs inconsistent" false (Gmatch.Vf2.similar h1 h2)

let test_camflow_session_required () =
  let prog = prog_of "open" open_setup in
  let config = { Recorders.Camflow.default_config with Recorders.Camflow.reserialize = false } in
  match Recorders.Camflow.build ~config (run_prog prog Program.Foreground) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reserialize=false without session must be rejected"

let test_camflow_track_self_varies () =
  let prog = prog_of "open" open_setup in
  let config = { Recorders.Camflow.default_config with Recorders.Camflow.track_self = true } in
  let g1 = Recorders.Camflow.build ~config (run_prog ~run_id:1 prog Program.Foreground) in
  let g5 =
    List.find_map
      (fun run_id ->
        let g = Recorders.Camflow.build ~config (run_prog ~run_id prog Program.Foreground) in
        if Graph.size g <> Graph.size g1 then Some g else None)
      [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  check_bool "self-tracking makes run sizes vary" true (Option.is_some g5)

let test_camflow_filter_types () =
  let prog = prog_of "open" open_setup in
  let filtered =
    Recorders.Camflow.build
      ~config:{ Recorders.Camflow.default_config with Recorders.Camflow.filter_types = [ "path" ] }
      (run_prog prog Program.Foreground)
  in
  check_bool "no path entities" false
    (List.exists (fun (n : Graph.node) -> n.Graph.node_label = "path") (Graph.nodes filtered));
  (* File entities survive, with their incident used edges. *)
  check_bool "file entities kept" true
    (List.exists (fun (n : Graph.node) -> n.Graph.node_label = "file") (Graph.nodes filtered));
  check_bool "no dangling named edges" false
    (List.exists (fun (e : Graph.edge) -> e.Graph.edge_label = "named") (Graph.edges filtered))

let test_camflow_output_parses () =
  let prog = prog_of "open" open_setup in
  let text = Recorders.Camflow.record (run_prog prog Program.Foreground) in
  let g = Recorders.Provjson.of_string text in
  check_bool "non-empty" true (Graph.size g > 0);
  check_bool "same as direct build" true (Graph.equal g (camflow_graph prog Program.Foreground))

(* ------------------------------------------------------------------ *)
(* PROV-DM constraints                                                 *)
(* ------------------------------------------------------------------ *)

let test_prov_constraints_accept_camflow () =
  let prog = prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/staging/r.txt" } ] in
  let g = Recorders.Camflow.build (run_prog prog Program.Foreground) in
  Alcotest.(check (list string)) "no violations" []
    (List.map Recorders.Prov_constraints.violation_to_string (Recorders.Prov_constraints.check g))

let test_prov_constraints_reject_bad_used () =
  (* A used edge from an entity to an entity violates PROV-DM. *)
  let g = Graph.add_node Graph.empty ~id:"f1" ~label:"file" ~props:Props.empty in
  let g = Graph.add_node g ~id:"f2" ~label:"file" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"u" ~src:"f1" ~tgt:"f2" ~label:"used" ~props:Props.empty in
  match Recorders.Prov_constraints.check g with
  | [ v ] ->
      check_string "edge named" "u" v.Recorders.Prov_constraints.edge_id;
      check_bool "rule mentions used" true
        (String.length (Recorders.Prov_constraints.violation_to_string v) > 0)
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_prov_constraints_ignore_unknown_relations () =
  let g = Graph.add_node Graph.empty ~id:"a" ~label:"file" ~props:Props.empty in
  let g = Graph.add_node g ~id:"b" ~label:"task" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"x" ~src:"a" ~tgt:"b" ~label:"EXOTIC" ~props:Props.empty in
  check_int "unknown relations ignored" 0 (List.length (Recorders.Prov_constraints.check g))

let test_prov_categories () =
  check_bool "task is activity" true (Recorders.Prov_constraints.category_of_label "task" = `Activity);
  check_bool "machine is agent" true (Recorders.Prov_constraints.category_of_label "machine" = `Agent);
  check_bool "file is entity" true (Recorders.Prov_constraints.category_of_label "file" = `Entity)

(* ------------------------------------------------------------------ *)
(* SPADE with the CamFlow reporter (extension)                         *)
(* ------------------------------------------------------------------ *)

let spc_graph prog variant = Recorders.Spade_camflow.build (run_prog prog variant)

let test_spc_uses_spade_vocabulary () =
  let g = spc_graph (prog_of "open" open_setup) Program.Foreground in
  let labels = List.sort_uniq String.compare (Graph.node_label_multiset g) in
  check_bool "only OPM labels" true
    (List.for_all (fun l -> List.mem l [ "Process"; "Artifact" ]) labels)

let test_spc_chown_covered () =
  (* The audit-based SPADE misses chown; the LSM reporter sees the
     inode_setattr hook. *)
  let prog = prog_of "chown" [ Syscall.Chown { path = "/staging/test.txt"; uid = -1; gid = 1000 } ] in
  let bg = spc_graph prog Program.Background in
  let fg = spc_graph prog Program.Foreground in
  check_bool "chown visible" true (Graph.size fg > Graph.size bg)

let test_spc_symlink_not_covered () =
  let prog =
    prog_of "symlink" [ Syscall.Symlink { target = "/staging/test.txt"; link_path = "/staging/s" } ]
  in
  let bg = spc_graph prog Program.Background in
  let fg = spc_graph prog Program.Foreground in
  check_bool "symlink invisible (0.4.5 hook gap)" true (Graph.equal_structure bg fg)

let test_spc_vfork_connected () =
  (* task_alloc fires at fork time, so the vfork child connects — the DV
     quirk is specific to the audit reporter. *)
  let g = spc_graph (prog_of ~staging:[] "vfork" [ Syscall.Vfork ]) Program.Foreground in
  let disconnected =
    List.filter (fun (n : Graph.node) -> Graph.incident_edges g n.Graph.node_id = []) (Graph.nodes g)
  in
  check_int "no disconnected vertices" 0 (List.length disconnected)

let test_spc_denied_invisible () =
  let prog =
    prog_of "rename" [ Syscall.Rename { old_path = "/staging/test.txt"; new_path = "/etc/passwd" } ]
  in
  let bg = spc_graph prog Program.Background in
  let fg = spc_graph prog Program.Foreground in
  check_bool "denied hooks not reported" true (Graph.equal_structure bg fg)

let test_spc_output_is_dot () =
  let text = Recorders.Spade_camflow.record (run_prog (prog_of "open" open_setup) Program.Foreground) in
  let g = Recorders.Dot.to_pgraph (Recorders.Dot.of_string text) in
  check_bool "parses as DOT" true (Graph.size g > 0)

let () =
  Alcotest.run "recorders"
    [
      ( "dot",
        [
          Alcotest.test_case "roundtrip" `Quick test_dot_roundtrip;
          Alcotest.test_case "escapes" `Quick test_dot_escapes;
          Alcotest.test_case "parse" `Quick test_dot_parse_plain;
          Alcotest.test_case "parse errors" `Quick test_dot_parse_errors;
          Alcotest.test_case "undeclared edge endpoint" `Quick test_dot_undeclared_edge_node;
        ] );
      ( "provjson",
        [
          Alcotest.test_case "roundtrip" `Quick test_provjson_roundtrip;
          Alcotest.test_case "sections" `Quick test_provjson_sections;
          Alcotest.test_case "errors" `Quick test_provjson_errors;
        ] );
      ( "spade",
        [
          Alcotest.test_case "open adds node+edge" `Quick test_spade_open_adds_node_and_edge;
          Alcotest.test_case "failed calls invisible" `Quick test_spade_failed_calls_invisible;
          Alcotest.test_case "success-only off" `Quick test_spade_success_only_off_records_failures;
          Alcotest.test_case "vfork disconnected (DV)" `Quick test_spade_vfork_disconnected;
          Alcotest.test_case "fork connected" `Quick test_spade_fork_connected;
          Alcotest.test_case "dup not recorded" `Quick test_spade_dup_not_recorded;
          Alcotest.test_case "versioning flag" `Quick test_spade_versioning;
          Alcotest.test_case "truncation flake" `Quick test_spade_truncate_edges;
          Alcotest.test_case "transient properties vary" `Quick test_spade_transients_differ_across_runs;
          Alcotest.test_case "setres* bug without simplify" `Quick test_spade_setres_bug;
          Alcotest.test_case "procfs enrichment" `Quick test_spade_procfs_enrichment;
        ] );
      ( "opus",
        [
          Alcotest.test_case "environment recorded" `Quick test_opus_env_recorded;
          Alcotest.test_case "failed rename same structure" `Quick test_opus_failed_rename_same_structure;
          Alcotest.test_case "dup: two unconnected nodes" `Quick test_opus_dup_two_unconnected_nodes;
          Alcotest.test_case "clone blind spot" `Quick test_opus_clone_blind;
          Alcotest.test_case "fork graph large" `Quick test_opus_fork_large;
          Alcotest.test_case "record_io flag" `Quick test_opus_record_io_flag;
        ] );
      ( "prov-constraints",
        [
          Alcotest.test_case "camflow output accepted" `Quick test_prov_constraints_accept_camflow;
          Alcotest.test_case "bad used rejected" `Quick test_prov_constraints_reject_bad_used;
          Alcotest.test_case "unknown relations ignored" `Quick test_prov_constraints_ignore_unknown_relations;
          Alcotest.test_case "label categories" `Quick test_prov_categories;
        ] );
      ( "spade+camflow",
        [
          Alcotest.test_case "OPM vocabulary" `Quick test_spc_uses_spade_vocabulary;
          Alcotest.test_case "chown gained" `Quick test_spc_chown_covered;
          Alcotest.test_case "symlink lost" `Quick test_spc_symlink_not_covered;
          Alcotest.test_case "vfork connected" `Quick test_spc_vfork_connected;
          Alcotest.test_case "denied invisible" `Quick test_spc_denied_invisible;
          Alcotest.test_case "DOT output" `Quick test_spc_output_is_dot;
        ] );
      ( "camflow",
        [
          Alcotest.test_case "open: file and path entities" `Quick test_camflow_open_file_and_path;
          Alcotest.test_case "denied operations skipped" `Quick test_camflow_denied_not_recorded;
          Alcotest.test_case "rename adds only the new path" `Quick test_camflow_rename_adds_new_path_only;
          Alcotest.test_case "0.4.5 serialization gaps" `Quick test_camflow_skip_list;
          Alcotest.test_case "writes version entities" `Quick test_camflow_write_versions;
          Alcotest.test_case "reserialize workaround" `Quick test_camflow_reserialize_workaround;
          Alcotest.test_case "session required" `Quick test_camflow_session_required;
          Alcotest.test_case "self-tracking varies" `Quick test_camflow_track_self_varies;
          Alcotest.test_case "capture filters" `Quick test_camflow_filter_types;
          Alcotest.test_case "PROV-JSON output parses" `Quick test_camflow_output_parses;
        ] );
    ]
