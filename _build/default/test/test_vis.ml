open Pgraph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let props = Props.of_list

let chain () =
  let g = Graph.add_node Graph.empty ~id:"a" ~label:"Process" ~props:(props [ ("pid", "1") ]) in
  let g = Graph.add_node g ~id:"b" ~label:"Artifact" ~props:Props.empty in
  let g = Graph.add_node g ~id:"c" ~label:"Artifact" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e1" ~src:"a" ~tgt:"b" ~label:"Used" ~props:Props.empty in
  Graph.add_edge g ~id:"e2" ~src:"b" ~tgt:"c" ~label:"WasDerivedFrom" ~props:Props.empty

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_all_nodes_placed () =
  let g = chain () in
  let l = Vis.Layout.compute g in
  Alcotest.(check (list string)) "all ids" [ "a"; "b"; "c" ] (Vis.Layout.node_ids l);
  List.iter (fun id -> ignore (Vis.Layout.position l id)) [ "a"; "b"; "c" ]

let test_layout_layers_follow_edges () =
  let g = chain () in
  let l = Vis.Layout.compute g in
  check_int "a on layer 0" 0 (Vis.Layout.layer l "a");
  check_int "b below a" 1 (Vis.Layout.layer l "b");
  check_int "c below b" 2 (Vis.Layout.layer l "c")

let test_layout_within_extent () =
  let g = chain () in
  let l = Vis.Layout.compute g in
  let w, h = Vis.Layout.extent l in
  List.iter
    (fun id ->
      let { Vis.Layout.x; y } = Vis.Layout.position l id in
      check_bool "x in range" true (x >= 0. && x <= w);
      check_bool "y in range" true (y >= 0. && y <= h))
    [ "a"; "b"; "c" ]

let test_layout_deterministic () =
  let g = chain () in
  let l1 = Vis.Layout.compute g and l2 = Vis.Layout.compute g in
  List.iter
    (fun id ->
      let p1 = Vis.Layout.position l1 id and p2 = Vis.Layout.position l2 id in
      check_bool "same position" true (p1 = p2))
    [ "a"; "b"; "c" ]

let test_layout_handles_cycles () =
  let g = Graph.add_node Graph.empty ~id:"x" ~label:"P" ~props:Props.empty in
  let g = Graph.add_node g ~id:"y" ~label:"P" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e1" ~src:"x" ~tgt:"y" ~label:"r" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e2" ~src:"y" ~tgt:"x" ~label:"r" ~props:Props.empty in
  let l = Vis.Layout.compute g in
  check_int "two nodes placed" 2 (List.length (Vis.Layout.node_ids l))

let test_layout_self_loop () =
  let g = Graph.add_node Graph.empty ~id:"x" ~label:"P" ~props:Props.empty in
  let g = Graph.add_edge g ~id:"e" ~src:"x" ~tgt:"x" ~label:"r" ~props:Props.empty in
  ignore (Vis.Layout.compute g)

let test_layout_unknown_raises () =
  let l = Vis.Layout.compute (chain ()) in
  Alcotest.check_raises "unknown id" Not_found (fun () -> ignore (Vis.Layout.position l "nope"))

let test_layout_distinct_positions () =
  let g = chain () in
  let l = Vis.Layout.compute g in
  let ps = List.map (Vis.Layout.position l) (Vis.Layout.node_ids l) in
  check_int "distinct positions" (List.length ps) (List.length (List.sort_uniq compare ps))

(* ------------------------------------------------------------------ *)
(* SVG                                                                 *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln > 0 && go 0

let test_svg_escape () =
  check_string "escaping" "&lt;a&gt; &amp; &quot;b&#39;&quot;" (Vis.Svg.escape "<a> & \"b'\"")

let test_svg_shapes_by_label () =
  let svg = Vis.Svg.render (chain ()) in
  check_bool "process drawn as rect" true (contains svg "<rect");
  check_bool "artifact drawn as ellipse" true (contains svg "<ellipse");
  check_bool "arrowhead marker defined" true (contains svg "marker id=\"arrow\"");
  check_bool "edge label present" true (contains svg "WasDerivedFrom")

let test_svg_tooltips_carry_props () =
  let svg = Vis.Svg.render (chain ()) in
  check_bool "pid tooltip" true (contains svg "<title>pid = 1</title>")

let test_svg_escapes_content () =
  let g =
    Graph.add_node Graph.empty ~id:"n" ~label:"bad<label>"
      ~props:(props [ ("k", "a&b") ])
  in
  let svg = Vis.Svg.render g in
  check_bool "label escaped" true (contains svg "bad&lt;label&gt;");
  check_bool "prop escaped" true (contains svg "a&amp;b");
  check_bool "no raw angle content" false (contains svg "bad<label>")

let test_svg_balanced () =
  let svg = Vis.Svg.render (chain ()) in
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length svg then acc
      else if String.sub svg i (String.length needle) = needle then
        go (i + String.length needle) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "one svg open" 1 (count "<svg");
  check_int "one svg close" 1 (count "</svg>");
  check_int "texts balanced" (count "<text") (count "</text>")

let test_svg_titled () =
  let html = Vis.Svg.render_titled ~title:"benchmark <result>" (chain ()) in
  check_bool "caption escaped" true (contains html "benchmark &lt;result&gt;");
  check_bool "figure wrapper" true (contains html "<figure class=\"graph\">")

(* ------------------------------------------------------------------ *)
(* Properties on random graphs                                         *)
(* ------------------------------------------------------------------ *)

let arb = Helpers.graph_arbitrary ~max_nodes:8 ~max_edges:12 ()

let prop_layout_total =
  Helpers.qcheck ~count:100 "layout places every node inside the extent" arb (fun g ->
      let l = Vis.Layout.compute g in
      let w, h = Vis.Layout.extent l in
      List.length (Vis.Layout.node_ids l) = Pgraph.Graph.node_count g
      && List.for_all
           (fun id ->
             let { Vis.Layout.x; y } = Vis.Layout.position l id in
             x >= 0. && x <= w && y >= 0. && y <= h)
           (Vis.Layout.node_ids l))

let prop_svg_renders =
  Helpers.qcheck ~count:100 "svg renders any graph" arb (fun g ->
      let svg = Vis.Svg.render g in
      String.length svg > 0 && contains svg "</svg>")

let () =
  Alcotest.run "vis"
    [
      ( "layout",
        [
          Alcotest.test_case "all nodes placed" `Quick test_layout_all_nodes_placed;
          Alcotest.test_case "layers follow edges" `Quick test_layout_layers_follow_edges;
          Alcotest.test_case "within extent" `Quick test_layout_within_extent;
          Alcotest.test_case "deterministic" `Quick test_layout_deterministic;
          Alcotest.test_case "cycles" `Quick test_layout_handles_cycles;
          Alcotest.test_case "self loops" `Quick test_layout_self_loop;
          Alcotest.test_case "unknown id" `Quick test_layout_unknown_raises;
          Alcotest.test_case "distinct positions" `Quick test_layout_distinct_positions;
        ] );
      ( "svg",
        [
          Alcotest.test_case "escape" `Quick test_svg_escape;
          Alcotest.test_case "shapes by label" `Quick test_svg_shapes_by_label;
          Alcotest.test_case "tooltips" `Quick test_svg_tooltips_carry_props;
          Alcotest.test_case "content escaped" `Quick test_svg_escapes_content;
          Alcotest.test_case "balanced tags" `Quick test_svg_balanced;
          Alcotest.test_case "titled wrapper" `Quick test_svg_titled;
        ] );
      ("properties", [ prop_layout_total; prop_svg_renders ]);
    ]
