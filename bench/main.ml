(* Benchmark harness: regenerates every table and figure of the paper's
   demonstration and evaluation sections (Sections 4 and 5).

     dune exec bench/main.exe

   Absolute numbers differ from the paper (the substrate is a simulator,
   not the authors' testbed); the *shapes* are the reproduction targets:
   which tool records which call (Table 2), which structures they build
   (Table 3 / Figure 1), OPUS an order of magnitude slower to transform
   than SPADE/CamFlow (Figures 5-7), and the scalability trends
   (Figures 8-10). *)

module Recorder = Recorders.Recorder
module Result_ = Provmark.Result

let section title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "============================================================\n\n"

let config_for tool = Provmark.Config.default tool

(* ------------------------------------------------------------------ *)
(* Table 1: benchmarked syscalls                                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: benchmarked syscalls (22 families, 44 calls)";
  let groups = [ (1, "Files"); (2, "Processes"); (3, "Permissions"); (4, "Pipes") ] in
  List.iter
    (fun (g, name) ->
      let calls =
        List.filter (fun s -> Provmark.Bench_registry.group_of s = g) Oskernel.Syscall.all_names
      in
      Printf.printf "%d  %-12s %s\n" g name (String.concat ", " calls))
    groups

(* ------------------------------------------------------------------ *)
(* Table 2: validation matrix                                          *)
(* ------------------------------------------------------------------ *)

let run_matrix () =
  List.map
    (fun tool ->
      let config = config_for tool in
      (tool, List.map (Provmark.Runner.run config) Provmark.Bench_registry.all))
    Recorder.all_tools

let table2 matrix =
  section "Table 2: summary of validation results";
  print_string (Provmark.Report.validation_matrix matrix);
  let ok, total = Provmark.Report.agreement matrix in
  Printf.printf "\nAgreement with the paper's Table 2: %d/%d cells\n" ok total;
  Printf.printf "\nCoverage by Table 1 group (recorded / benchmarked):\n%s"
    (Provmark.Coverage.render (Provmark.Coverage.of_matrix matrix))

(* ------------------------------------------------------------------ *)
(* Table 3: example benchmark structures                               *)
(* ------------------------------------------------------------------ *)

let table3 matrix =
  section "Table 3: example benchmark result structures";
  print_string
    (Provmark.Report.structure_table matrix
       ~syscalls:[ "open"; "read"; "write"; "dup"; "setuid"; "setresuid" ])

(* ------------------------------------------------------------------ *)
(* Figure 1: the rename call across the three recorders                *)
(* ------------------------------------------------------------------ *)

let figure1 matrix =
  section "Figure 1: a rename system call, as recorded by the three recorders";
  List.iter
    (fun (tool, results) ->
      match
        List.find_opt (fun (r : Result_.t) -> r.Result_.syscall = "rename") results
      with
      | Some { Result_.status = Result_.Target g; _ } ->
          Printf.printf "--- %s (%s) ---\n" (Recorder.tool_name tool)
            (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g));
          Format.printf "%a@.@." Pgraph.Graph.pp g
      | _ -> Printf.printf "--- %s: no rename target graph ---\n" (Recorder.tool_name tool))
    matrix

(* ------------------------------------------------------------------ *)
(* Figures 5-7: per-stage timing for representative syscalls           *)
(* ------------------------------------------------------------------ *)

let figure_syscalls = [ "open"; "execve"; "fork"; "setuid"; "rename" ]

let figures_5_to_7 matrix =
  List.iter
    (fun (tool, results) ->
      let fig =
        match tool with
        | Recorder.Spade -> 5
        | Recorder.Opus -> 6
        | Recorder.Camflow | Recorder.Spade_camflow | Recorder.Spade_neo4j -> 7
      in
      section
        (Printf.sprintf "Figure %d: timing results, %s+%s" fig (Recorder.tool_name tool)
           (Recorder.format_name tool));
      let subset =
        List.filter_map
          (fun s -> List.find_opt (fun (r : Result_.t) -> r.Result_.syscall = s) results)
          figure_syscalls
      in
      print_string (Provmark.Report.timing_lines subset))
    matrix

(* ------------------------------------------------------------------ *)
(* Figures 8-10: scalability                                           *)
(* ------------------------------------------------------------------ *)

let figures_8_to_10 () =
  List.iter
    (fun tool ->
      let fig =
        match tool with
        | Recorder.Spade -> 8
        | Recorder.Opus -> 9
        | Recorder.Camflow | Recorder.Spade_camflow | Recorder.Spade_neo4j -> 10
      in
      section
        (Printf.sprintf "Figure %d: scalability results, %s+%s" fig (Recorder.tool_name tool)
           (Recorder.format_name tool));
      let config = config_for tool in
      let results = List.map (Provmark.Runner.run config) Provmark.Scalability.all in
      print_string (Provmark.Report.timing_lines results);
      (* Also report the target sizes: graph growth drives time growth. *)
      List.iter
        (fun (r : Result_.t) ->
          match r.Result_.status with
          | Result_.Target g ->
              Printf.printf "  %s target: %s\n" r.Result_.benchmark
                (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g))
          | _ -> Printf.printf "  %s target: %s\n" r.Result_.benchmark (Result_.status_word r))
        results)
    Recorder.all_tools

(* ------------------------------------------------------------------ *)
(* Table 4: module sizes                                                *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  end

let table4 () =
  section "Table 4: module sizes (OCaml lines of code)";
  Printf.printf "%-16s %-10s %-10s %-10s\n" "Module" "SPADE" "OPUS" "CamFlow";
  Printf.printf "%-16s %-10s %-10s %-10s\n" "(Format)" "(DOT)" "(Neo4j)" "(PROV-JSON)";
  let show name files =
    Printf.printf "%-16s" name;
    List.iter
      (fun paths ->
        let total =
          List.fold_left (fun acc p -> acc + Option.value (count_lines p) ~default:0) 0 paths
        in
        Printf.printf " %-9s" (if total = 0 then "n/a" else string_of_int total))
      files;
    print_newline ()
  in
  show "Recording"
    [ [ "lib/recorders/spade.ml" ]; [ "lib/recorders/opus.ml" ]; [ "lib/recorders/camflow.ml" ] ];
  show "Transformation"
    [
      [ "lib/recorders/dot.ml" ];
      [ "lib/graphstore/store.ml"; "lib/graphstore/query.ml" ];
      [ "lib/recorders/provjson.ml" ];
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the three processing stages            *)
(* ------------------------------------------------------------------ *)

let stage_closures tool =
  (* Pre-record the rename benchmark once; the staged closures then
     exercise exactly one pipeline stage each. *)
  let config = config_for tool in
  let prog = Provmark.Bench_registry.find_exn "rename" in
  let bg_recs, fg_recs = Provmark.Recording.record_all config prog in
  let one_output = (List.hd bg_recs).Provmark.Recording.output in
  let bg_graphs = Provmark.Transform.batch bg_recs in
  let fg_graphs = Provmark.Transform.batch fg_recs in
  let generalize graphs =
    Provmark.Generalize.generalize ~backend:config.Provmark.Config.backend
      ~filter:config.Provmark.Config.filter_graphs
      ~pair_choice:config.Provmark.Config.pair_choice graphs
  in
  let general graphs =
    match generalize graphs with
    | Ok o -> o.Provmark.Generalize.general
    | Error _ -> Pgraph.Graph.empty
  in
  let bg = general bg_graphs and fg = general fg_graphs in
  ( (fun () -> ignore (Provmark.Transform.to_pgraph one_output)),
    (fun () -> ignore (generalize bg_graphs)),
    fun () -> ignore (Provmark.Compare.compare ~backend:config.Provmark.Config.backend ~bg ~fg) )

let microbench () =
  section "Bechamel micro-benchmarks: stage cost on the rename benchmark";
  let open Bechamel in
  let tests =
    List.concat_map
      (fun tool ->
        let transform, generalize, compare = stage_closures tool in
        let name stage = Printf.sprintf "%s/%s" (Recorder.tool_name tool) stage in
        [
          Test.make ~name:(name "transformation") (Staged.stage transform);
          Test.make ~name:(name "generalization") (Staged.stage generalize);
          Test.make ~name:(name "comparison") (Staged.stage compare);
        ])
      Recorder.all_tools
  in
  let grouped = Test.make_grouped ~name:"stages" tests in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%14.0f ns/run  (%10.4f ms)" e (e /. 1e6)
        | _ -> "n/a"
      in
      Printf.printf "%-40s %s\n" name est)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let timed f =
  let t0 = Provmark.Trace_span.now_s () in
  let v = f () in
  (v, Provmark.Trace_span.now_s () -. t0)

let ablations () =
  section "Ablations: design choices of the pipeline";
  (* 1. ASP backend (paper Listings 3/4 through the mini answer-set
     solver) vs the direct VF2-style matcher: same verdicts, different
     solving time. *)
  Printf.printf "--- matching backend (rename benchmark) ---\n";
  List.iter
    (fun tool ->
      let run backend =
        timed (fun () ->
            Provmark.Runner.run
              { (config_for tool) with Provmark.Config.backend }
              (Provmark.Bench_registry.find_exn "rename"))
      in
      let direct, t_direct = run Gmatch.Engine.Direct in
      let asp, t_asp = run Gmatch.Engine.Asp in
      Printf.printf "%-8s direct: %-8s %7.3fs   asp: %-8s %7.3fs  (agree: %b)\n"
        (Recorder.tool_name tool) (Result_.status_word direct) t_direct
        (Result_.status_word asp) t_asp
        (Result_.status_word direct = Result_.status_word asp))
    Recorder.all_tools;
  (* 2. Representative-pair choice: smallest (paper default) vs largest
     similarity class — both work (Section 3.4). *)
  Printf.printf "\n--- representative pair choice (open benchmark, SPADE) ---\n";
  List.iter
    (fun (label, pair_choice) ->
      let r =
        Provmark.Runner.run
          { (config_for Recorder.Spade) with Provmark.Config.pair_choice }
          (Provmark.Bench_registry.find_exn "open")
      in
      Printf.printf "%-9s -> %s\n" label (Result_.summary r))
    [ ("smallest", Provmark.Config.Smallest); ("largest", Provmark.Config.Largest) ];
  (* 3. The incremental backend (Section 5.4's suggested optimization):
     creation-order alignment certifies most matchings without search;
     the certified/fallback split is the interesting statistic. *)
  Printf.printf "\n--- incremental matching (full SPADE benchmark suite) ---\n";
  Gmatch.Incremental.reset_stats ();
  let t_direct =
    let t0 = Provmark.Trace_span.now_s () in
    List.iter
      (fun p -> ignore (Provmark.Runner.run (config_for Recorder.Spade) p))
      Provmark.Bench_registry.all;
    Provmark.Trace_span.now_s () -. t0
  in
  let t_inc =
    let t0 = Provmark.Trace_span.now_s () in
    List.iter
      (fun p ->
        ignore
          (Provmark.Runner.run
             { (config_for Recorder.Spade) with Provmark.Config.backend = Gmatch.Engine.Incremental }
             p))
      Provmark.Bench_registry.all;
    Provmark.Trace_span.now_s () -. t0
  in
  let cert, fb = Gmatch.Incremental.stats () in
  Printf.printf "direct backend: %.2fs   incremental: %.2fs   fast path: %d certified, %d fallbacks\n"
    t_direct t_inc cert fb;
  (* 4. Graph filtering x trial count under recorder flakiness: how
     often does a single attempt fail (before the retry policy)? *)
  Printf.printf "\n--- graph filtering x trials (CamFlow, 30 seeds, open benchmark) ---\n";
  List.iter
    (fun (filter_graphs, trials) ->
      let failures = ref 0 in
      for seed = 1 to 30 do
        let config =
          { (config_for Recorder.Camflow) with Provmark.Config.filter_graphs; trials; seed }
        in
        match
          (Provmark.Runner.run_once config (Provmark.Bench_registry.find_exn "open"))
            .Result_.status
        with
        | Result_.Failed _ -> incr failures
        | Result_.Target _ | Result_.Empty -> ()
      done;
      Printf.printf "filter=%-5b trials=%d -> %d/30 single-attempt failures\n" filter_graphs
        trials !failures)
    [ (false, 2); (false, 5); (true, 2); (true, 5) ]

(* ------------------------------------------------------------------ *)
(* Extension: SPADE with the CamFlow reporter (paper Section 2 mentions
   this configuration as untried)                                       *)
(* ------------------------------------------------------------------ *)

let extension_spade_camflow () =
  section "Extension: SPADE+Audit vs SPADE with the CamFlow reporter";
  Printf.printf "%-12s %-12s %-14s %s\n" "syscall" "SPADE+Audit" "SPADE+CamFlow" "delta";
  let audit_cfg = config_for Recorder.Spade in
  let cam_cfg = config_for Recorder.Spade_camflow in
  let gained = ref 0 and lost = ref 0 in
  List.iter
    (fun (prog : Oskernel.Program.t) ->
      let status cfg = Result_.status_word (Provmark.Runner.run cfg prog) in
      let a = status audit_cfg and c = status cam_cfg in
      let delta =
        match (a, c) with
        | "empty", "ok" ->
            incr gained;
            "<- gained by LSM coverage"
        | "ok", "empty" ->
            incr lost;
            "<- lost (hook not serialized)"
        | _ -> ""
      in
      if delta <> "" then
        Printf.printf "%-12s %-12s %-14s %s\n" prog.Oskernel.Program.syscall a c delta)
    Provmark.Bench_registry.all;
  Printf.printf "\nSwitching SPADE's reporter from Linux Audit to CamFlow gains %d syscalls\n" !gained;
  Printf.printf "and loses %d, keeping SPADE's OPM vocabulary throughout.\n" !lost;
  (* The vfork quirk disappears: task_alloc fires at fork time, so the
     child process vertex connects. *)
  let vfork cfg =
    match (Provmark.Runner.run cfg (Provmark.Bench_registry.find_exn "vfork")).Result_.status with
    | Result_.Target g -> Result_.has_disconnected_node g
    | _ -> false
  in
  Printf.printf "vfork child disconnected: audit reporter %b, camflow reporter %b\n"
    (vfork audit_cfg) (vfork cam_cfg);
  (* The spn profile: storage choice, not capture, drives transformation
     cost — SPADE's graphs through the database pay the same startup tax
     as OPUS. *)
  Printf.printf "\n--- SPADE storage backends (rename benchmark, transformation stage) ---\n";
  List.iter
    (fun tool ->
      let r = Provmark.Runner.run (config_for tool) (Provmark.Bench_registry.find_exn "rename") in
      Printf.printf "%-14s %-8s transform %.4fs\n" (Recorder.tool_name tool)
        (Result_.status_word r) (Result_.times r).Result_.transformation_s)
    [ Recorder.Spade; Recorder.Spade_neo4j ]

(* ------------------------------------------------------------------ *)
(* Extension: scalability beyond the paper (scale16/32), exact vs
   incremental matching — quantifying the Section 5.4 hypothesis        *)
(* ------------------------------------------------------------------ *)

let extension_scalability_backends () =
  section "Extension: scalability to scale16/scale32, exact vs incremental matching";
  Printf.printf "%-13s %-9s %-10s %s\n" "backend" "scale" "status" "total time";
  List.iter
    (fun backend ->
      List.iter
        (fun n ->
          let t0 = Provmark.Trace_span.now_s () in
          let config =
            { (config_for Recorder.Camflow) with Provmark.Config.backend }
          in
          let r = Provmark.Runner.run config (Provmark.Scalability.program n) in
          Printf.printf "%-13s scale%-4d %-10s %7.3fs\n"
            (Gmatch.Engine.backend_to_string backend)
            n (Result_.status_word r)
            (Provmark.Trace_span.now_s () -. t0))
        [ 8; 16; 32 ])
    [ Gmatch.Engine.Direct; Gmatch.Engine.Incremental ];
  print_endline
    "\nThe exact search grows superlinearly with the target size (the paper's\n\
     NP-completeness warning, Section 5.2); the creation-order fast path stays\n\
     linear, confirming the Section 5.4 optimization hypothesis.";
  ()

(* ------------------------------------------------------------------ *)
(* Extension: configuration sweep (Bob's workflow at full scale)        *)
(* ------------------------------------------------------------------ *)

let extension_config_sweep () =
  section "Extension: SPADE configuration sweep over all 44 benchmarks";
  let run_all spade =
    let config = { (config_for Recorder.Spade) with Provmark.Config.spade } in
    List.map (Provmark.Runner.run config) Provmark.Bench_registry.all
  in
  let base = run_all Recorders.Spade.default_config in
  let sweep =
    [
      ("success_only=false",
       { Recorders.Spade.default_config with Recorders.Spade.success_only = false });
      ("simplify=false", { Recorders.Spade.default_config with Recorders.Spade.simplify = false });
      ("versioning=true", { Recorders.Spade.default_config with Recorders.Spade.versioning = true });
    ]
  in
  List.iter
    (fun (label, spade) ->
      let results = run_all spade in
      let changes = Provmark.Coverage.delta base results in
      Printf.printf "%-20s %d cell(s) change vs default" label (List.length changes);
      (match changes with
      | [] -> ()
      | cs ->
          Printf.printf ": %s"
            (String.concat ", "
               (List.map (fun (s, a, b) -> Printf.sprintf "%s %s->%s" s a b) cs)));
      print_newline ())
    sweep

(* ------------------------------------------------------------------ *)
(* Extension: nondeterministic targets (Section 5.4 future work)        *)
(* ------------------------------------------------------------------ *)

let extension_nondet () =
  section "Extension: nondeterministic target (two threads racing on a shared file)";
  let spec =
    {
      Provmark.Nondet.name = "cmdSharedFileRace";
      staging = [];
      setup = [];
      threads =
        [
          [
            Oskernel.Syscall.Creat { path = "/staging/shared.txt"; ret = "a" };
            Oskernel.Syscall.Write { fd = "a"; count = 16 };
          ];
          [
            Oskernel.Syscall.Open
              { path = "/staging/shared.txt"; flags = [ Oskernel.Syscall.O_RDONLY ]; ret = "b" };
            Oskernel.Syscall.Read { fd = "b"; count = 16 };
          ];
        ];
    }
  in
  let config =
    { (config_for Recorder.Spade) with Provmark.Config.trials = 16; flakiness = 0. }
  in
  match Provmark.Nondet.benchmark config spec with
  | Error e -> Printf.printf "failed: %s\n" (Provmark.Nondet.failure_to_string e)
  | Ok o ->
      Printf.printf "%d trials, %d/%d schedules exercised, %d behaviour(s):\n"
        o.Provmark.Nondet.trials o.Provmark.Nondet.schedules_exercised
        o.Provmark.Nondet.schedules_total
        (List.length o.Provmark.Nondet.behaviours);
      List.iteri
        (fun i (b : Provmark.Nondet.behaviour) ->
          Printf.printf "  behaviour %d (x%d): %s\n" (i + 1) b.Provmark.Nondet.observations
            (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph b.Provmark.Nondet.target)))
        o.Provmark.Nondet.behaviours

(* ------------------------------------------------------------------ *)
(* Extension: parallel suite runner (domains) and the ASP solve cache   *)
(* ------------------------------------------------------------------ *)

let suite_parallel () =
  section "Extension: parallel suite runner (OCaml domains) and ASP solve cache";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "recommended_domain_count: %d\n\n" cores;
  (* Deterministic seeds mean every job count computes the same suite;
     wall-clock scales with the cores actually available.  On a 1-core
     host j>1 only measures scheduling overhead — say so rather than
     pretending a speedup. *)
  let config = config_for Recorder.Spade in
  let progs = Provmark.Bench_registry.all in
  let t1 = ref 0. in
  Printf.printf "%-6s %-10s %s\n" "jobs" "wall (s)" "speedup vs j=1";
  List.iter
    (fun jobs ->
      let _results, t =
        timed (fun () -> Provmark.Parallel_runner.run_all ~jobs config progs)
      in
      if jobs = 1 then t1 := t;
      Printf.printf "j=%-4d %-10.2f %.2fx%s\n" jobs t (!t1 /. t)
        (if jobs > cores then "  (more jobs than cores)" else ""))
    [ 1; 2; 4 ];
  if cores = 1 then
    print_endline "\n(1 core available: j>1 only adds domain scheduling overhead here;\n\
                   \ the speedup column is meaningful on multi-core hosts only.)";
  (* Determinism: j=1 and j=4 must produce identical suites. *)
  let summaries jobs =
    List.map Result_.summary (Provmark.Parallel_runner.run_all ~jobs config progs)
  in
  Printf.printf "\nj=1 and j=4 suites identical: %b\n" (summaries 1 = summaries 4);
  (* The solve cache is the single-core lever: shape-only similarity
     checks repeat across trials and benchmarks. *)
  let asp_config = { config with Provmark.Config.backend = Gmatch.Engine.Asp } in
  let asp_subset =
    List.filter_map
      (fun s -> List.find_opt (fun (p : Oskernel.Program.t) -> p.Oskernel.Program.name = s) progs)
      [ "cmdOpen"; "cmdClose"; "cmdRead"; "cmdWrite"; "cmdDup" ]
  in
  let run_asp enabled =
    Asp.Memo.set_enabled enabled;
    Asp.Memo.clear ();
    Asp.Memo.reset_stats ();
    let _, t =
      timed (fun () -> Provmark.Parallel_runner.run_all ~jobs:1 asp_config asp_subset)
    in
    t
  in
  let t_cold = run_asp false in
  let t_warm = run_asp true in
  Printf.printf "\nASP backend, %d benchmarks: cache off %.2fs, cache on %.2fs (%.2fx)\n"
    (List.length asp_subset) t_cold t_warm (t_cold /. t_warm);
  print_string
    (Provmark.Report.cache_stats_lines
       (List.map
          (fun (tag, { Asp.Memo.hits; misses }) -> (tag, hits, misses))
          (Asp.Memo.stats ())));
  Asp.Memo.set_enabled true;
  Asp.Memo.clear ();
  Asp.Memo.reset_stats ()

(* ------------------------------------------------------------------ *)
(* match-scale: the matching pipeline on synthetic graph pairs          *)
(* ------------------------------------------------------------------ *)

(* Section merging lives in Bench_gen.json_update_file so the tests can
   reuse the same discipline; these are just the bench-local spellings. *)
let bench_json_update_in file key value =
  Provmark.Bench_gen.json_update_file ~file ~key value

let bench_json_update key value = bench_json_update_in "BENCH_match_scale.json" key value

(* Sweeps Bench_gen.match_pair over node counts and, for each prune
   setting, grounds and solves the similarity and generalization
   instances with per-stage timing, grounded-atom counts and solver
   effort counters.  Writes BENCH_match_scale.json next to the cwd so
   CI can archive the trend. *)
let match_scale_rows ~sizes =
  let tasks =
    [
      ("similarity", Gmatch.Asp_backend.Similarity, false);
      ("generalization", Gmatch.Asp_backend.Generalization, true);
    ]
  in
  List.concat_map
    (fun nodes ->
      let g1, g2 = Provmark.Bench_gen.match_pair ~nodes ~seed:(41 + nodes) in
      List.concat_map
        (fun (task_name, task, find_optimal) ->
          List.map
            (fun pruned ->
              Gmatch.Asp_backend.set_prune pruned;
              let (program, facts), t_prepare =
                timed (fun () -> Gmatch.Asp_backend.instance task g1 g2)
              in
              let rules = Asp.Parser.parse_program program in
              let ground, t_ground = timed (fun () -> Asp.Ground.ground rules facts) in
              let h_atoms =
                List.length (Asp.Ground.atoms_with_pred ground Asp.Listings.matching_predicate)
              in
              Asp.Solver.reset_stats ();
              let outcome, t_solve = timed (fun () -> Asp.Solver.solve ~find_optimal ground) in
              let stats = Asp.Solver.stats () in
              let status, cost =
                match outcome with
                | Asp.Solver.Model { cost; _ } -> ("model", cost)
                | Asp.Solver.Unsat -> ("unsat", -1)
                | Asp.Solver.Unknown -> ("unknown", -1)
              in
              ( nodes,
                task_name,
                pruned,
                t_prepare +. t_ground,
                t_solve,
                ground.Asp.Ground.atom_count,
                h_atoms,
                stats.Asp.Solver.propagations,
                stats.Asp.Solver.decisions,
                status,
                cost ))
            [ false; true ])
        tasks)
    sizes

let match_scale_run ~sizes =
  section "match-scale: matching pipeline on synthetic graph pairs (pruned vs unpruned)";
  let prune0 = Gmatch.Asp_backend.prune_enabled () in
  let rows =
    Fun.protect
      ~finally:(fun () -> Gmatch.Asp_backend.set_prune prune0)
      (fun () -> match_scale_rows ~sizes)
  in
  Printf.printf "%-6s %-15s %-8s %10s %10s %8s %8s %12s %10s %-8s %s\n" "nodes" "task" "pruned"
    "ground(s)" "solve(s)" "atoms" "h-atoms" "propagations" "decisions" "status" "cost";
  List.iter
    (fun (nodes, task, pruned, tg, ts, atoms, h, props, decs, status, cost) ->
      Printf.printf "%-6d %-15s %-8b %10.4f %10.4f %8d %8d %12d %10d %-8s %d\n" nodes task
        pruned tg ts atoms h props decs status cost)
    rows;
  (* The headline acceptance number: pruning must shrink the grounded
     h/2 search space at every size. *)
  List.iter
    (fun (nodes, task, pruned, _, _, _, h, _, _, _, _) ->
      if (not pruned) && task = "generalization" then
        let pruned_h =
          List.find_map
            (fun (n', t', p', _, _, _, h', _, _, _, _) ->
              if n' = nodes && t' = task && p' then Some h' else None)
            rows
        in
        match pruned_h with
        | Some h' ->
            Printf.printf "h-atom reduction at %d nodes: %d -> %d (%.1fx)\n" nodes h h'
              (float_of_int h /. float_of_int (max 1 h'))
        | None -> ())
    rows;
  bench_json_update "rows"
    (Minijson.Json.Array
       (List.map
          (fun (nodes, task, pruned, tg, ts, atoms, h, props, decs, status, cost) ->
            Minijson.Json.Object
              [
                ("nodes", Minijson.Json.Number (float_of_int nodes));
                ("task", Minijson.Json.String task);
                ("pruned", Minijson.Json.Bool pruned);
                ("ground_s", Minijson.Json.Number tg);
                ("solve_s", Minijson.Json.Number ts);
                ("atoms", Minijson.Json.Number (float_of_int atoms));
                ("h_atoms", Minijson.Json.Number (float_of_int h));
                ("propagations", Minijson.Json.Number (float_of_int props));
                ("decisions", Minijson.Json.Number (float_of_int decs));
                ("status", Minijson.Json.String status);
                ("cost", Minijson.Json.Number (float_of_int cost));
              ])
          rows))

let match_scale () = match_scale_run ~sizes:[ 4; 6; 8; 10; 12 ]
let match_scale_quick () = match_scale_run ~sizes:[ 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* canon: the canonical-form fast path                                  *)
(* ------------------------------------------------------------------ *)

(* Two measurements per node count:
   - bypass: an isomorphic (purely renamed) pair solved cold through
     the ASP backend vs decided by canonical digest (including the
     cost of computing both forms from a cleared cache);
   - rename-invariant memo: a property-perturbed pair (cost > 0, so the
     bypass cannot answer it) solved once and then re-solved under
     fresh names — canonical instance keys hit, raw keys miss. *)
let canon_run ~sizes =
  section "canon: canonical-form fast path (solver bypass, rename-invariant memo)";
  let canon0 = Pgraph.Canon.is_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Pgraph.Canon.set_enabled canon0;
      Asp.Memo.set_enabled true;
      Asp.Memo.clear ();
      Asp.Memo.reset_stats ())
    (fun () ->
      Asp.Memo.set_enabled false;
      let cost = function
        | None -> -1
        | Some (m : Gmatch.Matching.t) -> m.Gmatch.Matching.cost
      in
      Printf.printf "%-6s %12s %12s %10s\n" "nodes" "cold(s)" "bypass(s)" "speedup";
      let bypass_rows =
        List.map
          (fun nodes ->
            let g1, _ = Provmark.Bench_gen.match_pair ~nodes ~seed:(41 + nodes) in
            let g2 = Pgraph.Graph.map_ids (fun id -> "r:" ^ id) g1 in
            (* Best of three: sub-millisecond timings at the small sizes
               are dominated by allocator noise otherwise.  The canon
               cache is cleared before every bypass run, so its timing
               always includes computing both canonical forms. *)
            let best_of f =
              let vt = List.init 3 (fun _ -> timed f) in
              (fst (List.hd vt), List.fold_left (fun acc (_, t) -> Float.min acc t) infinity vt)
            in
            Pgraph.Canon.set_enabled false;
            let cold, t_cold =
              best_of (fun () ->
                  Gmatch.Engine.generalization_matching ~backend:Gmatch.Engine.Asp g1 g2)
            in
            Pgraph.Canon.set_enabled true;
            let fast, t_fast =
              best_of (fun () ->
                  Pgraph.Canon.clear ();
                  Gmatch.Engine.generalization_matching ~backend:Gmatch.Engine.Asp g1 g2)
            in
            if cost cold <> cost fast then
              failwith "canon bench: bypass disagrees with cold solve";
            let speedup = t_cold /. Float.max 1e-9 t_fast in
            Printf.printf "%-6d %12.5f %12.6f %9.1fx\n" nodes t_cold t_fast speedup;
            (nodes, t_cold, t_fast, speedup))
          sizes
      in
      Printf.printf "\n%-6s %26s %26s\n" "nodes" "renamed hits (canon on)" "renamed hits (canon off)";
      let memo_rows =
        List.map
          (fun nodes ->
            let g1, g2 = Provmark.Bench_gen.match_pair ~nodes ~seed:(41 + nodes) in
            let renamed p g = Pgraph.Graph.map_ids (fun id -> p ^ id) g in
            let hits canon =
              Pgraph.Canon.set_enabled canon;
              Asp.Memo.set_enabled true;
              Asp.Memo.clear ();
              Asp.Memo.reset_stats ();
              ignore (Gmatch.Asp_backend.iso_min_cost g1 g2);
              ignore (Gmatch.Asp_backend.iso_min_cost (renamed "a:" g1) (renamed "b:" g2));
              let h =
                match List.assoc_opt "generalization" (Asp.Memo.stats ()) with
                | Some s -> s.Asp.Memo.hits
                | None -> 0
              in
              Asp.Memo.set_enabled false;
              h
            in
            let h_on = hits true and h_off = hits false in
            Printf.printf "%-6d %26d %26d\n" nodes h_on h_off;
            (nodes, h_on, h_off))
          sizes
      in
      let num f = Minijson.Json.Number f in
      let int_j n = num (float_of_int n) in
      bench_json_update "canon"
        (Minijson.Json.Object
           [
             ( "bypass",
               Minijson.Json.Array
                 (List.map
                    (fun (nodes, t_cold, t_fast, speedup) ->
                      Minijson.Json.Object
                        [
                          ("nodes", int_j nodes);
                          ("cold_solve_s", num t_cold);
                          ("canon_bypass_s", num t_fast);
                          ("speedup", num speedup);
                        ])
                    bypass_rows) );
             ( "memo",
               Minijson.Json.Array
                 (List.map
                    (fun (nodes, h_on, h_off) ->
                      Minijson.Json.Object
                        [
                          ("nodes", int_j nodes);
                          ("renamed_hits_canon_on", int_j h_on);
                          ("renamed_hits_canon_off", int_j h_off);
                        ])
                    memo_rows) );
           ]))

let canon_bench () = canon_run ~sizes:[ 4; 6; 8; 10; 12 ]
let canon_quick () = canon_run ~sizes:[ 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* corpus-scale: pipeline stage costs on ProvGen graphs past the        *)
(* match-scale sweep's 12 nodes                                         *)
(* ------------------------------------------------------------------ *)

(* Where do the stage costs diverge as the target grows?  match-scale
   stops at 12 nodes because it *solves*; this sweep grounds the
   (pruned) similarity instance, measures the per-graph stage costs
   around it — fingerprint, canonical form, serialization, the two
   parse paths and the artifact-store write — on generator pairs up to
   two orders of magnitude larger, and then actually *matches* each
   pair through the segmented pruned-ASP path: the whole instance is
   never solved, only the plan's segments are, so grounded-atom counts
   per solve are bounded by the largest segment rather than the pair. *)
type corpus_row = {
  cr_nodes : int;
  cr_edges : int;
  cr_generate_s : float;
  cr_fingerprint_s : float;
  cr_canon_s : float;
  cr_ground_s : float;
  cr_atoms : int;
  cr_serialize_s : float;
  cr_parse_s : float;
  cr_stream_s : float;
  cr_store_s : float;
  cr_match_s : float;
  cr_match_ok : bool;
  cr_propagations : int;
  cr_decisions : int;
  cr_segments : int;
  cr_max_segment_nodes : int;
  cr_segment_atoms : int;  (** largest per-segment grounded instance *)
}

let corpus_scale_run ~sizes =
  section "corpus-scale: stage costs on ProvGen graphs (fingerprint/canon/ground/parse/store/match)";
  let prune0 = Gmatch.Asp_backend.prune_enabled () in
  let canon0 = Pgraph.Canon.is_enabled () in
  let min0 = Gmatch.Engine.segment_min_nodes () in
  let seg0 = Gmatch.Engine.segmentation_enabled () in
  let store_dir = Filename.concat (Filename.get_temp_dir_name ()) "provmark-bench-store" in
  let store = Provmark.Artifact_store.create ~dir:store_dir in
  let rows =
    Fun.protect
      ~finally:(fun () ->
        Gmatch.Asp_backend.set_prune prune0;
        Pgraph.Canon.set_enabled canon0;
        Gmatch.Engine.set_segmentation seg0;
        Gmatch.Engine.set_segment_min_nodes min0)
      (fun () ->
        Gmatch.Asp_backend.set_prune true;
        Pgraph.Canon.set_enabled true;
        Gmatch.Engine.set_segmentation true;
        (* floor at zero so every size decomposes: the point of the
           match column is that no pair is ever solved whole *)
        Gmatch.Engine.set_segment_min_nodes 0;
        List.map
          (fun nodes ->
            let spec = Pgraph.Provgen.default_spec ~nodes in
            let (g1, g2), t_generate =
              timed (fun () -> Pgraph.Provgen.match_pair ~seed:(41 + nodes) spec)
            in
            let _, t_fingerprint = timed (fun () -> Pgraph.Fingerprint.of_graph g1) in
            Pgraph.Canon.clear ();
            let _, t_canon = timed (fun () -> Pgraph.Canon.digest g1) in
            let (program, facts), t_instance =
              timed (fun () -> Gmatch.Asp_backend.instance Gmatch.Asp_backend.Similarity g1 g2)
            in
            let rules = Asp.Parser.parse_program program in
            let ground, t_ground = timed (fun () -> Asp.Ground.ground rules facts) in
            let text, t_serialize = timed (fun () -> Recorders.Provjson.to_string g1) in
            let _, t_parse = timed (fun () -> Recorders.Provjson.of_string text) in
            let _, t_stream =
              timed (fun () ->
                  Recorders.Provjson.of_stream
                    ~read:(Recorders.Chunk_reader.of_string ~chunk:65536 text))
            in
            let key =
              Provmark.Artifact_store.generated_input_key ~generator:"bench"
                ~spec:(Pgraph.Provgen.spec_to_string spec) ~seed:(41 + nodes) ~run:1
                ~format:"provjson"
            in
            let _, t_store = timed (fun () -> Provmark.Artifact_store.write store ~stage:"corpus" ~key text) in
            (* Plan the pair to size the per-segment grounded instances
               (the bound the segmented solver actually pays), then run
               the segmented pruned-ASP similarity match with canon off —
               the digest bypass would otherwise answer without solving. *)
            let segments, max_segment_nodes, segment_atoms =
              match Pgraph.Summarize.plan g1 g2 with
              | Pgraph.Summarize.Segmented p ->
                  let seg_atoms =
                    List.fold_left
                      (fun acc (s : Pgraph.Summarize.segment) ->
                        let program, facts =
                          Gmatch.Asp_backend.instance Gmatch.Asp_backend.Similarity
                            s.Pgraph.Summarize.left s.Pgraph.Summarize.right
                        in
                        let rules = Asp.Parser.parse_program program in
                        max acc (Asp.Ground.ground rules facts).Asp.Ground.atom_count)
                      0 p.Pgraph.Summarize.segments
                  in
                  ( List.length p.Pgraph.Summarize.segments,
                    Pgraph.Summarize.max_segment_nodes p,
                    seg_atoms )
              | Pgraph.Summarize.Whole | Pgraph.Summarize.Mismatch ->
                  (0, Pgraph.Graph.node_count g1, ground.Asp.Ground.atom_count)
            in
            Pgraph.Canon.set_enabled false;
            Asp.Solver.reset_stats ();
            let ok, t_match =
              timed (fun () -> Gmatch.Engine.similar ~backend:Gmatch.Engine.Asp g1 g2)
            in
            let sstats = Asp.Solver.stats () in
            Pgraph.Canon.set_enabled true;
            {
              cr_nodes = nodes;
              cr_edges = Pgraph.Graph.edge_count g1;
              cr_generate_s = t_generate;
              cr_fingerprint_s = t_fingerprint;
              cr_canon_s = t_canon;
              cr_ground_s = t_instance +. t_ground;
              cr_atoms = ground.Asp.Ground.atom_count;
              cr_serialize_s = t_serialize;
              cr_parse_s = t_parse;
              cr_stream_s = t_stream;
              cr_store_s = t_store;
              cr_match_s = t_match;
              cr_match_ok = ok;
              cr_propagations = sstats.Asp.Solver.propagations;
              cr_decisions = sstats.Asp.Solver.decisions;
              cr_segments = segments;
              cr_max_segment_nodes = max_segment_nodes;
              cr_segment_atoms = segment_atoms;
            })
          sizes)
  in
  Printf.printf "%-6s %-7s %10s %10s %10s %9s %10s %10s %10s %8s %6s %8s %9s %12s %10s\n" "nodes"
    "edges" "gen(s)" "fp(s)" "ground(s)" "atoms" "parse(s)" "stream(s)" "match(s)" "segs"
    "maxseg" "segatoms" "ok" "propagations" "decisions";
  List.iter
    (fun r ->
      Printf.printf "%-6d %-7d %10.4f %10.4f %10.4f %9d %10.4f %10.4f %10.4f %8d %6d %8d %9b %12d %10d\n"
        r.cr_nodes r.cr_edges r.cr_generate_s r.cr_fingerprint_s r.cr_ground_s r.cr_atoms
        r.cr_parse_s r.cr_stream_s r.cr_match_s r.cr_segments r.cr_max_segment_nodes
        r.cr_segment_atoms r.cr_match_ok r.cr_propagations r.cr_decisions)
    rows;
  let num f = Minijson.Json.Number f in
  bench_json_update "scale"
    (Minijson.Json.Array
       (List.map
          (fun r ->
            Minijson.Json.Object
              [
                ("nodes", num (float_of_int r.cr_nodes));
                ("edges", num (float_of_int r.cr_edges));
                ("generate_s", num r.cr_generate_s);
                ("fingerprint_s", num r.cr_fingerprint_s);
                ("canon_s", num r.cr_canon_s);
                ("ground_s", num r.cr_ground_s);
                ("atoms", num (float_of_int r.cr_atoms));
                ("serialize_s", num r.cr_serialize_s);
                ("parse_s", num r.cr_parse_s);
                ("stream_parse_s", num r.cr_stream_s);
                ("store_write_s", num r.cr_store_s);
                ("match_s", num r.cr_match_s);
                ("match_ok", Minijson.Json.Bool r.cr_match_ok);
                ("propagations", num (float_of_int r.cr_propagations));
                ("decisions", num (float_of_int r.cr_decisions));
                ("segments", num (float_of_int r.cr_segments));
                ("max_segment_nodes", num (float_of_int r.cr_max_segment_nodes));
                ("segment_atoms", num (float_of_int r.cr_segment_atoms));
              ])
          rows))

let corpus_scale () = corpus_scale_run ~sizes:[ 16; 32; 64; 128; 256; 512 ]
let corpus_scale_quick () = corpus_scale_run ~sizes:[ 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* segment: the hierarchical matching prepass in isolation              *)
(* ------------------------------------------------------------------ *)

(* How far does the quotient prepass carry the exact matcher?  For each
   size the ProvGen match pair is planned, every segment's
   generalization instance is ground separately (the whole-pair
   grounding is the baseline the decomposition is supposed to beat —
   measured only while it stays tractable), and the full segmented
   optimal solve — per-segment ASP solves stitched into one verified
   whole-graph witness — is timed with solver-effort counters. *)
let segment_run ~sizes =
  section "segment: hierarchical matching prepass (quotient plan, per-segment grounding, stitched ASP solve)";
  let prune0 = Gmatch.Asp_backend.prune_enabled () in
  let canon0 = Pgraph.Canon.is_enabled () in
  let seg0 = Gmatch.Engine.segmentation_enabled () in
  let min0 = Gmatch.Engine.segment_min_nodes () in
  let rows =
    Fun.protect
      ~finally:(fun () ->
        Gmatch.Asp_backend.set_prune prune0;
        Pgraph.Canon.set_enabled canon0;
        Gmatch.Engine.set_segmentation seg0;
        Gmatch.Engine.set_segment_min_nodes min0)
      (fun () ->
        Gmatch.Asp_backend.set_prune true;
        (* canon off: the digest bypass would answer these pairs without
           ever reaching the solver *)
        Pgraph.Canon.set_enabled false;
        Gmatch.Engine.set_segmentation true;
        Gmatch.Engine.set_segment_min_nodes 0;
        List.map
          (fun nodes ->
            let spec = Pgraph.Provgen.default_spec ~nodes in
            let g1, g2 = Pgraph.Provgen.match_pair ~seed:(41 + nodes) spec in
            let outcome, t_plan = timed (fun () -> Pgraph.Summarize.plan g1 g2) in
            let forced, nsegs, pieces, maxseg, frontier, seg_atoms_sum, seg_atoms_max, t_seg_ground
                =
              match outcome with
              | Pgraph.Summarize.Segmented p ->
                  let atoms, t =
                    timed (fun () ->
                        List.map
                          (fun (s : Pgraph.Summarize.segment) ->
                            let program, facts =
                              Gmatch.Asp_backend.instance Gmatch.Asp_backend.Generalization
                                s.Pgraph.Summarize.left s.Pgraph.Summarize.right
                            in
                            let rules = Asp.Parser.parse_program program in
                            (Asp.Ground.ground rules facts).Asp.Ground.atom_count)
                          p.Pgraph.Summarize.segments)
                  in
                  ( List.length p.Pgraph.Summarize.forced_nodes,
                    List.length p.Pgraph.Summarize.segments,
                    List.fold_left
                      (fun a (s : Pgraph.Summarize.segment) -> a + s.Pgraph.Summarize.pieces)
                      0 p.Pgraph.Summarize.segments,
                    Pgraph.Summarize.max_segment_nodes p,
                    p.Pgraph.Summarize.frontier_edges,
                    List.fold_left ( + ) 0 atoms,
                    List.fold_left max 0 atoms,
                    t )
              | Pgraph.Summarize.Whole ->
                  (0, 0, 0, Pgraph.Graph.node_count g1, 0, 0, 0, 0.)
              | Pgraph.Summarize.Mismatch -> (0, 0, 0, 0, 0, 0, 0, 0.)
            in
            (* the avoided cost: grounding the whole generalization
               instance, which past 256 nodes stops being bench-friendly *)
            let whole_atoms, t_whole_ground =
              if nodes <= 256 then
                let program, facts =
                  Gmatch.Asp_backend.instance Gmatch.Asp_backend.Generalization g1 g2
                in
                let rules = Asp.Parser.parse_program program in
                let ground, t = timed (fun () -> Asp.Ground.ground rules facts) in
                (ground.Asp.Ground.atom_count, t)
              else (-1, -1.)
            in
            Asp.Solver.reset_stats ();
            Gmatch.Engine.reset_segment_stats ();
            let m, t_solve =
              timed (fun () ->
                  Gmatch.Engine.generalization_matching ~backend:Gmatch.Engine.Asp g1 g2)
            in
            let stats = Asp.Solver.stats () in
            let solves = Gmatch.Engine.segment_solves () in
            let status, cost =
              match m with
              | Some m -> ("model", m.Gmatch.Matching.cost)
              | None -> ("none", -1)
            in
            ( nodes,
              t_plan,
              forced,
              nsegs,
              pieces,
              maxseg,
              frontier,
              seg_atoms_sum,
              seg_atoms_max,
              t_seg_ground,
              whole_atoms,
              t_whole_ground,
              t_solve,
              solves,
              stats.Asp.Solver.propagations,
              stats.Asp.Solver.decisions,
              status,
              cost ))
          sizes)
  in
  Printf.printf "%-6s %8s %7s %5s %7s %7s %9s %10s %10s %11s %10s %9s %7s %12s %10s %-6s %s\n"
    "nodes" "plan(s)" "forced" "segs" "pieces" "maxseg" "segatoms" "maxsegat" "wholeat"
    "segground(s)" "solve(s)" "segsolve" "frontier" "propagations" "decisions" "status" "cost";
  List.iter
    (fun (nodes, tp, forced, nsegs, pieces, maxseg, frontier, sa, sam, tsg, wa, _twg, ts, solves,
          props, decs, status, cost) ->
      Printf.printf "%-6d %8.4f %7d %5d %7d %7d %9d %10d %10d %11.4f %10.4f %9d %7d %12d %10d %-6s %d\n"
        nodes tp forced nsegs pieces maxseg sa sam wa tsg ts solves frontier props decs status cost)
    rows;
  let num f = Minijson.Json.Number f in
  bench_json_update "segment"
    (Minijson.Json.Array
       (List.map
          (fun (nodes, tp, forced, nsegs, pieces, maxseg, frontier, sa, sam, tsg, wa, twg, ts,
                solves, props, decs, status, cost) ->
            Minijson.Json.Object
              [
                ("nodes", num (float_of_int nodes));
                ("plan_s", num tp);
                ("forced_nodes", num (float_of_int forced));
                ("segments", num (float_of_int nsegs));
                ("pieces", num (float_of_int pieces));
                ("max_segment_nodes", num (float_of_int maxseg));
                ("frontier_edges", num (float_of_int frontier));
                ("segment_atoms_sum", num (float_of_int sa));
                ("segment_atoms_max", num (float_of_int sam));
                ("segment_ground_s", num tsg);
                ("whole_atoms", num (float_of_int wa));
                ("whole_ground_s", num twg);
                ("solve_s", num ts);
                ("segment_solves", num (float_of_int solves));
                ("propagations", num (float_of_int props));
                ("decisions", num (float_of_int decs));
                ("status", Minijson.Json.String status);
                ("cost", num (float_of_int cost));
              ])
          rows))

let segment_bench () = segment_run ~sizes:[ 128; 256; 512; 1024 ]
let segment_quick () = segment_run ~sizes:[ 64; 128 ]

(* ------------------------------------------------------------------ *)
(* planner: cost-based dispatch and the delta re-solve fast path        *)
(* ------------------------------------------------------------------ *)

(* Two legs.  The generalization leg keeps canon on and replays
   transient-only trials of one structure — the serve daemon's
   steady-state shape — comparing every fixed backend's cold solve
   against Auto's delta path (trial 1 pays the rigidity refinement,
   trials 2..N ride the cached verdict).  The similarity leg turns
   canon off so every verdict genuinely reaches a solver, warms the
   calibration table, and then races Auto's calibrated argmin against
   each fixed backend.  Both legs merge one [planner] object into
   BENCH_match_scale.json: per-size rows plus the global misprediction
   and delta hit rates. *)
let planner_run ~sizes =
  section "planner: cost-based dispatch (calibrated argmin, delta re-solve vs fixed backends)";
  let canon0 = Pgraph.Canon.is_enabled () in
  let prune0 = Gmatch.Asp_backend.prune_enabled () in
  let num f = Minijson.Json.Number f in
  Gmatch.Planner.reset ();
  Gmatch.Incremental.reset_delta ();
  let gen_rows =
    Fun.protect
      ~finally:(fun () -> Pgraph.Canon.set_enabled canon0)
      (fun () ->
        Pgraph.Canon.set_enabled true;
        List.map
          (fun nodes ->
            let g = Provmark.Bench_gen.rigid_trace ~nodes ~seed:(41 + nodes) in
            let trial k = Provmark.Bench_gen.transient_variant ~seed:(1000 + (nodes * 17) + k) g in
            let trials = 5 in
            let cold backend =
              let total = ref 0. in
              for k = 1 to trials do
                let v = trial k in
                let m, t = timed (fun () -> Gmatch.Engine.generalization_matching ~backend g v) in
                ignore m;
                total := !total +. t
              done;
              !total /. float_of_int trials
            in
            let t_direct = cold Gmatch.Engine.Direct in
            let t_incr = cold Gmatch.Engine.Incremental in
            Gmatch.Incremental.reset_delta ();
            let auto k =
              snd
                (timed (fun () ->
                     Gmatch.Engine.generalization_matching ~backend:Gmatch.Engine.Auto g (trial k)))
            in
            let t_auto_first = auto 1 in
            let t_auto_warm =
              let total = ref 0. in
              for k = 2 to trials do
                total := !total +. auto k
              done;
              !total /. float_of_int (trials - 1)
            in
            let certified, fallbacks, cache_hits = Gmatch.Incremental.delta_stats () in
            let best_fixed = Float.min t_direct t_incr in
            let speedup = if t_auto_warm > 0. then best_fixed /. t_auto_warm else 0. in
            (* the acceptance ratio: warm delta trials vs a cold solve
               of the same pair (trial 1 pays the rigidity refinement,
               trials 2..N ride the cached verdict) *)
            let cold_over_warm = if t_auto_warm > 0. then t_auto_first /. t_auto_warm else 0. in
            (nodes, t_direct, t_incr, t_auto_first, t_auto_warm, speedup, cold_over_warm, certified,
             fallbacks, cache_hits))
          sizes)
  in
  Printf.printf "generalization: transient-only trials (canon on, delta path live)\n";
  Printf.printf "%-6s %12s %12s %12s %12s %9s %9s %9s %9s %9s\n" "nodes" "direct(s)" "incr(s)"
    "auto1(s)" "autoN(s)" "speedup" "cold/warm" "certified" "fallback" "cachehit";
  List.iter
    (fun (nodes, td, ti, ta1, tan, sp, cw, cert, fall, hits) ->
      Printf.printf "%-6d %12.6f %12.6f %12.6f %12.6f %9.1f %9.1f %9d %9d %9d\n" nodes td ti ta1
        tan sp cw cert fall hits)
    gen_rows;
  let sim_rows =
    Fun.protect
      ~finally:(fun () ->
        Pgraph.Canon.set_enabled canon0;
        Gmatch.Asp_backend.set_prune prune0)
      (fun () ->
        (* canon off: the digest gate would answer every pair before the
           calibrated path ever ran *)
        Pgraph.Canon.set_enabled false;
        Gmatch.Asp_backend.set_prune true;
        List.map
          (fun nodes ->
            let g1, g2 = Provmark.Bench_gen.match_pair ~nodes ~seed:(61 + nodes) in
            (* Warm the table on this very shape before measuring the
               calibrated choice. *)
            for _ = 1 to 10 do
              ignore (Gmatch.Engine.similar ~backend:Gmatch.Engine.Auto g1 g2)
            done;
            (* Sub-millisecond solves drift more than the margins being
               measured, so interleave the candidates round-robin (one
               call each per rep) instead of timing sequential blocks —
               GC and cache drift then hits everyone equally. *)
            let reps = 20 in
            let t_direct = ref 0. and t_incr = ref 0. and t_asp = ref 0. and t_auto = ref 0. in
            (* whole-instance ASP grounding past 32 nodes is not
               bench-friendly with canon off *)
            let asp_ok = nodes <= 32 in
            let measure cell backend =
              let _, t = timed (fun () -> Gmatch.Engine.similar ~backend g1 g2) in
              cell := !cell +. t
            in
            for _ = 1 to reps do
              measure t_direct Gmatch.Engine.Direct;
              measure t_incr Gmatch.Engine.Incremental;
              if asp_ok then measure t_asp Gmatch.Engine.Asp;
              measure t_auto Gmatch.Engine.Auto
            done;
            let avg cell = !cell /. float_of_int reps in
            let t_direct = avg t_direct and t_incr = avg t_incr and t_auto = avg t_auto in
            let t_asp = if asp_ok then avg t_asp else -1. in
            let best_fixed =
              List.fold_left
                (fun acc t -> if t >= 0. && t < acc then t else acc)
                infinity [ t_direct; t_incr; t_asp ]
            in
            (nodes, t_asp, t_direct, t_incr, t_auto, t_auto /. best_fixed))
          sizes)
  in
  Printf.printf "\nsimilarity: calibrated dispatch (canon off, verdict-only)\n";
  Printf.printf "%-6s %12s %12s %12s %12s %10s\n" "nodes" "asp(s)" "direct(s)" "incr(s)" "auto(s)"
    "auto/best";
  List.iter
    (fun (nodes, ta, td, ti, tu, ratio) ->
      Printf.printf "%-6d %12.6f %12.6f %12.6f %12.6f %10.2f\n" nodes ta td ti tu ratio)
    sim_rows;
  let decisions = Gmatch.Planner.decisions_total () in
  let mispredictions = Gmatch.Planner.mispredictions () in
  let mis_rate = if decisions > 0 then float_of_int mispredictions /. float_of_int decisions else 0. in
  let d_cert = List.fold_left (fun a (_, _, _, _, _, _, _, c, _, _) -> a + c) 0 gen_rows in
  let d_fall = List.fold_left (fun a (_, _, _, _, _, _, _, _, f, _) -> a + f) 0 gen_rows in
  let hit_rate =
    if d_cert + d_fall > 0 then float_of_int d_cert /. float_of_int (d_cert + d_fall) else 0.
  in
  Printf.printf "\ndecisions %d, mispredictions %d (rate %.3f); delta certified %d, fallbacks %d (hit rate %.3f)\n"
    decisions mispredictions mis_rate d_cert d_fall hit_rate;
  bench_json_update "planner"
    (Minijson.Json.Object
       [
         ( "generalization",
           Minijson.Json.Array
             (List.map
                (fun (nodes, td, ti, ta1, tan, sp, cw, cert, fall, hits) ->
                  Minijson.Json.Object
                    [
                      ("nodes", num (float_of_int nodes));
                      ("direct_s", num td);
                      ("incremental_s", num ti);
                      ("auto_first_s", num ta1);
                      ("auto_warm_s", num tan);
                      ("delta_speedup", num sp);
                      ("delta_cold_over_warm", num cw);
                      ("delta_certified", num (float_of_int cert));
                      ("delta_fallbacks", num (float_of_int fall));
                      ("delta_cache_hits", num (float_of_int hits));
                    ])
                gen_rows) );
         ( "similarity",
           Minijson.Json.Array
             (List.map
                (fun (nodes, ta, td, ti, tu, ratio) ->
                  Minijson.Json.Object
                    [
                      ("nodes", num (float_of_int nodes));
                      ("asp_s", num ta);
                      ("direct_s", num td);
                      ("incremental_s", num ti);
                      ("auto_s", num tu);
                      ("auto_vs_best_fixed", num ratio);
                    ])
                sim_rows) );
         ("decisions", num (float_of_int decisions));
         ("mispredictions", num (float_of_int mispredictions));
         ("misprediction_rate", num mis_rate);
         ("delta_certified", num (float_of_int d_cert));
         ("delta_fallbacks", num (float_of_int d_fall));
         ("delta_hit_rate", num hit_rate);
       ])

let planner_bench () = planner_run ~sizes:[ 64; 128; 256 ]
let planner_quick () = planner_run ~sizes:[ 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* serve-load: concurrent clients against a warm serve daemon          *)
(* ------------------------------------------------------------------ *)

(* Drives an in-process daemon over a temp Unix socket with N client
   domains issuing benchmark requests back to back, and measures
   per-request wall latency plus aggregate throughput.  Two passes over
   the same request set separate the cold cost (first solves populate
   the memo/canon caches) from the warm steady state the daemon exists
   for; a third pass replays the warm set through the wire-level chaos
   driver under a fixed-seed socket fault plan, so BENCH_serve.json
   also records how much throughput survives sick clients.  Results
   merge into BENCH_serve.json. *)

(* The fixed-seed socket plan shared by the faulted serve-load phase
   and the serve-chaos section: deterministic per site, moderate rates
   so most requests still complete. *)
let serve_socket_plan =
  match
    Faults.Plan.of_string
      "seed=11,socket.stall=0.1,socket.torn=0.2,socket.disconnect=0.1,socket.shortwrite=0.2"
  with
  | Ok p -> p
  | Error msg -> failwith msg

let serve_load_run ~clients ~per_client () =
  section
    (Printf.sprintf "serve-load: %d concurrent clients x %d requests against provmark serve"
       clients per_client);
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "provmark_bench_serve_%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serve.Protocol.Unix_socket sock in
  let jobs = 4 in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          ~on_ready:(fun () -> Atomic.set ready true)
          {
            Serve.Daemon.endpoint;
            jobs;
            queue_bound = 4 * clients * per_client;
            store = None;
            trace = None;
            (* A short idle timeout keeps the stalled-read faults of the
               faulted phase from dominating its wall clock. *)
            limits =
              { Serve.Daemon.default_limits with idle_timeout_s = Some 1.0 };
          })
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let names = Array.of_list (Provmark.Bench_registry.names ()) in
  let request c i =
    {
      Serve.Protocol.id = None;
      op =
        Serve.Protocol.Benchmark
          {
            tool = Recorder.Spade;
            syscall = names.(((c * per_client) + i) mod Array.length names);
            trials = None;
            seed = 1;
            backend = Gmatch.Engine.default_backend;
            result_type = "rb";
          };
    }
  in
  let measure label worker =
    let t0 = Provmark.Trace_span.now_s () in
    let domains = List.init clients (fun c -> Domain.spawn (worker c)) in
    let latencies = List.concat_map Domain.join domains in
    let wall = Provmark.Trace_span.now_s () -. t0 in
    let n = List.length latencies in
    let sorted = Array.of_list (List.sort compare latencies) in
    let pct p = sorted.(min (n - 1) (n * p / 100)) in
    let rps = float_of_int n /. wall in
    Printf.printf "%-7s %8.1f req/s   p50 %7.2f ms   p99 %7.2f ms   (%d requests, %.2fs)\n"
      label rps
      (1000. *. pct 50)
      (1000. *. pct 99)
      n wall;
    (label, n, wall, rps, pct 50, pct 99)
  in
  let phase label =
    measure label (fun c () ->
        Serve.Client.with_connection endpoint (fun conn ->
            List.init per_client (fun i ->
                let s = Provmark.Trace_span.now_s () in
                (match Serve.Client.call conn (request c i) with
                | Ok r when String.equal (Serve.Client.response_status r) "ok" -> ()
                | Ok r -> failwith ("error response: " ^ Minijson.Json.to_string r)
                | Error msg -> failwith msg);
                Provmark.Trace_span.now_s () -. s)))
  in
  let cold = phase "cold" in
  let warm = phase "warm" in
  (* Faulted pass: the warm request set replayed through the wire-level
     chaos driver, one fresh connection per request, under the fixed
     socket plan.  Stalled sends resolve as the daemon's structured 408,
     deliberate disconnects yield no response by design; every other
     request must still answer ok. *)
  Faults.Injector.set_plan (Some serve_socket_plan);
  let ok = Atomic.make 0 and timed_out = Atomic.make 0 and dropped = Atomic.make 0 in
  let faulted =
    measure "faulted" (fun c () ->
        List.init per_client (fun i ->
            let s = Provmark.Trace_span.now_s () in
            (match
               Serve.Client.chaos_call
                 ~site:(Printf.sprintf "bench/c%d/r%d" c i)
                 endpoint (request c i)
             with
            | Serve.Client.Response r
              when String.equal (Serve.Client.response_status r) "ok" ->
                Atomic.incr ok
            | Serve.Client.Response r when Serve.Client.response_error r = Some "timeout" ->
                Atomic.incr timed_out
            | Serve.Client.Response r ->
                failwith ("error response: " ^ Minijson.Json.to_string r)
            | Serve.Client.No_response _ -> Atomic.incr dropped);
            Provmark.Trace_span.now_s () -. s))
  in
  Faults.Injector.set_plan None;
  Printf.printf "        faulted outcomes: %d ok, %d timed out, %d dropped\n"
    (Atomic.get ok) (Atomic.get timed_out) (Atomic.get dropped);
  let stats =
    Serve.Client.with_connection endpoint (fun c ->
        match Serve.Client.call c { Serve.Protocol.id = None; op = Serve.Protocol.Stats } with
        | Ok json -> json
        | Error msg -> failwith msg)
  in
  (try
     Serve.Client.with_connection endpoint (fun c ->
         ignore (Serve.Client.call c { Serve.Protocol.id = None; op = Serve.Protocol.Shutdown }))
   with Unix.Unix_error _ -> ());
  ignore (Domain.join daemon);
  let num f = Minijson.Json.Number f in
  let phase_json ?(extra = []) (label, n, wall, rps, p50, p99) =
    Minijson.Json.Object
      ([
         ("phase", Minijson.Json.String label);
         ("requests", num (float_of_int n));
         ("wall_s", num wall);
         ("req_per_s", num rps);
         ("p50_ms", num (1000. *. p50));
         ("p99_ms", num (1000. *. p99));
       ]
      @ extra)
  in
  let faulted_extra =
    [
      ("plan", Minijson.Json.String (Faults.Plan.to_string serve_socket_plan));
      ("ok", num (float_of_int (Atomic.get ok)));
      ("timed_out", num (float_of_int (Atomic.get timed_out)));
      ("dropped", num (float_of_int (Atomic.get dropped)));
    ]
  in
  bench_json_update_in "BENCH_serve.json" "serve-load"
    (Minijson.Json.Object
       [
         ("clients", num (float_of_int clients));
         ("requests_per_client", num (float_of_int per_client));
         ("jobs", num (float_of_int jobs));
         ( "phases",
           Minijson.Json.Array
             [ phase_json cold; phase_json warm; phase_json ~extra:faulted_extra faulted ] );
         ("memo", Minijson.Json.member "memo" stats);
         ("canon_skips", Minijson.Json.member "canon_skips" stats);
         ("served", Minijson.Json.member "served" stats);
       ])

let serve_load () = serve_load_run ~clients:8 ~per_client:12 ()
let serve_load_quick () = serve_load_run ~clients:4 ~per_client:4 ()

(* ------------------------------------------------------------------ *)
(* serve-chaos: fixed-seed socket faults against a live daemon         *)
(* ------------------------------------------------------------------ *)

(* The chaos gauntlet the CI job runs: 8 concurrent clients abuse an
   in-process daemon under the fixed-seed socket plan, and the section
   asserts the robustness contract rather than just measuring it —
   every unfaulted/torn/short-write response byte-identical to a clean
   call, no crash, and a mid-load SIGTERM that drains and returns
   within its budget. *)
let serve_chaos () =
  section "serve-chaos: fixed-seed socket faults against a live daemon";
  let clients = 8 and per_client = 6 in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "provmark_bench_chaos_%d.sock" (Unix.getpid ()))
  in
  let endpoint = Serve.Protocol.Unix_socket sock in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          ~on_ready:(fun () -> Atomic.set ready true)
          {
            Serve.Daemon.endpoint;
            jobs = 4;
            queue_bound = 4 * clients * per_client;
            store = None;
            trace = None;
            limits =
              {
                Serve.Daemon.default_limits with
                idle_timeout_s = Some 1.0;
                drain_s = 10.0;
              };
          })
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let names = Array.of_list (Provmark.Bench_registry.names ()) in
  let syscall c i = names.(((c * per_client) + i) mod Array.length names) in
  let request c i =
    {
      Serve.Protocol.id = None;
      op =
        Serve.Protocol.Benchmark
          {
            tool = Recorder.Spade;
            syscall = syscall c i;
            trials = None;
            seed = 1;
            backend = Gmatch.Engine.default_backend;
            result_type = "rb";
          };
    }
  in
  (* The plan goes up before the reference pass: sharing one process
     with the daemon means its workers also see the plan and append the
     (all-zero, deterministic) fault-outcomes epilogue to every report,
     so the reference must be rendered under the same plan to stay
     byte-comparable.  An out-of-process daemon never sees a client's
     plan — the CI job checks that byte-identity against provmark run.
     Socket faults themselves are wire-only: the reference pass uses
     plain calls and is untouched. *)
  Faults.Injector.set_plan (Some serve_socket_plan);
  (* Clean reference outputs, one per distinct request (also warms the
     memo, so the chaos pass exercises the warm path CI measures). *)
  let reference = Hashtbl.create 64 in
  Serve.Client.with_connection endpoint (fun conn ->
      for c = 0 to clients - 1 do
        for i = 0 to per_client - 1 do
          if not (Hashtbl.mem reference (syscall c i)) then
            match Serve.Client.call conn (request c i) with
            | Ok r when String.equal (Serve.Client.response_status r) "ok" ->
                Hashtbl.add reference (syscall c i) (Serve.Client.response_output r)
            | Ok r -> failwith ("reference request failed: " ^ Minijson.Json.to_string r)
            | Error msg -> failwith msg
        done
      done);
  (* The gauntlet: every request through the chaos driver.  A response
     that claims ok must be byte-identical to the clean reference. *)
  let ok = Atomic.make 0
  and timed_out = Atomic.make 0
  and dropped = Atomic.make 0
  and mismatched = Atomic.make 0 in
  let worker c () =
    for i = 0 to per_client - 1 do
      match
        Serve.Client.chaos_call ~site:(Printf.sprintf "c%d/r%d" c i) endpoint (request c i)
      with
      | Serve.Client.Response r when String.equal (Serve.Client.response_status r) "ok" ->
          let expected = Hashtbl.find reference (syscall c i) in
          if String.equal (Serve.Client.response_output r) expected then Atomic.incr ok
          else Atomic.incr mismatched
      | Serve.Client.Response r when Serve.Client.response_error r = Some "timeout" ->
          Atomic.incr timed_out
      | Serve.Client.Response r ->
          failwith ("unexpected error response: " ^ Minijson.Json.to_string r)
      | Serve.Client.No_response _ -> Atomic.incr dropped
    done
  in
  let domains = List.init clients (fun c -> Domain.spawn (worker c)) in
  List.iter Domain.join domains;
  Faults.Injector.set_plan None;
  Printf.printf "gauntlet: %d ok, %d timed out, %d dropped, %d mismatched\n" (Atomic.get ok)
    (Atomic.get timed_out) (Atomic.get dropped) (Atomic.get mismatched);
  if Atomic.get mismatched > 0 then failwith "chaos gauntlet: faulted responses diverged";
  if Atomic.get ok = 0 then failwith "chaos gauntlet: no request survived";
  (* Daemon still healthy after the abuse? *)
  let stats =
    Serve.Client.with_connection endpoint (fun c ->
        match Serve.Client.call c { Serve.Protocol.id = None; op = Serve.Protocol.Stats } with
        | Ok json -> json
        | Error msg -> failwith msg)
  in
  (* Mid-load SIGTERM: re-load the daemon, then signal our own process
     (the daemon's handler owns SIGTERM for now).  The daemon must
     drain what it accepted and return within its budget. *)
  let stragglers =
    List.init 4 (fun c ->
        Domain.spawn (fun () ->
            try
              Serve.Client.with_connection endpoint (fun conn ->
                  for i = 0 to 2 do
                    ignore (Serve.Client.call conn (request c i))
                  done)
            with Unix.Unix_error _ | Failure _ -> ()))
  in
  Unix.sleepf 0.05;
  let t0 = Provmark.Trace_span.now_s () in
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  let served = Domain.join daemon in
  let drain_wall = Provmark.Trace_span.now_s () -. t0 in
  List.iter Domain.join stragglers;
  Printf.printf "SIGTERM drain: %.2fs (%d compute requests served)\n" drain_wall served;
  if drain_wall > 10.0 +. 2.0 then failwith "chaos gauntlet: drain overran its budget";
  let num f = Minijson.Json.Number f in
  bench_json_update_in "BENCH_serve.json" "serve-chaos"
    (Minijson.Json.Object
       [
         ("clients", num (float_of_int clients));
         ("requests_per_client", num (float_of_int per_client));
         ("plan", Minijson.Json.String (Faults.Plan.to_string serve_socket_plan));
         ("ok", num (float_of_int (Atomic.get ok)));
         ("timed_out", num (float_of_int (Atomic.get timed_out)));
         ("dropped", num (float_of_int (Atomic.get dropped)));
         ("mismatched", num (float_of_int (Atomic.get mismatched)));
         ("sigterm_drain_s", num drain_wall);
         ("served", num (float_of_int served));
         ("daemon_timed_out", Minijson.Json.member "timed_out" stats);
         ("daemon_conn_rejected", Minijson.Json.member "conn_rejected" stats);
       ])

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Provmark.Trace_span.now_s () in
  let full () =
    table1 ();
    let matrix = run_matrix () in
    table2 matrix;
    table3 matrix;
    figure1 matrix;
    figures_5_to_7 matrix;
    figures_8_to_10 ();
    table4 ();
    microbench ();
    ablations ();
    suite_parallel ();
    extension_spade_camflow ();
    extension_config_sweep ();
    extension_scalability_backends ();
    extension_nondet ();
    match_scale ();
    canon_bench ();
    corpus_scale ();
    segment_bench ();
    planner_bench ();
    serve_load ()
  in
  (* [bench/main.exe <section>...] runs just the named sections. *)
  let sections =
    [
      ("suite-parallel", suite_parallel);
      ("ablations", ablations);
      ("microbench", microbench);
      ("scalability", figures_8_to_10);
      ("nondet", extension_nondet);
      ("match-scale", match_scale);
      ("match-scale-quick", match_scale_quick);
      ("canon", canon_bench);
      ("canon-quick", canon_quick);
      ("corpus-scale", corpus_scale);
      ("corpus-scale-quick", corpus_scale_quick);
      ("segment", segment_bench);
      ("segment-quick", segment_quick);
      ("planner", planner_bench);
      ("planner-quick", planner_quick);
      ("serve-load", serve_load);
      ("serve-load-quick", serve_load_quick);
      ("serve-chaos", serve_chaos);
    ]
  in
  (match List.tl (Array.to_list Sys.argv) with
  | [] -> full ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown bench section %S (known: %s)\n" name
                (String.concat ", " (List.map fst sections));
              exit 2)
        names);
  Printf.printf "\nTotal bench time: %.1fs\n" (Provmark.Trace_span.now_s () -. t0)
