(* ProvMark command-line driver, mirroring the original project's
   fullAutomation.py (single benchmark) and runTests.sh (batch run). *)

open Cmdliner

let tool_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Recorders.Recorder.tool_of_string s) in
  let print ppf t = Format.pp_print_string ppf (Recorders.Recorder.tool_name t) in
  Arg.conv (parse, print)

let backend_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Gmatch.Engine.backend_of_string s) in
  let print ppf b = Format.pp_print_string ppf (Gmatch.Engine.backend_to_string b) in
  Arg.conv (parse, print)

let tool_arg =
  let doc = "Capture tool: spg (SPADE+Graphviz), opu (OPUS) or cam (CamFlow)." in
  Arg.(required & pos 0 (some tool_conv) None & info [] ~docv:"TOOL" ~doc)

let trials_arg =
  let doc = "Number of trials per variant (default: per-tool)." in
  Arg.(value & opt (some int) None & info [ "trials"; "t" ] ~docv:"N" ~doc)

(* The backend is optional so planner mode can tell "the user chose a
   backend" from "use the default": with no explicit --backend and
   planner mode auto (the default), matches dispatch through the
   per-instance cost planner; --planner fixed or --no-planner restores
   the historical fixed default. *)
let backend_opt_arg =
  let doc = "Graph matching backend: asp (the paper's Listing 3/4 specifications \
             through the mini answer-set solver), direct (native matcher), \
             incremental (creation-order fast path with exact fallback) or auto \
             (per-instance cost-based planner). Defaults to auto unless \
             $(b,--planner fixed) / $(b,--no-planner) is given." in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"B" ~doc)

let planner_arg =
  let doc = "Backend planning mode: auto (default — when no explicit $(b,--backend) \
             is given, every match instance dispatches through the cost-based \
             planner: sound bypasses first, calibrated argmin where the answer \
             cannot depend on the choice) or fixed (keep the flag-selected \
             backend for every instance, today's behaviour)." in
  Arg.(value & opt (Arg.enum [ ("auto", `Auto); ("fixed", `Fixed) ]) `Auto
       & info [ "planner" ] ~docv:"MODE" ~doc)

let no_planner_arg =
  let doc = "Escape hatch: synonym for $(b,--planner fixed)." in
  Arg.(value & flag & info [ "no-planner" ] ~doc)

(* One composed term so every subcommand that used to take a backend
   now resolves (backend, planner flags) the same way. *)
let backend_arg =
  let resolve backend planner no_planner =
    match backend with
    | Some b -> b
    | None ->
        if no_planner || planner = `Fixed then Gmatch.Engine.default_backend else Gmatch.Engine.Auto
  in
  Term.(const resolve $ backend_opt_arg $ planner_arg $ no_planner_arg)

let seed_arg =
  let doc = "Base seed for transient-value derivation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for suite execution. Benchmarks fan out over a fixed-size \
     domain pool; results merge in registry order and are byte-identical to a \
     sequential run for the same seed."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the ASP solve memo cache (repeated (program, facts) subproblems are \
     re-grounded and re-solved instead of served from cache)."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let apply_cache_flag no_cache = Asp.Memo.set_enabled (not no_cache)

let no_prune_arg =
  let doc =
    "Disable candidate pruning in the ASP matching backend (run the paper's \
     Listing 3/4 encodings verbatim, with choice generators over the full \
     node/edge cross product instead of colour-compatible pairs)."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let apply_prune_flag no_prune = Gmatch.Asp_backend.set_prune (not no_prune)

let no_canon_arg =
  let doc =
    "Disable canonical-form fast paths in the matching engine (always ground \
     and solve instead of deciding isomorphic pairs by canonical digest, and \
     key the solve cache on raw rather than canonically relabelled instances)."
  in
  Arg.(value & flag & info [ "no-canon" ] ~doc)

let apply_canon_flag no_canon = Pgraph.Canon.set_enabled (not no_canon)

let no_segment_arg =
  let doc =
    "Disable the hierarchical matching prepass (always solve pairs whole \
     instead of refuting them by quotient-graph comparison and splitting \
     large ones into independently solved segments)."
  in
  Arg.(value & flag & info [ "no-segment" ] ~doc)

let apply_segment_flag no_segment = Gmatch.Engine.set_segmentation (not no_segment)

let plan_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Faults.Plan.of_string s) in
  let print ppf p = Format.pp_print_string ppf (Faults.Plan.to_string p) in
  Arg.conv (parse, print)

let faults_arg =
  let doc =
    "Deterministic fault plan, as comma-separated key=value pairs: seed=N plus \
     per-tap-point rates recorder.{drop,dup,truncate,garble}, \
     store.{corrupt,partial,eio}, solver.exhaust and \
     socket.{stall,torn,disconnect,shortwrite} (e.g. \
     'seed=7,recorder.truncate=0.2,store.eio=0.1,solver.exhaust=0.3'). Every \
     injection decision is a pure function of the plan seed and the site it \
     perturbs, so a plan reproduces exactly at any $(b,--jobs) level."
  in
  Arg.(value & opt (some plan_conv) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let deadline_arg =
  let doc =
    "Per-stage deadline in seconds (monotonic clock). A stage that overruns its \
     budget fails with a deadline-exceeded diagnosis and is retried like any \
     other stage failure; deadline failures are never cached."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc =
    "Attempts per benchmark before it is quarantined (default 3). Each retry \
     grows the trial count and perturbs the derivation seed, then the suite \
     moves on; quarantined benchmarks are reported at the end and reflected in \
     the exit code."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

let fallback_arg =
  let doc =
    "Automatic fallback to the native VF2 matcher when the ASP solver exhausts \
     its step budget: $(b,on) (default) or $(b,off). Results produced through \
     the fallback are tagged degraded."
  in
  Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true & info [ "fallback" ] ~docv:"on|off" ~doc)

let apply_fault_flags faults fallback =
  Faults.Injector.set_plan faults;
  Gmatch.Engine.set_fallback fallback

(* Suite epilogue for robustness accounting.  The fault-outcome line and
   quarantine report go to stdout (both are deterministic for a fixed
   plan and -j level; the CI chaos job diffs them); injection counters
   go to stderr with the other operator-facing statistics.  Exit code 3
   reports quarantined benchmarks without having aborted the suite. *)
let finish_run (results : Provmark.Result.t list) =
  print_string (Provmark.Report.suite_epilogue results);
  (match Faults.Injector.injected () with
  | [] -> ()
  | counts ->
      Printf.eprintf "Faults injected: %s\n%!"
        (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) counts)));
  match Provmark.Exit_code.of_results results with
  | Provmark.Exit_code.Ok -> ()
  | code -> Provmark.Exit_code.exit code

let unknown_benchmark syscall known =
  Printf.eprintf "unknown syscall benchmark %S\nknown benchmarks: %s\n" syscall
    (String.concat " " known);
  Provmark.Exit_code.exit Provmark.Exit_code.Unknown_benchmark

(* Invalid-configuration errors share one reporting path (and one exit
   code) across subcommands. *)
let invalid_config msg =
  Printf.eprintf "%s\n" msg;
  Provmark.Exit_code.exit Provmark.Exit_code.Invalid_config

let store_arg =
  let doc =
    "Artifact store directory. Every pipeline stage is keyed by its configuration \
     fingerprint and input digests and its artifact cached here, so re-runs replay \
     cached stages and only recompute downstream of what changed."
  in
  Arg.(value & opt string ".provmark/store" & info [ "store" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc = "Disable the artifact store (every stage recomputes)." in
  Arg.(value & flag & info [ "no-store" ] ~doc)

(* The store directory is validated up front (creatable, a directory,
   writable), so a bad --store is one clear error before any benchmark
   runs rather than a failure halfway through the suite. *)
let store_of ~store ~no_store =
  if no_store then None
  else
    match Provmark.Artifact_store.create ~dir:store with
    | s ->
        (* A store also carries the planner's calibration table, so a
           fresh process starts with learned costs, not priors. *)
        Provmark.Session.warm_planner (Some s);
        Some s
    | exception Sys_error msg -> invalid_config msg

let trace_arg =
  let doc =
    "Write the span tree of every run (per-stage durations, cache hit/miss tags, \
     solver effort counters) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Store statistics and trace confirmations go to stderr: stdout must
   stay byte-identical between cold and warm runs (CI diffs it). *)
let print_store_stats = function
  | None -> ()
  | Some store ->
      let t = Provmark.Artifact_store.totals store in
      let total = t.Provmark.Artifact_store.hits + t.Provmark.Artifact_store.misses in
      if total > 0 then
        Printf.eprintf "Artifact store: %d/%d stage executions replayed (%d%%)\n%!"
          t.Provmark.Artifact_store.hits total
          (100 * t.Provmark.Artifact_store.hits / total)

let write_trace trace (results : Provmark.Result.t list) =
  match trace with
  | None -> ()
  | Some file ->
      let json =
        Minijson.Json.Array
          (List.map (fun r -> Provmark.Trace_span.to_json r.Provmark.Result.span) results)
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (Minijson.Json.to_string ~pretty:true json);
          Out_channel.output_char oc '\n');
      Printf.eprintf "Trace written to %s\n%!" file

let print_cache_stats () =
  match Provmark.Report.stats_lines () with
  | "" -> ()
  | lines ->
      print_newline ();
      print_string lines

(* Progress lines may come from any worker domain; serialize them. *)
let progress_mutex = Mutex.create ()

let progress (r : Provmark.Result.t) =
  Mutex.lock progress_mutex;
  Printf.eprintf "%s %s: %s\n%!"
    (Recorders.Recorder.tool_name r.Provmark.Result.tool)
    r.Provmark.Result.syscall
    (Provmark.Result.status_word r);
  Mutex.unlock progress_mutex

let result_type_arg =
  let doc = "Result type: rb (benchmark only), rg (benchmark plus generalized \
             foreground/background graphs), rh (HTML page with rendered graphs, \
             written to finalResult/)." in
  Arg.(value & opt string "rb" & info [ "result-type"; "r" ] ~docv:"TYPE" ~doc)

let config_of ?store ?deadline ?retries tool trials backend seed =
  let base = Provmark.Config.default tool in
  let retry =
    match retries with
    | None -> base.Provmark.Config.retry
    | Some attempts -> { base.Provmark.Config.retry with Provmark.Config.attempts }
  in
  {
    base with
    Provmark.Config.trials = Option.value trials ~default:base.Provmark.Config.trials;
    backend;
    seed;
    store;
    retry;
    deadline_s = deadline;
  }

(* The original ProvMark appends a line of timing to /tmp/time.log for
   each system-call execution (appendix A.6.4); keep the behaviour. *)
let append_time_log (r : Provmark.Result.t) =
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "/tmp/time.log" in
    output_string oc (Provmark.Report.timing_csv [ r ]);
    close_out oc
  with Sys_error _ -> ()

(* The textual result goes through the same renderer the serve daemon
   embeds in its responses ({!Provmark.Report.run_output}); only the
   time-log append and the rh HTML side effects stay CLI-local. *)
let print_result ~result_type (r : Provmark.Result.t) =
  append_time_log r;
  print_string (Provmark.Report.run_output ~result_type r);
  if String.equal result_type "rh" then (
    let path =
      Printf.sprintf "finalResult/%s_%s.html"
        (String.lowercase_ascii (Recorders.Recorder.tool_name r.Provmark.Result.tool))
        r.Provmark.Result.syscall
    in
    Provmark.Html_report.write_file path (Provmark.Html_report.render_single r);
    Printf.printf "HTML result written to %s\n" path)

(* ------------------------------------------------------------------ *)
(* run: one benchmark                                                  *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let syscall_arg =
    let doc = "Syscall benchmark to run (e.g. open, rename, vfork)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SYSCALL" ~doc)
  in
  let run tool syscall trials backend seed no_cache no_prune no_canon no_segment result_type
      store no_store trace faults deadline retries fallback =
    apply_cache_flag no_cache;
    apply_prune_flag no_prune;
    apply_canon_flag no_canon;
    apply_segment_flag no_segment;
    apply_fault_flags faults fallback;
    let store = store_of ~store ~no_store in
    let config = config_of ?store ?deadline ?retries tool trials backend seed in
    match Provmark.Runner.run_syscall config syscall with
    | Error known -> unknown_benchmark syscall known
    | Ok r ->
        print_result ~result_type r;
        write_trace trace [ r ];
        print_store_stats store;
        Provmark.Session.persist_planner store;
        finish_run [ r ]
  in
  let term =
    Term.(
      const run $ tool_arg $ syscall_arg $ trials_arg $ backend_arg $ seed_arg $ no_cache_arg
      $ no_prune_arg $ no_canon_arg $ no_segment_arg $ result_type_arg $ store_arg
      $ no_store_arg $ trace_arg $ faults_arg $ deadline_arg $ retries_arg $ fallback_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Benchmark a single syscall (like fullAutomation.py).") term

(* ------------------------------------------------------------------ *)
(* batch: all benchmarks, validation matrix                            *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let tools_arg =
    let doc = "Tools to benchmark (default: all three)." in
    Arg.(value & opt_all tool_conv Recorders.Recorder.all_tools & info [ "tool" ] ~docv:"TOOL" ~doc)
  in
  let csv_arg =
    let doc = "Also write per-stage timing CSV to this file (sampleResult format)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let run tools trials backend seed jobs no_cache no_prune no_canon no_segment csv store
      no_store trace faults deadline retries fallback =
    apply_cache_flag no_cache;
    apply_prune_flag no_prune;
    apply_canon_flag no_canon;
    apply_segment_flag no_segment;
    apply_fault_flags faults fallback;
    let store = store_of ~store ~no_store in
    let configs =
      List.map (fun tool -> config_of ?store ?deadline ?retries tool trials backend seed) tools
    in
    let matrix = Provmark.Parallel_runner.run_matrix ~jobs ~on_result:progress configs in
    List.iter (fun (_, results) -> List.iter append_time_log results) matrix;
    print_string (Provmark.Report.validation_matrix matrix);
    let ok, total = Provmark.Report.agreement matrix in
    Printf.printf "\nAgreement with paper Table 2: %d/%d\n" ok total;
    print_cache_stats ();
    write_trace trace (List.concat_map snd matrix);
    print_store_stats store;
    (match csv with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        List.iter (fun (_, results) -> output_string oc (Provmark.Report.timing_csv results)) matrix;
        close_out oc;
        Printf.printf "Timing CSV written to %s\n" file);
    Provmark.Session.persist_planner store;
    finish_run (List.concat_map snd matrix)
  in
  let term =
    Term.(
      const run $ tools_arg $ trials_arg $ backend_arg $ seed_arg $ jobs_arg $ no_cache_arg
      $ no_prune_arg $ no_canon_arg $ no_segment_arg $ csv_arg $ store_arg $ no_store_arg
      $ trace_arg $ faults_arg $ deadline_arg $ retries_arg $ fallback_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Benchmark every syscall and print the validation matrix (like runTests.sh).")
    term

(* ------------------------------------------------------------------ *)
(* report: full HTML results page (finalResult/index.html)             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let tools_arg =
    let doc = "Tools to include (default: all three)." in
    Arg.(value & opt_all tool_conv Recorders.Recorder.all_tools & info [ "tool" ] ~docv:"TOOL" ~doc)
  in
  let out_arg =
    let doc = "Output HTML file." in
    Arg.(value & opt string "finalResult/index.html" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run tools trials backend seed jobs no_cache no_prune no_canon no_segment out store
      no_store faults deadline retries fallback =
    apply_cache_flag no_cache;
    apply_prune_flag no_prune;
    apply_canon_flag no_canon;
    apply_segment_flag no_segment;
    apply_fault_flags faults fallback;
    let store = store_of ~store ~no_store in
    let configs =
      List.map (fun tool -> config_of ?store ?deadline ?retries tool trials backend seed) tools
    in
    let matrix = Provmark.Parallel_runner.run_matrix ~jobs ~on_result:progress configs in
    List.iter (fun (_, results) -> List.iter append_time_log results) matrix;
    Provmark.Html_report.write_file out (Provmark.Html_report.render matrix);
    Printf.printf "HTML report written to %s\n" out;
    print_store_stats store;
    Provmark.Session.persist_planner store;
    finish_run (List.concat_map snd matrix)
  in
  let term =
    Term.(
      const run $ tools_arg $ trials_arg $ backend_arg $ seed_arg $ jobs_arg $ no_cache_arg
      $ no_prune_arg $ no_canon_arg $ no_segment_arg $ out_arg $ store_arg $ no_store_arg
      $ faults_arg $ deadline_arg $ retries_arg $ fallback_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Benchmark every syscall and write the HTML results page (the rh result type).")
    term

(* ------------------------------------------------------------------ *)
(* failures: auto-derived failure-case coverage matrix                 *)
(* ------------------------------------------------------------------ *)

let failures_cmd =
  let tools_arg =
    let doc = "Tools to check (default: all three)." in
    Arg.(value & opt_all tool_conv Recorders.Recorder.all_tools & info [ "tool" ] ~docv:"TOOL" ~doc)
  in
  let run tools trials backend seed =
    let variants = Provmark.Bench_gen.failure_variants () in
    Printf.printf "%-12s" "syscall";
    List.iter (fun t -> Printf.printf " %-12s" (Recorders.Recorder.tool_name t)) tools;
    print_newline ();
    List.iter
      (fun (prog : Oskernel.Program.t) ->
        Printf.printf "%-12s" prog.Oskernel.Program.syscall;
        List.iter
          (fun tool ->
            let config = config_of tool trials backend seed in
            let r = Provmark.Runner.run config prog in
            let word =
              match r.Provmark.Result.status with
              | Provmark.Result.Target _ -> "recorded"
              | Provmark.Result.Empty -> "-"
              | Provmark.Result.Failed _ -> "failed"
            in
            Printf.printf " %-12s" word)
          tools;
        print_newline ())
      variants
  in
  let term = Term.(const run $ tools_arg $ trials_arg $ backend_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "failures"
       ~doc:"Derive an access-control failure variant of every eligible benchmark and \
             report which tools record the failed attempt (automating the Section 3.1 \
             use case).")
    term

(* ------------------------------------------------------------------ *)
(* trace: dump the kernel observation streams for a benchmark          *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let syscall_arg =
    let doc = "Syscall benchmark whose streams to dump." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSCALL" ~doc)
  in
  let variant_arg =
    let doc = "Program variant: fg (foreground, default) or bg (background)." in
    Arg.(value & opt string "fg" & info [ "variant" ] ~docv:"V" ~doc)
  in
  let stream_arg =
    let doc = "Stream to print: all (default), audit, libc or lsm." in
    Arg.(value & opt string "all" & info [ "stream" ] ~docv:"S" ~doc)
  in
  let run syscall seed variant stream =
    match Provmark.Bench_registry.find syscall with
    | None -> unknown_benchmark syscall (Provmark.Bench_registry.names ())
    | Some prog ->
        let variant =
          if String.equal variant "bg" then Oskernel.Program.Background
          else Oskernel.Program.Foreground
        in
        let trace = Oskernel.Kernel.run ~run_id:seed prog variant in
        Printf.printf "run %d: monitored pid %d, shell pid %d, boot %s\n\n"
          trace.Oskernel.Trace.run_id trace.Oskernel.Trace.monitored_pid
          trace.Oskernel.Trace.shell_pid trace.Oskernel.Trace.boot_id;
        let keep (e : Oskernel.Event.t) =
          match (stream, e) with
          | "all", _ -> true
          | "audit", Oskernel.Event.Audit _ -> true
          | "libc", Oskernel.Event.Libc _ -> true
          | "lsm", Oskernel.Event.Lsm _ -> true
          | _ -> false
        in
        List.iter
          (fun e -> if keep e then Format.printf "%a@." Oskernel.Event.pp e)
          (Oskernel.Trace.merged trace)
  in
  let term = Term.(const run $ syscall_arg $ seed_arg $ variant_arg $ stream_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a benchmark in the kernel simulator and dump the audit/libc/LSM \
             observation streams.")
    term

(* ------------------------------------------------------------------ *)
(* export: generate the benchmarkProgram/ C sources                    *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let dir_arg =
    let doc = "Output directory." in
    Arg.(value & opt string "benchmarkProgram" & info [ "dir"; "d" ] ~docv:"DIR" ~doc)
  in
  let run dir =
    let n = Provmark.C_export.export_all ~dir () in
    Printf.printf "wrote %d benchmark programs under %s/\n" n dir
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Generate the per-syscall C benchmark programs (#ifdef TARGET layout) for use              with a real ProvMark deployment.")
    Term.(const run $ dir_arg)

(* ------------------------------------------------------------------ *)
(* corpus: materialize a synthetic corpus tier                         *)
(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let tier_arg =
    let doc =
      "Corpus tier to materialize: light (CI-sized, a few hundred nodes), scaled \
       (thousands), large (tens of thousands) or full (up to 10^5 nodes). Tiers \
       are cumulative: each includes every lighter tier's entries."
    in
    let parse s = Result.map_error (fun e -> `Msg e) (Pgraph.Provgen.tier_of_string s) in
    let print ppf t = Format.pp_print_string ppf (Pgraph.Provgen.tier_name t) in
    Arg.(
      value
      & opt (conv (parse, print)) Pgraph.Provgen.Light
      & info [ "tier" ] ~docv:"TIER" ~doc)
  in
  let dir_arg =
    let doc = "Output directory; the tier lands in DIR/<tier>/." in
    Arg.(value & opt string "corpus" & info [ "dir"; "d" ] ~docv:"DIR" ~doc)
  in
  let format_arg =
    let doc = "Serialization(s) to write: dot, provjson or both." in
    let parse = function
      | "dot" -> Ok [ Provmark.Corpus.Dot ]
      | "provjson" -> Ok [ Provmark.Corpus.Provjson ]
      | "both" -> Ok [ Provmark.Corpus.Dot; Provmark.Corpus.Provjson ]
      | s -> Error (`Msg (Printf.sprintf "unknown format %s (expected dot, provjson or both)" s))
    in
    let print ppf = function
      | [ Provmark.Corpus.Dot ] -> Format.pp_print_string ppf "dot"
      | [ Provmark.Corpus.Provjson ] -> Format.pp_print_string ppf "provjson"
      | _ -> Format.pp_print_string ppf "both"
    in
    Arg.(
      value
      & opt (conv (parse, print)) [ Provmark.Corpus.Dot; Provmark.Corpus.Provjson ]
      & info [ "format" ] ~docv:"F" ~doc)
  in
  (* Like --store, the output directory is validated before generation
     starts: a bad --dir is one clear error up front (exit 2), not a
     crash minutes into a large tier. *)
  let validate_dir dir =
    if Sys.file_exists dir then begin
      if not (Sys.is_directory dir) then
        invalid_config (Printf.sprintf "%s: not a directory" dir)
    end
    else begin
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (e, _, _) ->
        invalid_config
          (Printf.sprintf "%s: cannot create directory (%s)" dir (Unix.error_message e))
    end;
    let probe = Filename.concat dir ".provmark-write-probe" in
    match Out_channel.with_open_bin probe (fun _ -> ()) with
    | () -> ( try Sys.remove probe with Sys_error _ -> ())
    | exception Sys_error msg -> invalid_config (Printf.sprintf "%s: not writable (%s)" dir msg)
  in
  let run tier dir formats seed jobs store no_store =
    let store = store_of ~store ~no_store in
    validate_dir dir;
    let m = Provmark.Corpus.materialize ~jobs ?store ~formats ~dir ~seed tier in
    let files = List.length m.Provmark.Corpus.entries in
    let nodes =
      List.fold_left (fun acc e -> acc + e.Provmark.Corpus.entry_nodes) 0 m.Provmark.Corpus.entries
    in
    Printf.printf "wrote %d corpus files (%d nodes total) under %s/%s/\n" files nodes dir
      (Pgraph.Provgen.tier_name tier);
    match store with
    | None -> ()
    | Some st ->
        let t = Provmark.Artifact_store.totals st in
        Printf.printf "store: %d replayed, %d generated\n" t.Provmark.Artifact_store.hits
          t.Provmark.Artifact_store.misses
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Materialize a ProvGen-style synthetic corpus tier: seeded deterministic \
          provenance graphs serialized to DOT and PROV-JSON with a MANIFEST.json of \
          spec strings and digests. Output bytes are a pure function of (tier, seed) \
          — independent of --jobs — and replay from the artifact store when warm.")
    Term.(
      const run $ tier_arg $ dir_arg $ format_arg $ seed_arg $ jobs_arg $ store_arg $ no_store_arg)

(* ------------------------------------------------------------------ *)
(* match: stand-alone graph matching over serialized graphs            *)
(* ------------------------------------------------------------------ *)

let format_arg =
  let doc = "Graph serialization: dot or provjson (default: from the first file's suffix)." in
  Arg.(value & opt (some string) None & info [ "format" ] ~docv:"F" ~doc)

let read_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> invalid_config msg

let match_cmd =
  let kind_arg =
    let doc = "Operation: similar, generalize or compare." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc)
  in
  let file_a_arg =
    let doc = "First graph file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE_A" ~doc)
  in
  let file_b_arg =
    let doc = "Second graph file." in
    Arg.(required & pos 2 (some string) None & info [] ~docv:"FILE_B" ~doc)
  in
  let run kind file_a file_b format backend no_cache no_prune no_canon no_segment =
    apply_cache_flag no_cache;
    apply_prune_flag no_prune;
    apply_canon_flag no_canon;
    apply_segment_flag no_segment;
    let kind =
      match Provmark.Match_op.kind_of_string kind with
      | Ok k -> k
      | Error msg -> invalid_config msg
    in
    let format =
      match format with
      | None -> Provmark.Match_op.format_for_file file_a
      | Some s -> (
          match Provmark.Match_op.format_of_string s with
          | Ok f -> f
          | Error msg -> invalid_config msg)
    in
    let parse file =
      match Provmark.Match_op.parse_graph format (read_file file) with
      | Ok g -> g
      | Error msg -> invalid_config (Printf.sprintf "%s: %s" file msg)
    in
    let ga = parse file_a in
    let gb = parse file_b in
    print_string (Provmark.Match_op.run ~backend kind ga gb)
  in
  let term =
    Term.(
      const run $ kind_arg $ file_a_arg $ file_b_arg $ format_arg $ backend_arg $ no_cache_arg
      $ no_prune_arg $ no_canon_arg $ no_segment_arg)
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:
         "Match two serialized provenance graphs: decide similarity, compute the \
          optimal generalization matching, or embed the first graph into the second. \
          Prints the same text a serve daemon returns for the equivalent request.")
    term

(* ------------------------------------------------------------------ *)
(* serve: warm concurrent benchmark daemon                             *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc =
    "Endpoint to listen on / connect to: a Unix socket path, or HOST:PORT for TCP."
  in
  Arg.(value & opt string ".provmark/serve.sock" & info [ "socket"; "s" ] ~docv:"ENDPOINT" ~doc)

let endpoint_of socket =
  match Serve.Protocol.endpoint_of_string socket with
  | Ok e -> e
  | Error msg -> invalid_config (Printf.sprintf "--socket %s: %s" socket msg)

let serve_cmd =
  let queue_bound_arg =
    let doc =
      "Admission-control bound: maximum benchmark/match requests in flight at once. \
       Requests over the bound are rejected immediately with a structured queue-full \
       (429) error instead of queueing without limit."
    in
    Arg.(
      value
      & opt int Serve.Daemon.default_queue_bound
      & info [ "queue-bound" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Idle/read timeout in seconds (monotonic clock): a connection with no \
       compute in flight that stalls this long is answered with a structured \
       timeout (408) error and closed. 0 disables."
    in
    Arg.(
      value
      & opt float (Option.value Serve.Daemon.default_limits.idle_timeout_s ~default:0.)
      & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_line_bytes_arg =
    let doc =
      "Reject request lines over this many bytes with a structured bad-request \
       (400) error and close the connection."
    in
    Arg.(
      value
      & opt int Serve.Daemon.default_limits.max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"BYTES" ~doc)
  in
  let max_conns_arg =
    let doc =
      "Connection cap: an accept over the cap is sent one overloaded (503) line \
       with a retry hint and closed, and accepting pauses briefly."
    in
    Arg.(
      value
      & opt int Serve.Daemon.default_limits.max_conns
      & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let drain_arg =
    let doc =
      "Shutdown drain budget in seconds: on a shutdown request, SIGTERM or \
       SIGINT, in-flight work gets this long to finish and flush before \
       stragglers are force-closed."
    in
    Arg.(
      value
      & opt float Serve.Daemon.default_limits.drain_s
      & info [ "drain" ] ~docv:"SECONDS" ~doc)
  in
  let breaker_threshold_arg =
    let doc =
      "Circuit breaker: this many ASP step-limit degradations within one \
       cooldown window shunt subsequent ASP requests to the direct (VF2) \
       backend for the cooldown. 0 disables."
    in
    Arg.(
      value
      & opt int Serve.Daemon.default_limits.breaker_threshold
      & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc = "Circuit-breaker cooldown (and failure-counting window) in seconds." in
    Arg.(
      value
      & opt float Serve.Daemon.default_limits.breaker_cooldown_s
      & info [ "breaker-cooldown" ] ~docv:"SECONDS" ~doc)
  in
  let run socket jobs queue_bound no_cache no_prune no_canon no_segment store no_store trace
      fallback deadline idle_timeout max_line_bytes max_conns drain breaker_threshold
      breaker_cooldown =
    apply_cache_flag no_cache;
    apply_prune_flag no_prune;
    apply_canon_flag no_canon;
    apply_segment_flag no_segment;
    Gmatch.Engine.set_fallback fallback;
    let store = store_of ~store ~no_store in
    let endpoint = endpoint_of socket in
    if max_line_bytes <= 0 then invalid_config "--max-line-bytes must be positive";
    if max_conns <= 0 then invalid_config "--max-conns must be positive";
    if drain < 0. then invalid_config "--drain must be non-negative";
    let limits =
      {
        Serve.Daemon.idle_timeout_s = (if idle_timeout <= 0. then None else Some idle_timeout);
        max_line_bytes;
        max_conns;
        drain_s = drain;
        deadline_s = deadline;
        breaker_threshold;
        breaker_cooldown_s = breaker_cooldown;
      }
    in
    let cfg =
      { Serve.Daemon.endpoint; jobs; queue_bound; store; trace; limits }
    in
    let on_ready () =
      Printf.eprintf "provmark serve: listening on %s (%d worker%s)\n%!"
        (Serve.Protocol.endpoint_to_string endpoint)
        (max 1 jobs)
        (if max 1 jobs = 1 then "" else "s")
    in
    let served = Serve.Daemon.run ~on_ready cfg in
    Printf.eprintf "provmark serve: shut down after %d compute request%s\n%!" served
      (if served = 1 then "" else "s");
    print_store_stats store
  in
  let term =
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_bound_arg $ no_cache_arg $ no_prune_arg
      $ no_canon_arg $ no_segment_arg $ store_arg $ no_store_arg $ trace_arg $ fallback_arg
      $ deadline_arg $ idle_timeout_arg $ max_line_bytes_arg $ max_conns_arg $ drain_arg
      $ breaker_threshold_arg $ breaker_cooldown_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the warm benchmark daemon: accept benchmark/match/stats requests from \
          many concurrent clients over a line-delimited JSON protocol, sharing the \
          solve memo, canonical-form cache, artifact store and worker-domain pool \
          across all of them. Responses are byte-identical to the batch CLI's output \
          for the same inputs. Stop it with a shutdown request, SIGTERM or SIGINT \
          (both drain gracefully within $(b,--drain) seconds).")
    term

(* ------------------------------------------------------------------ *)
(* request: one client request against a running daemon                *)
(* ------------------------------------------------------------------ *)

let request_cmd =
  let op_arg =
    let doc = "Request: benchmark SYSCALL, match KIND FILE_A FILE_B, stats, ping or shutdown." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let rest_arg = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG") in
  let tool_opt_arg =
    let doc = "Capture tool for benchmark requests (default spg)." in
    Arg.(value & opt tool_conv Recorders.Recorder.Spade & info [ "tool" ] ~docv:"TOOL" ~doc)
  in
  let raw_arg =
    let doc = "Print the raw JSON response line instead of the embedded output text." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let site_arg =
    let doc =
      "Fault-injection site name for $(b,--faults): the socket-tap decision for \
       this request is a pure function of (plan seed, site), so distinct sites \
       sample distinct faults and the same site replays the same fault."
    in
    Arg.(value & opt string "request" & info [ "site" ] ~docv:"SITE" ~doc)
  in
  let run socket op rest tool trials backend seed result_type format raw faults site =
    let endpoint = endpoint_of socket in
    let req =
      match (op, rest) with
      | "ping", [] -> { Serve.Protocol.id = None; op = Serve.Protocol.Ping }
      | "stats", [] -> { Serve.Protocol.id = None; op = Serve.Protocol.Stats }
      | "shutdown", [] -> { Serve.Protocol.id = None; op = Serve.Protocol.Shutdown }
      | "benchmark", [ syscall ] ->
          {
            Serve.Protocol.id = None;
            op =
              Serve.Protocol.Benchmark
                { tool; syscall; trials; seed; backend; result_type };
          }
      | "match", [ kind; file_a; file_b ] ->
          let kind =
            match Provmark.Match_op.kind_of_string kind with
            | Ok k -> k
            | Error msg -> invalid_config msg
          in
          let format =
            match format with
            | None -> Provmark.Match_op.format_for_file file_a
            | Some s -> (
                match Provmark.Match_op.format_of_string s with
                | Ok f -> f
                | Error msg -> invalid_config msg)
          in
          {
            Serve.Protocol.id = None;
            op =
              Serve.Protocol.Match
                {
                  kind;
                  format;
                  a = read_file file_a;
                  b = read_file file_b;
                  m_backend = Some backend;
                };
          }
      | op, rest ->
          invalid_config
            (Printf.sprintf "bad request %S with %d argument%s (expected: benchmark \
                             SYSCALL | match KIND FILE_A FILE_B | stats | ping | shutdown)"
               op (List.length rest)
               (if List.length rest = 1 then "" else "s"))
    in
    Faults.Injector.set_plan faults;
    let response =
      let plain () =
        match Serve.Client.with_connection endpoint (fun c -> Serve.Client.call c req) with
        | Ok response -> Ok response
        | Error msg -> Error msg
      in
      let chaos () =
        (* Wire-level chaos mode: abuse the socket the way the plan
           prescribes for this site.  A deliberate mid-request hangup
           forecloses a response by design — that is a successful
           injection, not a failure. *)
        match Serve.Client.chaos_call ~site endpoint req with
        | Serve.Client.Response response -> Ok response
        | Serve.Client.No_response msg ->
            Printf.eprintf "provmark request: no response (%s)\n" msg;
            exit 0
      in
      match (if faults = None then plain () else chaos ()) with
      | Ok response -> response
      | Error msg ->
          Printf.eprintf "provmark request: %s\n" msg;
          exit 1
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "provmark request: cannot connect to %s (%s)\n"
            (Serve.Protocol.endpoint_to_string endpoint)
            (Unix.error_message e);
          exit 1
    in
    if raw then print_endline (Minijson.Json.to_string response)
    else begin
      (match Serve.Client.response_status response with
      | "ok" -> print_string (Serve.Client.response_output response)
      | _ ->
          let str name =
            match Minijson.Json.member name response with
            | Minijson.Json.String s -> s
            | _ -> "?"
          in
          Printf.eprintf "provmark request: %s: %s\n" (str "error") (str "message"));
      exit (Serve.Client.response_exit response)
    end
  in
  let term =
    Term.(
      const run $ socket_arg $ op_arg $ rest_arg $ tool_opt_arg $ trials_arg $ backend_arg
      $ seed_arg $ result_type_arg $ format_arg $ raw_arg $ faults_arg $ site_arg)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running provmark serve daemon and print the response: \
          the embedded output text (byte-identical to the equivalent run/match \
          subcommand), or the raw JSON line with --raw. Exits with the code the batch \
          CLI would have used. With --faults, the request is sent through the \
          wire-level chaos driver: the plan's socket tap decides (per --site) whether \
          to stall, tear, dribble or abandon the request on the wire.")
    term

(* ------------------------------------------------------------------ *)
(* list: available benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (p : Oskernel.Program.t) ->
        Printf.printf "%d  %-12s %s\n"
          (Provmark.Bench_registry.group_of p.Oskernel.Program.syscall)
          p.Oskernel.Program.syscall p.Oskernel.Program.name)
      Provmark.Bench_registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark programs (Table 1).") Term.(const run $ const ())

let main_cmd =
  let doc = "provenance expressiveness benchmarking (ProvMark reproduction)" in
  Cmd.group (Cmd.info "provmark" ~version:"1.0.0" ~doc) [ run_cmd; batch_cmd; report_cmd; failures_cmd; trace_cmd; export_cmd; corpus_cmd; match_cmd; serve_cmd; request_cmd; list_cmd ]

let () = exit (Cmd.eval main_cmd)
