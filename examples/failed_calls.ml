(* "Tracking failed calls" (paper Section 3.1, Alice's use case).

   A security analyst wants to know which provenance recorders track
   syscalls that fail due to access-control violations — e.g. a
   non-privileged user attempting to overwrite /etc/passwd by renaming
   another file onto it.

     dune exec examples/failed_calls.exe

   Expected outcome, as in the paper: SPADE's default audit rules only
   report successful calls, so it records nothing; OPUS intercepts the
   C-library call and records the *attempt* with a -1 return value (the
   same graph structure as a successful rename); CamFlow could in
   principle observe the denied permission check but does not record it
   in this configuration. *)

let describe tool (prog : Oskernel.Program.t) =
  let config = Provmark.Config.default tool in
  let result = Provmark.Runner.run config prog in
  let verdict =
    match result.Provmark.Result.status with
    | Provmark.Result.Target g ->
        Printf.sprintf "recorded: %s" (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g))
    | Provmark.Result.Empty -> "not recorded"
    | Provmark.Result.Failed e ->
        "benchmarking failed: " ^ Provmark.Result.stage_error_to_string e
  in
  Printf.printf "  %-8s %s\n%!" (Recorders.Recorder.tool_name tool) verdict;
  result

let () =
  List.iter
    (fun (prog : Oskernel.Program.t) ->
      Printf.printf "%s (failing %s):\n" prog.Oskernel.Program.name prog.Oskernel.Program.syscall;
      List.iter (fun tool -> ignore (describe tool prog)) Recorders.Recorder.all_tools;
      print_newline ())
    Provmark.Bench_registry.failure_cases;

  (* Drill into the paper's example: the failed rename under OPUS has
     the same structure as a successful one, distinguished only by the
     return-value property. *)
  print_endline "OPUS target graph for the failed rename (note ret=-1, errno=EACCES):";
  let config = Provmark.Config.default Recorders.Recorder.Opus in
  match (Provmark.Runner.run config Provmark.Bench_registry.failed_rename).Provmark.Result.status with
  | Provmark.Result.Target g -> Format.printf "%a@." Pgraph.Graph.pp g
  | _ -> print_endline "unexpected: OPUS did not record the failed rename"
