(* Quickstart: benchmark one system call against one capture system and
   inspect the target graph ProvMark isolates for it.

     dune exec examples/quickstart.exe

   This is the whole public-API loop: pick a tool, pick a benchmark
   program, run the four-stage pipeline, look at the result. *)

let () =
  (* 1. Configure the pipeline for a capture tool.  Defaults mirror the
     original config.ini profiles (trial counts, graph filtering). *)
  let config = Provmark.Config.default Recorders.Recorder.Spade in

  (* 2. Pick a benchmark program from the registry — here the `open`
     benchmark of the paper's Table 1 — and run the pipeline. *)
  let program = Provmark.Bench_registry.find_exn "open" in
  let result = Provmark.Runner.run config program in

  (* 3. The status tells whether the tool recorded the activity. *)
  (match result.Provmark.Result.status with
  | Provmark.Result.Target graph ->
      Format.printf "SPADE records `open` as this subgraph:@.%a@." Pgraph.Graph.pp graph;
      Format.printf "(%s)@." (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph graph))
  | Provmark.Result.Empty ->
      print_endline "SPADE did not record the target activity (empty benchmark)."
  | Provmark.Result.Failed e ->
      Printf.printf "benchmarking failed: %s\n" (Provmark.Result.stage_error_to_string e));

  (* 4. Stage timings — the quantities behind the paper's Figures 5-7. *)
  let t = Provmark.Result.times result in
  Format.printf "stage times: recording %.4fs, transformation %.4fs, %s@."
    t.Provmark.Result.recording_s t.Provmark.Result.transformation_s
    (Printf.sprintf "generalization %.4fs, comparison %.4fs"
       t.Provmark.Result.generalization_s t.Provmark.Result.comparison_s);

  (* 5. Benchmark results serialize as Datalog fact files (Listing 1),
     the format used for storage and regression testing. *)
  match result.Provmark.Result.status with
  | Provmark.Result.Target graph ->
      print_endline "\nDatalog form:";
      print_string (Provmark.Transform.to_datalog ~gid:"1" graph)
  | _ -> ()
