(* "Regression testing" (paper Section 3.1, Charlie's use case).

   A recorder developer stores the benchmark graphs of a known-good
   version as Datalog fact files and compares each new version's graphs
   against them using the same isomorphism machinery ProvMark uses
   during benchmarking.  An intentional configuration change (enabling
   SPADE's versioning) is detected; re-accepting it updates the
   baseline.

     dune exec examples/regression_testing.exe *)

let tool = Recorders.Recorder.Spade

(* Charlie's CI setup uses the paper's own stability mitigations: extra
   trials and pre-filtering of obviously incomplete graphs, so a flaky
   recorder run cannot masquerade as a regression. *)
let benchmark_graph ?(spade = Recorders.Spade.default_config) ?(seed = 1) syscall =
  let config =
    {
      (Provmark.Config.default tool) with
      Provmark.Config.spade;
      seed;
      trials = 5;
      filter_graphs = true;
    }
  in
  match (Provmark.Runner.run config (Provmark.Bench_registry.find_exn syscall)).Provmark.Result.status with
  | Provmark.Result.Target g -> g
  | Provmark.Result.Empty -> Pgraph.Graph.empty
  | Provmark.Result.Failed e ->
      failwith ("benchmarking failed: " ^ Provmark.Result.stage_error_to_string e)

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "provmark_regression_demo" in
  let store = Provmark.Regression.open_store dir in
  let syscalls = [ "open"; "rename"; "write"; "fork" ] in

  (* Baseline run: store every benchmark graph. *)
  List.iter
    (fun syscall ->
      let key = Provmark.Regression.key ~tool ~benchmark:syscall in
      Provmark.Regression.save store ~key (benchmark_graph syscall))
    syscalls;
  Printf.printf "baseline stored under %s: %s\n\n" dir
    (String.concat ", " (Provmark.Regression.keys store));

  (* A fresh benchmarking run of the same system version: transient
     values differ (different seed), shapes must not. *)
  print_endline "re-running the same recorder version (different transients):";
  List.iter
    (fun syscall ->
      let key = Provmark.Regression.key ~tool ~benchmark:syscall in
      let verdict =
        match Provmark.Regression.check store ~key (benchmark_graph ~seed:42 syscall) with
        | Provmark.Regression.Unchanged -> "unchanged"
        | Provmark.Regression.Changed _ -> "CHANGED"
        | Provmark.Regression.New -> "new"
      in
      Printf.printf "  %-8s %s\n" syscall verdict)
    syscalls;

  (* Now "upgrade" the recorder: enable versioning.  Writes now create
     explicit file versions, so the write benchmark's shape changes. *)
  print_endline "\nafter enabling SPADE versioning:";
  let versioned = { Recorders.Spade.default_config with Recorders.Spade.versioning = true } in
  List.iter
    (fun syscall ->
      let key = Provmark.Regression.key ~tool ~benchmark:syscall in
      let g = benchmark_graph ~spade:versioned syscall in
      match Provmark.Regression.check store ~key g with
      | Provmark.Regression.Unchanged -> Printf.printf "  %-8s unchanged\n" syscall
      | Provmark.Regression.Changed { baseline } ->
          Printf.printf "  %-8s CHANGED: %s -> %s (expected: accepting new baseline)\n" syscall
            (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph baseline))
            (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g));
          Provmark.Regression.accept store ~key g
      | Provmark.Regression.New -> Printf.printf "  %-8s new\n" syscall)
    syscalls;

  (* The accepted baseline makes the next versioned run clean. *)
  print_endline "\nre-checking against the accepted baseline:";
  List.iter
    (fun syscall ->
      let key = Provmark.Regression.key ~tool ~benchmark:syscall in
      let verdict =
        match Provmark.Regression.check store ~key (benchmark_graph ~spade:versioned ~seed:7 syscall) with
        | Provmark.Regression.Unchanged -> "unchanged"
        | Provmark.Regression.Changed _ -> "CHANGED (unexpected!)"
        | Provmark.Regression.New -> "new"
      in
      Printf.printf "  %-8s %s\n" syscall verdict)
    syscalls
