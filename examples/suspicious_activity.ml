(* "Suspicious activity detection" (paper Section 3.1, Dora's use case).

   A security researcher marks the privilege-escalation step of an
   attack script as the target activity.  ProvMark then isolates the
   provenance-graph pattern that the escalation leaves behind — the
   pattern a detector would search for in production graphs.

     dune exec examples/suspicious_activity.exe

   The scenario: a subverted setuid-root binary regains root via
   setresuid and reads /etc/shadow; the surrounding benign file activity
   is background. *)

let () =
  let prog = Provmark.Bench_registry.privilege_escalation in
  Printf.printf "attack program: %s (target = %d syscalls)\n\n" prog.Oskernel.Program.name
    (List.length prog.Oskernel.Program.target);
  List.iter
    (fun tool ->
      let config = Provmark.Config.default tool in
      let result = Provmark.Runner.run config prog in
      Printf.printf "=== %s ===\n" (Recorders.Recorder.tool_name tool);
      (match result.Provmark.Result.status with
      | Provmark.Result.Target g ->
          Format.printf "escalation signature (%s):@.%a@."
            (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g))
            Pgraph.Graph.pp g
      | Provmark.Result.Empty ->
          print_endline "this recorder leaves NO trace of the escalation — a blind spot"
      | Provmark.Result.Failed e ->
          Printf.printf "benchmarking failed: %s\n"
            (Provmark.Result.stage_error_to_string e));
      print_newline ())
    Recorders.Recorder.all_tools;
  print_endline
    "Interpretation: the non-empty signatures above are what a detector can match\n\
     against production provenance; a tool with an empty result cannot detect this\n\
     escalation pattern in its default configuration."
