module Fact = Datalog.Fact

type outcome = Solver.outcome =
  | Unsat
  | Model of { cost : int; atoms : Fact.t list; optimal : bool }
  | Unknown

let compute_rules ?max_steps ?find_optimal ~rules ~facts () =
  let ground = Ground.ground rules facts in
  let shows =
    List.filter_map (function Rule.Show (p, n) -> Some (p, n) | _ -> None) rules
  in
  match Solver.solve ?max_steps ?find_optimal ground with
  | Model { cost; atoms; optimal } when shows <> [] ->
      let atoms =
        List.filter
          (fun (f : Fact.t) -> List.mem (f.Fact.pred, List.length f.Fact.args) shows)
          atoms
      in
      Model { cost; atoms; optimal }
  | outcome -> outcome

let run ?max_steps ?find_optimal ?memo ~program ~facts () =
  let rules = Parser.parse_program program in
  match memo with
  | Some tag when Memo.is_enabled () ->
      (* Key on the facts the program can actually read: transient
         properties (pids, timestamps) vary between trials, but a
         shape-only program like Listings.similarity never consults
         them, so the restricted key lets those solves hit. *)
      let relevant = Datalog.Base.restrict facts (Rule.referenced_predicates rules) in
      let key =
        Memo.key ~program ~facts:relevant
          ~max_steps:(Option.value max_steps ~default:(-1))
          ~find_optimal:(Option.value find_optimal ~default:true)
      in
      Memo.find_or_compute ~tag ~key (fun () ->
          compute_rules ?max_steps ?find_optimal ~rules ~facts ())
  | Some _ | None ->
      (* With the memo disabled, [find_or_compute] would compute anyway
         (without even counting), so skip building the key — digesting
         the program and fact base is pure waste under --no-cache. *)
      compute_rules ?max_steps ?find_optimal ~rules ~facts ()

let matching_of_atoms atoms =
  List.filter_map
    (fun (f : Fact.t) ->
      if String.equal f.Fact.pred Listings.matching_predicate then
        match f.Fact.args with
        | [ x; y ] -> Some (Fact.string_of_term x, Fact.string_of_term y)
        | _ -> None
      else None)
    atoms
