(** Convenience façade: parse, ground and solve in one call, and read
    graph matchings out of the resulting model. *)

type outcome = Solver.outcome =
  | Unsat
  | Model of { cost : int; atoms : Datalog.Fact.t list; optimal : bool }
  | Unknown

(** [run ~program ~facts ()] parses [program], grounds it against
    [facts] and solves.  Parse and grounding errors propagate as
    {!Parser.Parse_error} / {!Ground.Ground_error}.

    With [?memo:tag], the outcome is served from {!Memo} when the same
    (program, facts, parameters) subproblem was solved before; [tag]
    names the per-stage hit counter.  Without it the call always
    computes — one-off callers (the miniclingo CLI, ad-hoc analyses)
    should not populate the cache. *)
val run :
  ?max_steps:int ->
  ?find_optimal:bool ->
  ?memo:string ->
  program:string ->
  facts:Datalog.Base.t ->
  unit ->
  outcome

(** [matching_of_atoms atoms] extracts the [h/2] matching pairs from the
    true atoms of a model, as [(left, right)] identifier pairs. *)
val matching_of_atoms : Datalog.Fact.t list -> (string * string) list
