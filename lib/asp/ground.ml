module Fact = Datalog.Fact
module Base = Datalog.Base

exception Ground_error of string

type lit = int * bool
type clause = lit list
type group = { atoms : int list; bound : int }
type cost_group = { weight : int; level : int; disj : int list }

type t = {
  atom_count : int;
  atom_names : Fact.t array;
  atoms_by_pred : (string, (int * Fact.t) list) Hashtbl.t;
  clauses : clause list;
  groups : group list;
  costs : cost_group list;
  base_costs : (int * int) list;
  statically_unsat : bool;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Ground_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Mutable grounding state                                             *)
(* ------------------------------------------------------------------ *)

module Fact_key = struct
  type t = Fact.t

  let equal = Fact.equal
  let hash (f : Fact.t) = Hashtbl.hash (f.Fact.pred, f.Fact.args)
end

module Fact_tbl = Hashtbl.Make (Fact_key)

(* Counted bucket: candidate selection reads [count] instead of walking
   the list with [List.length]. *)
type bucket = { mutable count : int; mutable facts : Fact.t list }

type open_bucket = { mutable ocount : int; mutable oatoms : (int * Fact.t) list }

type state = {
  base : Base.t;
  open_set : (string, unit) Hashtbl.t;
  mutable atoms : Fact.t list;  (* reversed *)
  mutable next_id : int;
  ids : int Fact_tbl.t;
  by_pred : (string, open_bucket) Hashtbl.t;  (* open atoms by predicate *)
  (* per-(predicate, argument position) index over closed facts, built
     lazily; any ground position of a pattern can drive the lookup *)
  closed_index : (string * int, (Fact.term, bucket) Hashtbl.t) Hashtbl.t;
  (* total closed fact count per predicate, cached *)
  closed_counts : (string, int) Hashtbl.t;
}

let is_open st p = Hashtbl.mem st.open_set p

let register_atom st fact =
  match Fact_tbl.find_opt st.ids fact with
  | Some id -> id
  | None ->
      let id = st.next_id in
      st.next_id <- id + 1;
      st.atoms <- fact :: st.atoms;
      Fact_tbl.add st.ids fact id;
      let bucket =
        match Hashtbl.find_opt st.by_pred fact.Fact.pred with
        | Some b -> b
        | None ->
            let b = { ocount = 0; oatoms = [] } in
            Hashtbl.add st.by_pred fact.Fact.pred b;
            b
      in
      bucket.ocount <- bucket.ocount + 1;
      bucket.oatoms <- (id, fact) :: bucket.oatoms;
      id

let find_atom st fact = Fact_tbl.find_opt st.ids fact

let open_atoms_with_pred st p =
  match Hashtbl.find_opt st.by_pred p with Some b -> b.oatoms | None -> []

let open_count st p =
  match Hashtbl.find_opt st.by_pred p with Some b -> b.ocount | None -> 0

let closed_count st pred =
  match Hashtbl.find_opt st.closed_counts pred with
  | Some n -> n
  | None ->
      let n = List.length (Base.facts_with_pred st.base pred) in
      Hashtbl.add st.closed_counts pred n;
      n

let closed_pos_index st pred pos =
  match Hashtbl.find_opt st.closed_index (pred, pos) with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 64 in
      List.iter
        (fun (f : Fact.t) ->
          match List.nth_opt f.Fact.args pos with
          | Some key ->
              let bucket =
                match Hashtbl.find_opt idx key with
                | Some b -> b
                | None ->
                    let b = { count = 0; facts = [] } in
                    Hashtbl.add idx key b;
                    b
              in
              bucket.count <- bucket.count + 1;
              bucket.facts <- f :: bucket.facts
          | None -> ())
        (Base.facts_with_pred st.base pred);
      Hashtbl.add st.closed_index (pred, pos) idx;
      idx

(* The most selective index bucket for an atom pattern under a
   substitution: of the argument positions that are already ground, the
   one whose bucket holds the fewest closed facts.  [None] when no
   position is ground (fall back to the full per-predicate list). *)
let closed_best_bucket st subst (a : Rule.atom) =
  let best = ref None in
  List.iteri
    (fun pos t ->
      match Term.Subst.apply subst t with
      | Term.Con c ->
          let idx = closed_pos_index st a.Rule.pred pos in
          let count, facts =
            match Hashtbl.find_opt idx c with
            | Some b -> (b.count, b.facts)
            | None -> (0, [])
          in
          (match !best with
          | Some (bc, _) when bc <= count -> ()
          | _ -> best := Some (count, facts))
      | Term.Var _ | Term.Any -> ())
    a.Rule.args;
  !best

let closed_candidates st subst (a : Rule.atom) =
  match closed_best_bucket st subst a with
  | Some (_, facts) -> facts
  | None -> Base.facts_with_pred st.base a.Rule.pred

(* Upper bound on the number of facts [closed_candidates] returns,
   without materializing or measuring any list. *)
let closed_candidate_count st subst (a : Rule.atom) =
  match closed_best_bucket st subst a with
  | Some (count, _) -> count
  | None -> closed_count st a.Rule.pred

(* ------------------------------------------------------------------ *)
(* Matching atoms against ground facts                                 *)
(* ------------------------------------------------------------------ *)

let match_atom subst (a : Rule.atom) (f : Fact.t) =
  if not (String.equal a.Rule.pred f.Fact.pred) then None
  else if List.length a.Rule.args <> List.length f.Fact.args then None
  else
    List.fold_left2
      (fun acc pat value ->
        match acc with None -> None | Some s -> Term.Subst.match_term s pat value)
      (Some subst) a.Rule.args f.Fact.args

let atom_ground_fact subst (a : Rule.atom) =
  let args =
    List.map
      (fun t ->
        match Term.Subst.apply subst t with
        | Term.Con c -> c
        | Term.Var v -> fail "unsafe variable %s in atom %s" v (Rule.atom_to_string a)
        | Term.Any -> fail "anonymous variable in head position of %s" (Rule.atom_to_string a))
      a.Rule.args
  in
  Fact.make a.Rule.pred args

let atom_is_ground subst (a : Rule.atom) =
  List.for_all
    (fun t -> match Term.Subst.apply subst t with Term.Con _ -> true | _ -> false)
    a.Rule.args

(* An atom is decidable for negation as failure when every named variable
   is bound; anonymous variables act as wildcards matched against the
   fact/atom registry. *)
let atom_vars_bound subst (a : Rule.atom) =
  List.for_all
    (fun t ->
      match t with
      | Term.Var v -> Option.is_some (Term.Subst.find v subst)
      | Term.Any | Term.Con _ -> true)
    a.Rule.args

let apply_atom subst (a : Rule.atom) =
  { a with Rule.args = List.map (Term.Subst.apply subst) a.Rule.args }

let apply_literal subst = function
  | Rule.Pos a -> Rule.Pos (apply_atom subst a)
  | Rule.Neg a -> Rule.Neg (apply_atom subst a)
  | Rule.Builtin (Rule.Neq (x, y)) ->
      Rule.Builtin (Rule.Neq (Term.Subst.apply subst x, Term.Subst.apply subst y))
  | Rule.Builtin (Rule.Eq (x, y)) ->
      Rule.Builtin (Rule.Eq (Term.Subst.apply subst x, Term.Subst.apply subst y))

let term_ground subst t =
  match Term.Subst.apply subst t with Term.Con c -> Some c | Term.Var _ | Term.Any -> None

(* ------------------------------------------------------------------ *)
(* Body enumeration                                                    *)
(* ------------------------------------------------------------------ *)

(* Enumerate every solution of [body] under the closed fact base plus the
   registered open atoms.  [on_solution subst conds] is invoked with the
   final substitution and the conditions on open atoms ([(id, true)] for a
   positive occurrence, [(id, false)] for a negated one) that make the body
   true.  Branches requiring an unregistered open atom to be true are
   pruned (such atoms are false in every model). *)
let enumerate_body st body ~on_solution =
  let builtin_eval subst b =
    match b with
    | Rule.Neq (x, y) -> (
        match (term_ground subst x, term_ground subst y) with
        | Some cx, Some cy -> Some (not (Fact.equal_term cx cy))
        | _ -> None)
    | Rule.Eq (x, y) -> (
        match (term_ground subst x, term_ground subst y) with
        | Some cx, Some cy -> Some (Fact.equal_term cx cy)
        | _ -> None)
  in
  let rec solve subst conds pending =
    (* First, simplify every literal that is decidable right now. *)
    let progress = ref false in
    let keep = ref [] in
    let pruned = ref false in
    let conds = ref conds in
    List.iter
      (fun lit ->
        if !pruned then ()
        else
          match lit with
          | Rule.Builtin b -> (
              match builtin_eval subst b with
              | Some true -> progress := true
              | Some false -> pruned := true
              | None -> keep := lit :: !keep)
          | Rule.Neg a when atom_vars_bound subst a ->
              progress := true;
              let pat = apply_atom subst a in
              if is_open st a.Rule.pred then
                (* [not h(...)]: every registered candidate matching the
                   pattern must be false; unregistered atoms already are. *)
                List.iter
                  (fun (id, f) ->
                    match match_atom subst pat f with
                    | Some _ -> conds := (id, false) :: !conds
                    | None -> ())
                  (open_atoms_with_pred st a.Rule.pred)
              else
                let exists_match =
                  List.exists
                    (fun f -> Option.is_some (match_atom subst pat f))
                    (closed_candidates st subst pat)
                in
                if exists_match then pruned := true
          | Rule.Pos a when atom_is_ground subst a ->
              progress := true;
              let f = atom_ground_fact subst a in
              if is_open st a.Rule.pred then (
                match find_atom st f with
                | None -> pruned := true
                | Some id -> conds := (id, true) :: !conds)
              else if not (Base.mem f st.base) then pruned := true
          | Rule.Pos _ | Rule.Neg _ -> keep := lit :: !keep)
      pending;
    if !pruned then ()
    else
      let pending = List.rev !keep in
      let conds = !conds in
      if !progress then solve subst conds pending
      else
        (* No literal is decidable: bind variables through some positive
           literal.  Choose the positive literal whose candidate bucket is
           smallest (counted buckets, no List.length) to keep the join
           narrow. *)
        match pending with
        | [] -> on_solution subst conds
        | _ ->
            let estimate a =
              if is_open st a.Rule.pred then open_count st a.Rule.pred
              else closed_candidate_count st subst a
            in
            let best = ref None in
            List.iteri
              (fun i lit ->
                match lit with
                | Rule.Pos a -> (
                    let e = estimate a in
                    match !best with
                    | Some (_, _, be) when be <= e -> ()
                    | _ -> best := Some (i, a, e))
                | Rule.Neg _ | Rule.Builtin _ -> ())
              pending;
            (match !best with
            | None ->
                fail "unsafe rule body: cannot instantiate %s"
                  (String.concat ", " (List.map Rule.literal_to_string pending))
            | Some (best_idx, best, _) ->
                (* Remove exactly the chosen occurrence (by position):
                   structural filtering would also drop duplicates of the
                   same literal elsewhere in the body. *)
                let rest = List.filteri (fun i _ -> i <> best_idx) pending in
                let candidates =
                  if is_open st best.Rule.pred then
                    List.filter_map
                      (fun (_, f) ->
                        match match_atom subst best f with Some _ -> Some f | None -> None)
                      (open_atoms_with_pred st best.Rule.pred)
                  else closed_candidates st subst best
                in
                List.iter
                  (fun f ->
                    match match_atom subst best f with
                    | None -> ()
                    | Some subst' ->
                        let conds' =
                          if not (is_open st best.Rule.pred) then conds
                          else
                            (* [None] unreachable: facts come from the registry. *)
                            match find_atom st f with
                            | Some id -> (id, true) :: conds
                            | None -> conds
                        in
                        solve subst' conds' rest)
                  candidates)
  in
  solve Term.Subst.empty [] body

(* ------------------------------------------------------------------ *)
(* Rule grounding                                                      *)
(* ------------------------------------------------------------------ *)

let ground program base =
  let open_set = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace open_set p ()) (Rule.open_predicates program);
  let st =
    {
      base;
      open_set;
      atoms = [];
      next_id = 0;
      ids = Fact_tbl.create 256;
      by_pred = Hashtbl.create 8;
      closed_index = Hashtbl.create 16;
      closed_counts = Hashtbl.create 8;
    }
  in
  let groups = ref [] in
  let clauses = ref [] in
  let defines = ref [] in  (* (head fact, conds) list, reversed *)
  let base_costs = ref [] in
  let add_base level weight =
    base_costs :=
      (match List.assoc_opt level !base_costs with
      | Some w -> (level, w + weight) :: List.remove_assoc level !base_costs
      | None -> (level, weight) :: !base_costs)
  in
  let costs = ref [] in
  let statically_unsat = ref false in

  (* Pass 1: choice rules register open atoms and cardinality groups. *)
  List.iter
    (function
      | Rule.Choice c ->
          enumerate_body st c.Rule.body ~on_solution:(fun subst body_conds ->
              if body_conds <> [] then
                fail "choice rule body may not mention open predicates: %s"
                  (Rule.to_string (Rule.Choice c));
              (* The generator runs under the bindings from the body:
                 substitute body variables into element and generator. *)
              let elem = apply_atom subst c.Rule.elem in
              let members = ref [] in
              let add gen_subst =
                let f = atom_ground_fact gen_subst elem in
                let id = register_atom st f in
                if not (List.mem id !members) then members := id :: !members
              in
              (match List.map (apply_literal subst) c.Rule.gen with
              | [] -> add Term.Subst.empty
              | gen ->
                  enumerate_body st gen ~on_solution:(fun gen_subst gen_conds ->
                      if gen_conds <> [] then
                        fail "choice generator may not mention open predicates: %s"
                          (Rule.to_string (Rule.Choice c));
                      add gen_subst));
              let atoms = List.rev !members in
              if List.length atoms < c.Rule.bound then statically_unsat := true;
              groups := { atoms; bound = c.Rule.bound } :: !groups)
      | Rule.Constraint _ | Rule.Define _ | Rule.Minimize _ | Rule.Show _ -> ())
    program;

  (* Pass 2: integrity constraints become clauses over open atoms. *)
  List.iter
    (function
      | Rule.Constraint body ->
          enumerate_body st body ~on_solution:(fun _subst conds ->
              match conds with
              | [] -> statically_unsat := true
              | conds -> clauses := List.map (fun (id, v) -> (id, not v)) conds :: !clauses)
      | Rule.Choice _ | Rule.Define _ | Rule.Minimize _ | Rule.Show _ -> ())
    program;

  (* Pass 3: definite rules derive head tuples conditional on open atoms. *)
  List.iter
    (function
      | Rule.Define (head, body) ->
          enumerate_body st body ~on_solution:(fun subst conds ->
              let f = atom_ground_fact subst head in
              defines := (f, conds) :: !defines)
      | Rule.Choice _ | Rule.Constraint _ | Rule.Minimize _ | Rule.Show _ -> ())
    program;
  let defines = List.rev !defines in

  (* Pass 4: #minimize statements aggregate weights over distinct tuples. *)
  let module Tmap = Map.Make (struct
    type t = Fact.term list

    let compare a b =
      let rec cmp xs ys =
        match (xs, ys) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | x :: xs, y :: ys ->
            let c = Fact.compare_term x y in
            if c <> 0 then c else cmp xs ys
      in
      cmp a b
  end) in
  List.iter
    (function
      | Rule.Minimize m ->
          (* The condition is matched against derived heads (for defined
             predicates) and open atoms; closed atoms are checked against
             the base. *)
          let tuples = ref Tmap.empty in
          let add_tuple subst conds =
            let weight =
              match term_ground subst m.Rule.weight with
              | Some (Fact.Int w) -> w
              | Some t -> fail "#minimize weight %s is not an integer" (Fact.term_to_string t)
              | None -> fail "#minimize weight is unbound"
            in
            if weight < 0 then fail "#minimize supports non-negative weights only";
            if weight > 0 then
              let key =
                Fact.Int weight
                :: Fact.Int m.Rule.priority
                :: List.map
                     (fun t ->
                       match term_ground subst t with
                       | Some c -> c
                       | None -> fail "#minimize tuple term is unbound")
                     m.Rule.tuple
              in
              tuples :=
                Tmap.update key
                  (fun prev ->
                    let prev = Option.value prev ~default:[] in
                    Some (conds :: prev))
                  !tuples
          in
          (* The condition must be a single positive literal over a
             defined, open or closed predicate.  This covers the ProvMark
             listings and keeps the distinct-tuple semantics exact. *)
          let defined_preds =
            List.filter_map (function Rule.Define (h, _) -> Some h.Rule.pred | _ -> None) program
          in
          (match m.Rule.cond with
          | [ Rule.Pos a ] when List.mem a.Rule.pred defined_preds ->
              List.iter
                (fun (head_fact, head_conds) ->
                  match match_atom Term.Subst.empty a head_fact with
                  | None -> ()
                  | Some subst -> add_tuple subst head_conds)
                defines
          | [ Rule.Pos a ] when is_open st a.Rule.pred ->
              List.iter
                (fun (id, f) ->
                  match match_atom Term.Subst.empty a f with
                  | None -> ()
                  | Some subst -> add_tuple subst [ (id, true) ])
                (open_atoms_with_pred st a.Rule.pred)
          | [ Rule.Pos a ] ->
              List.iter
                (fun f ->
                  match match_atom Term.Subst.empty a f with
                  | None -> ()
                  | Some subst -> add_tuple subst [])
                (Base.facts_with_pred st.base a.Rule.pred)
          | _ ->
              fail "#minimize condition must be a single positive literal, got: %s"
                (Rule.to_string (Rule.Minimize m)));
          Tmap.iter
            (fun key derivations ->
              let weight = match key with Fact.Int w :: _ -> w | _ -> assert false in
              (* The tuple is counted when any derivation holds.  Each
                 derivation must be a conjunction; singleton conjunctions
                 flatten into a plain disjunction of atoms, the only case
                 needed by the listings. *)
              let rec flatten acc = function
                | [] -> Some (List.sort_uniq Int.compare acc)
                | [ (id, true) ] :: rest -> flatten (id :: acc) rest
                | [] :: _ ->
                    (* A derivation with no open conditions is always true. *)
                    None
                | _ ->
                    fail "#minimize derivation requires a single positive open literal"
              in
              match flatten [] derivations with
              | None -> add_base m.Rule.priority weight
              | Some disj -> costs := { weight; level = m.Rule.priority; disj } :: !costs)
            !tuples
      | Rule.Choice _ | Rule.Constraint _ | Rule.Define _ | Rule.Show _ -> ())
    program;

  let atom_names = Array.of_list (List.rev st.atoms) in
  let atoms_by_pred = Hashtbl.create 8 in
  Hashtbl.iter
    (fun pred (b : open_bucket) -> Hashtbl.replace atoms_by_pred pred (List.rev b.oatoms))
    st.by_pred;
  {
    atom_count = Array.length atom_names;
    atom_names;
    atoms_by_pred;
    clauses = List.rev !clauses;
    groups = List.rev !groups;
    costs = List.rev !costs;
    base_costs = List.sort compare !base_costs;
    statically_unsat = !statically_unsat;
  }

let atoms_with_pred g p =
  match Hashtbl.find_opt g.atoms_by_pred p with Some l -> l | None -> []
