(** Grounding of {!Rule} programs against a Datalog fact base.

    Choice-rule heads and definite-rule heads are {e open} predicates:
    the solver decides their ground atoms.  All other predicates are
    {e closed}: true exactly when present in the fact base.

    The result is a ground program over integer atom identifiers:
    - cardinality groups ("exactly [bound] of these atoms are true"),
    - clauses (disjunctions of literals, from integrity constraints),
    - cost groups ("pay [weight] if any of these atoms is true", from
      definite rules feeding [#minimize]). *)

exception Ground_error of string

(** A literal: atom identifier and required polarity. *)
type lit = int * bool

type clause = lit list  (** disjunction *)

type group = { atoms : int list; bound : int }

type cost_group = {
  weight : int;
  level : int;  (** [#minimize] priority; higher levels dominate *)
  disj : int list;
}

type t = {
  atom_count : int;
  atom_names : Datalog.Fact.t array;  (** ground fact for each atom id *)
  atoms_by_pred : (string, (int * Datalog.Fact.t) list) Hashtbl.t;
      (** open atoms grouped by predicate, ids ascending — precomputed so
          {!atoms_with_pred} is a lookup, not a scan *)
  clauses : clause list;
  groups : group list;
  costs : cost_group list;
  base_costs : (int * int) list;
      (** per-level [(level, weight)] cost incurred regardless of the model *)
  statically_unsat : bool;
      (** a constraint was violated by closed facts alone, or a
          cardinality group cannot be met *)
}

val ground : Rule.program -> Datalog.Base.t -> t

(** [atoms_with_pred g p] lists [(id, fact)] for ground open atoms whose
    predicate is [p] — used to read matchings out of a model. *)
val atoms_with_pred : t -> string -> (int * Datalog.Fact.t) list
