(* Listing 3 of the paper: graph similarity. *)
let similarity =
  {|
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : n1(X,_)} = 1 :- n2(Y,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
{h(X,Y) : e1(X,_,_,_)} = 1 :- e2(Y,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- n2(Y,L), h(X,Y), not n1(X,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e2(E2,_,_,L), h(E1,E2), not e1(E1,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
|}

(* Listing 4 of the paper: approximate subgraph isomorphism. *)
let subgraph =
  {|
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.
|}

(* Bijective matching with the Listing 4 cost model, for generalization:
   the paper's Section 3.4 asks for a matching "that minimizes the number
   of different properties" between two similar graphs. *)
let similarity_min_cost = similarity ^ {|
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.
|}

(* Pruned variants: same constraints, but the choice generators range
   over precomputed [candn/2] (node pairs) and [cande/2] (edge pairs)
   relations of colour-compatible candidates instead of the full cross
   product.  The hard constraints are unchanged, so any model of the
   pruned program is a model of the original; completeness holds as long
   as the cand relations contain every pair an optimal matching could
   use (see Gmatch.Asp_backend). *)

let similarity_constraints =
  {|
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- n2(Y,L), h(X,Y), not n1(X,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e2(E2,_,_,L), h(E1,E2), not e1(E1,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
|}

let cost_rules =
  {|
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.
|}

let similarity_pruned =
  {|
{h(X,Y) : candn(X,Y)} = 1 :- n1(X,_).
{h(X,Y) : candn(X,Y)} = 1 :- n2(Y,_).
{h(X,Y) : cande(X,Y)} = 1 :- e1(X,_,_,_).
{h(X,Y) : cande(X,Y)} = 1 :- e2(Y,_,_,_).
|}
  ^ similarity_constraints

let subgraph_pruned =
  {|
{h(X,Y) : candn(X,Y)} = 1 :- n1(X,_).
{h(X,Y) : cande(X,Y)} = 1 :- e1(X,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
|}
  ^ cost_rules

let similarity_min_cost_pruned = similarity_pruned ^ cost_rules
let matching_predicate = "h"
let node_cand_predicate = "candn"
let edge_cand_predicate = "cande"
