(** The ASP problem specifications of the paper, verbatim.

    Both programs expect the two graphs as Datalog facts under graph
    identifiers [1] and [2]: predicates [n1/2], [e1/4], [p1/3] and
    [n2/2], [e2/4], [p2/3] (see {!Datalog.Encode}).  The matching is the
    open predicate [h/2]. *)

(** Listing 3: graph similarity — [h] is a bijection between the two
    graphs preserving labels and edge incidences.  Properties are not
    constrained. *)
val similarity : string

(** Listing 4: approximate subgraph isomorphism — [h] injects graph 1
    into graph 2 preserving labels and incidences, minimizing the number
    of graph-1 properties without an equal counterpart. *)
val subgraph : string

(** Listing 3 extended with the Listing 4 cost model: an exact bijection
    that minimizes property mismatches, used by the generalization stage
    to align two similar trial graphs before intersecting their
    properties. *)
val similarity_min_cost : string

(** Pruned variants of the three programs: identical hard constraints
    and cost model, but every choice generator ranges over closed
    [candn/2] (node-pair) and [cande/2] (edge-pair) relations supplied
    in the fact base instead of the full node/edge cross product.
    Sound whenever the cand relations contain every pair some optimal
    matching could use; {!Gmatch.Asp_backend} computes them from
    {!Pgraph.Fingerprint} colour classes (label-only for the
    cost-minimizing programs, refined colours for the exact
    [similarity] check). *)

val similarity_pruned : string
val subgraph_pruned : string
val similarity_min_cost_pruned : string

(** Name of the matching predicate, ["h"]. *)
val matching_predicate : string

(** Candidate-pair predicates of the pruned programs: ["candn"] for
    node pairs, ["cande"] for edge pairs. *)
val node_cand_predicate : string

val edge_cand_predicate : string
