(* Memoization of ground-and-solve calls.

   ProvMark's generalization stage asks the solver the same questions
   over and over: every pair of trial graphs in a similarity class is
   checked for similarity, and identical trials (same seed derivation)
   encode to identical fact bases.  Keying on a canonical digest of the
   whole subproblem lets repeated subproblems skip grounding and search
   entirely.

   The table is shared by every domain of the parallel suite runner, so
   all access goes through one mutex; solving itself happens outside the
   lock (two domains may race to compute the same entry — both get the
   right answer, one write wins). *)

type stats = { hits : int; misses : int }

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let mutex = Mutex.create ()

(* Bounded wholesale: the suite's working set is far below the cap, and
   a full reset is simpler than eviction bookkeeping under contention. *)
let max_entries = 65_536

let table : (string, Solver.outcome) Hashtbl.t = Hashtbl.create 1024
let counters : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let counter_of tag =
  match Hashtbl.find_opt counters tag with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace counters tag c;
      c

let key ~program ~facts ~max_steps ~find_optimal =
  (* Base.to_string renders facts in sorted order, so structurally equal
     fact bases produce the same digest regardless of insertion order. *)
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d|%b|%s\x00%s" max_steps find_optimal program
          (Datalog.Base.to_string facts)))

let find_or_compute ~tag ~key compute =
  if not (Atomic.get enabled) then compute ()
  else
    let cached =
      with_lock (fun () ->
          let hits, misses = counter_of tag in
          match Hashtbl.find_opt table key with
          | Some v ->
              incr hits;
              Some v
          | None ->
              incr misses;
              None)
    in
    match cached with
    | Some v -> v
    | None ->
        let v = compute () in
        with_lock (fun () ->
            if Hashtbl.length table >= max_entries then Hashtbl.reset table;
            Hashtbl.replace table key v);
        v

let clear () = with_lock (fun () -> Hashtbl.reset table)

let reset_stats () = with_lock (fun () -> Hashtbl.reset counters)

let stats () =
  with_lock (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun tag (h, m) acc -> (tag, { hits = !h; misses = !m }) :: acc)
           counters []))

let totals () =
  List.fold_left
    (fun acc (_, s) -> { hits = acc.hits + s.hits; misses = acc.misses + s.misses })
    { hits = 0; misses = 0 } (stats ())

let size () = with_lock (fun () -> Hashtbl.length table)
