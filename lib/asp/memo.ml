(* Memoization of ground-and-solve calls.

   ProvMark's generalization stage asks the solver the same questions
   over and over: every pair of trial graphs in a similarity class is
   checked for similarity, and identical trials (same seed derivation)
   encode to identical fact bases.  Keying on a canonical digest of the
   whole subproblem lets repeated subproblems skip grounding and search
   entirely.

   The table is shared by every domain of the process — suite-runner
   workers and serve-daemon workers alike — so all access goes through
   one mutex; solving itself happens outside the lock.

   Concurrent identical solves are coalesced (single-flight): the first
   caller of a key becomes its leader and computes; later callers find
   the key in the in-flight set and block on the condition until the
   leader broadcasts the outcome.  Because solve keys are built from
   canonically relabelled instances when canonicalization is on, this
   is what collapses K concurrent requests for *renamed* variants of
   one graph pair into one solve — each waiter still translates the
   shared canonical witness back through its own relabelling, so
   responses stay caller-specific.  A leader that raises wakes the
   waiters and the next one retries as the new leader; nothing poisons
   the table. *)

type stats = { hits : int; misses : int }

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let mutex = Mutex.create ()
let done_cond = Condition.create ()

(* Bounded wholesale: the suite's working set is far below the cap, and
   a full reset is simpler than eviction bookkeeping under contention. *)
let max_entries = 65_536

let table : (string, Solver.outcome) Hashtbl.t = Hashtbl.create 1024
let in_flight : (string, unit) Hashtbl.t = Hashtbl.create 16
let counters : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8
let coalesced_count = ref 0

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Planner-dispatched solves run with the counters muted: whether the
   calibrated argmin routes an instance through the memo depends on
   measured timings, and the batch CLI prints these counters on
   deterministic stdout.  The cache itself still serves and stores for
   a muted caller — only the accounting is suppressed, per calling
   domain, so fixed-backend runs keep their historical bytes and
   planner runs print the same. *)
let quiet_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let quietly f =
  let q = Domain.DLS.get quiet_key in
  let saved = !q in
  q := true;
  Fun.protect ~finally:(fun () -> q := saved) f

let counter_of tag =
  match Hashtbl.find_opt counters tag with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace counters tag c;
      c

let key ~program ~facts ~max_steps ~find_optimal =
  (* Base.to_string renders facts in sorted order, so structurally equal
     fact bases produce the same digest regardless of insertion order. *)
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d|%b|%s\x00%s" max_steps find_optimal program
          (Datalog.Base.to_string facts)))

(* Decide, under the lock, what the calling domain should do about
   [key]: return a cached outcome, wait for the in-flight leader, or
   become the leader.  Counters move here: a table hit is a hit, taking
   leadership is a miss, and joining an in-flight solve bumps the
   coalesced counter (the waiter neither computed nor found the table
   populated — it is the single-flight case the serve daemon reports). *)
type role = Cached of Solver.outcome | Lead

let find_or_compute ~tag ~key compute =
  if not (Atomic.get enabled) then compute ()
  else begin
    let quiet = !(Domain.DLS.get quiet_key) in
    let rec acquire ~joined =
      let role =
        with_lock (fun () ->
            (* [counter_of] creates the tag's (0, 0) entry on first
               touch, which alone is enough to make [stats] nonempty —
               so a muted caller must not even look it up. *)
            match Hashtbl.find_opt table key with
            | Some v ->
                if not quiet then incr (fst (counter_of tag));
                Some (Cached v)
            | None ->
                if Hashtbl.mem in_flight key then begin
                  if (not joined) && not quiet then incr coalesced_count;
                  None (* wait outside, then re-examine *)
                end
                else begin
                  if not quiet then incr (snd (counter_of tag));
                  Hashtbl.replace in_flight key ();
                  Some Lead
                end)
      in
      match role with
      | Some r -> r
      | None ->
          (* Block until some leader finishes (any key — spurious
             wakeups just loop), then look again: the outcome is now
             cached, or the leader failed and leadership is open. *)
          with_lock (fun () ->
              while Hashtbl.mem in_flight key && not (Hashtbl.mem table key) do
                Condition.wait done_cond mutex
              done);
          acquire ~joined:true
    in
    match acquire ~joined:false with
    | Cached v -> v
    | Lead ->
        let finish store =
          with_lock (fun () ->
              (match store with
              | Some v ->
                  if Hashtbl.length table >= max_entries then Hashtbl.reset table;
                  Hashtbl.replace table key v
              | None -> ());
              Hashtbl.remove in_flight key;
              Condition.broadcast done_cond)
        in
        let v =
          match compute () with
          | v -> v
          | exception e ->
              finish None;
              raise e
        in
        finish (Some v);
        v
  end

let clear () = with_lock (fun () -> Hashtbl.reset table)

let reset_stats () =
  with_lock (fun () ->
      Hashtbl.reset counters;
      coalesced_count := 0)

let stats () =
  with_lock (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun tag (h, m) acc -> (tag, { hits = !h; misses = !m }) :: acc)
           counters []))

let coalesced () = with_lock (fun () -> !coalesced_count)

let totals () =
  List.fold_left
    (fun acc (_, s) -> { hits = acc.hits + s.hits; misses = acc.misses + s.misses })
    { hits = 0; misses = 0 } (stats ())

let size () = with_lock (fun () -> Hashtbl.length table)
