(** Memoization of ground-and-solve calls, keyed by a canonical digest
    of (program, fact base, solver parameters).

    The generalization stage re-solves identical matching subproblems
    across trials and benchmarks; the memo table answers repeats without
    grounding or search.  The table is safe to share across the domains
    of the parallel suite runner, and caching never changes answers —
    the key covers everything the solver's outcome depends on (this is
    enforced by the cache-consistency test suite). *)

type stats = { hits : int; misses : int }

(** Caching is on by default; [set_enabled false] (the CLI's
    [--no-cache]) makes {!find_or_compute} always recompute. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Canonical cache key.  [facts] are rendered in sorted order, so the
    key is invariant under fact insertion order. *)
val key :
  program:string -> facts:Datalog.Base.t -> max_steps:int -> find_optimal:bool -> string

(** [find_or_compute ~tag ~key compute] returns the cached outcome for
    [key], or runs [compute] and caches its result.  [tag] buckets the
    hit/miss counters per pipeline stage ("similarity",
    "generalization", "comparison"). *)
val find_or_compute : tag:string -> key:string -> (unit -> Solver.outcome) -> Solver.outcome

(** Drop all cached outcomes (counters are kept). *)
val clear : unit -> unit

val reset_stats : unit -> unit

(** Per-tag counters, sorted by tag name. *)
val stats : unit -> (string * stats) list

(** Counters summed over all tags. *)
val totals : unit -> stats

(** Number of cached entries. *)
val size : unit -> int
