(** Memoization of ground-and-solve calls, keyed by a canonical digest
    of (program, fact base, solver parameters).

    The generalization stage re-solves identical matching subproblems
    across trials and benchmarks; the memo table answers repeats without
    grounding or search.  The table is safe to share across the domains
    of the parallel suite runner, and caching never changes answers —
    the key covers everything the solver's outcome depends on (this is
    enforced by the cache-consistency test suite).

    Concurrent solves of the same key are coalesced (single-flight):
    one leader computes while later arrivals block until the outcome is
    broadcast.  Keys are built from canonically relabelled instances
    when {!Pgraph.Canon} is enabled, so concurrent requests for renamed
    variants of one pair — the serve daemon's hot case — collapse to a
    single solve; each caller still maps the shared canonical witness
    back through its own relabelling. *)

type stats = { hits : int; misses : int }

(** Caching is on by default; [set_enabled false] (the CLI's
    [--no-cache]) makes {!find_or_compute} always recompute. *)
val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** Canonical cache key.  [facts] are rendered in sorted order, so the
    key is invariant under fact insertion order. *)
val key :
  program:string -> facts:Datalog.Base.t -> max_steps:int -> find_optimal:bool -> string

(** [find_or_compute ~tag ~key compute] returns the cached outcome for
    [key], or runs [compute] and caches its result.  [tag] buckets the
    hit/miss counters per pipeline stage ("similarity",
    "generalization", "comparison").

    When another domain is already computing [key], the call blocks
    until that leader finishes and returns the broadcast outcome
    instead of recomputing; such a call counts under {!coalesced} (and,
    once served from the freshly filled table, as a hit).  A leader
    whose [compute] raises wakes the waiters — the first to wake
    retries as the new leader — and caches nothing. *)
val find_or_compute : tag:string -> key:string -> (unit -> Solver.outcome) -> Solver.outcome

(** [quietly f] runs [f] with the memo's counters muted on the calling
    domain: {!find_or_compute} still serves from and fills the shared
    table, but hits, misses, and coalesced joins made inside [f] leave
    no trace in {!stats}.  The planner wraps its calibrated ASP
    dispatches in this — whether the argmin routes an instance through
    the memo depends on measured timings, and the batch CLI prints
    these counters on deterministic stdout. *)
val quietly : (unit -> 'a) -> 'a

(** Number of calls that joined another domain's in-flight solve
    instead of computing, since the last {!reset_stats} — the
    single-flight savings the serve daemon reports. *)
val coalesced : unit -> int

(** Drop all cached outcomes (counters are kept). *)
val clear : unit -> unit

val reset_stats : unit -> unit

(** Per-tag counters, sorted by tag name. *)
val stats : unit -> (string * stats) list

(** Counters summed over all tags. *)
val totals : unit -> stats

(** Number of cached entries. *)
val size : unit -> int
