module Fact = Datalog.Fact

exception Parse_error of string

type token =
  | Tident of string  (** lowercase identifier *)
  | Tvar of string  (** uppercase identifier *)
  | Tany
  | Tstring of string
  | Tint of int
  | Tlbrace
  | Trbrace
  | Tlparen
  | Trparen
  | Tcomma
  | Tdot
  | Tcolon
  | Tcolondash
  | Teq
  | Tneq
  | Tat
  | Tminimize
  | Tshow
  | Tslash

let token_to_string = function
  | Tident s -> s
  | Tvar s -> s
  | Tany -> "_"
  | Tstring s -> Printf.sprintf "%S" s
  | Tint n -> string_of_int n
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tcomma -> ","
  | Tdot -> "."
  | Tat -> "@"
  | Tcolon -> ":"
  | Tcolondash -> ":-"
  | Teq -> "="
  | Tneq -> "<>"
  | Tminimize -> "#minimize"
  | Tshow -> "#show"
  | Tslash -> "/"

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let emit t = tokens := t :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '%' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '{' -> emit Tlbrace; incr pos
    | '}' -> emit Trbrace; incr pos
    | '(' -> emit Tlparen; incr pos
    | ')' -> emit Trparen; incr pos
    | ',' -> emit Tcomma; incr pos
    | '.' -> emit Tdot; incr pos
    | '@' -> emit Tat; incr pos
    | '/' when not (!pos + 1 < n && src.[!pos + 1] = '/') -> emit Tslash; incr pos
    | '=' -> emit Teq; incr pos
    | '<' ->
        if !pos + 1 < n && src.[!pos + 1] = '>' then (
          emit Tneq;
          pos := !pos + 2)
        else fail "expected <>"
    | ':' ->
        if !pos + 1 < n && src.[!pos + 1] = '-' then (
          emit Tcolondash;
          pos := !pos + 2)
        else (
          emit Tcolon;
          incr pos)
    | '#' ->
        let start = !pos in
        incr pos;
        while
          !pos < n && match src.[!pos] with 'a' .. 'z' -> true | _ -> false
        do
          incr pos
        done;
        let word = String.sub src start (!pos - start) in
        if String.equal word "#minimize" then emit Tminimize
        else if String.equal word "#show" then emit Tshow
        else fail (Printf.sprintf "unknown directive %s" word)
    | '"' ->
        incr pos;
        let b = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then fail "unterminated string"
          else
            match src.[!pos] with
            | '"' -> incr pos
            | '\\' ->
                incr pos;
                if !pos >= n then fail "unterminated escape";
                (match src.[!pos] with
                | 'n' -> Buffer.add_char b '\n'
                | c -> Buffer.add_char b c);
                incr pos;
                loop ()
            | c ->
                Buffer.add_char b c;
                incr pos;
                loop ()
        in
        loop ();
        emit (Tstring (Buffer.contents b))
    | '0' .. '9' | '-' ->
        let start = !pos in
        if c = '-' then incr pos;
        while !pos < n && (match src.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        (match int_of_string_opt s with
        | Some v -> emit (Tint v)
        | None -> fail (Printf.sprintf "bad integer %S" s))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while
          !pos < n
          && match src.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
        do
          incr pos
        done;
        let word = String.sub src start (!pos - start) in
        if String.equal word "_" then emit Tany
        else (
          match word.[0] with
          | 'A' .. 'Z' -> emit (Tvar word)
          | '_' -> emit (Tvar word)  (* _Named variables behave as variables *)
          | _ -> emit (Tident word))
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* Recursive-descent parsing over the token list. *)

type stream = { mutable toks : token list }

let fail_at st msg =
  let ctx =
    match st.toks with
    | [] -> "end of input"
    | ts ->
        let shown = List.filteri (fun i _ -> i < 5) ts in
        String.concat " " (List.map token_to_string shown)
  in
  raise (Parse_error (Printf.sprintf "%s (at: %s)" msg ctx))

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail_at st "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then fail_at st (Printf.sprintf "expected %s, got %s" (token_to_string t) (token_to_string got))

let parse_term st =
  match next st with
  | Tvar v -> Term.Var v
  | Tany -> Term.Any
  | Tident s -> Term.Con (Fact.sym s)
  | Tstring s -> Term.Con (Fact.str s)
  | Tint v -> Term.Con (Fact.Int v)
  | t -> fail_at st (Printf.sprintf "expected term, got %s" (token_to_string t))

let parse_atom_args st =
  match peek st with
  | Some Tlparen ->
      ignore (next st);
      let rec loop acc =
        let t = parse_term st in
        match next st with
        | Tcomma -> loop (t :: acc)
        | Trparen -> List.rev (t :: acc)
        | tok -> fail_at st (Printf.sprintf "expected , or ) got %s" (token_to_string tok))
      in
      loop []
  | _ -> []

let parse_atom st pred = { Rule.pred; args = parse_atom_args st }

(* A literal is [not atom], an atom, or a builtin comparison.  An
   identifier may begin either an atom or (as a constant) a builtin;
   disambiguate by what follows. *)
let parse_literal st =
  match next st with
  | Tident "not" -> (
      match next st with
      | Tident p -> Rule.Neg (parse_atom st p)
      | t -> fail_at st (Printf.sprintf "expected atom after not, got %s" (token_to_string t)))
  | Tident p -> (
      match peek st with
      | Some Tlparen -> Rule.Pos (parse_atom st p)
      | Some Tneq ->
          ignore (next st);
          Rule.Builtin (Rule.Neq (Term.Con (Fact.sym p), parse_term st))
      | Some Teq ->
          ignore (next st);
          Rule.Builtin (Rule.Eq (Term.Con (Fact.sym p), parse_term st))
      | _ -> Rule.Pos { Rule.pred = p; args = [] })
  | Tvar v -> (
      match next st with
      | Tneq -> Rule.Builtin (Rule.Neq (Term.Var v, parse_term st))
      | Teq -> Rule.Builtin (Rule.Eq (Term.Var v, parse_term st))
      | t -> fail_at st (Printf.sprintf "expected <> or = after variable, got %s" (token_to_string t)))
  | Tint x -> (
      match next st with
      | Tneq -> Rule.Builtin (Rule.Neq (Term.Con (Fact.Int x), parse_term st))
      | Teq -> Rule.Builtin (Rule.Eq (Term.Con (Fact.Int x), parse_term st))
      | t -> fail_at st (Printf.sprintf "expected <> or = after integer, got %s" (token_to_string t)))
  | t -> fail_at st (Printf.sprintf "expected literal, got %s" (token_to_string t))

let parse_body st terminator =
  let rec loop acc =
    let lit = parse_literal st in
    match next st with
    | Tcomma -> loop (lit :: acc)
    | t when t = terminator -> List.rev (lit :: acc)
    | t -> fail_at st (Printf.sprintf "expected , or %s, got %s" (token_to_string terminator) (token_to_string t))
  in
  loop []

let parse_rule st =
  match next st with
  | Tlbrace ->
      (* choice rule: { elem : gen } = k [:- body] . *)
      let elem =
        match next st with
        | Tident p -> parse_atom st p
        | t -> fail_at st (Printf.sprintf "expected choice atom, got %s" (token_to_string t))
      in
      let gen =
        match next st with
        | Tcolon -> parse_body st Trbrace
        | Trbrace -> []
        | t -> fail_at st (Printf.sprintf "expected : or } in choice, got %s" (token_to_string t))
      in
      expect st Teq;
      let bound =
        match next st with
        | Tint k -> k
        | t -> fail_at st (Printf.sprintf "expected cardinality, got %s" (token_to_string t))
      in
      let body =
        match next st with
        | Tcolondash -> parse_body st Tdot
        | Tdot -> []
        | t -> fail_at st (Printf.sprintf "expected :- or . after choice, got %s" (token_to_string t))
      in
      Rule.Choice { elem; gen; bound; body }
  | Tcolondash -> Rule.Constraint (parse_body st Tdot)
  | Tminimize ->
      expect st Tlbrace;
      let weight = parse_term st in
      (* Optional clingo priority: W@P. *)
      let priority =
        match peek st with
        | Some Tat -> (
            ignore (next st);
            match next st with
            | Tint p -> p
            | t -> fail_at st (Printf.sprintf "expected priority after @, got %s" (token_to_string t)))
        | _ -> 0
      in
      let rec terms acc =
        match next st with
        | Tcomma -> terms (parse_term st :: acc)
        | Tcolon -> List.rev acc
        | tok -> fail_at st (Printf.sprintf "expected , or : in #minimize, got %s" (token_to_string tok))
      in
      let tuple = terms [] in
      let cond = parse_body st Trbrace in
      expect st Tdot;
      Rule.Minimize { weight; priority; tuple; cond }
  | Tshow -> (
      match (next st, next st, next st, next st) with
      | Tident p, Tslash, Tint arity, Tdot -> Rule.Show (p, arity)
      | _ -> fail_at st "expected #show pred/arity.")
  | Tident p ->
      let head = parse_atom st p in
      (match next st with
      | Tcolondash -> Rule.Define (head, parse_body st Tdot)
      | Tdot -> Rule.Define (head, [])
      | t -> fail_at st (Printf.sprintf "expected :- or . after head, got %s" (token_to_string t)))
  | t -> fail_at st (Printf.sprintf "expected rule, got %s" (token_to_string t))

let parse_program src =
  let st = { toks = tokenize src } in
  let rec loop acc = match peek st with None -> List.rev acc | Some _ -> loop (parse_rule st :: acc) in
  loop []
