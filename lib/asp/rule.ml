type atom = { pred : string; args : Term.t list }

type builtin =
  | Neq of Term.t * Term.t
  | Eq of Term.t * Term.t

type literal =
  | Pos of atom
  | Neg of atom
  | Builtin of builtin

type choice = {
  elem : atom;
  gen : literal list;
  bound : int;
  body : literal list;
}

type minimize = {
  weight : Term.t;
  priority : int;
  tuple : Term.t list;
  cond : literal list;
}

type t =
  | Choice of choice
  | Constraint of literal list
  | Define of atom * literal list
  | Minimize of minimize
  | Show of string * int

type program = t list

let atom_to_string a =
  if a.args = [] then a.pred
  else Printf.sprintf "%s(%s)" a.pred (String.concat "," (List.map Term.to_string a.args))

let literal_to_string = function
  | Pos a -> atom_to_string a
  | Neg a -> "not " ^ atom_to_string a
  | Builtin (Neq (x, y)) -> Printf.sprintf "%s <> %s" (Term.to_string x) (Term.to_string y)
  | Builtin (Eq (x, y)) -> Printf.sprintf "%s = %s" (Term.to_string x) (Term.to_string y)

let body_to_string body = String.concat ", " (List.map literal_to_string body)

let to_string = function
  | Choice c ->
      let gen = if c.gen = [] then "" else " : " ^ body_to_string c.gen in
      let body = if c.body = [] then "" else " :- " ^ body_to_string c.body in
      Printf.sprintf "{%s%s} = %d%s." (atom_to_string c.elem) gen c.bound body
  | Constraint body -> Printf.sprintf ":- %s." (body_to_string body)
  | Define (head, body) -> Printf.sprintf "%s :- %s." (atom_to_string head) (body_to_string body)
  | Minimize m ->
      let weight =
        if m.priority = 0 then Term.to_string m.weight
        else Printf.sprintf "%s@%d" (Term.to_string m.weight) m.priority
      in
      Printf.sprintf "#minimize { %s : %s }."
        (String.concat "," (weight :: List.map Term.to_string m.tuple))
        (body_to_string m.cond)
  | Show (p, n) -> Printf.sprintf "#show %s/%d." p n

let program_to_string p = String.concat "\n" (List.map to_string p) ^ "\n"

let pp ppf r = Format.pp_print_string ppf (to_string r)

let open_predicates program =
  let add acc p = if List.mem p acc then acc else p :: acc in
  List.rev
    (List.fold_left
       (fun acc rule ->
         match rule with
         | Choice c -> add acc c.elem.pred
         | Define (head, _) -> add acc head.pred
         | Constraint _ | Minimize _ | Show _ -> acc)
       [] program)

let referenced_predicates program =
  let opens = open_predicates program in
  let add acc p = if List.mem p acc || List.mem p opens then acc else p :: acc in
  let literal acc = function Pos a | Neg a -> add acc a.pred | Builtin _ -> acc in
  let literals = List.fold_left literal in
  List.rev
    (List.fold_left
       (fun acc rule ->
         match rule with
         | Choice c -> literals (literals acc c.gen) c.body
         | Constraint body -> literals acc body
         | Define (_, body) -> literals acc body
         | Minimize m -> literals acc m.cond
         | Show _ -> acc)
       [] program)

let atom_vars a =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left
       (fun acc t -> match t with Term.Var v -> add acc v | Term.Any | Term.Con _ -> acc)
       [] a.args)
