(** Abstract syntax of the ASP fragment used by ProvMark's graph-matching
    specifications (paper Listings 3 and 4).

    The fragment comprises:
    - cardinality choice rules [{h(X,Y) : gen} = k :- body.]
    - integrity constraints [:- body.]
    - definite rules [head :- body.] (used for [cost/3])
    - [#minimize { W,T1,...,Tn : cond }.] statements

    Bodies mix positive literals, negation-as-failure literals and the
    built-in comparisons [<>] and [=]. *)

type atom = { pred : string; args : Term.t list }

type builtin =
  | Neq of Term.t * Term.t
  | Eq of Term.t * Term.t

type literal =
  | Pos of atom
  | Neg of atom  (** negation as failure, [not a] *)
  | Builtin of builtin

type choice = {
  elem : atom;  (** the choice atom schema, e.g. [h(X,Y)] *)
  gen : literal list;  (** generator condition after [:], e.g. [n2(Y,_)] *)
  bound : int;  (** exact cardinality, e.g. [= 1] *)
  body : literal list;  (** rule body after [:-] *)
}

type minimize = {
  weight : Term.t;  (** first tuple component, the summed weight *)
  priority : int;  (** clingo's [W@P] level; higher levels are optimized
                       first (default 0) *)
  tuple : Term.t list;  (** remaining tuple components (for distinctness) *)
  cond : literal list;  (** condition after [:] *)
}

type t =
  | Choice of choice
  | Constraint of literal list
  | Define of atom * literal list
  | Minimize of minimize
  | Show of string * int
      (** [#show p/n.] — restrict reported models to predicate [p] of
          arity [n]; several directives accumulate *)

type program = t list

val atom_to_string : atom -> string
val literal_to_string : literal -> string
val to_string : t -> string
val program_to_string : program -> string
val pp : Format.formatter -> t -> unit

(** Predicates that the program itself defines: heads of choice rules and
    of definite rules.  Every other predicate is closed (defined by the input
    fact base). *)
val open_predicates : program -> string list

(** Closed predicates the program reads from the fact base: predicates
    occurring in some generator, body or minimize condition that are not
    {!open_predicates}.  Facts outside this set cannot influence
    grounding or solving — the solve memo keys on exactly these. *)
val referenced_predicates : program -> string list

(** Variables occurring in an atom, in order of first occurrence. *)
val atom_vars : atom -> string list
