module Fact = Datalog.Fact

type outcome =
  | Unsat
  | Model of { cost : int; atoms : Fact.t list; optimal : bool }
  | Unknown

type stats = { decisions : int; propagations : int }

let decisions_total = Atomic.make 0
let propagations_total = Atomic.make 0

let stats () =
  { decisions = Atomic.get decisions_total; propagations = Atomic.get propagations_total }

let reset_stats () =
  Atomic.set decisions_total 0;
  Atomic.set propagations_total 0

exception Step_limit
exception Done

(* A clause under two-watched-literal propagation: the watch slots [w1]
   and [w2] index into [lits].  The invariant is that a clause is only
   revisited when one of its two watched literals is falsified; watches
   never need undoing on backtrack. *)
type watched = { lits : Ground.lit array; mutable w1 : int; mutable w2 : int }

(* Watch-list key of a literal: a clause watching [(a, want)] must be
   revisited when that literal becomes false. *)
let lit_key (a, want) = (2 * a) + Bool.to_int want

let solve ?(max_steps = 10_000_000) ?(find_optimal = true) (g : Ground.t) =
  if g.Ground.statically_unsat then Unsat
  else
    let n = g.Ground.atom_count in
    let groups = Array.of_list g.Ground.groups in
    let costs = Array.of_list g.Ground.costs in
    let ngroups = Array.length groups in
    let group_atoms = Array.map (fun (grp : Ground.group) -> Array.of_list grp.Ground.atoms) groups in

    (* Occurrence lists as int arrays: two-pass counting fill. *)
    let occurrences of_row rows =
      let counts = Array.make n 0 in
      Array.iter (fun row -> Array.iter (fun a -> counts.(a) <- counts.(a) + 1) (of_row row)) rows;
      let out = Array.init n (fun a -> Array.make counts.(a) 0) in
      let fill = Array.make n 0 in
      Array.iteri
        (fun i row ->
          Array.iter
            (fun a ->
              out.(a).(fill.(a)) <- i;
              fill.(a) <- fill.(a) + 1)
            (of_row row))
        rows;
      out
    in
    let atom_groups = occurrences Fun.id group_atoms in
    let cost_atoms =
      Array.map (fun (c : Ground.cost_group) -> Array.of_list c.Ground.disj) costs
    in
    let atom_costs = occurrences Fun.id cost_atoms in

    (* Assignment state: -1 unassigned, 0 false, 1 true. *)
    let value = Array.make n (-1) in
    let group_true = Array.make ngroups 0 in
    let group_unassigned = Array.map Array.length group_atoms in
    (* #minimize levels, highest priority first; costs are compared
       lexicographically across levels (clingo's W@P semantics). *)
    let levels =
      List.sort_uniq
        (fun a b -> Int.compare b a)
        (List.map (fun (c : Ground.cost_group) -> c.Ground.level) g.Ground.costs
        @ List.map fst g.Ground.base_costs)
    in
    let levels = Array.of_list levels in
    let nlevels = Array.length levels in
    let level_index = Hashtbl.create 4 in
    Array.iteri (fun i l -> Hashtbl.replace level_index l i) levels;
    let base_vector () =
      let v = Array.make nlevels 0 in
      List.iter
        (fun (l, w) -> v.(Hashtbl.find level_index l) <- v.(Hashtbl.find level_index l) + w)
        g.Ground.base_costs;
      v
    in
    (* Number of true atoms per cost group, for incremental lower bounds. *)
    let cost_true = Array.make (Array.length costs) 0 in
    let lower_bound = base_vector () in
    let level_of ki = Hashtbl.find level_index costs.(ki).Ground.level in
    (* Lexicographic comparison over the descending-priority vector. *)
    let lex_compare a b =
      let rec go i =
        if i >= nlevels then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in

    let trail = ref [] in
    let pending = Queue.create () in
    let propagations = ref 0 in
    let decisions = ref 0 in

    let assign a v =
      if value.(a) >= 0 then value.(a) = v
      else (
        value.(a) <- v;
        incr propagations;
        trail := a :: !trail;
        Array.iter
          (fun gi ->
            group_unassigned.(gi) <- group_unassigned.(gi) - 1;
            if v = 1 then group_true.(gi) <- group_true.(gi) + 1)
          atom_groups.(a);
        if v = 1 then
          Array.iter
            (fun ki ->
              if cost_true.(ki) = 0 then
                lower_bound.(level_of ki) <- lower_bound.(level_of ki) + costs.(ki).Ground.weight;
              cost_true.(ki) <- cost_true.(ki) + 1)
            atom_costs.(a);
        Queue.push a pending;
        true)
    in

    let unassign a =
      let v = value.(a) in
      value.(a) <- -1;
      Array.iter
        (fun gi ->
          group_unassigned.(gi) <- group_unassigned.(gi) + 1;
          if v = 1 then group_true.(gi) <- group_true.(gi) - 1)
        atom_groups.(a);
      if v = 1 then
        Array.iter
          (fun ki ->
            cost_true.(ki) <- cost_true.(ki) - 1;
            if cost_true.(ki) = 0 then
              lower_bound.(level_of ki) <- lower_bound.(level_of ki) - costs.(ki).Ground.weight)
          atom_costs.(a)
    in

    let undo_to mark =
      Queue.clear pending;
      let rec pop () =
        match !trail with
        | [] -> ()
        | _ when !trail == mark -> ()
        | a :: rest ->
            unassign a;
            trail := rest;
            pop ()
      in
      pop ()
    in

    (* --------------------------------------------------------------- *)
    (* Clause setup: dedup, drop tautologies, watch two literals        *)
    (* --------------------------------------------------------------- *)

    let empty_clause = ref false in
    let unit_lits = ref [] in
    let watched = ref [] in
    List.iter
      (fun clause ->
        let lits =
          List.sort_uniq
            (fun (a, wa) (b, wb) ->
              let c = Int.compare a b in
              if c <> 0 then c else Bool.compare wa wb)
            clause
        in
        let tautology =
          let rec dup = function
            | (a, _) :: ((b, _) :: _ as rest) -> a = b || dup rest
            | _ -> false
          in
          dup lits
        in
        if not tautology then
          match lits with
          | [] -> empty_clause := true
          | [ l ] -> unit_lits := l :: !unit_lits
          | _ -> watched := { lits = Array.of_list lits; w1 = 0; w2 = 1 } :: !watched)
      g.Ground.clauses;
    let cls = Array.of_list !watched in
    let watches = Array.make (2 * max n 1) [] in
    Array.iteri
      (fun ci c ->
        let k1 = lit_key c.lits.(c.w1) and k2 = lit_key c.lits.(c.w2) in
        watches.(k1) <- ci :: watches.(k1);
        watches.(k2) <- ci :: watches.(k2))
      cls;

    let lit_false (a, want) =
      match value.(a) with -1 -> false | v -> (v = 1) <> want
    in
    let lit_true (a, want) =
      match value.(a) with -1 -> false | v -> (v = 1) = want
    in

    (* Visit the clauses watching the literal falsified by [a := v]:
       either move the watch to a non-false literal, observe the other
       watch satisfied, propagate a unit, or report a conflict. *)
    let propagate_watches a v =
      let key = (2 * a) + if v = 1 then 0 else 1 in
      let pendinglist = watches.(key) in
      watches.(key) <- [];
      let rec go = function
        | [] -> true
        | ci :: rest -> (
            let c = cls.(ci) in
            if lit_key c.lits.(c.w1) <> key then (
              let t = c.w1 in
              c.w1 <- c.w2;
              c.w2 <- t);
            let other = c.lits.(c.w2) in
            if lit_true other then (
              watches.(key) <- ci :: watches.(key);
              go rest)
            else
              let len = Array.length c.lits in
              let moved = ref false in
              let j = ref 0 in
              while (not !moved) && !j < len do
                if !j <> c.w1 && !j <> c.w2 && not (lit_false c.lits.(!j)) then (
                  c.w1 <- !j;
                  let k = lit_key c.lits.(!j) in
                  watches.(k) <- ci :: watches.(k);
                  moved := true);
                incr j
              done;
              if !moved then go rest
              else (
                (* No replacement: the clause keeps watching [key]. *)
                watches.(key) <- ci :: watches.(key);
                let ob, ow = other in
                match value.(ob) with
                | -1 ->
                    ignore (assign ob (if ow then 1 else 0));
                    go rest
                | _ ->
                    (* [other] is false too: conflict.  Restore the
                       unvisited suffix so the watch invariant survives
                       backtracking. *)
                    watches.(key) <- List.rev_append rest watches.(key);
                    false))
      in
      go pendinglist
    in

    let check_group gi =
      let grp = groups.(gi) in
      let t = group_true.(gi) and u = group_unassigned.(gi) in
      if t > grp.Ground.bound then false
      else if t + u < grp.Ground.bound then false
      else if t = grp.Ground.bound && u > 0 then
        Array.for_all
          (fun a -> if value.(a) = -1 then assign a 0 else true)
          group_atoms.(gi)
      else if t + u = grp.Ground.bound && u > 0 then
        Array.for_all
          (fun a -> if value.(a) = -1 then assign a 1 else true)
          group_atoms.(gi)
      else true
    in

    let propagate () =
      let ok = ref true in
      while !ok && not (Queue.is_empty pending) do
        let a = Queue.pop pending in
        ok := Array.for_all check_group atom_groups.(a);
        if !ok then ok := propagate_watches a value.(a)
      done;
      if not !ok then Queue.clear pending;
      !ok
    in

    (* Initial propagation: unit clauses, groups that are already forced
       (e.g. a single candidate), and their consequences. *)
    let initial_ok =
      (not !empty_clause)
      && List.for_all (fun (a, want) -> assign a (if want then 1 else 0)) !unit_lits
      && (let ok = ref true in
          Array.iteri (fun gi _ -> if !ok then ok := check_group gi) groups;
          !ok)
      && propagate ()
    in

    let best_cost = ref None in
    let best_model = ref None in
    let steps = ref 0 in

    let record_model () =
      let better =
        match !best_cost with None -> true | Some b -> lex_compare lower_bound b < 0
      in
      if better then (
        best_cost := Some (Array.copy lower_bound);
        let atoms = ref [] in
        Array.iteri (fun a v -> if v = 1 then atoms := g.Ground.atom_names.(a) :: !atoms) value;
        best_model := Some (Array.fold_left ( + ) 0 lower_bound, List.rev !atoms))
    in

    let pick_group () =
      (* Most-constrained-first: the unfinished group with the fewest
         unassigned candidates. *)
      let best = ref (-1) in
      let best_u = ref max_int in
      Array.iteri
        (fun gi (grp : Ground.group) ->
          if group_true.(gi) < grp.Ground.bound && group_unassigned.(gi) < !best_u then (
            best := gi;
            best_u := group_unassigned.(gi)))
        groups;
      !best
    in

    (* [marginal_cost a] is the additional cost of setting [a] true right
       now.  It is queried O(group size) times per decision while the
       assignment is unchanged, so memoize per decision epoch. *)
    let marg_epoch = ref 0 in
    let marg_stamp = Array.make n (-1) in
    let marg_value = Array.make n 0 in
    let marginal_cost a =
      if marg_stamp.(a) = !marg_epoch then marg_value.(a)
      else
        let m =
          Array.fold_left
            (fun acc ki -> if cost_true.(ki) = 0 then acc + costs.(ki).Ground.weight else acc)
            0 atom_costs.(a)
        in
        marg_stamp.(a) <- !marg_epoch;
        marg_value.(a) <- m;
        m
    in

    let rec search () =
      let pruned =
        find_optimal
        && match !best_cost with Some b -> lex_compare lower_bound b >= 0 | None -> false
      in
      if pruned then ()
      else
        let gi = pick_group () in
        if gi < 0 then (
          record_model ();
          if not find_optimal then raise Done;
          match !best_cost with
          | Some b when lex_compare b (base_vector ()) <= 0 -> raise Done (* cannot improve *)
          | _ -> ())
        else (
          incr steps;
          incr decisions;
          if !steps > max_steps then raise Step_limit;
          (* Binary branching on one candidate: include it or exclude it.
             The exclusion branch recurses, so propagation-forced choices
             of sibling candidates are explored too. *)
          incr marg_epoch;
          let a = ref (-1) in
          Array.iter
            (fun c ->
              if value.(c) = -1 then
                if !a < 0 then a := c
                else if find_optimal && marginal_cost c < marginal_cost !a then a := c)
            group_atoms.(gi);
          let a = !a in
          let mark = !trail in
          if assign a 1 && propagate () then search ();
          undo_to mark;
          if assign a 0 && propagate () then search ();
          undo_to mark)
    in

    let limited = ref false in
    (if initial_ok then
       try search () with
       | Done -> ()
       | Step_limit -> limited := true);
    ignore (Atomic.fetch_and_add decisions_total !decisions);
    ignore (Atomic.fetch_and_add propagations_total !propagations);
    match !best_model with
    | Some (cost, atoms) -> Model { cost; atoms; optimal = not !limited }
    | None -> if !limited then Unknown else Unsat
