(** Solver for ground programs produced by {!Ground}.

    The solver performs DPLL-style search: unit propagation over clauses,
    counting propagation over cardinality groups, and branch-and-bound
    minimization of the cost function.  This plays the role clingo plays
    in the original ProvMark (Section 3.4): the graphs are small enough
    that the NP-complete matching subproblems solve in milliseconds to
    seconds. *)

type outcome =
  | Unsat  (** no model exists *)
  | Model of { cost : int; atoms : Datalog.Fact.t list; optimal : bool }
      (** [atoms] are the true open atoms; [optimal] is false when the
          step limit was reached before optimality was proved.  With
          prioritized [#minimize] statements, optimization is
          lexicographic (higher [@P] levels first) and [cost] reports
          the sum across levels. *)
  | Unknown  (** step limit reached before any model was found *)

(** Cumulative search-effort counters, summed across every [solve] call
    in the process (all domains).  [decisions] counts branching choices;
    [propagations] counts assignments made (decisions included), i.e.
    the work done by unit/cardinality propagation. *)
type stats = { decisions : int; propagations : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** [solve ?max_steps ?find_optimal g] searches for a model of [g].

    [max_steps] bounds the number of branching decisions (default
    [10_000_000]).  With [find_optimal:false] the search stops at the
    first model regardless of cost — used for plain similarity checking
    where any isomorphism will do. *)
val solve : ?max_steps:int -> ?find_optimal:bool -> Ground.t -> outcome
