(* Bump when the artifact encoding or key construction changes shape:
   stale entries then miss instead of decoding garbage. *)
let format_version = "1"

type stats = { hits : int; misses : int; stored : int }

type t = {
  dir : string;
  mutex : Mutex.t;
  counters : (string, int ref * int ref * int ref) Hashtbl.t;
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if String.length parent < String.length path then mkdir_p parent;
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "Artifact_store.create: %s is not a directory" dir));
  { dir; mutex = Mutex.create (); counters = Hashtbl.create 8 }

let dir t = t.dir

let digest s = Digest.to_hex (Digest.string s)

let key ~stage ~fingerprint ~inputs =
  digest (String.concat "\x00" (("provmark-artifact-v" ^ format_version) :: stage :: fingerprint :: inputs))

let graph_digest g =
  digest
    (Pgraph.Fingerprint.to_hex (Pgraph.Fingerprint.of_graph g)
    ^ "\x00"
    ^ Datalog.Encode.graph_to_string ~gid:"d" g)

(* <dir>/<stage>/<key prefix>/<key>.art keeps directories small without
   hashing twice; the key is already a uniform hex digest. *)
let path_of t ~stage ~key =
  let prefix = if String.length key >= 2 then String.sub key 0 2 else key in
  Filename.concat (Filename.concat (Filename.concat t.dir stage) prefix) (key ^ ".art")

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let counter_of t stage =
  match Hashtbl.find_opt t.counters stage with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0, ref 0) in
      Hashtbl.replace t.counters stage c;
      c

let read t ~stage ~key =
  let path = path_of t ~stage ~key in
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Some contents
  | exception Sys_error _ -> None

let write t ~stage ~key contents =
  let path = path_of t ~stage ~key in
  mkdir_p (Filename.dirname path);
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".art" ".tmp" in
  (try
     Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  with_lock t (fun () ->
      let _, _, stored = counter_of t stage in
      incr stored)

let record t ~stage ~hit =
  with_lock t (fun () ->
      let hits, misses, _ = counter_of t stage in
      incr (if hit then hits else misses))

let stats t =
  with_lock t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun stage (h, m, s) acc -> (stage, { hits = !h; misses = !m; stored = !s }) :: acc)
           t.counters []))

let totals t =
  List.fold_left
    (fun acc (_, s) ->
      { hits = acc.hits + s.hits; misses = acc.misses + s.misses; stored = acc.stored + s.stored })
    { hits = 0; misses = 0; stored = 0 } (stats t)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then None else Some (float_of_int s.hits /. float_of_int total)

let reset_stats t = with_lock t (fun () -> Hashtbl.reset t.counters)
