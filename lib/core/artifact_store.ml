(* Bump when the artifact encoding or key construction changes shape:
   stale entries then miss instead of decoding garbage. *)
let format_version = "3"

type stats = { hits : int; misses : int; stored : int; errors : int }

(* The store's mutable state (stat counters, and the lock concurrent
   writers of one key range serialize their bookkeeping under) is split
   into shards addressed by key prefix: writers whose keys land in
   different shards never contend on a lock, which matters once the
   serve daemon has many domains writing through one store.  The
   on-disk layout was already prefix-sharded (<stage>/<prefix>/<key>);
   the lock layout now matches it.  Keys are uniform hex digests, so
   the first nibble spreads load evenly. *)
let shard_count = 16

type shard = {
  mutex : Mutex.t;
  counters : (string, int ref * int ref * int ref * int ref) Hashtbl.t;
}

type t = { dir : string; shards : shard array }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if String.length parent < String.length path then mkdir_p parent;
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let invalid_store fmt = Printf.ksprintf (fun m -> raise (Sys_error m)) fmt

(* Validate the directory up front — one clear error at startup beats a
   per-stage write failure deep inside the suite.  Probing with a real
   temp file catches read-only mounts and permission problems that a
   successful mkdir would hide. *)
let create ~dir =
  (try mkdir_p dir with
  | Unix.Unix_error (e, _, path) ->
      invalid_store "artifact store %s: cannot create %s (%s)" dir path (Unix.error_message e)
  | Sys_error m -> invalid_store "artifact store %s: %s" dir m);
  if not (Sys.file_exists dir) then invalid_store "artifact store %s: could not be created" dir;
  if not (Sys.is_directory dir) then invalid_store "artifact store %s is not a directory" dir;
  (match Filename.temp_file ~temp_dir:dir ".probe" ".tmp" with
  | probe -> ( try Sys.remove probe with Sys_error _ -> ())
  | exception Sys_error m -> invalid_store "artifact store %s is not writable (%s)" dir m);
  {
    dir;
    shards =
      Array.init shard_count (fun _ ->
          { mutex = Mutex.create (); counters = Hashtbl.create 8 });
  }

let dir t = t.dir

let digest s = Digest.to_hex (Digest.string s)

let key ~stage ~fingerprint ~inputs =
  (* The fault-plan fingerprint participates in every key: a run under
     an active fault plan reads and writes a disjoint key space, so
     injected faults can neither poison the clean cache nor be papered
     over by it — and a faulted re-run still replays its own artifacts
     byte-identically. *)
  digest
    (String.concat "\x00"
       (("provmark-artifact-v" ^ format_version)
       :: Faults.Injector.fingerprint () :: stage :: fingerprint :: inputs))

(* Generated inputs are stage artifacts whose "computation" is the
   generator itself, so the key covers everything the bytes are a pure
   function of: the generator name/version, the canonical spec string,
   and the (seed, run, format) coordinates.  The [key] plumbing folds
   in the store format version and fault-plan fingerprint as for any
   other stage. *)
let generated_input_key ~generator ~spec ~seed ~run ~format =
  key ~stage:"corpus" ~fingerprint:generator
    ~inputs:[ spec; string_of_int seed; string_of_int run; format ]

let graph_digest g =
  digest
    (Pgraph.Fingerprint.to_hex (Pgraph.Fingerprint.of_graph g)
    ^ "\x00"
    ^ Datalog.Encode.graph_to_string ~gid:"d" g)

(* Rename-invariant variant used for stage keys downstream of
   generalization: digesting the canonically relabelled rendering lets
   a re-run whose recorder handed out fresh ids replay the solve-heavy
   stages warm.  The "canon" prefix keeps the keyspace disjoint from
   [graph_digest] (which [Config.backend_fp]'s canon flag separates
   again at the key level). *)
let canonical_graph_digest g =
  match if Pgraph.Canon.is_enabled () then Pgraph.Canon.form g else None with
  | Some f ->
      digest ("canon\x00" ^ Datalog.Encode.graph_to_string ~gid:"d" (Pgraph.Canon.relabel g f))
  | None -> graph_digest g

(* <dir>/<stage>/<key prefix>/<key>.art keeps directories small without
   hashing twice; the key is already a uniform hex digest. *)
let path_of t ~stage ~key =
  let prefix = if String.length key >= 2 then String.sub key 0 2 else key in
  Filename.concat (Filename.concat (Filename.concat t.dir stage) prefix) (key ^ ".art")

(* Hex digit → shard index; non-hex (impossible for real keys, which
   are hex digests) degrades to shard 0. *)
let shard_for t key =
  let i =
    if String.length key = 0 then 0
    else
      match key.[0] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> 10 + Char.code c - Char.code 'a'
      | 'A' .. 'F' as c -> 10 + Char.code c - Char.code 'A'
      | _ -> 0
  in
  t.shards.(i mod Array.length t.shards)

let with_shard_lock shard f =
  Mutex.lock shard.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shard.mutex) f

let counter_of shard stage =
  match Hashtbl.find_opt shard.counters stage with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0, ref 0, ref 0) in
      Hashtbl.replace shard.counters stage c;
      c

let record_error t ~key stage =
  let shard = shard_for t key in
  with_shard_lock shard (fun () ->
      let _, _, _, errors = counter_of shard stage in
      incr errors)

(* Entries are sealed with a leading checksum line (MD5 of the payload).
   Flipped bytes or a torn write cannot be left to the JSON decoder to
   notice — garbled JSON often still parses, just to a *different*
   value, which would silently change a warm run's output.  A checksum
   mismatch is a detected miss: the stage recomputes and the rewrite
   heals the entry. *)
let seal payload = digest payload ^ "\n" ^ payload

let unseal contents =
  let n = String.length contents in
  if n < 33 || contents.[32] <> '\n' then None
  else
    let payload = String.sub contents 33 (n - 33) in
    if String.equal (String.sub contents 0 32) (digest payload) then Some payload else None

let read t ~stage ~key =
  match Faults.Injector.store_fault ~site:(Printf.sprintf "store:read:%s:%s" stage key) with
  | Some Faults.Plan.Eio ->
      (* Transient read error: degrade to a miss and recompute. *)
      record_error t ~key stage;
      None
  | fault -> (
      let path = path_of t ~stage ~key in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error _ -> None
      | contents -> (
          let contents =
            match (fault, Faults.Injector.plan ()) with
            (* At-rest corruption, applied to the sealed bytes: the
               checksum rejects the entry below. *)
            | Some Faults.Plan.Corrupt, Some plan ->
                Faults.Injector.garble plan ~site:("store:entry:" ^ key) contents
            | _ -> contents
          in
          match unseal contents with
          | Some payload -> Some payload
          | None ->
              record_error t ~key stage;
              None))

let write t ~stage ~key contents =
  let site op = Printf.sprintf "store:%s:%s:%s" op stage key in
  match Faults.Injector.store_fault ~site:(site "write") with
  | Some Faults.Plan.Eio ->
      (* Write dropped on the floor: the entry stays cold, later runs
         miss and recompute.  Caching is best-effort by contract. *)
      record_error t ~key stage
  | fault -> (
      let contents =
        let sealed = seal contents in
        match (fault, Faults.Injector.plan ()) with
        (* A torn write truncates the sealed bytes, exactly as a torn
           file would look on disk; the read side's checksum rejects
           what remains. *)
        | Some Faults.Plan.Partial_write, Some plan ->
            Faults.Injector.truncate plan ~site:(site "partial") sealed
        | _ -> sealed
      in
      let path = path_of t ~stage ~key in
      match
        mkdir_p (Filename.dirname path);
        let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".art" ".tmp" in
        (try
           Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
           Sys.rename tmp path
         with e ->
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e)
      with
      | () ->
          let shard = shard_for t key in
          with_shard_lock shard (fun () ->
              let _, _, stored, _ = counter_of shard stage in
              incr stored)
      | exception (Sys_error _ | Unix.Unix_error _) ->
          (* A store that stops accepting writes must not take the
             pipeline down with it: count the error and move on
             uncached. *)
          record_error t ~key stage)

let record t ~stage ~key ~hit =
  let shard = shard_for t key in
  with_shard_lock shard (fun () ->
      let hits, misses, _, _ = counter_of shard stage in
      incr (if hit then hits else misses))

(* Counters merge across shards at read time: per-stage totals are what
   reports want, the sharding is purely a contention measure. *)
let stats t =
  let merged : (string, int * int * int * int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun shard ->
      with_shard_lock shard (fun () ->
          Hashtbl.iter
            (fun stage (h, m, s, e) ->
              let h0, m0, s0, e0 =
                Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt merged stage)
              in
              Hashtbl.replace merged stage (h0 + !h, m0 + !m, s0 + !s, e0 + !e))
            shard.counters))
    t.shards;
  List.sort compare
    (Hashtbl.fold
       (fun stage (h, m, s, e) acc ->
         (stage, { hits = h; misses = m; stored = s; errors = e }) :: acc)
       merged [])

let totals t =
  List.fold_left
    (fun acc (_, s) ->
      {
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        stored = acc.stored + s.stored;
        errors = acc.errors + s.errors;
      })
    { hits = 0; misses = 0; stored = 0; errors = 0 }
    (stats t)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then None else Some (float_of_int s.hits /. float_of_int total)

let reset_stats t =
  Array.iter
    (fun shard -> with_shard_lock shard (fun () -> Hashtbl.reset shard.counters))
    t.shards
