(** Content-addressed on-disk store for pipeline stage artifacts.

    Every stage execution is addressed by a key derived from the stage
    name, a fingerprint of the configuration fields that stage reads,
    and digests of its inputs (chained: a stage's input digest is
    computed from the upstream stage's typed output).  Because the
    whole pipeline is a pure function of [(config, program)], replaying
    a stored artifact is indistinguishable from recomputing it — a warm
    suite re-run is byte-identical to the cold run and an edited
    benchmark program invalidates exactly its own downstream artifacts.

    The store is shared by all worker domains of the process — the
    parallel suite runner's and the serve daemon's alike: reads are
    plain file reads, writes go through a unique temp file plus atomic
    [rename], and the mutable bookkeeping is sharded by key prefix
    (first hex digit, 16 shards), each shard behind its own mutex, so
    concurrent writers whose keys land in different shards never
    contend on a lock.  Losing a race (two domains computing the same
    artifact) is harmless — both values are identical and one write
    wins. *)

type t

(** [create ~dir] opens (creating directories as needed) a store rooted
    at [dir] and probes it for writability up front, so a misconfigured
    [--store] produces one clear [Sys_error] at startup instead of a
    write failure inside every stage. *)
val create : dir:string -> t

val dir : t -> string

(** {2 Keys and digests} *)

(** Hex content digest of a string (the store's addressing hash). *)
val digest : string -> string

(** [key ~stage ~fingerprint ~inputs] is the artifact key for one stage
    execution.  [fingerprint] covers the config fields the stage reads;
    [inputs] are digests of its inputs.  A store format version and the
    active fault-plan fingerprint (see {!Faults.Injector.fingerprint})
    are baked in, so incompatible layout changes never alias and
    fault-injected runs occupy a key space disjoint from clean runs. *)
val key : stage:string -> fingerprint:string -> inputs:string list -> string

(** [generated_input_key ~generator ~spec ~seed ~run ~format] is the
    artifact key for a synthetically generated input: a [corpus]-stage
    key whose fingerprint is the generator name/version and whose
    inputs are the canonical spec string plus the (seed, run, format)
    coordinates the bytes are a pure function of.  A warm store
    replays generated corpus files instead of regenerating them; any
    spec or generator change invalidates exactly the affected
    entries. *)
val generated_input_key :
  generator:string -> spec:string -> seed:int -> run:int -> format:string -> string

(** Digest of a property graph, combining its Weisfeiler–Leman
    fingerprint colours with the canonical Listing-1 fact rendering
    (the fingerprint alone ignores property values). *)
val graph_digest : Pgraph.Graph.t -> string

(** Like {!graph_digest}, but computed on the canonically relabelled
    graph when {!Pgraph.Canon} is enabled (falling back to
    {!graph_digest} when it is disabled or the graph exceeds the
    canonicalization budget).  Equal for renamed copies of the same
    graph, so solve-heavy stage artifacts replay warm across runs that
    mint fresh identifiers.  The trade-off: properties still
    distinguish entries, but two runs whose graphs differ only in ids
    share entries whose stored payload carries the {e first} run's ids
    — callers must only key artifacts whose payloads are id-insensitive
    or whose ids they re-derive (see DESIGN.md). *)
val canonical_graph_digest : Pgraph.Graph.t -> string

(** {2 Artifact IO}

    [read]/[write] do not touch the hit/miss counters: the caller
    decides whether a read artifact was usable (it may fail to decode)
    and reports the verdict through {!record}.

    Both operations are fault-injection tap points (transient EIO,
    at-rest corruption, torn writes — see {!Faults.Plan.store_kind})
    and both degrade rather than raise: a failed or injected-away read
    is a miss, a failed or injected-away write leaves the entry cold
    and bumps the [errors] counter.  Caching is best-effort by
    contract, so the pipeline never dies because the store did.

    Entries are sealed on disk with a checksum of their payload,
    verified by [read]: flipped bytes or a truncated tail are a
    *detected* miss (counted under [errors]), never handed to the
    decoder — garbled JSON can parse to a different value, which would
    silently change a warm run's output.  The mismatching entry is
    healed by the recompute's rewrite. *)

val read : t -> stage:string -> key:string -> string option
val write : t -> stage:string -> key:string -> string -> unit

(** [record t ~stage ~key ~hit] counts one stage execution as replayed
    ([hit:true]) or computed ([hit:false]).  [key] selects the counter
    shard, so recording contends only with other executions in the
    same key range. *)
val record : t -> stage:string -> key:string -> hit:bool -> unit

(** {2 Statistics} *)

type stats = {
  hits : int;
  misses : int;
  stored : int;
  errors : int;  (** I/O failures (real or injected) degraded to uncached computes *)
}

(** Per-stage counters, sorted by stage name (merged across the key
    shards at read time). *)
val stats : t -> (string * stats) list

(** Counters summed across stages. *)
val totals : t -> stats

(** Replayed fraction of all recorded stage executions; [None] when
    nothing was recorded. *)
val hit_rate : stats -> float option

val reset_stats : t -> unit
