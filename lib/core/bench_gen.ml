module Program = Oskernel.Program
module Syscall = Oskernel.Syscall

(* ------------------------------------------------------------------ *)
(* Failure variants                                                    *)
(* ------------------------------------------------------------------ *)

(* Retarget a call at a protected location (or privileged id) so it
   fails for the unprivileged benchmark user.  [None]: the call has no
   meaningful access-control failure mode. *)
let failing_call (c : Syscall.t) : Syscall.t option =
  match c with
  | Syscall.Open { flags = _; ret; _ } ->
      Some (Syscall.Open { path = "/etc/shadow"; flags = [ Syscall.O_RDWR ]; ret })
  | Syscall.Openat { flags = _; ret; _ } ->
      Some (Syscall.Openat { path = "/etc/shadow"; flags = [ Syscall.O_RDWR ]; ret })
  | Syscall.Creat { ret; _ } -> Some (Syscall.Creat { path = "/etc/intruder"; ret })
  | Syscall.Link { old_path; _ } ->
      Some (Syscall.Link { old_path; new_path = "/etc/intruder" })
  | Syscall.Linkat { old_path; _ } ->
      Some (Syscall.Linkat { old_path; new_path = "/etc/intruder" })
  | Syscall.Symlink { target; _ } ->
      Some (Syscall.Symlink { target; link_path = "/etc/intruder" })
  | Syscall.Symlinkat { target; _ } ->
      Some (Syscall.Symlinkat { target; link_path = "/etc/intruder" })
  | Syscall.Mknod _ -> Some (Syscall.Mknod { path = "/etc/intruder" })
  | Syscall.Mknodat _ -> Some (Syscall.Mknodat { path = "/etc/intruder" })
  | Syscall.Rename { old_path; _ } ->
      Some (Syscall.Rename { old_path; new_path = "/etc/passwd" })
  | Syscall.Renameat { old_path; _ } ->
      Some (Syscall.Renameat { old_path; new_path = "/etc/passwd" })
  | Syscall.Truncate { length; _ } -> Some (Syscall.Truncate { path = "/etc/passwd"; length })
  | Syscall.Unlink _ -> Some (Syscall.Unlink { path = "/etc/passwd" })
  | Syscall.Unlinkat _ -> Some (Syscall.Unlinkat { path = "/etc/passwd" })
  | Syscall.Chmod { mode; _ } -> Some (Syscall.Chmod { path = "/etc/passwd"; mode })
  | Syscall.Fchmodat { mode; _ } -> Some (Syscall.Fchmodat { path = "/etc/passwd"; mode })
  | Syscall.Chown _ -> Some (Syscall.Chown { path = "/etc/passwd"; uid = 1000; gid = 1000 })
  | Syscall.Fchownat _ ->
      Some (Syscall.Fchownat { path = "/etc/passwd"; uid = 1000; gid = 1000 })
  | Syscall.Setuid _ -> Some (Syscall.Setuid { uid = 0 })
  | Syscall.Setgid _ -> Some (Syscall.Setgid { gid = 0 })
  | Syscall.Setreuid _ -> Some (Syscall.Setreuid { ruid = 0; euid = 0 })
  | Syscall.Setregid _ -> Some (Syscall.Setregid { rgid = 0; egid = 0 })
  | Syscall.Setresuid _ -> Some (Syscall.Setresuid { ruid = 0; euid = 0; suid = 0 })
  | Syscall.Setresgid _ -> Some (Syscall.Setresgid { rgid = 0; egid = 0; sgid = 0 })
  | Syscall.Execve _ -> Some (Syscall.Execve { path = "/etc/shadow" })
  (* fd-based and process-lifecycle calls have no access-control
     failure to derive here. *)
  | Syscall.Close _ | Syscall.Dup _ | Syscall.Dup2 _ | Syscall.Dup3 _ | Syscall.Read _
  | Syscall.Pread _ | Syscall.Write _ | Syscall.Pwrite _ | Syscall.Ftruncate _
  | Syscall.Fchmod _ | Syscall.Fchown _ | Syscall.Clone | Syscall.Exit _ | Syscall.Fork
  | Syscall.Vfork | Syscall.Kill _ | Syscall.Pipe _ | Syscall.Pipe2 _ | Syscall.Tee _ -> None

let failure_variants () =
  List.filter_map
    (fun (p : Program.t) ->
      let targets = List.map failing_call p.Program.target in
      if List.exists Option.is_none targets || targets = [] then None
      else
        Some
          (Program.make
             ~name:("cmdFailed" ^ String.capitalize_ascii p.Program.syscall)
             ~syscall:p.Program.syscall ~staging:p.Program.staging ~setup:p.Program.setup
             ?cred:p.Program.cred
             ~target:(List.map Option.get targets)
             ()))
    Bench_registry.all

(* ------------------------------------------------------------------ *)
(* Sequence composition                                                *)
(* ------------------------------------------------------------------ *)

(* Rename every fd register through [f] so composed programs cannot
   observe each other's descriptors. *)
let map_regs f (c : Syscall.t) : Syscall.t =
  match c with
  | Syscall.Open r -> Syscall.Open { r with ret = f r.ret }
  | Syscall.Openat r -> Syscall.Openat { r with ret = f r.ret }
  | Syscall.Creat r -> Syscall.Creat { r with ret = f r.ret }
  | Syscall.Close r -> Syscall.Close (f r)
  | Syscall.Dup r -> Syscall.Dup { fd = f r.fd; ret = f r.ret }
  | Syscall.Dup2 r -> Syscall.Dup2 { r with fd = f r.fd; ret = f r.ret }
  | Syscall.Dup3 r -> Syscall.Dup3 { r with fd = f r.fd; ret = f r.ret }
  | Syscall.Read r -> Syscall.Read { r with fd = f r.fd }
  | Syscall.Pread r -> Syscall.Pread { r with fd = f r.fd }
  | Syscall.Write r -> Syscall.Write { r with fd = f r.fd }
  | Syscall.Pwrite r -> Syscall.Pwrite { r with fd = f r.fd }
  | Syscall.Ftruncate r -> Syscall.Ftruncate { r with fd = f r.fd }
  | Syscall.Fchmod r -> Syscall.Fchmod { r with fd = f r.fd }
  | Syscall.Fchown r -> Syscall.Fchown { r with fd = f r.fd }
  | Syscall.Pipe r -> Syscall.Pipe { ret_read = f r.ret_read; ret_write = f r.ret_write }
  | Syscall.Pipe2 r -> Syscall.Pipe2 { ret_read = f r.ret_read; ret_write = f r.ret_write }
  | Syscall.Tee r -> Syscall.Tee { fd_in = f r.fd_in; fd_out = f r.fd_out }
  | Syscall.Link _ | Syscall.Linkat _ | Syscall.Symlink _ | Syscall.Symlinkat _
  | Syscall.Mknod _ | Syscall.Mknodat _ | Syscall.Rename _ | Syscall.Renameat _
  | Syscall.Truncate _ | Syscall.Unlink _ | Syscall.Unlinkat _ | Syscall.Clone
  | Syscall.Execve _ | Syscall.Exit _ | Syscall.Fork | Syscall.Vfork | Syscall.Kill _
  | Syscall.Chmod _ | Syscall.Fchmodat _ | Syscall.Chown _ | Syscall.Fchownat _
  | Syscall.Setgid _ | Syscall.Setregid _ | Syscall.Setresgid _ | Syscall.Setuid _
  | Syscall.Setreuid _ | Syscall.Setresuid _ -> c

let sequence_benchmark names =
  let parts = List.map Bench_registry.find_exn names in
  let staging =
    List.fold_left
      (fun acc (p : Program.t) ->
        List.fold_left
          (fun acc (f : Program.staged_file) ->
            if List.exists (fun (g : Program.staged_file) -> g.Program.sf_path = f.Program.sf_path) acc
            then acc
            else f :: acc)
          acc p.Program.staging)
      [] parts
  in
  let rename i reg = Printf.sprintf "s%d_%s" i reg in
  let setup =
    List.concat (List.mapi (fun i (p : Program.t) -> List.map (map_regs (rename i)) p.Program.setup) parts)
  in
  let target =
    List.concat
      (List.mapi (fun i (p : Program.t) -> List.map (map_regs (rename i)) p.Program.target) parts)
  in
  let cred = List.find_map (fun (p : Program.t) -> p.Program.cred) parts in
  Program.make
    ~name:("cmdSeq_" ^ String.concat "_" names)
    ~syscall:(String.concat "+" names)
    ~staging:(List.rev staging) ~setup ?cred ~target ()

let pair_sequences names =
  let rec pairs = function
    | a :: (b :: _ as rest) -> sequence_benchmark [ a; b ] :: pairs rest
    | _ -> []
  in
  pairs names

(* ------------------------------------------------------------------ *)
(* Synthetic matching workloads                                        *)
(* ------------------------------------------------------------------ *)

module Prng = Oskernel.Prng
module Graph = Pgraph.Graph
module Props = Pgraph.Props

let node_label_pool = [| "process"; "file"; "socket"; "pipe" |]
let edge_label_pool = [| "used"; "wasGeneratedBy"; "wasInformedBy" |]

(* A provenance-shaped random DAG: node [i] points back at earlier
   nodes, so every graph is connected and acyclic like a real trace. *)
let random_graph rng nodes =
  let g = ref Graph.empty in
  for i = 0 to nodes - 1 do
    let label = node_label_pool.(Prng.int rng (Array.length node_label_pool)) in
    let props =
      Props.of_list
        [ ("seq", string_of_int i); ("token", Prng.hex_token rng) ]
    in
    g := Graph.add_node !g ~id:(Printf.sprintf "n%d" i) ~label ~props
  done;
  let edge = ref 0 in
  for i = 1 to nodes - 1 do
    let fan = 1 + Prng.int rng 2 in
    for _ = 1 to fan do
      let tgt = Prng.int rng i in
      let label = edge_label_pool.(Prng.int rng (Array.length edge_label_pool)) in
      let props = Props.of_list [ ("op", Prng.hex_token rng) ] in
      g :=
        Graph.add_edge !g
          ~id:(Printf.sprintf "e%d" !edge)
          ~src:(Printf.sprintf "n%d" i)
          ~tgt:(Printf.sprintf "n%d" tgt)
          ~label ~props;
      incr edge
    done
  done;
  !g

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done

let match_pair ~nodes ~seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let g1 = random_graph rng nodes in
  (* Isomorphic copy under a random identifier permutation... *)
  let rename ids prefix =
    let arr = Array.of_list ids in
    shuffle rng arr;
    let tbl = Hashtbl.create (Array.length arr) in
    Array.iteri (fun i id -> Hashtbl.add tbl id (Printf.sprintf "%s%d" prefix i)) arr;
    tbl
  in
  let node_map = rename (Graph.node_ids g1) "m" in
  let edge_map = rename (Graph.edge_ids g1) "f" in
  let lookup tbl id = match Hashtbl.find_opt tbl id with Some x -> x | None -> id in
  let g2 =
    Graph.map_ids (fun id -> lookup node_map (lookup edge_map id)) g1
  in
  (* ...with a sprinkle of perturbed transient properties, so the
     cost-minimizing matchings have real work to do. *)
  let perturbed = ref g2 in
  let victims = max 1 (nodes / 8) in
  let node_ids = Array.of_list (Graph.node_ids g2) in
  for _ = 1 to victims do
    let id = node_ids.(Prng.int rng (Array.length node_ids)) in
    match Graph.find_node !perturbed id with
    | Some n ->
        perturbed :=
          Graph.set_node_props !perturbed id
            (Props.add "token" (Prng.hex_token rng) n.Graph.node_props)
    | None -> ()
  done;
  (g1, !perturbed)

(* A provenance trace with a rigid structure: a single lineage chain
   (node [i] consumes node [i-1], with occasional shortcut edges two
   steps back) — the shape of a real recorded syscall trace, where one
   process's actions follow each other in order.  Refinement separates
   every position by its distance from the ends, so the automorphism
   group is trivial and the delta re-solve fast path can certify
   transient-only re-runs of the same trace.  Labels and transient
   values are still seed-randomized. *)
let rigid_trace ~nodes ~seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let g = ref Graph.empty in
  for i = 0 to nodes - 1 do
    let label = node_label_pool.(Prng.int rng (Array.length node_label_pool)) in
    g :=
      Graph.add_node !g ~id:(Printf.sprintf "n%d" i) ~label
        ~props:(Props.of_list [ ("seq", string_of_int i); ("token", Prng.hex_token rng) ])
  done;
  let edge = ref 0 in
  let link i j =
    let label = edge_label_pool.(Prng.int rng (Array.length edge_label_pool)) in
    g :=
      Graph.add_edge !g
        ~id:(Printf.sprintf "e%d" !edge)
        ~src:(Printf.sprintf "n%d" i)
        ~tgt:(Printf.sprintf "n%d" j)
        ~label ~props:(Props.of_list [ ("op", Prng.hex_token rng) ]);
    incr edge
  in
  for i = 1 to nodes - 1 do
    link i (i - 1);
    if i >= 2 && Prng.int rng 4 = 0 then link i (i - 2)
  done;
  !g

(* A transient-only rewrite of [g]: identical identifiers, labels,
   topology and structural properties, but every transient value
   ("token" on nodes, "op" on edges — the per-run noise [random_graph]
   plants) re-randomized from [seed].  The result has the same
   canonical structure digest as [g], which is exactly the shape the
   delta re-solve fast path certifies. *)
let transient_variant ~seed g =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let refresh key props =
    if Props.mem key props then Props.add key (Prng.hex_token rng) props else props
  in
  let g =
    List.fold_left
      (fun acc (n : Graph.node) ->
        Graph.set_node_props acc n.Graph.node_id (refresh "token" n.Graph.node_props))
      g (Graph.nodes g)
  in
  List.fold_left
    (fun acc (e : Graph.edge) ->
      Graph.set_edge_props acc e.Graph.edge_id (refresh "op" e.Graph.edge_props))
    g (Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Bench-output plumbing                                               *)
(* ------------------------------------------------------------------ *)

(* Merge one section into a shared bench JSON file, preserving whatever
   other sections already wrote (match-scale, canon, segment and
   planner share BENCH_match_scale.json, and CI may run them in any
   order or alone).  A missing or unparsable file degrades to a fresh
   object rather than an error: bench output must never gate on stale
   artifacts. *)
let json_update_file ~file ~key value =
  let existing =
    if Sys.file_exists file then (
      try
        let ic = open_in_bin file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Minijson.Json.of_string s with
        | Minijson.Json.Object members -> members
        | _ -> []
        | exception Minijson.Json.Parse_error _ -> []
      with Sys_error _ -> [])
    else []
  in
  let members = List.filter (fun (k, _) -> k <> key) existing @ [ (key, value) ] in
  let oc = open_out file in
  output_string oc (Minijson.Json.to_string ~pretty:true (Minijson.Json.Object members));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %S into %s\n" key file
