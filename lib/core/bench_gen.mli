(** Automatic benchmark derivation — the paper's first future-work item
    (Section 6: "additional support for automating the process of
    creating new benchmarks").  Two generators:

    - {!failure_variants} derives an access-control failure benchmark
      from every success benchmark that names a path, by retargeting the
      call at a root-owned location (the transformation Alice performs
      by hand in Section 3.1);
    - {!sequence_benchmarks} composes registry benchmarks into multi-call
      target sequences (the scalability dimension of Section 5.2),
      merging their staging requirements. *)

(** [failure_variants ()] returns one failing variant per eligible
    registry benchmark, named [cmdFailed<Syscall>].  Benchmarks whose
    target takes no path (e.g. [fork]) have no failure variant. *)
val failure_variants : unit -> Oskernel.Program.t list

(** [sequence_benchmark names] builds one program whose target performs
    the targets of the named registry benchmarks in order.  Raises
    [Not_found] for unknown names; fd registers are renamed apart so
    composed benchmarks cannot interfere. *)
val sequence_benchmark : string list -> Oskernel.Program.t

(** All adjacent pairs of a syscall-name list, e.g. for smoke-testing
    composed coverage. *)
val pair_sequences : string list -> Oskernel.Program.t list

(** [match_pair ~nodes ~seed] generates a deterministic synthetic
    matching workload: a provenance-shaped random DAG with [nodes]
    nodes and an isomorphic copy of it under a random identifier
    permutation with a few transient property values perturbed.  The
    pair is similar by construction with a small nonzero optimal
    alignment cost — the worst case for the matching pipeline, used by
    the [match-scale] benchmark section. *)
val match_pair : nodes:int -> seed:int -> Pgraph.Graph.t * Pgraph.Graph.t

(** [rigid_trace ~nodes ~seed] generates a deterministic synthetic
    trace whose structure is {e rigid} (trivial automorphism group): a
    single lineage chain with occasional two-step shortcut edges, the
    shape of a real recorded syscall trace.  Combined with
    {!transient_variant} this is the steady-state workload of the delta
    re-solve fast path: consecutive trials of one benchmark differing
    only in transient values. *)
val rigid_trace : nodes:int -> seed:int -> Pgraph.Graph.t

(** [transient_variant ~seed g] rewrites only the transient property
    values of [g] ("token" on nodes, "op" on edges), re-randomized from
    [seed]; identifiers, labels, topology and structural properties are
    untouched, so the result shares [g]'s canonical structure digest.
    This is the consecutive-trial shape the delta re-solve fast path
    certifies, used by the planner differential tests and the [planner]
    benchmark section. *)
val transient_variant : seed:int -> Pgraph.Graph.t -> Pgraph.Graph.t

(** [json_update_file ~file ~key value] merges [(key, value)] into the
    JSON object stored at [file], replacing any previous binding for
    [key] and preserving the rest — the shared output discipline of the
    benchmark sections that accumulate into one file
    (BENCH_match_scale.json, BENCH_serve.json).  A missing or
    unparsable file is treated as an empty object. *)
val json_update_file : file:string -> key:string -> Minijson.Json.t -> unit
