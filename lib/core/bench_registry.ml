module Program = Oskernel.Program
module Syscall = Oskernel.Syscall
module Recorder = Recorders.Recorder

type expected =
  | Ok_plain
  | Ok_dv
  | Ok_sc
  | Empty_nr
  | Empty_sc
  | Empty_lp

let expected_to_string = function
  | Ok_plain -> "ok"
  | Ok_dv -> "ok (DV)"
  | Ok_sc -> "ok (SC)"
  | Empty_nr -> "empty (NR)"
  | Empty_sc -> "empty (SC)"
  | Empty_lp -> "empty (LP)"

let matches expected (r : Result.t) =
  match (expected, r.Result.status) with
  | (Ok_plain | Ok_sc), Result.Target _ -> true
  | Ok_dv, Result.Target g -> Result.has_disconnected_node g
  | (Empty_nr | Empty_sc | Empty_lp), Result.Empty -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Benchmark programs                                                  *)
(* ------------------------------------------------------------------ *)

let test_file = "/staging/test.txt"

let staged = [ Program.staged_file test_file ]

let open_setup = [ Syscall.Open { path = test_file; flags = [ Syscall.O_RDWR ]; ret = "id" } ]

let bench ?(staging = []) ?(setup = []) ?cred ~syscall target =
  Program.make
    ~name:("cmd" ^ String.capitalize_ascii syscall)
    ~syscall ~staging ~setup ?cred ~target ()

let group1 =
  [
    bench ~syscall:"close" ~staging:staged ~setup:open_setup [ Syscall.Close "id" ];
    bench ~syscall:"creat" [ Syscall.Creat { path = "/staging/created.txt"; ret = "id" } ];
    bench ~syscall:"dup" ~staging:staged ~setup:open_setup
      [ Syscall.Dup { fd = "id"; ret = "id2" } ];
    bench ~syscall:"dup2" ~staging:staged ~setup:open_setup
      [ Syscall.Dup2 { fd = "id"; newfd = 10; ret = "id2" } ];
    bench ~syscall:"dup3" ~staging:staged ~setup:open_setup
      [ Syscall.Dup3 { fd = "id"; newfd = 10; ret = "id2" } ];
    bench ~syscall:"link" ~staging:staged
      [ Syscall.Link { old_path = test_file; new_path = "/staging/link.txt" } ];
    bench ~syscall:"linkat" ~staging:staged
      [ Syscall.Linkat { old_path = test_file; new_path = "/staging/link.txt" } ];
    bench ~syscall:"symlink" ~staging:staged
      [ Syscall.Symlink { target = test_file; link_path = "/staging/sym.txt" } ];
    bench ~syscall:"symlinkat" ~staging:staged
      [ Syscall.Symlinkat { target = test_file; link_path = "/staging/sym.txt" } ];
    bench ~syscall:"mknod" [ Syscall.Mknod { path = "/staging/fifo" } ];
    bench ~syscall:"mknodat" [ Syscall.Mknodat { path = "/staging/fifo" } ];
    bench ~syscall:"open" ~staging:staged
      [ Syscall.Open { path = test_file; flags = [ Syscall.O_RDWR ]; ret = "id" } ];
    bench ~syscall:"openat" ~staging:staged
      [ Syscall.Openat { path = test_file; flags = [ Syscall.O_RDWR ]; ret = "id" } ];
    bench ~syscall:"read" ~staging:staged ~setup:open_setup
      [ Syscall.Read { fd = "id"; count = 32 } ];
    bench ~syscall:"pread" ~staging:staged ~setup:open_setup
      [ Syscall.Pread { fd = "id"; count = 32; offset = 0 } ];
    bench ~syscall:"rename" ~staging:staged
      [ Syscall.Rename { old_path = test_file; new_path = "/staging/renamed.txt" } ];
    bench ~syscall:"renameat" ~staging:staged
      [ Syscall.Renameat { old_path = test_file; new_path = "/staging/renamed.txt" } ];
    bench ~syscall:"truncate" ~staging:staged
      [ Syscall.Truncate { path = test_file; length = 10 } ];
    bench ~syscall:"ftruncate" ~staging:staged ~setup:open_setup
      [ Syscall.Ftruncate { fd = "id"; length = 10 } ];
    bench ~syscall:"unlink" ~staging:staged [ Syscall.Unlink { path = test_file } ];
    bench ~syscall:"unlinkat" ~staging:staged [ Syscall.Unlinkat { path = test_file } ];
    bench ~syscall:"write" ~staging:staged ~setup:open_setup
      [ Syscall.Write { fd = "id"; count = 32 } ];
    bench ~syscall:"pwrite" ~staging:staged ~setup:open_setup
      [ Syscall.Pwrite { fd = "id"; count = 32; offset = 0 } ];
  ]

let group2 =
  [
    bench ~syscall:"clone" [ Syscall.Clone ];
    bench ~syscall:"execve" [ Syscall.Execve { path = "/bin/bash" } ];
    bench ~syscall:"exit" [ Syscall.Exit { status = 0 } ];
    bench ~syscall:"fork" [ Syscall.Fork ];
    bench ~syscall:"kill" [ Syscall.Kill { signal = 9 } ];
    bench ~syscall:"vfork" [ Syscall.Vfork ];
  ]

(* The setres[ug]id benchmarks follow the paper exactly: the setresuid
   call performs an actual change of effective uid (the process starts
   with a saved uid it can switch to), while setresgid sets the group id
   to its current value — which is why SPADE's state-change monitoring
   notices the former and not the latter (Section 4.3). *)
let setuid_capable_cred =
  { (Oskernel.Cred.make ~uid:1000 ~gid:1000) with Oskernel.Cred.suid = 2000 }

let group3 =
  [
    bench ~syscall:"chmod" ~staging:staged [ Syscall.Chmod { path = test_file; mode = 0o600 } ];
    bench ~syscall:"fchmod" ~staging:staged ~setup:open_setup
      [ Syscall.Fchmod { fd = "id"; mode = 0o600 } ];
    bench ~syscall:"fchmodat" ~staging:staged
      [ Syscall.Fchmodat { path = test_file; mode = 0o600 } ];
    bench ~syscall:"chown" ~staging:staged
      [ Syscall.Chown { path = test_file; uid = -1; gid = 1000 } ];
    bench ~syscall:"fchown" ~staging:staged ~setup:open_setup
      [ Syscall.Fchown { fd = "id"; uid = -1; gid = 1000 } ];
    bench ~syscall:"fchownat" ~staging:staged
      [ Syscall.Fchownat { path = test_file; uid = -1; gid = 1000 } ];
    bench ~syscall:"setgid" [ Syscall.Setgid { gid = 1000 } ];
    bench ~syscall:"setregid" [ Syscall.Setregid { rgid = 1000; egid = 1000 } ];
    bench ~syscall:"setresgid" [ Syscall.Setresgid { rgid = -1; egid = 1000; sgid = -1 } ];
    bench ~syscall:"setuid" [ Syscall.Setuid { uid = 1000 } ];
    bench ~syscall:"setreuid" [ Syscall.Setreuid { ruid = 1000; euid = 1000 } ];
    bench ~syscall:"setresuid" ~cred:setuid_capable_cred
      [ Syscall.Setresuid { ruid = -1; euid = 2000; suid = -1 } ];
  ]

let pipe_setup =
  [
    Syscall.Pipe { ret_read = "p1r"; ret_write = "p1w" };
    Syscall.Pipe { ret_read = "p2r"; ret_write = "p2w" };
    Syscall.Write { fd = "p1w"; count = 16 };
  ]

let group4 =
  [
    bench ~syscall:"pipe" [ Syscall.Pipe { ret_read = "pr"; ret_write = "pw" } ];
    bench ~syscall:"pipe2" [ Syscall.Pipe2 { ret_read = "pr"; ret_write = "pw" } ];
    bench ~syscall:"tee" ~setup:pipe_setup [ Syscall.Tee { fd_in = "p1r"; fd_out = "p2w" } ];
  ]

let all = group1 @ group2 @ group3 @ group4

let group_of name =
  match List.find_opt (fun (p : Program.t) -> String.equal p.Program.syscall name) all with
  | Some p -> ( match p.Program.target with call :: _ -> Syscall.group call | [] -> 0)
  | None -> 0

let find name =
  List.find_opt (fun (p : Program.t) -> String.equal p.Program.syscall name) all

let find_exn name = match find name with Some p -> p | None -> raise Not_found

let names () = List.map (fun (p : Program.t) -> p.Program.syscall) all

(* ------------------------------------------------------------------ *)
(* Expected validation matrix (paper Table 2)                          *)
(* ------------------------------------------------------------------ *)

(* (syscall, SPADE, OPUS, CamFlow) *)
let table2 =
  [
    ("close", Ok_plain, Ok_plain, Empty_lp);
    ("creat", Ok_plain, Ok_plain, Ok_plain);
    ("dup", Empty_sc, Ok_plain, Empty_nr);
    ("dup2", Empty_sc, Ok_plain, Empty_nr);
    ("dup3", Empty_sc, Ok_plain, Empty_nr);
    ("link", Ok_plain, Ok_plain, Ok_plain);
    ("linkat", Ok_plain, Ok_plain, Ok_plain);
    ("symlink", Ok_plain, Ok_plain, Empty_nr);
    ("symlinkat", Ok_plain, Ok_plain, Empty_nr);
    ("mknod", Empty_nr, Ok_plain, Empty_nr);
    ("mknodat", Empty_nr, Empty_nr, Empty_nr);
    ("open", Ok_plain, Ok_plain, Ok_plain);
    ("openat", Ok_plain, Ok_plain, Ok_plain);
    ("read", Ok_plain, Empty_nr, Ok_plain);
    ("pread", Ok_plain, Empty_nr, Ok_plain);
    ("rename", Ok_plain, Ok_plain, Ok_plain);
    ("renameat", Ok_plain, Ok_plain, Ok_plain);
    ("truncate", Ok_plain, Ok_plain, Ok_plain);
    ("ftruncate", Ok_plain, Ok_plain, Ok_plain);
    ("unlink", Ok_plain, Ok_plain, Ok_plain);
    ("unlinkat", Ok_plain, Ok_plain, Ok_plain);
    ("write", Ok_plain, Empty_nr, Ok_plain);
    ("pwrite", Ok_plain, Empty_nr, Ok_plain);
    ("clone", Ok_plain, Empty_nr, Ok_plain);
    ("execve", Ok_plain, Ok_plain, Ok_plain);
    ("exit", Empty_lp, Empty_lp, Empty_lp);
    ("fork", Ok_plain, Ok_plain, Ok_plain);
    ("kill", Empty_lp, Empty_lp, Empty_lp);
    ("vfork", Ok_dv, Ok_plain, Ok_plain);
    ("chmod", Ok_plain, Ok_plain, Ok_plain);
    ("fchmod", Ok_plain, Empty_nr, Ok_plain);
    ("fchmodat", Ok_plain, Ok_plain, Ok_plain);
    ("chown", Empty_nr, Ok_plain, Ok_plain);
    ("fchown", Empty_nr, Empty_nr, Ok_plain);
    ("fchownat", Empty_nr, Ok_plain, Ok_plain);
    ("setgid", Ok_plain, Ok_plain, Ok_plain);
    ("setregid", Ok_plain, Ok_plain, Ok_plain);
    ("setresgid", Empty_sc, Empty_nr, Ok_plain);
    ("setuid", Ok_plain, Ok_plain, Ok_plain);
    ("setreuid", Ok_plain, Ok_plain, Ok_plain);
    ("setresuid", Ok_sc, Empty_nr, Ok_plain);
    ("pipe", Empty_nr, Ok_plain, Empty_nr);
    ("pipe2", Empty_nr, Ok_plain, Empty_nr);
    ("tee", Empty_nr, Empty_nr, Ok_plain);
  ]

let expected tool syscall =
  match List.find_opt (fun (n, _, _, _) -> String.equal n syscall) table2 with
  | None -> raise Not_found
  | Some (_, s, o, c) -> (
      match tool with
      | Recorder.Spade -> s
      | Recorder.Opus -> o
      | Recorder.Camflow -> c
      | Recorder.Spade_neo4j -> s (* storage does not change coverage *)
      | Recorder.Spade_camflow -> raise Not_found (* no Table 2 column *))

(* ------------------------------------------------------------------ *)
(* Failure-case and use-case benchmarks (Section 3.1)                  *)
(* ------------------------------------------------------------------ *)

(* Alice's example: a non-privileged user attempts to overwrite
   /etc/passwd by renaming another file onto it. *)
let failed_rename =
  Program.make ~name:"cmdFailedRename" ~syscall:"rename" ~staging:staged
    ~target:[ Syscall.Rename { old_path = test_file; new_path = "/etc/passwd" } ]
    ()

let failure_cases =
  [
    failed_rename;
    Program.make ~name:"cmdFailedOpen" ~syscall:"open"
      ~target:[ Syscall.Open { path = "/etc/shadow"; flags = [ Syscall.O_RDWR ]; ret = "id" } ]
      ();
    Program.make ~name:"cmdFailedUnlink" ~syscall:"unlink"
      ~target:[ Syscall.Unlink { path = "/etc/passwd" } ]
      ();
    Program.make ~name:"cmdFailedChmod" ~syscall:"chmod"
      ~target:[ Syscall.Chmod { path = "/etc/passwd"; mode = 0o666 } ]
      ();
    Program.make ~name:"cmdFailedSetuid" ~syscall:"setuid"
      ~target:[ Syscall.Setuid { uid = 0 } ]
      ();
  ]

(* Dora's example: the privilege-escalation step of a larger activity is
   the target; the surrounding file accesses are context.  The process
   stands for a subverted setuid-root binary (saved uid 0), and the
   escalation step regains root and reads a protected file. *)
let privilege_escalation =
  let subverted_setuid_root_cred =
    { (Oskernel.Cred.make ~uid:1000 ~gid:1000) with Oskernel.Cred.suid = 0 }
  in
  Program.make ~name:"cmdPrivEsc" ~syscall:"setresuid" ~staging:staged
    ~cred:subverted_setuid_root_cred
    ~setup:
      [
        Syscall.Open { path = test_file; flags = [ Syscall.O_RDWR ]; ret = "id" };
        Syscall.Read { fd = "id"; count = 64 };
      ]
    ~target:
      [
        Syscall.Setresuid { ruid = -1; euid = 0; suid = -1 };
        Syscall.Open { path = "/etc/shadow"; flags = [ Syscall.O_RDONLY ]; ret = "secret" };
      ]
    ()
