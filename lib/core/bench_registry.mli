(** The benchmark suite: one benchmark program per syscall of the
    paper's Table 1 (43 calls in 4 groups), plus the failure-case
    variants of the Section 3.1 use cases, and the paper's expected
    validation matrix (Table 2) for checking reproduction fidelity. *)

(** Expected Table 2 cell. *)
type expected =
  | Ok_plain
  | Ok_dv  (** ok, disconnected vforked process *)
  | Ok_sc  (** ok, via state-change monitoring *)
  | Empty_nr
  | Empty_sc
  | Empty_lp

val expected_to_string : expected -> string

(** Does a measured result agree with the expected cell?  [Ok_*] expect
    a non-empty target graph (and [Ok_dv] a disconnected node);
    [Empty_*] expect an empty result. *)
val matches : expected -> Result.t -> bool

(** All 43 syscall benchmarks, in Table 2 order. *)
val all : Oskernel.Program.t list

(** Benchmark group number (Table 1) per syscall name. *)
val group_of : string -> int

(** [find name] returns the benchmark for a syscall name, if any. *)
val find : string -> Oskernel.Program.t option

(** [find_exn name] is [find], raising [Not_found] on unknown names. *)
val find_exn : string -> Oskernel.Program.t

(** Known syscall names, in Table 2 order — what the CLI prints when
    asked for an unknown benchmark. *)
val names : unit -> string list

(** Expected Table 2 cell for (tool, syscall). *)
val expected : Recorders.Recorder.tool -> string -> expected

(** Failure-case benchmarks (Section 3.1, "Tracking failed calls"):
    each performs a call that fails with an access-control error. *)
val failure_cases : Oskernel.Program.t list

(** The paper's "rename onto /etc/passwd" example. *)
val failed_rename : Oskernel.Program.t

(** A privilege-escalation sequence benchmark (Section 3.1, "Suspicious
    activity detection"): the target is the setuid transition inside a
    larger activity. *)
val privilege_escalation : Oskernel.Program.t
