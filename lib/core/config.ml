type pair_choice = Smallest | Largest

type retry = {
  attempts : int;
  trial_growth : int;
  backoff_s : float;
  seed_stride : int;
}

(* The historical hardcoded escalation (3 attempts, +2 trials, +101
   seed, no backoff) becomes the default policy; test_runner pins these
   numbers, so changing them is an observable break. *)
let default_retry = { attempts = 3; trial_growth = 2; backoff_s = 0.; seed_stride = 101 }

type t = {
  tool : Recorders.Recorder.tool;
  trials : int;
  filter_graphs : bool;
  pair_choice : pair_choice;
  backend : Gmatch.Engine.backend;
  seed : int;
  flakiness : float;
  spade : Recorders.Spade.config;
  opus : Recorders.Opus.config;
  camflow : Recorders.Camflow.config;
  store : Artifact_store.t option;
  retry : retry;
  deadline_s : float option;
}

let default_trials = function
  | Recorders.Recorder.Spade | Recorders.Recorder.Spade_camflow
  | Recorders.Recorder.Spade_neo4j -> 3
  | Recorders.Recorder.Opus -> 2
  | Recorders.Recorder.Camflow -> 5

let default tool =
  {
    tool;
    trials = default_trials tool;
    filter_graphs = (tool = Recorders.Recorder.Camflow);
    pair_choice = Smallest;
    backend = Gmatch.Engine.default_backend;
    seed = 1;
    flakiness = 0.08;
    spade = Recorders.Spade.default_config;
    opus = Recorders.Opus.default_config;
    camflow = Recorders.Camflow.default_config;
    store = None;
    retry = default_retry;
    deadline_s = None;
  }

let tool_name t = Recorders.Recorder.tool_name t.tool

(* Fingerprints enumerate fields explicitly (no Marshal, no derived
   show): the rendering is part of the on-disk cache contract and must
   not silently change when an unrelated field is added. *)

let spade_fp (c : Recorders.Spade.config) =
  Printf.sprintf "simplify=%b,io_runs=%b,io_runs_fixed=%b,versioning=%b,success_only=%b,procfs=%b"
    c.Recorders.Spade.simplify c.Recorders.Spade.io_runs c.Recorders.Spade.io_runs_fixed
    c.Recorders.Spade.versioning c.Recorders.Spade.success_only c.Recorders.Spade.use_procfs

let opus_fp (c : Recorders.Opus.config) =
  Printf.sprintf "env=%b,io=%b" c.Recorders.Opus.record_env c.Recorders.Opus.record_io

let camflow_fp (c : Recorders.Camflow.config) =
  Printf.sprintf "reserialize=%b,track_self=%b,filters=%s" c.Recorders.Camflow.reserialize
    c.Recorders.Camflow.track_self
    (String.concat "+" c.Recorders.Camflow.filter_types)

let recording_fingerprint t =
  Printf.sprintf "tool=%s;trials=%d;seed=%d;flakiness=%h;spade{%s};opus{%s};camflow{%s}"
    (tool_name t) t.trials t.seed t.flakiness (spade_fp t.spade) (opus_fp t.opus)
    (camflow_fp t.camflow)

(* Pruned and unpruned ASP encodings are pinned to the same verdicts
   and optimal costs, but not to the same optimal *witness*, and the
   generalized graph depends on which witness the solver returns — so
   the prune toggle is part of the matching fingerprint.  The canon
   toggle is there for the same reason: the canonical fast path (and
   the canonically relabelled ASP instances behind it) preserves
   verdicts and costs but may pick a different optimal witness.  The
   segmentation mode (and its size threshold, which decides *which*
   pairs decompose) joins them for the same reason again: stitched
   witnesses are cost-optimal but need not coincide with the
   whole-graph solver's choice.  The planner needs no field of its
   own: Auto is a backend, so "auto" lands in the fingerprint through
   backend_to_string like any fixed choice — and the calibration state
   behind it deliberately never influences a cached artifact (the
   planner's timing-sensitive choices are confined to instances where
   every candidate returns identical bytes). *)
let backend_fp t =
  Printf.sprintf "%s,prune=%b,fallback=%b,canon=%b,segment=%s"
    (Gmatch.Engine.backend_to_string t.backend)
    (Gmatch.Asp_backend.prune_enabled ())
    (Gmatch.Engine.fallback_enabled ())
    (Pgraph.Canon.is_enabled ())
    (if Gmatch.Engine.segmentation_enabled () then
       Printf.sprintf "on@%d" (Gmatch.Engine.segment_min_nodes ())
     else "off")

let generalization_fingerprint t =
  Printf.sprintf "backend=%s;filter=%b;pair=%s" (backend_fp t) t.filter_graphs
    (match t.pair_choice with Smallest -> "smallest" | Largest -> "largest")

let comparison_fingerprint t = Printf.sprintf "backend=%s" (backend_fp t)
