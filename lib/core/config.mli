(** ProvMark pipeline configuration, mirroring the original
    [config/config.ini] profiles: which capture tool to drive, how many
    trials to record, whether to pre-filter obviously incomplete graphs,
    and the per-tool recorder settings. *)

type pair_choice =
  | Smallest  (** pick the similarity class with the smallest graphs (paper default) *)
  | Largest  (** also works, per Section 3.4 *)

type t = {
  tool : Recorders.Recorder.tool;
  trials : int;
  filter_graphs : bool;
      (** drop obviously incomplete graphs before similarity classing;
          the original default is true for CamFlow only *)
  pair_choice : pair_choice;
  backend : Gmatch.Engine.backend;
  seed : int;  (** base of the per-run transient-value derivation *)
  flakiness : float;  (** probability a SPADE/CamFlow run is perturbed *)
  spade : Recorders.Spade.config;
  opus : Recorders.Opus.config;
  camflow : Recorders.Camflow.config;
  store : Artifact_store.t option;
      (** when set, every pipeline stage consults the content-addressed
          artifact store before computing (CLI: [--store]/[--no-store]) *)
}

(** Per-tool defaults: 3 trials for SPADE, 2 for OPUS, 5 for CamFlow
    (the appendix batch runs used more trials for CamFlow than the
    others), [filter_graphs] on for CamFlow only.  [store] is [None]. *)
val default : Recorders.Recorder.tool -> t

val default_trials : Recorders.Recorder.tool -> int

val tool_name : t -> string

(** {2 Cache-key fingerprints}

    Stable renderings of exactly the configuration fields each pipeline
    stage reads, used in artifact-store keys.  Splitting them per stage
    is what makes one flipped knob recompute only downstream of the
    stage that reads it: changing [backend] leaves recording and
    transformation artifacts valid; changing [seed] invalidates
    everything.  The [store] handle itself never participates. *)

(** Fields the recording stage reads: tool, trials, seed, flakiness and
    the per-tool recorder settings. *)
val recording_fingerprint : t -> string

(** Fields the generalization stage reads: backend (including the
    global ASP prune toggle), [filter_graphs], [pair_choice]. *)
val generalization_fingerprint : t -> string

(** Fields the comparison stage reads: backend (including the global
    ASP prune toggle). *)
val comparison_fingerprint : t -> string
