(** ProvMark pipeline configuration, mirroring the original
    [config/config.ini] profiles: which capture tool to drive, how many
    trials to record, whether to pre-filter obviously incomplete graphs,
    and the per-tool recorder settings. *)

type pair_choice =
  | Smallest  (** pick the similarity class with the smallest graphs (paper default) *)
  | Largest  (** also works, per Section 3.4 *)

(** The retry policy {!Runner} applies when an attempt fails: up to
    [attempts] tries, each recording [trial_growth] more trials than
    the last (Section 3.2's answer to flaky capture runs), sleeping
    [backoff_s] seconds between attempts and perturbing the seed by
    [seed_stride] so a retry re-records rather than replaying the same
    flaky trace.  The seed perturbation also moves the recorder
    fault-injection sites, so an injected fault does not deterministically
    re-fire on every retry. *)
type retry = {
  attempts : int;  (** total attempts, including the first (>= 1) *)
  trial_growth : int;  (** extra trials added per retry *)
  backoff_s : float;  (** sleep between attempts (0 = immediate) *)
  seed_stride : int;  (** seed increment per retry *)
}

(** 3 attempts, +2 trials, +101 seed, no backoff — the historical
    hardcoded escalation. *)
val default_retry : retry

type t = {
  tool : Recorders.Recorder.tool;
  trials : int;
  filter_graphs : bool;
      (** drop obviously incomplete graphs before similarity classing;
          the original default is true for CamFlow only *)
  pair_choice : pair_choice;
  backend : Gmatch.Engine.backend;
  seed : int;  (** base of the per-run transient-value derivation *)
  flakiness : float;  (** probability a SPADE/CamFlow run is perturbed *)
  spade : Recorders.Spade.config;
  opus : Recorders.Opus.config;
  camflow : Recorders.Camflow.config;
  store : Artifact_store.t option;
      (** when set, every pipeline stage consults the content-addressed
          artifact store before computing (CLI: [--store]/[--no-store]) *)
  retry : retry;  (** attempt escalation policy (CLI: [--retries]) *)
  deadline_s : float option;
      (** per-stage wall-clock budget (CLI: [--deadline]).  Checked
          post hoc: a stage that overruns fails with
          {!Result.Deadline_exceeded} instead of being cancelled
          mid-flight, and the failure is never cached (it depends on
          timing, not content). *)
}

(** Per-tool defaults: 3 trials for SPADE, 2 for OPUS, 5 for CamFlow
    (the appendix batch runs used more trials for CamFlow than the
    others), [filter_graphs] on for CamFlow only.  [store] is [None]. *)
val default : Recorders.Recorder.tool -> t

val default_trials : Recorders.Recorder.tool -> int

val tool_name : t -> string

(** {2 Cache-key fingerprints}

    Stable renderings of exactly the configuration fields each pipeline
    stage reads, used in artifact-store keys.  Splitting them per stage
    is what makes one flipped knob recompute only downstream of the
    stage that reads it: changing [backend] leaves recording and
    transformation artifacts valid; changing [seed] invalidates
    everything.  The [store] handle itself never participates. *)

(** Fields the recording stage reads: tool, trials, seed, flakiness and
    the per-tool recorder settings. *)
val recording_fingerprint : t -> string

(** Fields the generalization stage reads: backend (including the
    global ASP prune and VF2-fallback toggles), [filter_graphs],
    [pair_choice]. *)
val generalization_fingerprint : t -> string

(** Fields the comparison stage reads: backend (including the global
    ASP prune and VF2-fallback toggles). *)
val comparison_fingerprint : t -> string
