open Pgraph

type format = Dot | Provjson

type entry = {
  entry_name : string;
  entry_spec : string;
  entry_run : int;
  entry_format : format;
  entry_file : string;
  entry_md5 : string;
  entry_nodes : int;
  entry_edges : int;
}

type manifest = { tier : Provgen.tier; seed : int; entries : entry list }

(* Participates in every generated-input artifact key: bump when the
   generator's output bytes change for the same spec. *)
let generator = "provgen-1"

let format_name = function Dot -> "dot" | Provjson -> "provjson"

let format_ext = function Dot -> "dot" | Provjson -> "json"

let file_name ~name ~run format = Printf.sprintf "%s-r%d.%s" name run (format_ext format)

let runs = [ 1; 2 ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let render format ~name ~run g =
  match format with
  | Dot -> Recorders.Dot.to_string (Recorders.Dot.of_pgraph ~name:(Printf.sprintf "%s_r%d" name run) g)
  | Provjson -> Recorders.Provjson.to_string g

(* One corpus file's bytes: replayed from the store when warm, and a
   pure function of its coordinates otherwise — which is what makes
   materialization independent of the jobs level. *)
let bytes_for ?store ~seed ~name ~spec ~run format =
  let spec_string = Provgen.spec_to_string spec in
  let key () =
    Artifact_store.generated_input_key ~generator ~spec:spec_string ~seed ~run
      ~format:(format_name format)
  in
  match store with
  | None ->
      let g = Provgen.generate ~run ~seed spec in
      (render format ~name ~run g, Graph.node_count g, Graph.edge_count g)
  | Some st -> (
      let key = key () in
      match Artifact_store.read st ~stage:"corpus" ~key with
      | Some payload -> (
          (* Stored alongside the bytes so a warm replay still fills the
             manifest counts: "<nodes> <edges>\n<bytes>". *)
          match String.index_opt payload '\n' with
          | Some nl when (match String.split_on_char ' ' (String.sub payload 0 nl) with
                         | [ a; b ] -> int_of_string_opt a <> None && int_of_string_opt b <> None
                         | _ -> false) ->
              Artifact_store.record st ~stage:"corpus" ~key ~hit:true;
              let header = String.sub payload 0 nl in
              let nodes, edges =
                match String.split_on_char ' ' header with
                | [ a; b ] -> (int_of_string a, int_of_string b)
                | _ -> assert false
              in
              (String.sub payload (nl + 1) (String.length payload - nl - 1), nodes, edges)
          | _ ->
              Artifact_store.record st ~stage:"corpus" ~key ~hit:false;
              let g = Provgen.generate ~run ~seed spec in
              (render format ~name ~run g, Graph.node_count g, Graph.edge_count g))
      | None ->
          Artifact_store.record st ~stage:"corpus" ~key ~hit:false;
          let g = Provgen.generate ~run ~seed spec in
          let bytes = render format ~name ~run g in
          let nodes = Graph.node_count g and edges = Graph.edge_count g in
          Artifact_store.write st ~stage:"corpus" ~key
            (Printf.sprintf "%d %d\n%s" nodes edges bytes);
          (bytes, nodes, edges))

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let manifest_to_json m =
  let open Minijson in
  let entry_json e =
    Json.Object
      [
        ("name", Json.String e.entry_name);
        ("spec", Json.String e.entry_spec);
        ("run", Json.Number (float_of_int e.entry_run));
        ("format", Json.String (format_name e.entry_format));
        ("file", Json.String e.entry_file);
        ("md5", Json.String e.entry_md5);
        ("nodes", Json.Number (float_of_int e.entry_nodes));
        ("edges", Json.Number (float_of_int e.entry_edges));
      ]
  in
  Json.Object
    [
      ("generator", Json.String generator);
      ("tier", Json.String (Provgen.tier_name m.tier));
      ("seed", Json.Number (float_of_int m.seed));
      ("entries", Json.Array (List.map entry_json m.entries));
    ]

let materialize ?(jobs = 1) ?store ?(formats = [ Dot; Provjson ]) ~dir ~seed tier =
  let tier_dir = Filename.concat dir (Provgen.tier_name tier) in
  mkdir_p tier_dir;
  let work =
    List.concat_map
      (fun (name, spec) ->
        List.concat_map (fun run -> List.map (fun fmt -> (name, spec, run, fmt)) formats) runs)
      (Provgen.tier_specs tier)
  in
  let entries =
    Pool.map ~jobs
      (fun (name, spec, run, fmt) ->
        let bytes, nodes, edges = bytes_for ?store ~seed ~name ~spec ~run fmt in
        let file = file_name ~name ~run fmt in
        write_file (Filename.concat tier_dir file) bytes;
        {
          entry_name = name;
          entry_spec = Provgen.spec_to_string spec;
          entry_run = run;
          entry_format = fmt;
          entry_file = file;
          entry_md5 = Digest.to_hex (Digest.string bytes);
          entry_nodes = nodes;
          entry_edges = edges;
        })
      work
  in
  let m = { tier; seed; entries } in
  write_file (Filename.concat tier_dir "MANIFEST.json")
    (Minijson.Json.to_string ~pretty:true (manifest_to_json m) ^ "\n");
  m

let load_manifest ~dir tier =
  let open Minijson in
  let tier_dir = Filename.concat dir (Provgen.tier_name tier) in
  let path = Filename.concat tier_dir "MANIFEST.json" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let json = Json.of_string text in
  let fail fmt = Printf.ksprintf failwith fmt in
  let str j = match j with Json.String s -> s | _ -> fail "manifest: expected string" in
  let int j = match j with Json.Number f when Float.is_integer f -> int_of_float f | _ -> fail "manifest: expected int" in
  let entry j =
    let m k = Json.member k j in
    let fmt =
      match str (m "format") with
      | "dot" -> Dot
      | "provjson" -> Provjson
      | s -> fail "manifest: unknown format %s" s
    in
    {
      entry_name = str (m "name");
      entry_spec = str (m "spec");
      entry_run = int (m "run");
      entry_format = fmt;
      entry_file = str (m "file");
      entry_md5 = str (m "md5");
      entry_nodes = int (m "nodes");
      entry_edges = int (m "edges");
    }
  in
  let tier' =
    match Provgen.tier_of_string (str (Json.member "tier" json)) with
    | Ok t -> t
    | Error e -> fail "manifest: %s" e
  in
  {
    tier = tier';
    seed = int (Json.member "seed" json);
    entries = List.map entry (Json.to_list (Json.member "entries" json));
  }
