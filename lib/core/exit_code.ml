type t = Ok | Unknown_benchmark | Invalid_config | Quarantined | Unavailable

let to_int = function
  | Ok -> 0
  | Unknown_benchmark -> 2
  | Invalid_config -> 2
  | Quarantined -> 3
  | Unavailable -> 4

let label = function
  | Ok -> "ok"
  | Unknown_benchmark -> "unknown-benchmark"
  | Invalid_config -> "invalid-config"
  | Quarantined -> "quarantined"
  | Unavailable -> "unavailable"

let of_results results = if List.exists Result.quarantined results then Quarantined else Ok

let exit code = Stdlib.exit (to_int code)
