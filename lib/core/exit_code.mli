(** Process exit codes as a closed vocabulary.

    The CLI historically scattered bare [exit 2] / [exit 3] literals;
    the serve daemon needs the same vocabulary as structured error
    codes on the wire.  Centralizing the variant means the two can
    never drift: the CLI exits with {!to_int}, the server embeds
    {!label} (and {!to_int}, so a scripted client can [exit] with the
    code the batch CLI would have used). *)

type t =
  | Ok  (** the run completed (degraded results included) *)
  | Unknown_benchmark  (** syscall name not in {!Bench_registry} *)
  | Invalid_config
      (** rejected before any work started: bad [--store], bad output
          directory, malformed request *)
  | Quarantined
      (** the suite completed but at least one benchmark exhausted its
          retry budget (see {!Result.quarantined}) *)
  | Unavailable
      (** a serve request was refused or cut short for transient
          service reasons — queue full, connection cap, idle timeout,
          drain in progress — and is worth retrying; relayed by
          [provmark request] so scripts can tell retryable service
          pressure from hard failures *)

(** [Ok] → 0, [Unknown_benchmark] → 2, [Invalid_config] → 2,
    [Quarantined] → 3, [Unavailable] → 4 — the historical CLI codes
    plus the serve-only retryable class. *)
val to_int : t -> int

(** Stable kebab-case rendering for wire protocols and logs:
    ["ok"], ["unknown-benchmark"], ["invalid-config"],
    ["quarantined"], ["unavailable"]. *)
val label : t -> string

(** [Quarantined] when any result is quarantined, [Ok] otherwise —
    the suite-epilogue classification. *)
val of_results : Result.t list -> t

(** [exit code] is [Stdlib.exit (to_int code)]. *)
val exit : t -> 'a
