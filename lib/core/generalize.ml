open Pgraph

type failure =
  | No_trials
  | No_consistent_pair
  | Alignment_failed of string

let failure_to_string = function
  | No_trials -> "no trial graphs recorded"
  | No_consistent_pair -> "no two trial runs produced similar graphs"
  | Alignment_failed m -> "alignment failed: " ^ m

type outcome = {
  general : Graph.t;
  class_size : int;
  classes : int;
  discarded : int;
}

(* Pre-filtering (the config.ini "filtergraphs" mechanism): keep only
   graphs whose (node count, edge count) signature is the modal one —
   obviously truncated or inflated runs are dropped before the expensive
   similarity classing. *)
let filter_incomplete graphs =
  let signature g = (Graph.node_count g, Graph.edge_count g) in
  let module M = Map.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let counts =
    List.fold_left
      (fun m g -> M.update (signature g) (function None -> Some 1 | Some n -> Some (n + 1)) m)
      M.empty graphs
  in
  let best_sig, _ =
    M.fold (fun s n (bs, bn) -> if n > bn then (s, n) else (bs, bn)) counts ((0, 0), 0)
  in
  List.filter (fun g -> signature g = best_sig) graphs

(* Partition into similarity classes.  With canonicalization enabled
   (and every graph in budget) the classes are exactly the canonical
   digest buckets — similarity is digest equality, no solver confirms
   anything.  Otherwise fingerprints bucket candidates cheaply and the
   exact solver confirms within buckets.  Both paths list classes in
   first-seen order with members in input order, so the choice of path
   never changes the output. *)
let digest_classes graphs digests =
  let classes : (string * Graph.t list ref) list ref = ref [] in
  List.iter2
    (fun g d ->
      let rec place = function
        | [] -> classes := !classes @ [ (d, ref [ g ]) ]
        | (d', members) :: rest ->
            if String.equal d d' then begin
              (* One avoided pairwise check, as the solver path would
                 have confirmed against the class representative. *)
              Gmatch.Engine.canon_skip "similarity";
              members := g :: !members
            end
            else place rest
      in
      place !classes)
    graphs digests;
  List.map (fun (_, members) -> List.rev !members) !classes

let similarity_classes ~backend graphs =
  let digests = if Canon.is_enabled () then List.map Canon.digest graphs else [] in
  if digests <> [] && List.for_all Option.is_some digests then
    digest_classes graphs (List.map Option.get digests)
  else begin
    let classes : (Fingerprint.t * Graph.t list ref) list ref = ref [] in
    List.iter
      (fun g ->
        let fp = Fingerprint.of_graph g in
        let rec place = function
          | [] -> classes := !classes @ [ (fp, ref [ g ]) ]
          | (fp', members) :: rest ->
              if
                Fingerprint.equal fp fp'
                && (match !members with m :: _ -> Gmatch.Engine.similar ~backend g m | [] -> false)
              then members := g :: !members
              else place rest
        in
        place !classes)
      graphs;
    List.map (fun (_, members) -> List.rev !members) !classes
  end

(* Property intersection over the matching: the generalized graph is the
   first graph of the pair with every property that does not agree in
   the second graph removed. *)
let intersect_props g1 g2 (m : Gmatch.Matching.t) =
  let g =
    List.fold_left
      (fun acc (x, y) ->
        match (Graph.find_node g1 x, Graph.find_node g2 y) with
        | Some n1, Some n2 ->
            Graph.set_node_props acc x (Props.intersect n1.Graph.node_props n2.Graph.node_props)
        | _ -> acc)
      g1 m.Gmatch.Matching.node_map
  in
  List.fold_left
    (fun acc (x, y) ->
      match (Graph.find_edge g1 x, Graph.find_edge g2 y) with
      | Some e1, Some e2 ->
          Graph.set_edge_props acc x (Props.intersect e1.Graph.edge_props e2.Graph.edge_props)
      | _ -> acc)
    g m.Gmatch.Matching.edge_map

let generalize ~backend ~filter ~pair_choice graphs =
  match graphs with
  | [] -> Error No_trials
  | _ ->
      let kept = if filter then filter_incomplete graphs else graphs in
      let classes = similarity_classes ~backend kept in
      let eligible = List.filter (fun c -> List.length c >= 2) classes in
      let discarded = List.length graphs - List.length kept
                      + List.length (List.filter (fun c -> List.length c < 2) classes)
      in
      (match eligible with
      | [] -> Error No_consistent_pair
      | _ ->
          let size_of = function g :: _ -> Graph.size g | [] -> 0 in
          let better a b =
            match pair_choice with
            | Config.Smallest -> size_of a <= size_of b
            | Config.Largest -> size_of a >= size_of b
          in
          let chosen =
            List.fold_left (fun best c -> if better c best then c else best) (List.hd eligible)
              (List.tl eligible)
          in
          match chosen with
          | g1 :: g2 :: _ -> (
              match Gmatch.Engine.generalization_matching ~backend g1 g2 with
              | None -> Error (Alignment_failed "similar graphs failed to align")
              | Some m ->
                  Ok
                    {
                      general = intersect_props g1 g2 m;
                      class_size = List.length chosen;
                      classes = List.length classes;
                      discarded;
                    })
          | _ -> Error No_consistent_pair)
