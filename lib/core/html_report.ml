module Recorder = Recorders.Recorder

let esc = Vis.Svg.escape

let style =
  {|<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2, h3 { color: #20496b; }
table.matrix { border-collapse: collapse; margin: 1em 0; }
table.matrix th, table.matrix td { border: 1px solid #bbb; padding: 4px 10px; font-size: 14px; }
table.matrix th { background: #eef3f8; }
td.ok { background: #e6f4e6; }
td.empty { background: #f7f7e8; }
td.failed { background: #f8e6e6; }
figure.graph { display: inline-block; margin: 0.5em; padding: 0.5em;
               border: 1px solid #ddd; border-radius: 6px; vertical-align: top; }
figure.graph figcaption { font-size: 13px; color: #555; margin-bottom: 0.3em; }
details { margin: 0.8em 0; }
summary { cursor: pointer; font-weight: bold; }
.legend span { display: inline-block; padding: 2px 10px; margin-right: 8px;
               border-radius: 4px; font-size: 13px; }
</style>|}

let legend =
  {|<p class="legend">
<span style="background:#a7c7e7">process / activity</span>
<span style="background:#f7e39c">artifact / entity</span>
<span style="background:#c8e6c9">dummy (background attachment)</span>
</p>|}

let status_class (r : Result.t) =
  match r.Result.status with
  | Result.Target _ -> "ok"
  | Result.Empty -> "empty"
  | Result.Failed _ -> "failed"

let cell_text tool (r : Result.t) =
  match Bench_registry.expected tool r.Result.syscall with
  | expected ->
      let suffix = if Bench_registry.matches expected r then "" else " *" in
      (match r.Result.status with
      | Result.Target g when Result.has_disconnected_node g -> "ok (DV)" ^ suffix
      | Result.Target _ -> "ok" ^ suffix
      | Result.Empty -> (
          (match expected with
          | Bench_registry.Empty_nr -> "empty (NR)"
          | Bench_registry.Empty_sc -> "empty (SC)"
          | Bench_registry.Empty_lp -> "empty (LP)"
          | _ -> "empty")
          ^ suffix)
      | Result.Failed _ -> "failed" ^ suffix)
  | exception Not_found -> Result.status_word r

let anchor tool syscall =
  Printf.sprintf "%s-%s" (String.lowercase_ascii (Recorder.tool_name tool)) syscall

let benchmark_section buf tool (r : Result.t) =
  Buffer.add_string buf
    (Printf.sprintf "<details id=\"%s\"><summary>%s / %s — %s</summary>\n"
       (anchor tool r.Result.syscall)
       (esc (Recorder.tool_name tool))
       (esc r.Result.syscall) (esc (Result.summary r)));
  (match r.Result.status with
  | Result.Target g -> Buffer.add_string buf (Vis.Svg.render_titled ~title:"benchmark result" g)
  | Result.Empty ->
      Buffer.add_string buf "<p>Foreground and background were indistinguishable.</p>\n"
  | Result.Failed m -> Buffer.add_string buf (Printf.sprintf "<p>Failed: %s</p>\n" (esc (Result.stage_error_to_string m))));
  (match r.Result.bg_general with
  | Some g when Pgraph.Graph.size g > 0 ->
      Buffer.add_string buf (Vis.Svg.render_titled ~title:"generalized background" g)
  | _ -> ());
  (match r.Result.fg_general with
  | Some g when Pgraph.Graph.size g > 0 ->
      Buffer.add_string buf (Vis.Svg.render_titled ~title:"generalized foreground" g)
  | _ -> ());
  let t = Result.times r in
  Buffer.add_string buf
    (Printf.sprintf
       "<p>recording %.4fs · transformation %.4fs · generalization %.4fs · comparison %.4fs</p>\n"
       t.Result.recording_s t.Result.transformation_s t.Result.generalization_s
       t.Result.comparison_s);
  Buffer.add_string buf "</details>\n"

let render (matrix : Report.matrix) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  Buffer.add_string buf "<title>ProvMark results</title>";
  Buffer.add_string buf style;
  Buffer.add_string buf "</head><body>\n<h1>ProvMark benchmark results</h1>\n";
  Buffer.add_string buf legend;
  (* Matrix with links into the per-benchmark sections. *)
  Buffer.add_string buf "<table class=\"matrix\"><tr><th>Group</th><th>syscall</th>";
  List.iter
    (fun (tool, _) ->
      Buffer.add_string buf (Printf.sprintf "<th>%s</th>" (esc (Recorder.tool_name tool))))
    matrix;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun syscall ->
      Buffer.add_string buf
        (Printf.sprintf "<tr><td>%d</td><td>%s</td>" (Bench_registry.group_of syscall)
           (esc syscall));
      List.iter
        (fun (tool, results) ->
          match
            List.find_opt (fun (r : Result.t) -> r.Result.syscall = syscall) results
          with
          | None -> Buffer.add_string buf "<td>-</td>"
          | Some r ->
              Buffer.add_string buf
                (Printf.sprintf "<td class=\"%s\"><a href=\"#%s\">%s</a></td>" (status_class r)
                   (anchor tool syscall) (esc (cell_text tool r))))
        matrix;
      Buffer.add_string buf "</tr>\n")
    Oskernel.Syscall.all_names;
  Buffer.add_string buf "</table>\n";
  let ok, total = Report.agreement matrix in
  Buffer.add_string buf
    (Printf.sprintf "<p>Agreement with the paper's Table 2: <b>%d/%d</b> cells.</p>\n" ok total);
  Buffer.add_string buf "<h2>Per-benchmark graphs</h2>\n";
  List.iter
    (fun (tool, results) ->
      Buffer.add_string buf (Printf.sprintf "<h3>%s</h3>\n" (esc (Recorder.tool_name tool)));
      List.iter (benchmark_section buf tool) results)
    matrix;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let render_single (r : Result.t) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  Buffer.add_string buf
    (Printf.sprintf "<title>ProvMark: %s / %s</title>" (esc (Recorder.tool_name r.Result.tool))
       (esc r.Result.syscall));
  Buffer.add_string buf style;
  Buffer.add_string buf "</head><body>\n";
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s / %s</h1>\n" (esc (Recorder.tool_name r.Result.tool))
       (esc r.Result.syscall));
  Buffer.add_string buf legend;
  benchmark_section buf r.Result.tool r;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let write_file path html =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc html;
  close_out oc
