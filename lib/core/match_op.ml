type kind = Similar | Generalize | Compare

let kind_of_string = function
  | "similar" -> Ok Similar
  | "generalize" -> Ok Generalize
  | "compare" -> Ok Compare
  | s -> Error (Printf.sprintf "unknown match kind %S (expected similar, generalize or compare)" s)

let kind_to_string = function
  | Similar -> "similar"
  | Generalize -> "generalize"
  | Compare -> "compare"

type format = Dot | Provjson

let format_of_string = function
  | "dot" -> Ok Dot
  | "provjson" -> Ok Provjson
  | s -> Error (Printf.sprintf "unknown graph format %S (expected dot or provjson)" s)

let format_name = function Dot -> "dot" | Provjson -> "provjson"

let format_for_file file = if Filename.check_suffix file ".dot" then Dot else Provjson

let parse_graph format text =
  match
    match format with
    | Dot -> Recorders.Dot.to_pgraph (Recorders.Dot.of_string text)
    | Provjson -> Recorders.Provjson.of_string text
  with
  | g -> Ok g
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e -> Error (Printf.sprintf "graph parse error: %s" (Printexc.to_string e))

(* Witness rendering: sorted mapping lines make the text independent of
   the order the solver emitted matching atoms in. *)
let matching_lines (m : Gmatch.Matching.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  n %s -> %s\n" a b))
    (List.sort compare m.Gmatch.Matching.node_map);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  e %s -> %s\n" a b))
    (List.sort compare m.Gmatch.Matching.edge_map);
  Buffer.contents buf

let run ?backend kind a b =
  match kind with
  | Similar ->
      Printf.sprintf "similar: %s\n" (if Gmatch.Engine.similar ?backend a b then "yes" else "no")
  | Generalize -> (
      match Gmatch.Engine.generalization_matching ?backend a b with
      | None -> "generalize: no (graphs are not similar)\n"
      | Some m ->
          Printf.sprintf "generalize: cost=%d\n%s" m.Gmatch.Matching.cost (matching_lines m))
  | Compare -> (
      match Gmatch.Engine.subgraph_matching ?backend a b with
      | None -> "compare: no (first graph does not embed into the second)\n"
      | Some m -> Printf.sprintf "compare: cost=%d\n%s" m.Gmatch.Matching.cost (matching_lines m))
