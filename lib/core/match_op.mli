(** Stand-alone graph-matching operations over serialized graphs — the
    shared core of the [provmark match] subcommand and the serve
    daemon's [match] requests.

    Both front ends parse the same formats, run the same engine entry
    points and render the same verdict text, so a daemon response is
    byte-identical to the batch CLI's output for the same inputs.  The
    rendering is deterministic: the engine's witnesses are a pure
    function of the pair and the process-wide matching flags, and the
    mapping lines are sorted. *)

type kind =
  | Similar  (** label/structure-preserving bijection exists? *)
  | Generalize  (** optimal bijective matching, minimizing property cost *)
  | Compare  (** optimal embedding of the first graph into the second *)

val kind_of_string : string -> (kind, string) result
val kind_to_string : kind -> string

type format = Dot | Provjson

val format_of_string : string -> (format, string) result
val format_name : format -> string

(** Pick a format from a file name: [".dot"] parses as DOT, everything
    else as PROV-JSON. *)
val format_for_file : string -> format

(** Parse one serialized graph; parse failures come back as a rendered
    message instead of an exception. *)
val parse_graph : format -> string -> (Pgraph.Graph.t, string) result

(** [run kind a b] renders the verdict text: a ["similar: yes|no"]
    line, or a cost line plus sorted [n]/[e] mapping lines for the
    witness-producing kinds. *)
val run : ?backend:Gmatch.Engine.backend -> kind -> Pgraph.Graph.t -> Pgraph.Graph.t -> string
