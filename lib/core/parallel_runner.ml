module Program = Oskernel.Program

(* Per-benchmark seed derivation (FNV-1a over the benchmark name, mixed
   with the configured base seed).  Every benchmark's transient values
   are a pure function of (base seed, benchmark name) — never of the
   position in the suite or of which domain picked the job up — so the
   sequential runner and the parallel runner at any job count produce
   identical results for identical configs. *)
let seed_for ~base name =
  let h = ref 0x811C9DC5 in
  let mix c =
    h := !h lxor c;
    h := !h * 0x01000193 land 0x3FFFFFFF
  in
  String.iter (fun c -> mix (Char.code c)) name;
  List.iter mix [ base land 0xFF; (base lsr 8) land 0xFF; (base lsr 16) land 0xFF ];
  (!h land 0xFFFFF) + 1

let config_for config (prog : Program.t) =
  { config with Config.seed = seed_for ~base:config.Config.seed prog.Program.name }

let run_all_sequential ?on_result config progs =
  List.map
    (fun prog ->
      let r = Runner.run (config_for config prog) prog in
      Option.iter (fun f -> f r) on_result;
      r)
    progs

(* Like [Pool.map], but the batch pool is also installed as the
   pipeline's pair pool for its lifetime, so idle domains pick up the
   intra-benchmark bg/fg pairs ({!Pipeline.set_pair_pool}) — useful
   exactly when the suite has fewer runnable benchmarks than domains.
   Submit everything first, await in submission order: result order is
   input order regardless of completion order. *)
(* Segment solves are help-queue jobs for the same reason bg/fg pairs
   are: small intra-benchmark pieces the submitter waits on.  The first
   thunk runs on the calling domain while the rest sit in the help
   queue, so waiting is deadlock-free at any pool size. *)
let segment_runner pool thunks =
  match thunks with
  | [] -> ()
  | first :: rest ->
      let promises = List.map (fun t -> Pool.async ~help:true pool t) rest in
      first ();
      List.iter (fun p -> Pool.await_or_help pool p) promises

let map_batch ~jobs f xs =
  let pool = Pool.create ~size:jobs in
  Pipeline.set_pair_pool (Some pool);
  Gmatch.Engine.set_segment_runner (Some (segment_runner pool));
  Fun.protect
    ~finally:(fun () ->
      Pipeline.set_pair_pool None;
      Gmatch.Engine.set_segment_runner None;
      Pool.shutdown pool)
    (fun () ->
      let promises = List.map (fun x -> Pool.async pool (fun () -> f x)) xs in
      List.map Pool.await promises)

let run_all ?(jobs = 1) ?on_result config progs =
  map_batch ~jobs
    (fun prog ->
      let r = Runner.run (config_for config prog) prog in
      Option.iter (fun f -> f r) on_result;
      r)
    progs

let run_registry ?jobs ?on_result config = run_all ?jobs ?on_result config Bench_registry.all

let run_matrix ?(jobs = 1) ?on_result configs =
  (* One flat task list across every (tool, benchmark) cell keeps all
     domains busy even when one tool's column is slower than another's;
     the merge then regroups per config, benchmarks in registry order. *)
  let tasks =
    List.concat_map (fun config -> List.map (fun p -> (config, p)) Bench_registry.all) configs
  in
  let results =
    map_batch ~jobs
      (fun (config, prog) ->
        let r = Runner.run (config_for config prog) prog in
        Option.iter (fun f -> f r) on_result;
        r)
      tasks
  in
  let rec split n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let a, b = split (n - 1) rest in
          (x :: a, b)
  in
  let per_tool = List.length Bench_registry.all in
  let rec regroup configs results =
    match configs with
    | [] -> []
    | config :: rest ->
        let mine, others = split per_tool results in
        (config.Config.tool, mine) :: regroup rest others
  in
  regroup configs results
