(** Parallel suite execution on OCaml 5 domains.

    ProvMark's pipeline is embarrassingly parallel across benchmarks:
    each run is a pure function of (config, benchmark), so the registry
    fans out over a {!Pool} and the results merge back in registry
    order.  Determinism is guaranteed by {!seed_for}: every benchmark's
    effective seed depends only on the configured base seed and the
    benchmark name, never on scheduling, so output is byte-identical to
    the sequential path for the same config — asserted for j = 1, 2, 4
    by the determinism test suite.

    The [on_result] callbacks exist for progress reporting; they run on
    the worker domain that finished the benchmark (in completion order,
    not registry order), so they must be thread-safe.

    When [config.store] is set, all workers share the one
    {!Artifact_store.t}: its counters are mutex-protected and writes
    are atomic rename, and since cache keys determine content, the
    worst concurrent case is two domains computing the same artifact
    once each — results stay byte-identical at every job count. *)

(** Deterministic per-benchmark seed: FNV-1a over the benchmark name
    mixed with the base seed, folded to a small positive int. *)
val seed_for : base:int -> string -> int

(** The effective config a benchmark runs under: the given config with
    its seed replaced by [seed_for ~base:config.seed name]. *)
val config_for : Config.t -> Oskernel.Program.t -> Config.t

(** Reference implementation: {!Runner.run} over the list, in order, on
    the calling domain.  [run_all] with any job count must produce equal
    results. *)
val run_all_sequential :
  ?on_result:(Result.t -> unit) -> Config.t -> Oskernel.Program.t list -> Result.t list

(** [run_all ~jobs config progs] fans the benchmarks over a pool of
    [jobs] domains; results come back in input order. *)
val run_all :
  ?jobs:int ->
  ?on_result:(Result.t -> unit) ->
  Config.t ->
  Oskernel.Program.t list ->
  Result.t list

(** The full registry (Table 2 order). *)
val run_registry : ?jobs:int -> ?on_result:(Result.t -> unit) -> Config.t -> Result.t list

(** [run_matrix ~jobs configs] runs the full registry under every config
    through one shared pool — the (tool, benchmark) cells form a single
    flat task list, so slow columns do not serialize the suite — and
    regroups the results per tool in registry order, ready for
    {!Report.validation_matrix}. *)
val run_matrix :
  ?jobs:int -> ?on_result:(Result.t -> unit) -> Config.t list -> Report.matrix
