module J = Minijson.Json
module Program = Oskernel.Program

type recorder =
  Config.t -> Program.t -> Recording.recorded list * Recording.recorded list

type outcome = {
  status : Result.status;
  bg_general : Pgraph.Graph.t option;
  fg_general : Pgraph.Graph.t option;
  degraded : string list;
}

(* ------------------------------------------------------------------ *)
(* Program digest                                                      *)

let program_text (p : Program.t) =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "name=%s@.syscall=%s@." p.Program.name p.Program.syscall;
  List.iter
    (fun (f : Program.staged_file) ->
      Format.fprintf fmt "staged=%s mode=%o uid=%d gid=%d kind=%s@." f.Program.sf_path
        f.Program.sf_mode f.Program.sf_uid f.Program.sf_gid
        (match f.Program.sf_kind with `File -> "file" | `Fifo -> "fifo"))
    p.Program.staging;
  (match p.Program.cred with
  | None -> ()
  | Some c -> Format.fprintf fmt "cred=%a@." Oskernel.Cred.pp c);
  List.iter (fun s -> Format.fprintf fmt "setup %a@." Oskernel.Syscall.pp s) p.Program.setup;
  List.iter (fun s -> Format.fprintf fmt "target %a@." Oskernel.Syscall.pp s) p.Program.target;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let program_digest p = Artifact_store.digest (program_text p)

(* ------------------------------------------------------------------ *)
(* Artifact encodings                                                  *)

exception Decode of string

let decode_fail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt

let int_j n = J.Number (float_of_int n)

let reason_to_json = function
  | Result.Malformed_output m -> ("malformed_output", Some m)
  | Result.No_trials -> ("no_trials", None)
  | Result.No_consistent_pair -> ("no_consistent_pair", None)
  | Result.Alignment_failed m -> ("alignment_failed", Some m)
  | Result.Background_not_embeddable -> ("not_embeddable", None)
  | Result.Stage_exception m -> ("exception", Some m)
  | Result.Deadline_exceeded b -> ("deadline", Some b)

let reason_of_json kind msg =
  match (kind, msg) with
  | "malformed_output", Some m -> Result.Malformed_output m
  | "no_trials", None -> Result.No_trials
  | "no_consistent_pair", None -> Result.No_consistent_pair
  | "alignment_failed", Some m -> Result.Alignment_failed m
  | "not_embeddable", None -> Result.Background_not_embeddable
  | "exception", Some m -> Result.Stage_exception m
  | "deadline", Some b -> Result.Deadline_exceeded b
  | k, _ -> decode_fail "unknown failure reason %S" k

let error_to_json (e : Result.stage_error) =
  let kind, msg = reason_to_json e.Result.reason in
  J.Object
    [
      ("stage", J.String e.Result.stage);
      ("variant", match e.Result.variant with None -> J.Null | Some v -> J.String v);
      ("reason", J.String kind);
      ("msg", match msg with None -> J.Null | Some m -> J.String m);
    ]

let error_of_json j =
  {
    Result.stage = J.to_str (J.member "stage" j);
    variant =
      (match J.member "variant" j with J.Null -> None | v -> Some (J.to_str v));
    reason =
      reason_of_json
        (J.to_str (J.member "reason" j))
        (match J.member "msg" j with J.Null -> None | m -> Some (J.to_str m));
  }

(* Every artifact is a one-member object: {"ok": <value>} or
   {"err": <stage_error>} — failures cache like successes, so a
   deterministically failing stage replays warm too. *)
let wrap value_to_json = function
  | Ok v -> J.to_string (J.Object [ ("ok", value_to_json v) ])
  | Error e -> J.to_string (J.Object [ ("err", error_to_json e) ])

let unwrap value_of_json s =
  match J.of_string s with
  | exception J.Parse_error m -> raise (Decode m)
  | j ->
      if J.mem "ok" j then Ok (value_of_json (J.member "ok" j))
      else if J.mem "err" j then Error (error_of_json (J.member "err" j))
      else decode_fail "artifact is neither ok nor err"

let output_to_json = function
  | Recorders.Recorder.Dot_text s -> J.Object [ ("dot", J.String s) ]
  | Recorders.Recorder.Store_dump s -> J.Object [ ("store", J.String s) ]
  | Recorders.Recorder.Prov_json s -> J.Object [ ("prov", J.String s) ]

let output_of_json j =
  match J.to_assoc j with
  | [ ("dot", J.String s) ] -> Recorders.Recorder.Dot_text s
  | [ ("store", J.String s) ] -> Recorders.Recorder.Store_dump s
  | [ ("prov", J.String s) ] -> Recorders.Recorder.Prov_json s
  | _ -> decode_fail "bad recorder output"

(* Each record carries its own variant tag: the bg/fg grouping reflects
   which list it came from, but injected recorders may (and tests do)
   put, say, Background-tagged records in the foreground list. *)
let recorded_to_json (r : Recording.recorded) =
  J.Object
    [
      ( "variant",
        J.String
          (match r.Recording.variant with Program.Background -> "bg" | Program.Foreground -> "fg")
      );
      ("trial", int_j r.Recording.trial);
      ("run_id", int_j r.Recording.run_id);
      ("output", output_to_json r.Recording.output);
    ]

let recorded_of_json j =
  {
    Recording.variant =
      (match J.to_str (J.member "variant" j) with
      | "bg" -> Program.Background
      | "fg" -> Program.Foreground
      | v -> decode_fail "unknown variant %S" v);
    trial = J.to_int (J.member "trial" j);
    run_id = J.to_int (J.member "run_id" j);
    output = output_of_json (J.member "output" j);
  }

let recordings_to_json (bg, fg) =
  J.Object
    [
      ("bg", J.Array (List.map recorded_to_json bg));
      ("fg", J.Array (List.map recorded_to_json fg));
    ]

let recordings_of_json j =
  ( List.map recorded_of_json (J.to_list (J.member "bg" j)),
    List.map recorded_of_json (J.to_list (J.member "fg" j)) )

let graph_to_json g = J.String (Datalog.Encode.graph_to_string ~gid:"d" g)

let graph_of_json j =
  match Datalog.Encode.graph_of_string ~gid:"d" (J.to_str j) with
  | g -> g
  | exception Datalog.Encode.Decode_error m -> raise (Decode m)

let graphs_to_json (bg, fg) =
  J.Object
    [ ("bg", J.Array (List.map graph_to_json bg)); ("fg", J.Array (List.map graph_to_json fg)) ]

let graphs_of_json j =
  ( List.map graph_of_json (J.to_list (J.member "bg" j)),
    List.map graph_of_json (J.to_list (J.member "fg" j)) )

let gen_outcome_to_json (o : Generalize.outcome) =
  J.Object
    [
      ("general", graph_to_json o.Generalize.general);
      ("class_size", int_j o.Generalize.class_size);
      ("classes", int_j o.Generalize.classes);
      ("discarded", int_j o.Generalize.discarded);
    ]

let gen_outcome_of_json j =
  {
    Generalize.general = graph_of_json (J.member "general" j);
    class_size = J.to_int (J.member "class_size" j);
    classes = J.to_int (J.member "classes" j);
    discarded = J.to_int (J.member "discarded" j);
  }

(* Stages whose compute may gracefully degrade (ASP step-limit →
   VF2 fallback) carry their degradation notes inside the artifact:
   a warm replay of a degraded stage reports the same reduced
   guarantees as the cold run that produced it. *)
let noted_to_json value_to_json (v, notes) =
  J.Object
    [
      ("value", value_to_json v);
      ("degraded", J.Array (List.map (fun n -> J.String n) notes));
    ]

let noted_of_json value_of_json j =
  ( value_of_json (J.member "value" j),
    List.map J.to_str (J.to_list (J.member "degraded" j)) )

(* Engine degradation notes are per-domain; draining before the compute
   discards anything a previous stage on this domain left behind, so
   the post-compute drain is exactly this stage's notes. *)
let with_notes f =
  ignore (Gmatch.Engine.drain_notes ());
  match f () with
  | Ok v -> Ok (v, Gmatch.Engine.drain_notes ())
  | Error e -> Error e

type compared = Similar | Target of Compare.outcome

let compared_to_json = function
  | Similar -> J.Object [ ("similar", J.Bool true) ]
  | Target o ->
      J.Object
        [
          ("target", graph_to_json o.Compare.target);
          ("cost", int_j o.Compare.matching_cost);
        ]

let compared_of_json j =
  if J.mem "similar" j then Similar
  else
    Target
      {
        Compare.target = graph_of_json (J.member "target" j);
        matching_cost = J.to_int (J.member "cost" j);
      }

(* ------------------------------------------------------------------ *)
(* The four stages                                                     *)

let recording_stage (record : recorder) : (Config.t * Program.t, _) Stage.t =
  {
    Stage.name = "recording";
    run = (fun _ctx (config, prog) -> Ok (record config prog));
    encode = wrap recordings_to_json;
    decode = unwrap recordings_of_json;
  }

let transformation_stage : (Recording.recorded list * Recording.recorded list, _) Stage.t =
  {
    Stage.name = "transformation";
    run =
      (fun _ctx (bg_recs, fg_recs) ->
        match (Transform.batch bg_recs, Transform.batch fg_recs) with
        | graphs -> Ok graphs
        | exception Transform.Transform_error m ->
            Error
              { Result.stage = "transformation"; variant = None; reason = Result.Malformed_output m });
    encode = wrap graphs_to_json;
    decode = unwrap graphs_of_json;
  }

let generalization_failure variant f =
  let reason =
    match f with
    | Generalize.No_trials -> Result.No_trials
    | Generalize.No_consistent_pair -> Result.No_consistent_pair
    | Generalize.Alignment_failed m -> Result.Alignment_failed m
  in
  { Result.stage = "generalization"; variant = Some variant; reason }

let generalization_stage config ~variant :
    (Pgraph.Graph.t list, Generalize.outcome * string list) Stage.t =
  {
    Stage.name = "generalization";
    run =
      (fun _ctx graphs ->
        with_notes (fun () ->
            match
              Generalize.generalize ~backend:config.Config.backend
                ~filter:config.Config.filter_graphs ~pair_choice:config.Config.pair_choice graphs
            with
            | Ok o -> Ok o
            | Error f -> Error (generalization_failure variant f)));
    encode = wrap (noted_to_json gen_outcome_to_json);
    decode = unwrap (noted_of_json gen_outcome_of_json);
  }

let comparison_stage config : (Pgraph.Graph.t * Pgraph.Graph.t, compared * string list) Stage.t =
  {
    Stage.name = "comparison";
    run =
      (fun _ctx (bg, fg) ->
        with_notes (fun () ->
            if Gmatch.Engine.similar ~backend:config.Config.backend bg fg then Ok Similar
            else
              match Compare.compare ~backend:config.Config.backend ~bg ~fg with
              | Ok o -> Ok (Target o)
              | Error Compare.Background_not_embeddable ->
                  Error
                    {
                      Result.stage = "comparison";
                      variant = None;
                      reason = Result.Background_not_embeddable;
                    }));
    encode = wrap (noted_to_json compared_to_json);
    decode = unwrap (noted_of_json compared_of_json);
  }

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)

let json_digest to_json v = Artifact_store.digest (J.to_string (to_json v))

let graphs_digest graphs =
  Artifact_store.digest
    (String.concat "\x00" (List.map Artifact_store.canonical_graph_digest graphs))

(* ------------------------------------------------------------------ *)
(* Pair-parallelism                                                    *)

(* The suite runner installs its worker pool here; the two
   generalization variants (and the canonical-digest prework of the
   comparison stage) then run as a help-queue pair on it.  Results
   come back in fixed (a, b) order and the branch spans are grafted
   a-then-b, so the output is byte-identical to a sequential run at
   any job count.  Degradation notes stay correct too: each side's
   [with_notes] drains wholly within its own job on one domain. *)
let pair_pool : Pool.t option Atomic.t = Atomic.make None
let set_pair_pool p = Atomic.set pair_pool p

let both ~ctx fa fb =
  match Atomic.get pair_pool with
  | None ->
      let a = fa ctx in
      let b = fb ctx in
      (a, b)
  | Some pool ->
      let ca = Trace_span.branch () and cb = Trace_span.branch () in
      let r = Pool.run_pair pool (fun () -> fa ca) (fun () -> fb cb) in
      Trace_span.graft ca ~into:ctx;
      Trace_span.graft cb ~into:ctx;
      r

(* Degradation notes accumulate in stage order, each prefixed with
   where it happened; duplicates (e.g. the same fallback in both
   variants' artifacts) collapse to the first occurrence. *)
let merge_notes chunks =
  List.fold_left
    (fun acc (where, notes) ->
      List.fold_left
        (fun acc n ->
          let entry = where ^ ": " ^ n in
          if List.mem entry acc then acc else acc @ [ entry ])
        acc notes)
    [] chunks

let run_once ~record ~ctx session prog =
  let config = Session.config session in
  let store = config.Config.store in
  let deadline_s = config.Config.deadline_s in
  (* Recordings from an injected recorder must not poison the shared
     cache (nor be served from it): only the real recorder is keyed. *)
  let rec_store = if record == Recording.record_all then store else None in
  let d_prog = program_digest prog in
  let fail ?(bg = None) ?(fg = None) ?(degraded = []) e =
    { status = Result.Failed e; bg_general = bg; fg_general = fg; degraded }
  in
  match
    Stage.execute ?store:rec_store ?deadline_s ~ctx
      ~fingerprint:(Config.recording_fingerprint config) ~inputs:[ d_prog ]
      (recording_stage record) (config, prog)
  with
  | Error e -> fail e
  | Ok recs -> (
      let d_recs = json_digest recordings_to_json recs in
      match
        Stage.execute ?store ?deadline_s ~ctx ~fingerprint:"" ~inputs:[ d_recs ]
          transformation_stage recs
      with
      | Error e -> fail e
      | Ok (bg_graphs, fg_graphs) -> (
          let gen_fp = Config.generalization_fingerprint config in
          let generalize variant graphs gctx =
            Stage.execute ?store ?deadline_s ~ctx:gctx ~fingerprint:gen_fp
              ~inputs:[ variant; graphs_digest graphs ]
              (generalization_stage config ~variant)
              graphs
          in
          (* Both variants always run (matching the pre-staged pipeline,
             and keeping the foreground artifact warm even when the
             background fails first) — in parallel when a pair pool is
             installed. *)
          let bg_out, fg_out =
            both ~ctx (generalize "background" bg_graphs) (generalize "foreground" fg_graphs)
          in
          let gen_notes out_opt variant =
            match out_opt with Ok (_, notes) -> [ (variant, notes) ] | Error _ -> []
          in
          let notes_so_far =
            merge_notes (gen_notes bg_out "background" @ gen_notes fg_out "foreground")
          in
          match (bg_out, fg_out) with
          | Error e, _ | _, Error e -> fail ~degraded:notes_so_far e
          | Ok (bg, bg_notes), Ok (fg, fg_notes) -> (
              let bg_g = bg.Generalize.general and fg_g = fg.Generalize.general in
              let bg_general = Some bg_g and fg_general = Some fg_g in
              let degraded_with cmp_notes =
                merge_notes
                  [
                    ("background", bg_notes);
                    ("foreground", fg_notes);
                    ("comparison", cmp_notes);
                  ]
              in
              (* Canonicalizing the two generalized graphs is the
                 expensive prefix of the comparison key (and primes the
                 form cache for the stage itself), so it pairs too. *)
              let d_bg, d_fg =
                both ~ctx
                  (fun _ -> Artifact_store.canonical_graph_digest bg_g)
                  (fun _ -> Artifact_store.canonical_graph_digest fg_g)
              in
              match
                Stage.execute ?store ?deadline_s ~ctx
                  ~fingerprint:(Config.comparison_fingerprint config)
                  ~inputs:[ d_bg; d_fg ] (comparison_stage config) (bg_g, fg_g)
              with
              | Error e -> fail ~bg:bg_general ~fg:fg_general ~degraded:(degraded_with []) e
              | Ok (Similar, cmp_notes) ->
                  {
                    status = Result.Empty;
                    bg_general;
                    fg_general;
                    degraded = degraded_with cmp_notes;
                  }
              | Ok (Target o, cmp_notes) ->
                  let target = o.Compare.target in
                  let status =
                    if Pgraph.Graph.size target = 0 then Result.Empty
                    else Result.Target target
                  in
                  { status; bg_general; fg_general; degraded = degraded_with cmp_notes })))
