(** The four ProvMark stages composed as a typed dataflow (paper
    Sections 3.2–3.5): recording → transformation → generalization
    (per variant) → comparison.

    Each stage is a {!Stage.t} value, so one attempt of the pipeline is
    a chain of {!Stage.execute} calls threading a trace context and an
    optional {!Artifact_store.t}.  Cache keys chain digests:

    {v
    program text ─d_prog─▶ recording ─d_recs─▶ transformation
      ─d_graphs(variant)─▶ generalization ─graph digest─▶ comparison
    v}

    together with the per-stage configuration fingerprints from
    {!Config}.  Editing a benchmark therefore invalidates exactly its
    own chain; flipping a knob (say [backend]) re-keys only the stages
    that read it and everything downstream. *)

(** The recording stage as a function, so tests can swap
    {!Recording.record_all} for an instrumented or deliberately flaky
    recorder and exercise the retry policy directly.  The store is
    consulted for the recording stage only when the recorder is
    (physically) {!Recording.record_all} — cached artifacts of an
    injected recorder would poison later real runs. *)
type recorder =
  Config.t -> Oskernel.Program.t -> Recording.recorded list * Recording.recorded list

(** What one attempt produces; {!Runner} wraps this into a {!Result.t}
    with the span tree and retry bookkeeping. *)
type outcome = {
  status : Result.status;
  bg_general : Pgraph.Graph.t option;
  fg_general : Pgraph.Graph.t option;
  degraded : string list;
      (** degradation notes in stage order, each prefixed with where it
          happened ("background"/"foreground"/"comparison"), dedup'd.
          Notes ride inside the generalization/comparison artifacts, so
          a warm replay of a degraded stage reports the same reduced
          guarantees as the cold run that computed it. *)
}

(** Canonical digest of everything a benchmark program contributes to
    its recordings: name, syscall, staging, credentials, setup and
    target bodies.  The root of each benchmark's cache-key chain. *)
val program_digest : Oskernel.Program.t -> string

(** [set_pair_pool (Some pool)] makes every subsequent {!run_once} run
    its background/foreground generalization pair (and the comparison
    stage's canonical-digest prework) as a help-queue pair on [pool]
    (see {!Pool.run_pair}); [None] (the default) runs them
    sequentially.  Either way, results are consumed in the fixed
    bg-then-fg order and the two branches' spans are grafted back in
    that order, so run output is byte-identical at any [-j].  The
    parallel suite runner installs its own pool here for the duration
    of a batch. *)
val set_pair_pool : Pool.t option -> unit

(** [run_once ~record ~ctx session prog] executes the four stages once
    inside [ctx] (one child span per stage execution, tagged with cache
    disposition), under the session's config: consulting its [store]
    when present and enforcing its [deadline_s] per stage when set.
    The session is the per-run value — everything shared between
    concurrent runs (ASP memo, canon cache, the store itself) lives
    behind its own lock, never here. *)
val run_once :
  record:recorder -> ctx:Trace_span.ctx -> Session.t -> Oskernel.Program.t -> outcome
