(* Fixed-size pool of OCaml 5 domains draining a shared work queue.

   Domains are expensive to spawn (each carries its own minor heap), so
   the suite runner creates one pool per batch rather than one domain
   per benchmark.  Jobs are closures; each runs in isolation on some
   worker domain, and anything it raises is captured in its promise and
   re-raised (with the original backtrace) at [await] time in the
   submitting domain — a crashing benchmark cannot take a worker down or
   get lost silently. *)

type job = unit -> unit

(* [help] holds jobs a submitter is willing to run itself while it
   blocks on their siblings ({!run_pair}): workers prefer them so the
   small intra-benchmark pieces never starve behind queued benchmarks,
   and [await_or_help] pops *only* them — helping must never pull a
   whole nested benchmark onto the waiter's stack. *)
type t = {
  mutex : Mutex.t;
  work : Condition.t;
  queue : job Queue.t;
  help : job Queue.t;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
}

type 'a state =
  | Pending
  | Resolved of 'a
  | Rejected of exn * Printexc.raw_backtrace

type 'a promise = {
  p_mutex : Mutex.t;
  p_done : Condition.t;
  mutable state : 'a state;
}

let size t = List.length t.domains

let create ~size:n =
  let n = max 1 n in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      help = Queue.create ();
      shutting_down = false;
      domains = [];
    }
  in
  let worker () =
    let rec next () =
      if not (Queue.is_empty t.help) then Some (Queue.pop t.help)
      else if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.shutting_down then None
      else begin
        Condition.wait t.work t.mutex;
        next ()
      end
    in
    let rec loop () =
      Mutex.lock t.mutex;
      let job = next () in
      Mutex.unlock t.mutex;
      match job with
      | None -> ()
      | Some job ->
          job ();
          loop ()
    in
    loop ()
  in
  t.domains <- List.init n (fun _ -> Domain.spawn worker);
  t

let async ?(help = false) t f =
  let p = { p_mutex = Mutex.create (); p_done = Condition.create (); state = Pending } in
  let job () =
    let outcome =
      match f () with
      | v -> Resolved v
      | exception e -> Rejected (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.p_mutex;
    p.state <- outcome;
    Condition.broadcast p.p_done;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.async: pool is shut down"
  end;
  Queue.push job (if help then t.help else t.queue);
  Condition.signal t.work;
  Mutex.unlock t.mutex;
  p

let await p =
  Mutex.lock p.p_mutex;
  while p.state = Pending do
    Condition.wait p.p_done p.p_mutex
  done;
  let s = p.state in
  Mutex.unlock p.p_mutex;
  match s with
  | Resolved v -> v
  | Rejected (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let is_pending p =
  Mutex.lock p.p_mutex;
  let pending = p.state = Pending in
  Mutex.unlock p.p_mutex;
  pending

let try_help t =
  Mutex.lock t.mutex;
  let job = if Queue.is_empty t.help then None else Some (Queue.pop t.help) in
  Mutex.unlock t.mutex;
  match job with
  | None -> false
  | Some job ->
      job ();
      true

(* Blocking on a promise while help jobs wait would deadlock a pool of
   size 1 (the only worker is the one waiting), so drain help jobs
   first.  Once the help queue is empty, any pending promise's job is
   already running on some other domain and blocking is safe. *)
let await_or_help t p =
  while is_pending p && try_help t do
    ()
  done;
  await p

let run_pair t fa fb =
  let pb = async ~help:true t fb in
  let a = fa () in
  (a, await_or_help t pb)

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let map ~jobs f xs =
  let pool = create ~size:jobs in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      (* Submit everything first, then collect in submission order: the
         result list order is the input order regardless of which domain
         finishes first. *)
      let promises = List.map (fun x -> async pool (fun () -> f x)) xs in
      List.map await promises)
