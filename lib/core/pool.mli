(** Fixed-size pool of OCaml 5 domains with a shared work queue.

    The parallel suite runner fans benchmarks out over a pool; each job
    runs isolated on a worker domain, with exceptions captured per job
    and re-raised at {!await} in the submitting domain. *)

type t

type 'a promise

(** [create ~size] spawns [max 1 size] worker domains. *)
val create : size:int -> t

(** Number of worker domains (0 after {!shutdown}). *)
val size : t -> int

(** [async pool f] queues [f] and returns its promise.  With
    [~help:true] the job goes to a separate help queue that workers
    prefer and that {!await_or_help} is allowed to drain — use it for
    small intra-benchmark pieces whose submitter will wait on them,
    never for whole benchmarks.  Raises [Invalid_argument] after
    {!shutdown}. *)
val async : ?help:bool -> t -> (unit -> 'a) -> 'a promise

(** [await p] blocks until the job finishes.  If the job raised, the
    exception is re-raised here with its original backtrace. *)
val await : 'a promise -> 'a

(** [await_or_help pool p] is {!await}, except that while [p] is
    pending it runs queued help jobs on the calling domain.  This makes
    waiting on a help job deadlock-free at any pool size: either some
    domain is already running [p]'s job (blocking is safe) or the job
    is still in the help queue (the caller eventually pops it).  Only
    help jobs are stolen, so the waiter's stack gains at most the
    nesting depth of paired work, never a whole queued benchmark. *)
val await_or_help : t -> 'a promise -> 'a

(** [run_pair pool fa fb] evaluates the two thunks, potentially in
    parallel: [fb] is submitted as a help job, [fa] runs on the calling
    domain, and [fb]'s result is collected with {!await_or_help}.
    Exceptions from either side re-raise in the caller ([fa]'s first —
    it runs to completion before [fb] is awaited). *)
val run_pair : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** Drain the queue, then stop and join every worker.  Idempotent in
    effect; jobs already queued still run. *)
val shutdown : t -> unit

(** [map ~jobs f xs] runs [f] over [xs] on a temporary pool of [jobs]
    domains and returns the results in input order (the completion order
    does not matter).  The first captured exception, if any, is
    re-raised after the pool is shut down. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
