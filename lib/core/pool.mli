(** Fixed-size pool of OCaml 5 domains with a shared work queue.

    The parallel suite runner fans benchmarks out over a pool; each job
    runs isolated on a worker domain, with exceptions captured per job
    and re-raised at {!await} in the submitting domain. *)

type t

type 'a promise

(** [create ~size] spawns [max 1 size] worker domains. *)
val create : size:int -> t

(** Number of worker domains (0 after {!shutdown}). *)
val size : t -> int

(** [async pool f] queues [f] and returns its promise.  Raises
    [Invalid_argument] after {!shutdown}. *)
val async : t -> (unit -> 'a) -> 'a promise

(** [await p] blocks until the job finishes.  If the job raised, the
    exception is re-raised here with its original backtrace. *)
val await : 'a promise -> 'a

(** Drain the queue, then stop and join every worker.  Idempotent in
    effect; jobs already queued still run. *)
val shutdown : t -> unit

(** [map ~jobs f xs] runs [f] over [xs] on a temporary pool of [jobs]
    domains and returns the results in input order (the completion order
    does not matter).  The first captured exception, if any, is
    re-raised after the pool is shut down. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
