module Program = Oskernel.Program
module Kernel = Oskernel.Kernel
module Prng = Oskernel.Prng
module Recorder = Recorders.Recorder

type recorded = {
  variant : Program.variant;
  trial : int;
  run_id : int;
  output : Recorder.output;
}

let hash_name name =
  (* Stable small hash so different benchmarks get unrelated run ids. *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xFFFFFF) name;
  !h

let run_id_of config (prog : Program.t) variant trial =
  let v = match variant with Program.Background -> 0 | Program.Foreground -> 1 in
  (config.Config.seed * 1_000_000) + (hash_name prog.Program.name * 64) + (trial * 2) + v

(* Fault tap: perturb the serialized recorder output exactly the way
   real capture tools fail — truncated graphs, torn reads, dropped or
   repeated rows.  The site names (tool, benchmark, variant, trial,
   run id), all pure functions of the config, so a retry's perturbed
   seed lands on a fresh site and the fault plan stays deterministic
   at any [-j]. *)
let fault_site config (prog : Program.t) variant ~trial ~run_id =
  Printf.sprintf "recorder:%s:%s:%s:%d:%d"
    (Recorder.tool_name config.Config.tool)
    prog.Program.name
    (match variant with Program.Background -> "bg" | Program.Foreground -> "fg")
    trial run_id

let inject_fault config prog variant ~trial ~run_id output =
  match Faults.Injector.plan () with
  | None -> output
  | Some plan -> (
      let site = fault_site config prog variant ~trial ~run_id in
      match Faults.Injector.recorder_fault ~site with
      | None -> output
      | Some kind ->
          let apply = Faults.Injector.perturb plan ~site kind in
          (match output with
          | Recorder.Dot_text s -> Recorder.Dot_text (apply s)
          | Recorder.Store_dump s -> Recorder.Store_dump (apply s)
          | Recorder.Prov_json s -> Recorder.Prov_json (apply s)))

let record_one config (prog : Program.t) variant ~trial ~session =
  let run_id = run_id_of config prog variant trial in
  let trace = Kernel.run ~run_id prog variant in
  let flake = Prng.create ~seed:(Int64.of_int ((run_id * 31) + 7)) in
  let flaky = Prng.float flake < config.Config.flakiness in
  let output =
    match config.Config.tool with
    | Recorder.Spade ->
        (* SPADE occasionally gets stopped before its graph generation
           finishes, yielding a truncated graph (Section 3.2). *)
        let truncate_edges = if flaky then 1 + Prng.int flake 6 else 0 in
        Recorder.Dot_text (Recorders.Spade.record ~config:config.Config.spade ~truncate_edges trace)
    | Recorder.Opus ->
        (* OPUS runs are stable; the cost is in the database. *)
        Recorder.Store_dump
          (Graphstore.Store.dump (Recorders.Opus.record ~config:config.Config.opus trace))
    | Recorder.Camflow ->
        (* CamFlow sometimes shows small structural variations. *)
        let drop_edge_index = if flaky then Some (Prng.int flake 1000) else None in
        Recorder.Prov_json
          (Recorders.Camflow.record ~config:config.Config.camflow ?session ?drop_edge_index trace)
    | Recorder.Spade_camflow ->
        (* The experimental configuration: SPADE vocabulary over the LSM
           stream.  No flakiness: the relay path of the 0.4.5 workaround
           is bypassed. *)
        Recorder.Dot_text (Recorders.Spade_camflow.record trace)
    | Recorder.Spade_neo4j ->
        (* The spn profile: same capture as SPADE, database storage. *)
        let truncate_edges = if flaky then 1 + Prng.int flake 6 else 0 in
        Recorder.Store_dump
          (Graphstore.Store.dump
             (Recorders.Spade.record_to_store ~config:config.Config.spade ~truncate_edges trace))
  in
  let output = inject_fault config prog variant ~trial ~run_id output in
  { variant; trial; run_id; output }

let record_variant config prog variant =
  (* One CamFlow session per variant batch: only relevant when the
     pre-0.4.5 behaviour (reserialize = false) is being reproduced. *)
  let session =
    match config.Config.tool with
    | Recorder.Camflow when not config.Config.camflow.Recorders.Camflow.reserialize ->
        Some (Recorders.Camflow.new_session ())
    | _ -> None
  in
  List.init config.Config.trials (fun trial -> record_one config prog variant ~trial ~session)

let record_all config prog =
  ( record_variant config prog Program.Background,
    record_variant config prog Program.Foreground )
