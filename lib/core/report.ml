module Recorder = Recorders.Recorder

type matrix = (Recorder.tool * Result.t list) list

(* Measured status rendered with the paper's note vocabulary: notes
   (NR/SC/LP/DV) explain *why* a cell is empty or unusual, which is
   curated knowledge — taken from the expected matrix — while the
   ok/empty/failed status is measured. *)
let cell expected (r : Result.t) =
  let measured =
    match r.Result.status with
    | Result.Target g when Result.has_disconnected_node g -> "ok (DV)"
    | Result.Target _ -> (
        match expected with Bench_registry.Ok_sc -> "ok (SC)" | _ -> "ok")
    | Result.Empty -> (
        match expected with
        | Bench_registry.Empty_nr -> "empty (NR)"
        | Bench_registry.Empty_sc -> "empty (SC)"
        | Bench_registry.Empty_lp -> "empty (LP)"
        | _ -> "empty")
    | Result.Failed _ -> "failed"
  in
  let marker = if Bench_registry.matches expected r then "" else " *" in
  let degraded = if r.Result.degraded = [] then "" else " ~" in
  measured ^ marker ^ degraded

let find_result results syscall =
  List.find_opt (fun (r : Result.t) -> String.equal r.Result.syscall syscall) results

let pad width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let validation_matrix (matrix : matrix) =
  let tools = List.map fst matrix in
  let buf = Buffer.create 4096 in
  let width = 14 in
  Buffer.add_string buf (pad 6 "Group");
  Buffer.add_string buf (pad 12 "syscall");
  List.iter (fun t -> Buffer.add_string buf (pad width (Recorder.tool_name t))) tools;
  Buffer.add_char buf '\n';
  List.iter
    (fun name ->
      Buffer.add_string buf (pad 6 (string_of_int (Bench_registry.group_of name)));
      Buffer.add_string buf (pad 12 name);
      List.iter
        (fun tool ->
          let results = List.assoc tool matrix in
          let text =
            match find_result results name with
            | None -> "-"
            | Some r -> (
                (* Tools without a Table 2 column (the experimental
                   SPADE+CamFlow configuration) report the bare status. *)
                match Bench_registry.expected tool name with
                | expected -> cell expected r
                | exception Not_found -> Result.status_word r)
          in
          Buffer.add_string buf (pad width text))
        tools;
      Buffer.add_char buf '\n')
    Oskernel.Syscall.all_names;
  Buffer.add_string buf
    "\nNotes: NR = not recorded (default config), SC = only state changes monitored,\n\
     \       LP = limitation in ProvMark, DV = disconnected vforked process.\n\
     \       * marks disagreement with the paper's Table 2.\n\
     \       ~ marks a degraded result (produced through a fallback path).\n";
  Buffer.contents buf

let agreement (matrix : matrix) =
  List.fold_left
    (fun (ok, total) (tool, results) ->
      List.fold_left
        (fun (ok, total) name ->
          match find_result results name with
          | None -> (ok, total)
          | Some r -> (
              match Bench_registry.expected tool name with
              | expected ->
                  ((if Bench_registry.matches expected r then ok + 1 else ok), total + 1)
              | exception Not_found -> (ok, total)))
        (ok, total) Oskernel.Syscall.all_names)
    (0, 0) matrix

let structure_table (matrix : matrix) ~syscalls =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (pad 12 "syscall");
  List.iter (fun (t, _) -> Buffer.add_string buf (pad 22 (Recorder.tool_name t))) matrix;
  Buffer.add_char buf '\n';
  List.iter
    (fun name ->
      Buffer.add_string buf (pad 12 name);
      List.iter
        (fun (_, results) ->
          let text =
            match find_result results name with
            | None -> "-"
            | Some r -> (
                match r.Result.status with
                | Result.Target g -> Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g)
                | Result.Empty -> "empty"
                | Result.Failed _ -> "failed")
          in
          Buffer.add_string buf (pad 22 text))
        matrix;
      Buffer.add_char buf '\n')
    syscalls;
  Buffer.contents buf

let timing_lines results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %14s %14s %14s\n" "benchmark" "transform(s)" "generalize(s)"
       "compare(s)");
  List.iter
    (fun (r : Result.t) ->
      let t = Result.times r in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %14.4f %14.4f %14.4f\n" r.Result.syscall
           t.Result.transformation_s t.Result.generalization_s t.Result.comparison_s))
    results;
  Buffer.contents buf

let cache_stats_lines stats =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %8s %8s %9s\n" "solve stage" "hits" "misses" "hit-rate");
  List.iter
    (fun (stage, hits, misses) ->
      let rate =
        if hits + misses = 0 then "-"
        else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int (hits + misses))
      in
      Buffer.add_string buf (Printf.sprintf "%-16s %8d %8d %9s\n" stage hits misses rate))
    stats;
  Buffer.contents buf

(* Quarantine report: one line per benchmark whose every attempt
   failed.  The suite completed anyway — these lines (and the exit
   code) are how the failure surfaces.  Everything printed is
   deterministic: stage diagnosis and attempt count, never timings. *)
let quarantine_lines results =
  let quarantined = List.filter Result.quarantined results in
  if quarantined = [] then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "quarantined benchmarks:\n";
    List.iter
      (fun (r : Result.t) ->
        let diagnosis =
          match r.Result.status with
          | Result.Failed e -> Result.stage_error_to_string e
          | Result.Target _ | Result.Empty -> assert false
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %s (after %d attempt%s)\n" r.Result.syscall diagnosis
             (Result.attempts r)
             (if Result.attempts r = 1 then "" else "s")))
      quarantined;
    Buffer.contents buf
  end

(* The chaos-job contract line: every fault-plan run must account for
   its injected faults as retried, degraded or quarantined outcomes.
   All four counters are pure functions of the result list, so two runs
   of the same plan print the same line at any [-j]. *)
let fault_outcome_line results =
  let n = List.length results in
  let quarantined = List.length (List.filter Result.quarantined results) in
  let degraded =
    List.length (List.filter (fun (r : Result.t) -> r.Result.degraded <> []) results)
  in
  let retried = List.length (List.filter (fun r -> Result.attempts r > 1) results) in
  Printf.sprintf "fault outcomes: %d benchmarks, %d retried, %d degraded, %d quarantined" n
    retried degraded quarantined

let timing_csv results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Result.t) ->
      let t = Result.times r in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.4f,%.4f,%.4f,%.4f\n"
           (String.lowercase_ascii (Recorder.tool_name r.Result.tool))
           r.Result.syscall t.Result.recording_s t.Result.transformation_s
           t.Result.generalization_s t.Result.comparison_s))
    results;
  Buffer.contents buf

(* One renderer for the cache/solver statistics block, consumed by the
   batch CLI's epilogue and the serve daemon's [stats] response alike.
   The solve-cache block keeps its historical gate (printed only when
   the memo was consulted at all); the incremental fast-path line has
   its own nonzero gate because the incremental backend never touches
   the memo.  Every scenario that printed bytes before prints the same
   bytes now — the incremental line is strictly additive. *)
let stats_lines () =
  let buf = Buffer.create 256 in
  (match Asp.Memo.stats () with
  | [] -> ()
  | stats ->
      Buffer.add_string buf "ASP solve cache:\n";
      Buffer.add_string buf
        (cache_stats_lines
           (List.map (fun (tag, s) -> (tag, s.Asp.Memo.hits, s.Asp.Memo.misses)) stats));
      (match Asp.Memo.coalesced () with
      | 0 -> ()
      | n -> Buffer.add_string buf (Printf.sprintf "coalesced solves: %d\n" n));
      Buffer.add_string buf
        (Printf.sprintf "canon skips: %d\n" (Gmatch.Engine.canon_skip_total ()));
      let seg_total counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
      let skips = seg_total (Gmatch.Engine.segment_skips ())
      and pairs = seg_total (Gmatch.Engine.segment_pairs ()) in
      if skips > 0 || pairs > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "segment prepass: %d quotient skips, %d pairs -> %d segment solves, %d fallbacks\n"
             skips pairs
             (Gmatch.Engine.segment_solves ())
             (Gmatch.Engine.segment_fallbacks ())));
  (* Certified/fallback counts are pure functions of the pairs the
     incremental backend attempted (gated on nonzero so runs that never
     touch it keep their historical bytes).  The planner's own counters
     stay out of this deterministic block — its delta cache hits and
     calibrated choices can legitimately depend on scheduling, so they
     surface in the serve [stats] op and the benches instead — and its
     calibrated dispatches into the incremental backend and the ASP
     memo run with these counters muted, so an [auto] suite prints the
     same epilogue as a fixed-default one. *)
  let certified, fallback = Gmatch.Incremental.stats () in
  if certified > 0 || fallback > 0 then
    Buffer.add_string buf
      (Printf.sprintf "incremental fast path: %d certified, %d fallbacks\n" certified fallback);
  Buffer.contents buf

let run_output ~result_type (r : Result.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-10s %s\n" r.Result.syscall
       (Recorder.tool_name r.Result.tool)
       (Result.summary r));
  (match r.Result.status with
  | Result.Target g ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Transform.to_datalog ~gid:"t" g)
  | Result.Empty | Result.Failed _ -> ());
  if String.equal result_type "rg" then begin
    (match r.Result.bg_general with
    | Some g ->
        Buffer.add_string buf "\n% generalized background graph\n";
        Buffer.add_string buf (Transform.to_datalog ~gid:"bg" g)
    | None -> ());
    match r.Result.fg_general with
    | Some g ->
        Buffer.add_string buf "\n% generalized foreground graph\n";
        Buffer.add_string buf (Transform.to_datalog ~gid:"fg" g)
    | None -> ()
  end;
  Buffer.contents buf

let suite_epilogue results =
  let buf = Buffer.create 256 in
  if Faults.Injector.active () then
    Buffer.add_string buf (Printf.sprintf "\n%s\n" (fault_outcome_line results));
  (match quarantine_lines results with
  | "" -> ()
  | lines ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf lines);
  Buffer.contents buf
