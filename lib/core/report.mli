(** Rendering of benchmark results: the Table 2 validation matrix, the
    Table 3 structure summaries, per-stage timing lines (Figures 5–10),
    and CSV export in the format of the original [*.time] files. *)

(** A full validation run: per (tool, syscall) results. *)
type matrix = (Recorders.Recorder.tool * Result.t list) list

(** Render the Table 2 matrix.  Each cell shows the measured status
    annotated with the paper's note, plus a [*] marker when the measured
    result disagrees with the paper's expected cell and a [~] marker
    when the result is degraded (produced through a fallback path). *)
val validation_matrix : matrix -> string

(** [agreement matrix] is [(agreeing cells, total cells)]. *)
val agreement : matrix -> int * int

(** Table 3-style structure summary for selected syscalls. *)
val structure_table : matrix -> syscalls:string list -> string

(** One figure's timing data: per-benchmark stacked stage times. *)
val timing_lines : Result.t list -> string

(** CSV in the sampleResult format: tool, syscall, then the four stage
    times in seconds. *)
val timing_csv : Result.t list -> string

(** Render per-stage solve-cache counters as a small table.  Rows are
    [(stage, hits, misses)] — the shape of [Asp.Memo.stats], flattened. *)
val cache_stats_lines : (string * int * int) list -> string

(** The full cache/solver statistics block — ASP solve-cache table,
    coalesced-solve count, canon skips, segment-prepass counters —
    rendered from the live process-wide counters.  Empty when the solve
    cache was never consulted.  This is the one renderer behind both
    the batch CLI's suite epilogue and the serve daemon's [stats]
    response, so the two can never drift. *)
val stats_lines : unit -> string

(** Exactly what the batch CLI prints to stdout for one finished
    benchmark run (the [run] subcommand body): the summary line, the
    target-graph Datalog when a target was found, and — for result type
    ["rg"] — the generalized background/foreground graph blocks.
    (Result type ["rh"]'s HTML side effects stay in the CLI.)  The
    serve daemon answers benchmark requests with this same string,
    which is what makes daemon responses byte-identical to the batch
    CLI's output for the same inputs. *)
val run_output : result_type:string -> Result.t -> string

(** The suite-epilogue stdout block shared by the CLI's exit path and
    the serve daemon: the fault-outcome line when a fault plan is
    active, then the quarantine report when anything was quarantined.
    Empty for a clean run without faults. *)
val suite_epilogue : Result.t list -> string

(** One line per quarantined benchmark (all attempts failed): syscall,
    stage diagnosis, attempt count.  Empty string when nothing was
    quarantined.  The suite completes despite quarantines; these lines
    plus the CLI exit code are how they surface. *)
val quarantine_lines : Result.t list -> string

(** Deterministic accounting line for fault-injected runs: how many
    benchmarks were retried, degraded, or quarantined.  Byte-identical
    across [-j] levels and reruns — the CI chaos job diffs it. *)
val fault_outcome_line : Result.t list -> string
