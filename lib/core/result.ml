type note = Nr | Sc | Lp | Dv

let note_to_string = function Nr -> "NR" | Sc -> "SC" | Lp -> "LP" | Dv -> "DV"

type failure_reason =
  | Malformed_output of string
  | No_trials
  | No_consistent_pair
  | Alignment_failed of string
  | Background_not_embeddable
  | Stage_exception of string
  | Deadline_exceeded of string

type stage_error = {
  stage : string;
  variant : string option;
  reason : failure_reason;
}

let failure_reason_to_string = function
  | Malformed_output m -> m
  | No_trials -> "no trial graphs recorded"
  | No_consistent_pair -> "no two trial runs produced similar graphs"
  | Alignment_failed m -> "alignment failed: " ^ m
  | Background_not_embeddable -> "background graph does not embed into the foreground graph"
  | Stage_exception m -> "exception: " ^ m
  | Deadline_exceeded budget -> "deadline exceeded: stage overran its " ^ budget ^ " budget"

let stage_error_to_string e =
  let prefix =
    match e.variant with Some v -> v ^ " " ^ e.stage | None -> e.stage
  in
  prefix ^ ": " ^ failure_reason_to_string e.reason

type status =
  | Target of Pgraph.Graph.t
  | Empty
  | Failed of stage_error

type stage_times = {
  recording_s : float;
  transformation_s : float;
  generalization_s : float;
  comparison_s : float;
}

let total_time t = t.recording_s +. t.transformation_s +. t.generalization_s +. t.comparison_s

type t = {
  benchmark : string;
  syscall : string;
  tool : Recorders.Recorder.tool;
  status : status;
  span : Trace_span.t;
  bg_general : Pgraph.Graph.t option;
  fg_general : Pgraph.Graph.t option;
  trials : int;
  degraded : string list;
}

let attempts r = List.length (Trace_span.find_all r.span "attempt")

let quarantined r = match r.status with Failed _ -> true | Target _ | Empty -> false

let times r =
  let sum name = Trace_span.sum_duration_s r.span name in
  {
    recording_s = sum "recording";
    transformation_s = sum "transformation";
    generalization_s = sum "generalization";
    comparison_s = sum "comparison";
  }

let status_word r =
  match r.status with Target _ -> "ok" | Empty -> "empty" | Failed _ -> "failed"

(* A target graph is "disconnected" when one of its connected components
   contains no dummy node: dummy nodes are the attachment points to the
   background graph, so a dummy-free component floats free of the rest
   of the provenance — the vfork child (DV) and the setres* bug both
   manifest this way. *)
let has_disconnected_node g =
  let module Smap = Map.Make (String) in
  let nodes = Pgraph.Graph.nodes g in
  if nodes = [] then false
  else begin
    (* Union-find over node ids. *)
    let parent = Hashtbl.create 16 in
    let rec find x =
      match Hashtbl.find_opt parent x with
      | Some p when not (String.equal p x) ->
          let r = find p in
          Hashtbl.replace parent x r;
          r
      | _ -> x
    in
    let union a b =
      let ra = find a and rb = find b in
      if not (String.equal ra rb) then Hashtbl.replace parent ra rb
    in
    List.iter (fun (n : Pgraph.Graph.node) -> Hashtbl.replace parent n.Pgraph.Graph.node_id n.Pgraph.Graph.node_id) nodes;
    List.iter
      (fun (e : Pgraph.Graph.edge) -> union e.Pgraph.Graph.edge_src e.Pgraph.Graph.edge_tgt)
      (Pgraph.Graph.edges g);
    let dummy_roots =
      List.fold_left
        (fun acc (n : Pgraph.Graph.node) ->
          if Pgraph.Graph.is_dummy n then Smap.add (find n.Pgraph.Graph.node_id) () acc else acc)
        Smap.empty nodes
    in
    List.exists
      (fun (n : Pgraph.Graph.node) -> not (Smap.mem (find n.Pgraph.Graph.node_id) dummy_roots))
      nodes
  end

let summary r =
  let base =
    match r.status with
    | Target g -> Printf.sprintf "ok (%s)" (Pgraph.Stats.shape_line (Pgraph.Stats.of_graph g))
    | Empty -> "empty"
    | Failed e -> Printf.sprintf "failed (%s)" (stage_error_to_string e)
  in
  if r.degraded = [] then base
  else Printf.sprintf "%s [degraded: %s]" base (String.concat "; " r.degraded)
