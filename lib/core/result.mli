(** Benchmark results and their classification against the vocabulary of
    the paper's Table 2. *)

(** Table 2 notes explaining empty or unusual results. *)
type note =
  | Nr  (** behavior not recorded (by default configuration) *)
  | Sc  (** only state changes monitored *)
  | Lp  (** limitation in ProvMark *)
  | Dv  (** disconnected vforked process *)

val note_to_string : note -> string

(** Why a pipeline stage could not produce its output.  The vocabulary
    is shared by every stage so failures serialize uniformly into the
    artifact store and render stably in reports. *)
type failure_reason =
  | Malformed_output of string
      (** the transformation stage rejected a recorder's native output *)
  | No_trials  (** no trial graphs recorded *)
  | No_consistent_pair  (** no two trial runs produced similar graphs *)
  | Alignment_failed of string  (** similar graphs failed to align *)
  | Background_not_embeddable
      (** background graph does not embed into the foreground graph *)
  | Stage_exception of string  (** unexpected exception, rendered *)
  | Deadline_exceeded of string
      (** the stage overran its wall-clock budget
          ([Config.deadline_s]).  Carries the configured budget string
          ("0.5s"), never the measured duration — the rendering must be
          identical at any [-j] and across reruns. *)

(** A structured per-stage failure: which stage, optionally which
    variant ("background"/"foreground"), and why. *)
type stage_error = {
  stage : string;  (** "recording", "transformation", "generalization" or "comparison" *)
  variant : string option;
  reason : failure_reason;
}

val failure_reason_to_string : failure_reason -> string

(** Stable one-line rendering, e.g.
    ["background generalization: no two trial runs produced similar graphs"].
    Reports and HTML output depend on this being deterministic. *)
val stage_error_to_string : stage_error -> string

type status =
  | Target of Pgraph.Graph.t  (** non-empty target graph *)
  | Empty  (** foreground and background were indistinguishable *)
  | Failed of stage_error  (** the pipeline could not produce a benchmark *)

(** The classic four per-stage wall-clock figures, derived from the
    span tree (see {!times}). *)
type stage_times = {
  recording_s : float;
  transformation_s : float;
  generalization_s : float;
  comparison_s : float;
}

val total_time : stage_times -> float

type t = {
  benchmark : string;
  syscall : string;
  tool : Recorders.Recorder.tool;
  status : status;
  span : Trace_span.t;
      (** the run's full trace: one root span, per-attempt children,
          per-stage grandchildren with durations and cache tags *)
  bg_general : Pgraph.Graph.t option;
  fg_general : Pgraph.Graph.t option;
  trials : int;
  degraded : string list;
      (** degradation notes, deduplicated and in occurrence order: each
          records a graceful fallback taken while producing the status
          (e.g. ASP step-limit exhaustion answered by the VF2 backend).
          A degraded result is still a result — the notes mark it as
          produced under reduced guarantees. *)
}

(** Number of pipeline attempts recorded in the span tree (>= 1; more
    than one means the retry policy kicked in). *)
val attempts : t -> int

(** A quarantined result: every attempt failed, so the suite carries
    the benchmark as [Failed] with its stage diagnosis instead of
    aborting.  (Exactly [status = Failed _]; named for the suite-level
    reporting role.) *)
val quarantined : t -> bool

(** Per-stage seconds, summed over every attempt's spans — the
    quantities behind the paper's Figures 5–10. *)
val times : t -> stage_times

(** "ok" / "empty" / "failed", as printed in the validation matrix. *)
val status_word : t -> string

(** A target graph containing a non-dummy node with no incident edges —
    how the disconnected-vfork quirk (DV) manifests. *)
val has_disconnected_node : Pgraph.Graph.t -> bool

(** One-line human summary, e.g. ["ok (3n/2e)"]; degraded results get a
    [" [degraded: ...]"] suffix listing the notes. *)
val summary : t -> string
