module Program = Oskernel.Program

let timed f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. start)

type recorder =
  Config.t -> Program.t -> Recording.recorded list * Recording.recorded list

let run_once_with ~(record : recorder) config (prog : Program.t) =
  let tool = config.Config.tool in
  let finish status times bg fg =
    {
      Result.benchmark = prog.Program.name;
      syscall = prog.Program.syscall;
      tool;
      status;
      times;
      bg_general = bg;
      fg_general = fg;
      trials = config.Config.trials;
    }
  in
  (* Stage 1: recording. *)
  let (bg_recs, fg_recs), recording_s = timed (fun () -> record config prog) in
  (* Stage 2: transformation. *)
  match timed (fun () -> (Transform.batch bg_recs, Transform.batch fg_recs)) with
  | exception Transform.Transform_error m ->
      finish (Result.Failed ("transformation: " ^ m))
        {
          Result.recording_s;
          transformation_s = 0.;
          generalization_s = 0.;
          comparison_s = 0.;
        }
        None None
  | (bg_graphs, fg_graphs), transformation_s -> (
      (* Stage 3: generalization, independently per variant. *)
      let generalize graphs =
        Generalize.generalize ~backend:config.Config.backend ~filter:config.Config.filter_graphs
          ~pair_choice:config.Config.pair_choice graphs
      in
      let (bg_out, fg_out), generalization_s =
        timed (fun () -> (generalize bg_graphs, generalize fg_graphs))
      in
      match (bg_out, fg_out) with
      | Error e, _ ->
          finish
            (Result.Failed ("background generalization: " ^ Generalize.failure_to_string e))
            { Result.recording_s; transformation_s; generalization_s; comparison_s = 0. }
            None None
      | _, Error e ->
          finish
            (Result.Failed ("foreground generalization: " ^ Generalize.failure_to_string e))
            { Result.recording_s; transformation_s; generalization_s; comparison_s = 0. }
            None None
      | Ok bg, Ok fg -> (
          (* Stage 4: comparison. *)
          let compared, comparison_s =
            timed (fun () ->
                if Gmatch.Engine.similar ~backend:config.Config.backend bg.Generalize.general fg.Generalize.general
                then `Similar
                else
                  match
                    Compare.compare ~backend:config.Config.backend ~bg:bg.Generalize.general
                      ~fg:fg.Generalize.general
                  with
                  | Ok outcome -> `Target outcome
                  | Error e -> `Failed (Compare.failure_to_string e))
          in
          let times =
            { Result.recording_s; transformation_s; generalization_s; comparison_s }
          in
          let bg_g = Some bg.Generalize.general and fg_g = Some fg.Generalize.general in
          match compared with
          | `Similar -> finish Result.Empty times bg_g fg_g
          | `Failed m -> finish (Result.Failed m) times bg_g fg_g
          | `Target outcome ->
              let target = outcome.Compare.target in
              if Pgraph.Graph.size target = 0 then finish Result.Empty times bg_g fg_g
              else finish (Result.Target target) times bg_g fg_g))

(* Flaky recorder runs occasionally leave no usable pair of trials (or a
   truncated pair wins the class selection).  ProvMark's answer is to
   record more trials and try again (Section 3.2); two retries with a
   growing trial count make the pipeline deterministic in practice. *)
let max_attempts = 3

let add_times (a : Result.stage_times) (b : Result.stage_times) =
  {
    Result.recording_s = a.Result.recording_s +. b.Result.recording_s;
    transformation_s = a.Result.transformation_s +. b.Result.transformation_s;
    generalization_s = a.Result.generalization_s +. b.Result.generalization_s;
    comparison_s = a.Result.comparison_s +. b.Result.comparison_s;
  }

let run_with ~record config prog =
  let rec attempt i acc_times =
    let config' =
      {
        config with
        Config.trials = config.Config.trials + (2 * i);
        seed = config.Config.seed + (101 * i);
      }
    in
    let r = run_once_with ~record config' prog in
    let times =
      match acc_times with None -> r.Result.times | Some t -> add_times t r.Result.times
    in
    match r.Result.status with
    | Result.Failed _ when i + 1 < max_attempts -> attempt (i + 1) (Some times)
    | _ -> { r with Result.times }
  in
  attempt 0 None

let run_once config prog = run_once_with ~record:Recording.record_all config prog
let run config prog = run_with ~record:Recording.record_all config prog

let run_syscall config name = run config (Bench_registry.find_exn name)
