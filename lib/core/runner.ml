module Program = Oskernel.Program

let timed f =
  let start = Trace_span.now_s () in
  let v = f () in
  (v, Trace_span.now_s () -. start)

type recorder = Pipeline.recorder

(* Flaky recorder runs occasionally leave no usable pair of trials (or a
   truncated pair wins the class selection).  ProvMark's answer is to
   record more trials and try again (Section 3.2); two retries with a
   growing trial count make the pipeline deterministic in practice. *)
let max_attempts = 3

let root_tags config (prog : Program.t) =
  [
    ("benchmark", prog.Program.name);
    ("syscall", prog.Program.syscall);
    ("tool", Config.tool_name config);
  ]

let finish config (prog : Program.t) ~trials (outcome : Pipeline.outcome) span =
  {
    Result.benchmark = prog.Program.name;
    syscall = prog.Program.syscall;
    tool = config.Config.tool;
    status = outcome.Pipeline.status;
    span;
    bg_general = outcome.Pipeline.bg_general;
    fg_general = outcome.Pipeline.fg_general;
    trials;
  }

let attempt_config config i =
  {
    config with
    Config.trials = config.Config.trials + (2 * i);
    seed = config.Config.seed + (101 * i);
  }

let one_attempt ~record ~ctx config prog i =
  let config' = attempt_config config i in
  let outcome =
    Trace_span.with_span ctx "attempt"
      ~tags:[ ("attempt", string_of_int (i + 1)); ("trials", string_of_int config'.Config.trials) ]
      (fun ctx -> Pipeline.run_once ~record ~ctx config' prog)
  in
  (outcome, config'.Config.trials)

let run_once_with ~(record : recorder) config (prog : Program.t) =
  let (outcome, trials), span =
    Trace_span.collect "run" ~tags:(root_tags config prog) (fun ctx ->
        one_attempt ~record ~ctx config prog 0)
  in
  finish config prog ~trials outcome span

let run_with ~record config prog =
  let (outcome, trials), span =
    Trace_span.collect "run" ~tags:(root_tags config prog) (fun ctx ->
        let rec attempt i =
          let outcome, trials = one_attempt ~record ~ctx config prog i in
          match outcome.Pipeline.status with
          | Result.Failed _ when i + 1 < max_attempts -> attempt (i + 1)
          | _ -> (outcome, trials)
        in
        attempt 0)
  in
  finish config prog ~trials outcome span

let run_once config prog = run_once_with ~record:Recording.record_all config prog
let run config prog = run_with ~record:Recording.record_all config prog

let run_syscall config name = run config (Bench_registry.find_exn name)
