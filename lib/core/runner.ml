module Program = Oskernel.Program

let timed f =
  let start = Trace_span.now_s () in
  let v = f () in
  (v, Trace_span.now_s () -. start)

type recorder = Pipeline.recorder

let root_tags session (prog : Program.t) =
  let config = Session.config session in
  [
    ("benchmark", prog.Program.name);
    ("syscall", prog.Program.syscall);
    ("tool", Config.tool_name config);
  ]
  @ Session.span_tags session

let finish session (prog : Program.t) ~trials (outcome : Pipeline.outcome) span =
  let config = Session.config session in
  let r =
    {
      Result.benchmark = prog.Program.name;
      syscall = prog.Program.syscall;
      tool = config.Config.tool;
      status = outcome.Pipeline.status;
      span;
      bg_general = outcome.Pipeline.bg_general;
      fg_general = outcome.Pipeline.fg_general;
      trials;
      degraded = outcome.Pipeline.degraded;
    }
  in
  Session.emit session r;
  r

(* Flaky recorder runs occasionally leave no usable pair of trials (or a
   truncated pair wins the class selection).  ProvMark's answer is to
   record more trials and try again (Section 3.2); the escalation
   schedule comes from [config.retry].  The seed stride also moves the
   recorder's fault-injection sites, so a retry under a fault plan
   re-rolls the dice instead of deterministically re-hitting the same
   fault. *)
let attempt_config config i =
  let r = config.Config.retry in
  {
    config with
    Config.trials = config.Config.trials + (r.Config.trial_growth * i);
    seed = config.Config.seed + (r.Config.seed_stride * i);
  }

let one_attempt ~record ~ctx session prog i =
  let config = Session.config session in
  let config' = attempt_config config i in
  let backoff = config.Config.retry.Config.backoff_s in
  let tags =
    [ ("attempt", string_of_int (i + 1)); ("trials", string_of_int config'.Config.trials) ]
    @ (if i > 0 && backoff > 0. then [ ("backoff_s", Printf.sprintf "%g" backoff) ] else [])
  in
  let outcome =
    Trace_span.with_span ctx "attempt" ~tags (fun ctx ->
        let o = Pipeline.run_once ~record ~ctx { session with Session.config = config' } prog in
        (match o.Pipeline.status with
        | Result.Failed e -> Trace_span.add_tag ctx "failed" (Result.stage_error_to_string e)
        | Result.Target _ | Result.Empty -> ());
        (match o.Pipeline.degraded with
        | [] -> ()
        | notes -> Trace_span.add_tag ctx "degraded" (String.concat "; " notes));
        o)
  in
  (outcome, config'.Config.trials)

let run_once_session ~(record : recorder) session (prog : Program.t) =
  let (outcome, trials), span =
    Trace_span.collect "run" ~tags:(root_tags session prog) (fun ctx ->
        one_attempt ~record ~ctx session prog 0)
  in
  finish session prog ~trials outcome span

let run_session_with ~record session prog =
  let retry = (Session.config session).Config.retry in
  let max_attempts = max 1 retry.Config.attempts in
  let (outcome, trials), span =
    Trace_span.collect "run" ~tags:(root_tags session prog) (fun ctx ->
        let rec attempt i =
          let outcome, trials = one_attempt ~record ~ctx session prog i in
          match outcome.Pipeline.status with
          | Result.Failed _ when i + 1 < max_attempts ->
              if retry.Config.backoff_s > 0. then Unix.sleepf retry.Config.backoff_s;
              attempt (i + 1)
          | _ -> (outcome, trials)
        in
        attempt 0)
  in
  finish session prog ~trials outcome span

let run_session session prog = run_session_with ~record:Recording.record_all session prog

let run_once_with ~record config prog = run_once_session ~record (Session.of_config config) prog
let run_with ~record config prog = run_session_with ~record (Session.of_config config) prog
let run_once config prog = run_once_with ~record:Recording.record_all config prog
let run config prog = run_with ~record:Recording.record_all config prog

let run_syscall_session session name =
  match Bench_registry.find name with
  | Some prog -> Ok (run_session session prog)
  | None -> Error (Bench_registry.names ())

let run_syscall config name = run_syscall_session (Session.of_config config) name
