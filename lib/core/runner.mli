(** Full pipeline orchestration: recording → transformation →
    generalization → comparison, delegated stage-by-stage to
    {!Pipeline} with tracing, retries and (optional) artifact-store
    caching.

    Every run produces a {!Trace_span} tree: a root ["run"] span tagged
    with benchmark/syscall/tool, one ["attempt"] child per (re)try and
    one grandchild per stage execution, tagged with its cache
    disposition.  {!Result.times} sums those stage spans, so the classic
    per-stage figures (paper Figures 5–10) are a view of the trace. *)

(** Monotonic-clock timing of a thunk, as [(value, seconds)].  Kept for
    benchmark harnesses; pipeline stages are timed by their spans. *)
val timed : (unit -> 'a) -> 'a * float

(** The recording stage as a function, so tests can swap
    {!Recording.record_all} for an instrumented or deliberately flaky
    recorder and exercise the retry policy directly.  (An injected
    recorder bypasses the artifact store for the recording stage; see
    {!Pipeline.recorder}.) *)
type recorder = Pipeline.recorder

(** {2 Session entry points}

    The primitive runners: a {!Session.t} carries the config, the
    client identity (tagged onto the run's root span) and the result
    sink.  The [Config.t] entry points below are these over
    {!Session.of_config}. *)

(** [run_session session program] is {!run} under [session]: the root
    span carries the session's client tag and the completed result is
    pushed through the session's sink before being returned. *)
val run_session : Session.t -> Oskernel.Program.t -> Result.t

(** {!run_session} with the recording stage replaced. *)
val run_session_with : record:recorder -> Session.t -> Oskernel.Program.t -> Result.t

(** One attempt, no retries, under a session. *)
val run_once_session : record:recorder -> Session.t -> Oskernel.Program.t -> Result.t

(** {!run_syscall} under a session. *)
val run_syscall_session : Session.t -> string -> (Result.t, string list) result

(** {2 Config entry points}

    Single-session wrappers, kept for the batch CLI and tests. *)

(** [run_once config program] executes the four stages exactly once. *)
val run_once : Config.t -> Oskernel.Program.t -> Result.t

(** [run_once_with ~record config program] is {!run_once} with the
    recording stage replaced by [record]. *)
val run_once_with : record:recorder -> Config.t -> Oskernel.Program.t -> Result.t

(** [run config program] is {!run_once} with ProvMark's retry policy
    ([config.retry]): when flaky recorder runs leave no usable trial
    pair, the benchmark is re-recorded with a growing number of trials
    (Section 3.2) and a perturbed seed, sleeping [backoff_s] between
    attempts.  Each attempt contributes its own span subtree (tagged
    with its trial count, its failure rendering when it failed, the
    configured backoff when one preceded it, and any degradation
    notes), so stage times still accumulate across attempts.  A run
    whose final attempt still fails is the quarantined case: the
    benchmark is reported [Failed] with its stage diagnosis and the
    suite goes on. *)
val run : Config.t -> Oskernel.Program.t -> Result.t

(** [run_with ~record config program] is {!run} (attempt escalation,
    trial-count growth, seed perturbation) over an injected recording
    stage. *)
val run_with : record:recorder -> Config.t -> Oskernel.Program.t -> Result.t

(** [run_syscall config name] looks the benchmark up in
    {!Bench_registry} by syscall name; for unknown names it returns
    [Error] with the known-name list (what the CLI prints before
    exiting with code 2). *)
val run_syscall : Config.t -> string -> (Result.t, string list) result
