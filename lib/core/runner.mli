(** Full pipeline orchestration: recording → transformation →
    generalization → comparison, with wall-clock timing of each stage
    (the quantities behind the paper's Figures 5–10). *)

(** The recording stage as a function, so tests can swap
    {!Recording.record_all} for an instrumented or deliberately flaky
    recorder and exercise the retry policy directly. *)
type recorder =
  Config.t -> Oskernel.Program.t -> Recording.recorded list * Recording.recorded list

(** [run_once config program] executes the four stages exactly once. *)
val run_once : Config.t -> Oskernel.Program.t -> Result.t

(** [run_once_with ~record config program] is {!run_once} with the
    recording stage replaced by [record]. *)
val run_once_with : record:recorder -> Config.t -> Oskernel.Program.t -> Result.t

(** [run config program] is {!run_once} with ProvMark's retry policy:
    when flaky recorder runs leave no usable trial pair, the benchmark
    is re-recorded with a growing number of trials (Section 3.2), up to
    three attempts.  Stage times accumulate across attempts. *)
val run : Config.t -> Oskernel.Program.t -> Result.t

(** [run_with ~record config program] is {!run} (attempt escalation,
    trial-count growth, seed perturbation, accumulated stage times) over
    an injected recording stage. *)
val run_with : record:recorder -> Config.t -> Oskernel.Program.t -> Result.t

(** [run_syscall config name] looks the benchmark up in
    {!Bench_registry} by syscall name.  Raises [Not_found] for unknown
    names. *)
val run_syscall : Config.t -> string -> Result.t
