type sink = Result.t -> unit

type t = { config : Config.t; client : string option; sink : sink option }

let create ?client ?sink config = { config; client; sink }

let of_config config = { config; client = None; sink = None }

let config t = t.config

let span_tags t = match t.client with None -> [] | Some c -> [ ("client", c) ]

let emit t r = match t.sink with None -> () | Some f -> f r
