type sink = Result.t -> unit

type t = {
  config : Config.t;
  client : string option;
  tags : (string * string) list;
  sink : sink option;
}

let create ?client ?(tags = []) ?sink config = { config; client; tags; sink }

let of_config config = { config; client = None; tags = []; sink = None }

let config t = t.config

let span_tags t =
  (match t.client with None -> [] | Some c -> [ ("client", c) ]) @ t.tags

let emit t r = match t.sink with None -> () | Some f -> f r

(* ------------------------------------------------------------------ *)
(* Planner calibration persistence.

   The planner's EWMA table is a server-lifetime resource like the
   memo and the canon cache, but unlike them it is worth carrying
   across processes: a warm serve daemon restarted on the same store
   should not re-learn its cost model from priors.  The table lives
   under a dedicated store stage with a fixed key — it is deliberately
   timing-derived state, which is exactly why it must never feed
   deterministic output (it only steers dispatch where all candidates
   agree); importing a stale or corrupt entry degrades to a cold
   start. *)

let calibration_key () =
  Artifact_store.key ~stage:"planner" ~fingerprint:"calibration-v1" ~inputs:[]

let warm_planner = function
  | None -> ()
  | Some store -> (
      match Artifact_store.read store ~stage:"planner" ~key:(calibration_key ()) with
      | Some data -> Gmatch.Planner.import data
      | None -> ())

let persist_planner = function
  | None -> ()
  | Some store ->
      if Gmatch.Planner.observations () > 0 then
        Artifact_store.write store ~stage:"planner" ~key:(calibration_key ())
          (Gmatch.Planner.export ())
