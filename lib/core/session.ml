type sink = Result.t -> unit

type t = {
  config : Config.t;
  client : string option;
  tags : (string * string) list;
  sink : sink option;
}

let create ?client ?(tags = []) ?sink config = { config; client; tags; sink }

let of_config config = { config; client = None; tags = []; sink = None }

let config t = t.config

let span_tags t =
  (match t.client with None -> [] | Some c -> [ ("client", c) ]) @ t.tags

let emit t r = match t.sink with None -> () | Some f -> f r
