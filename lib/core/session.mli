(** One client's run context, threaded through {!Runner} and
    {!Pipeline}.

    The batch CLI used to be the implicit session: one global config,
    results printed as they arrived, the process exiting at the end.
    A session makes that state an explicit value so many of them can
    coexist in one process — the serve daemon creates one per
    connection over the shared warm resources (ASP memo, canonical-form
    cache, artifact store), while the batch CLI creates exactly one.

    A session owns nothing shared: the memo, canon cache and store are
    server-lifetime resources with their own locking discipline.  What
    it does carry is per-run: the configuration, the client identity
    (tagged onto every run's root trace span, so one client's spans are
    separable from another's in a merged trace), and the result sink
    results are pushed through as they complete. *)

type sink = Result.t -> unit

type t = {
  config : Config.t;
  client : string option;
      (** client identity ("c1", "c2", …) for trace spans; [None] for
          the batch CLI, whose single session needs no tag *)
  tags : (string * string) list;
      (** extra root-span tags the front end wants on every run of
          this session — the serve daemon marks breaker-shunted
          requests with [("breaker", "shunt")] *)
  sink : sink option;
      (** called with each completed result, on the domain that
          finished it (like {!Parallel_runner}'s [on_result], it must
          be thread-safe when runs are concurrent) *)
}

val create :
  ?client:string -> ?tags:(string * string) list -> ?sink:sink -> Config.t -> t

(** A session with no client tag and no sink — how the [Config.t]-based
    entry points wrap themselves. *)
val of_config : Config.t -> t

val config : t -> Config.t

(** The span tags this session contributes to a run's root span:
    [("client", c)] when a client is set, followed by [tags]. *)
val span_tags : t -> (string * string) list

(** Push a result through the sink, if any. *)
val emit : t -> Result.t -> unit

(** {2 Planner calibration persistence}

    The planner's calibration table is server-lifetime state worth
    carrying across processes: [warm_planner store] imports the table
    persisted under the store's dedicated [planner] stage (no-op
    without a store or a prior export), so a restarted serve daemon
    starts calibrated; [persist_planner store] writes the table back
    if any observation landed this process.  The table only steers
    dispatch among answer-equivalent strategies, so importing
    timing-derived state never changes output. *)

val warm_planner : Artifact_store.t option -> unit
val persist_planner : Artifact_store.t option -> unit
