type ('a, 'b) t = {
  name : string;
  run : Trace_span.ctx -> 'a -> ('b, Result.stage_error) result;
  encode : ('b, Result.stage_error) result -> string;
  decode : string -> ('b, Result.stage_error) result;
}

let cache_key stage ~fingerprint ~inputs =
  Artifact_store.key ~stage:stage.name ~fingerprint ~inputs

let guard stage ctx f input =
  match f ctx input with
  | r -> r
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e ->
      Error
        {
          Result.stage = stage;
          variant = None;
          reason = Result.Stage_exception (Printexc.to_string e);
        }

(* Solver-effort counters are process-global; a stage's share is the
   delta across its own run.  Under the parallel runner concurrent
   stages bleed into each other's deltas — the tags are a profiling
   aid, not an accounting invariant, so that imprecision is fine. *)
let effort_counters () =
  let s = Asp.Solver.stats () in
  let m = Asp.Memo.totals () in
  let certified, fallback = Gmatch.Incremental.stats () in
  [
    ("asp.decisions", s.Asp.Solver.decisions);
    ("asp.propagations", s.Asp.Solver.propagations);
    ("memo.hits", m.Asp.Memo.hits);
    ("memo.misses", m.Asp.Memo.misses);
    ("incremental.certified", certified);
    ("incremental.fallback", fallback);
  ]

let tag_effort ctx before =
  List.iter2
    (fun (name, b) (_, a) ->
      if a > b then Trace_span.add_tag ctx name (string_of_int (a - b)))
    before (effort_counters ())

(* Planner decisions made during a stage surface as [planner.N] span
   tags — backend chosen, predicted and measured cost — so trace
   exports make mispredictions auditable.  Same per-domain caveat as
   the effort deltas: decisions taken on pool worker domains drain
   with that domain's next stage. *)
let tag_planner ctx =
  List.iteri
    (fun i d -> Trace_span.add_tag ctx (Printf.sprintf "planner.%d" i) d)
    (Gmatch.Planner.drain_decisions ())

let compute stage ctx input =
  let before = effort_counters () in
  let r = guard stage.name ctx stage.run input in
  tag_effort ctx before;
  tag_planner ctx;
  r

(* The deadline is checked post hoc on the monotonic clock: the stage
   runs to completion and the overrun then replaces its result.  No
   cancellation means no torn state, and the failure carries only the
   configured budget string — the measured duration varies run to run
   and must not leak into deterministic output.  Deadline failures are
   timing-dependent, so they are never written to the store (a warm
   machine should not inherit a slow machine's verdict). *)
let check_deadline stage ctx ~deadline_s ~start r =
  match deadline_s with
  | Some budget when Trace_span.now_s () -. start > budget ->
      Trace_span.add_tag ctx "deadline" "exceeded";
      Error
        {
          Result.stage;
          variant = None;
          reason = Result.Deadline_exceeded (Printf.sprintf "%gs" budget);
        }
  | _ -> r

let execute ?store ?deadline_s ~ctx ~fingerprint ~inputs stage input =
  Trace_span.with_span ctx stage.name (fun ctx ->
      match store with
      | None ->
          Trace_span.add_tag ctx "cache" "off";
          let start = Trace_span.now_s () in
          check_deadline stage.name ctx ~deadline_s ~start (compute stage ctx input)
      | Some s -> (
          let key = cache_key stage ~fingerprint ~inputs in
          let cached =
            match Artifact_store.read s ~stage:stage.name ~key with
            | None -> None
            | Some contents -> (
                (* A corrupt or stale-format entry decodes to a miss and
                   is overwritten below. *)
                match stage.decode contents with
                | r -> Some r
                | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
                | exception _ -> None)
          in
          Artifact_store.record s ~stage:stage.name ~key
            ~hit:(match cached with Some _ -> true | None -> false);
          match cached with
          | Some r ->
              Trace_span.add_tag ctx "cache" "hit";
              r
          | None -> (
              Trace_span.add_tag ctx "cache" "miss";
              let start = Trace_span.now_s () in
              let r = compute stage ctx input in
              match check_deadline stage.name ctx ~deadline_s ~start r with
              | Error { Result.reason = Result.Deadline_exceeded _; _ } as overrun -> overrun
              | r ->
                  Artifact_store.write s ~stage:stage.name ~key (stage.encode r);
                  r)))
