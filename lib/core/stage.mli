(** One typed step of the benchmark pipeline.

    A [('a, 'b) t] maps a stage input to either an output or a
    structured {!Result.stage_error}; {!execute} wraps the step with a
    trace span and, when a store is supplied, content-addressed
    caching.  Failures are first-class values here — they are encoded
    into the store exactly like successes, so a deterministic failure
    (e.g. a non-embeddable background) also replays warm instead of
    re-running the solver just to fail again. *)

type ('a, 'b) t = {
  name : string;
      (** "recording" / "transformation" / "generalization" /
          "comparison" — also the span name and the store subdirectory *)
  run : Trace_span.ctx -> 'a -> ('b, Result.stage_error) result;
  encode : ('b, Result.stage_error) result -> string;
  decode : string -> ('b, Result.stage_error) result;
      (** may raise on corrupt input; {!execute} treats that as a miss *)
}

(** The artifact-store key for one execution of [stage]:
    [fingerprint] is the stage's configuration fingerprint (see
    {!Config.recording_fingerprint} etc.), [inputs] the digests of the
    upstream artifacts it consumes.  Chaining input digests is what
    gives precise invalidation: an edited benchmark changes the program
    digest, which changes this stage's key and every downstream key,
    while unrelated benchmarks keep hitting. *)
val cache_key : ('a, 'b) t -> fingerprint:string -> inputs:string list -> string

(** [execute ?store ?deadline_s ~ctx ~fingerprint ~inputs stage input]
    runs the stage inside a child span of [ctx] named [stage.name].

    The span is tagged ["cache"] = ["off"] (no store), ["hit"] (artifact
    replayed, [stage.run] never called) or ["miss"] (computed, then
    stored).  On compute, nonzero deltas of the solver effort counters
    (ASP decisions/propagations, matching-memo hits/misses, incremental
    matcher certified/fallback counts) are attached as additional
    tags.  Exceptions escaping [stage.run] (other than [Stack_overflow]
    and [Out_of_memory]) are converted to [Error] with
    {!Result.Stage_exception}.

    When [deadline_s] is given and a computed stage overruns it (checked
    post hoc on the monotonic clock; nothing is cancelled mid-flight),
    the result is replaced by [Error] with {!Result.Deadline_exceeded}
    carrying the configured budget string, the span gains a
    ["deadline"] = ["exceeded"] tag, and nothing is written to the
    store — deadline verdicts are timing-dependent and must not replay
    on a machine that would have met the budget.  Cache hits are exempt
    (replay is not the work being budgeted). *)
val execute :
  ?store:Artifact_store.t ->
  ?deadline_s:float ->
  ctx:Trace_span.ctx ->
  fingerprint:string ->
  inputs:string list ->
  ('a, 'b) t ->
  'a ->
  ('b, Result.stage_error) result
