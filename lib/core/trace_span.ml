type t = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  tags : (string * string) list;
  children : t list;
}

(* CLOCK_MONOTONIC through bechamel's stub.  The clamp makes the
   guarantee local too: concurrent readers on different cores can in
   principle observe the clock out of order; durations computed from
   [now_ns] pairs on one domain are still non-negative because a span's
   start and end are read by the same domain. *)
let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) /. 1e9
let duration_s t = Int64.to_float t.dur_ns /. 1e9

type ctx = {
  mutable ctags : (string * string) list;  (* reversed *)
  mutable rev_children : t list;
}

let new_ctx () = { ctags = []; rev_children = [] }
let add_tag ctx k v = ctx.ctags <- (k, v) :: ctx.ctags

let close ~name ~start_ns ctx =
  let dur = Int64.sub (now_ns ()) start_ns in
  {
    name;
    start_ns;
    dur_ns = (if Int64.compare dur 0L < 0 then 0L else dur);
    tags = List.rev ctx.ctags;
    children = List.rev ctx.rev_children;
  }

let open_ctx tags =
  let ctx = new_ctx () in
  List.iter (fun (k, v) -> add_tag ctx k v) tags;
  ctx

let with_span parent ?(tags = []) name f =
  let start_ns = now_ns () in
  let ctx = open_ctx tags in
  match f ctx with
  | v ->
      parent.rev_children <- close ~name ~start_ns ctx :: parent.rev_children;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      add_tag ctx "exception" (Printexc.to_string e);
      parent.rev_children <- close ~name ~start_ns ctx :: parent.rev_children;
      Printexc.raise_with_backtrace e bt

let collect ?(tags = []) name f =
  let start_ns = now_ns () in
  let ctx = open_ctx tags in
  let v = f ctx in
  (v, close ~name ~start_ns ctx)

(* Parallel branches build into detached contexts so two domains never
   mutate one ctx; grafting merges a finished branch back in.  Both
   lists are reversed, so prepending the child's list keeps the final
   (re-reversed) order as "everything already in [into], then the
   child's contributions" — graft branches in their sequential order
   and the tree is indistinguishable from a sequential run. *)
let branch () = new_ctx ()

let graft child ~into =
  into.rev_children <- child.rev_children @ into.rev_children;
  into.ctags <- child.ctags @ into.ctags;
  child.rev_children <- [];
  child.ctags <- []

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

let find_all t name =
  List.rev (fold (fun acc s -> if String.equal s.name name then s :: acc else acc) [] t)

let sum_duration_s t name =
  fold (fun acc s -> if String.equal s.name name then acc +. duration_s s else acc) 0. t

let tag t k = List.assoc_opt k t.tags

let null = { name = "none"; start_ns = 0L; dur_ns = 0L; tags = []; children = [] }

let to_json t =
  let base = t.start_ns in
  let rec go s =
    Minijson.Json.Object
      [
        ("name", Minijson.Json.String s.name);
        ("start_ns", Minijson.Json.Number (Int64.to_float (Int64.sub s.start_ns base)));
        ("dur_ns", Minijson.Json.Number (Int64.to_float s.dur_ns));
        ("tags", Minijson.Json.Object (List.map (fun (k, v) -> (k, Minijson.Json.String v)) s.tags));
        ("children", Minijson.Json.Array (List.map go s.children));
      ]
  in
  go t
