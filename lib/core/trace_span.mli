(** Per-stage tracing: nested spans on a monotonic clock.

    Every pipeline run produces a span tree instead of four loose
    floats: the runner opens a root span, each retry attempt and each
    stage nests inside it, and stages attach tags (cache hit/miss,
    solver effort counters).  {!Result.times} derives the classic
    per-stage seconds by summing spans by name, so the timing figures
    keep working while the full tree is available for [--trace].

    Timestamps come from [CLOCK_MONOTONIC] (via bechamel's clock stub),
    not [Unix.gettimeofday]: wall clock can jump backwards under NTP
    adjustment, which used to yield negative stage times. *)

(** A closed span.  [start_ns] is an absolute monotonic timestamp
    (nanoseconds since an arbitrary origin — only differences are
    meaningful); [dur_ns] is never negative. *)
type t = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  tags : (string * string) list;
  children : t list;
}

(** Monotonic nanoseconds.  Never decreases within a process. *)
val now_ns : unit -> int64

(** Monotonic seconds as a float — the drop-in replacement for
    [Unix.gettimeofday]-based duration measurement. *)
val now_s : unit -> float

val duration_s : t -> float

(** {2 Building span trees}

    A [ctx] is the mutable builder for one open span: tags accumulate
    on it and child spans close into it.  Contexts are not shared
    between domains — each pipeline run builds its own tree. *)

type ctx

(** [collect name f] runs [f] inside a fresh root span and returns the
    result together with the closed tree. *)
val collect : ?tags:(string * string) list -> string -> (ctx -> 'a) -> 'a * t

(** [with_span parent name f] runs [f] in a child span of [parent].
    The child is closed (and attached) whether [f] returns or raises;
    an exception is recorded as an ["exception"] tag and re-raised. *)
val with_span : ctx -> ?tags:(string * string) list -> string -> (ctx -> 'a) -> 'a

(** Attach a tag to the currently open span. *)
val add_tag : ctx -> string -> string -> unit

(** [branch ()] is a fresh detached context for one side of a parallel
    pair: each branch builds spans on its own domain without sharing a
    ctx, and {!graft} merges them back afterwards. *)
val branch : unit -> ctx

(** [graft child ~into] appends everything accumulated in [child]
    (spans and tags) after [into]'s existing contents and empties
    [child].  Grafting finished branches in their sequential order
    makes the resulting tree identical to a sequential run's. *)
val graft : ctx -> into:ctx -> unit

(** {2 Querying} *)

(** Depth-first fold over the tree (root first). *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** All spans (anywhere in the tree) with the given name. *)
val find_all : t -> string -> t list

(** Sum of [duration_s] over {!find_all} — zero when absent. *)
val sum_duration_s : t -> string -> float

val tag : t -> string -> string option

(** A zero-duration placeholder, for synthesizing results in tests. *)
val null : t

(** JSON export ([--trace]): start offsets are rebased on the root span
    so the tree is readable without knowing the clock origin. *)
val to_json : t -> Minijson.Json.t
