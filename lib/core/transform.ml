module Recorder = Recorders.Recorder

exception Transform_error of string

(* Each parser rejects malformed input with its own structured error
   (offset / line + reason); render them uniformly here so the stage
   boundary sees exactly one exception type.  The [match ... with g ->
   g | exception ...] shape guards the whole parse *and* conversion:
   a graph that tokenizes but references undeclared nodes must land
   here too, not escape as a generic stage exception. *)
let to_pgraph output =
  match output with
  | Recorder.Dot_text text -> (
      match Recorders.Dot.to_pgraph (Recorders.Dot.of_string text) with
      | g -> g
      | exception Recorders.Dot.Parse_error { offset; reason } ->
          raise (Transform_error (Printf.sprintf "DOT: %s at offset %d" reason offset)))
  | Recorder.Store_dump dump -> (
      match Recorders.Opus.of_dump dump with
      | g -> g
      | exception Graphstore.Store.Load_error { line; reason } ->
          raise (Transform_error (Printf.sprintf "store: %s at line %d" reason line)))
  | Recorder.Prov_json text -> (
      match Recorders.Provjson.of_string text with
      | g -> g
      | exception Recorders.Provjson.Format_error { offset; reason } ->
          raise
            (Transform_error
               (match offset with
               | Some off -> Printf.sprintf "PROV-JSON: %s at offset %d" reason off
               | None -> "PROV-JSON: " ^ reason)))

let to_datalog ~gid g = Datalog.Encode.graph_to_string ~gid g

let batch recs = List.map (fun (r : Recording.recorded) -> to_pgraph r.Recording.output) recs
