module Smap = Map.Make (String)
module Fset = Set.Make (Fact)

type t = Fset.t Smap.t

let empty = Smap.empty

let add f b =
  Smap.update f.Fact.pred
    (function None -> Some (Fset.singleton f) | Some s -> Some (Fset.add f s))
    b

let of_list facts = List.fold_left (fun b f -> add f b) empty facts

let to_list b = Smap.fold (fun _ s acc -> acc @ Fset.elements s) b []

let facts_with_pred b p =
  match Smap.find_opt p b with None -> [] | Some s -> Fset.elements s

let mem f b =
  match Smap.find_opt f.Fact.pred b with None -> false | Some s -> Fset.mem f s

let cardinal b = Smap.fold (fun _ s acc -> acc + Fset.cardinal s) b 0

let union a b = Smap.union (fun _ x y -> Some (Fset.union x y)) a b

let predicates b = List.map fst (Smap.bindings b)

let restrict b preds = Smap.filter (fun p _ -> List.mem p preds) b

let to_string b = String.concat "\n" (List.map Fact.to_string (to_list b)) ^ "\n"

let pp ppf b = Format.pp_print_string ppf (to_string b)
