(** A fact base: an indexed collection of ground facts, as consumed by the
    grounder of the mini-ASP solver and produced by the transformation
    stage. *)

type t

val empty : t

val add : Fact.t -> t -> t

val of_list : Fact.t list -> t

(** All facts, sorted (predicate, then arguments); duplicates removed. *)
val to_list : t -> Fact.t list

(** [facts_with_pred b p] returns the facts whose predicate is [p]. *)
val facts_with_pred : t -> string -> Fact.t list

val mem : Fact.t -> t -> bool

val cardinal : t -> int

val union : t -> t -> t

val predicates : t -> string list

(** [restrict b preds] keeps only the facts whose predicate is listed. *)
val restrict : t -> string list -> t

(** Render one fact per line, parseable back with {!Parser.parse_facts}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
