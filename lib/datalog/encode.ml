exception Decode_error of string

let node_pred gid = "n" ^ gid
let edge_pred gid = "e" ^ gid
let prop_pred gid = "p" ^ gid

let graph_to_facts ~gid g =
  let open Pgraph in
  let node_facts =
    List.map
      (fun (n : Graph.node) ->
        Fact.make (node_pred gid) [ Fact.sym_of_string n.Graph.node_id; Fact.str n.Graph.node_label ])
      (Graph.nodes g)
  in
  let edge_facts =
    List.map
      (fun (e : Graph.edge) ->
        Fact.make (edge_pred gid)
          [
            Fact.sym_of_string e.Graph.edge_id;
            Fact.sym_of_string e.Graph.edge_src;
            Fact.sym_of_string e.Graph.edge_tgt;
            Fact.str e.Graph.edge_label;
          ])
      (Graph.edges g)
  in
  let props_of id props =
    Props.fold
      (fun k v acc -> Fact.make (prop_pred gid) [ Fact.sym_of_string id; Fact.str k; Fact.str v ] :: acc)
      props []
  in
  let prop_facts =
    List.concat_map (fun (n : Graph.node) -> props_of n.Graph.node_id n.Graph.node_props) (Graph.nodes g)
    @ List.concat_map (fun (e : Graph.edge) -> props_of e.Graph.edge_id e.Graph.edge_props) (Graph.edges g)
  in
  node_facts @ edge_facts @ prop_facts

let graph_to_base ~gid g = Base.of_list (graph_to_facts ~gid g)

let graph_of_base ~gid b =
  let open Pgraph in
  let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt in
  let id_of = Fact.string_of_term in
  let g =
    List.fold_left
      (fun g f ->
        match f.Fact.args with
        | [ id; label ] ->
            Graph.add_node g ~id:(id_of id) ~label:(Fact.string_of_term label)
              ~props:Props.empty
        | _ -> fail "node fact %s has wrong shape" (Fact.to_string f))
      Graph.empty
      (Base.facts_with_pred b (node_pred gid))
  in
  let g =
    List.fold_left
      (fun g f ->
        match f.Fact.args with
        | [ id; src; tgt; label ] ->
            let src = id_of src and tgt = id_of tgt in
            if not (Graph.mem_node g src) then
              fail "edge %s refers to unknown source %s" (Fact.to_string f) src;
            if not (Graph.mem_node g tgt) then
              fail "edge %s refers to unknown target %s" (Fact.to_string f) tgt;
            Graph.add_edge g ~id:(id_of id) ~src ~tgt ~label:(Fact.string_of_term label)
              ~props:Props.empty
        | _ -> fail "edge fact %s has wrong shape" (Fact.to_string f))
      g
      (Base.facts_with_pred b (edge_pred gid))
  in
  List.fold_left
    (fun g f ->
      match f.Fact.args with
      | [ id; key; value ] -> (
          let id = id_of id in
          let key = Fact.string_of_term key and value = Fact.string_of_term value in
          match (Graph.find_node g id, Graph.find_edge g id) with
          | Some n, _ -> Graph.set_node_props g id (Props.add key value n.Graph.node_props)
          | None, Some e -> Graph.set_edge_props g id (Props.add key value e.Graph.edge_props)
          | None, None -> fail "property fact %s refers to unknown element" (Fact.to_string f))
      | _ -> fail "property fact %s has wrong shape" (Fact.to_string f))
    g
    (Base.facts_with_pred b (prop_pred gid))

let graph_to_string ~gid g = Base.to_string (graph_to_base ~gid g)

let graph_of_string ~gid s = graph_of_base ~gid (Parser.parse_base s)
