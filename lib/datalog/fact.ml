type term =
  | Sym of Symtab.id
  | Str of Symtab.id
  | Int of int

type t = { pred : string; args : term list }

let make pred args = { pred; args }

let sym s = Sym (Symtab.intern s)
let str s = Str (Symtab.intern s)

let equal_term a b =
  match (a, b) with
  | Sym x, Sym y | Str x, Str y | Int x, Int y -> Int.equal x y
  | (Sym _ | Str _ | Int _), _ -> false

(* Ordering compares the interned strings, not the ids: interning order
   depends on evaluation order (and differs across parallel runs), while
   fact bases must render identically for memo keys and reports. *)
let compare_term a b =
  let rank = function Sym _ -> 0 | Str _ -> 1 | Int _ -> 2 in
  match (a, b) with
  | Sym x, Sym y | Str x, Str y -> Symtab.compare_payloads x y
  | Int x, Int y -> Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 equal_term a.args b.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let rec cmp xs ys =
      match (xs, ys) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs, y :: ys ->
          let c = compare_term x y in
          if c <> 0 then c else cmp xs ys
    in
    cmp a.args b.args

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let term_to_string = function
  | Sym s -> Symtab.to_string s
  | Str s -> Printf.sprintf "\"%s\"" (escape (Symtab.to_string s))
  | Int n -> string_of_int n

let to_string f =
  Printf.sprintf "%s(%s)." f.pred (String.concat "," (List.map term_to_string f.args))

let pp ppf f = Format.pp_print_string ppf (to_string f)

let is_bare s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let sym_of_string s = if is_bare s then sym s else str s

let string_of_term = function
  | Sym s | Str s -> Symtab.to_string s
  | Int n -> string_of_int n
