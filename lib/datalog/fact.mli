(** Ground Datalog facts, the common graph representation of ProvMark
    (paper Listing 1).  A fact is [pred(arg1, ..., argn).] where each
    argument is either a symbolic constant ([n1], [e2]) or a quoted
    string constant (["File"]).

    String payloads are interned in {!Symtab}: the constructors carry
    integer ids, so {!equal_term} and structural hashing are O(1).
    Build terms with {!sym} / {!str} / {!sym_of_string} rather than
    interning by hand. *)

type term =
  | Sym of Symtab.id  (** symbolic constant; printed bare *)
  | Str of Symtab.id  (** string constant; printed quoted with escapes *)
  | Int of int

type t = { pred : string; args : term list }

val make : string -> term list -> t

(** [sym s] interns [s] as a symbolic constant (no bareness check —
    callers such as parsers that already validated the spelling). *)
val sym : string -> term

(** [str s] interns [s] as a quoted string constant. *)
val str : string -> term

val equal_term : term -> term -> bool

(** Orders terms by their underlying strings (via the symtab), so the
    order is independent of interning order. *)
val compare_term : term -> term -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** [term_to_string t] renders one argument in Datalog concrete syntax. *)
val term_to_string : term -> string

(** [to_string f] renders [pred(args).] without a trailing newline. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [sym_of_string s] returns [sym s] when [s] is a valid bare Datalog
    constant (lowercase letter followed by letters, digits, underscores)
    and [str s] otherwise. *)
val sym_of_string : string -> term

(** [string_of_term t] is the payload without concrete-syntax quoting. *)
val string_of_term : term -> string
