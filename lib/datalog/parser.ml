exception Parse_error of string

type token =
  | Tident of string
  | Tstring of string
  | Tint of int
  | Tlparen
  | Trparen
  | Tcomma
  | Tdot

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '%' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | '(' ->
        tokens := Tlparen :: !tokens;
        incr pos
    | ')' ->
        tokens := Trparen :: !tokens;
        incr pos
    | ',' ->
        tokens := Tcomma :: !tokens;
        incr pos
    | '.' ->
        tokens := Tdot :: !tokens;
        incr pos
    | '"' ->
        incr pos;
        let b = Buffer.create 16 in
        let rec loop () =
          match peek () with
          | None -> fail "unterminated string"
          | Some '"' -> incr pos
          | Some '\\' -> (
              incr pos;
              match peek () with
              | Some '"' -> Buffer.add_char b '"'; incr pos; loop ()
              | Some '\\' -> Buffer.add_char b '\\'; incr pos; loop ()
              | Some 'n' -> Buffer.add_char b '\n'; incr pos; loop ()
              | Some c -> Buffer.add_char b c; incr pos; loop ()
              | None -> fail "unterminated escape")
          | Some c ->
              Buffer.add_char b c;
              incr pos;
              loop ()
        in
        loop ();
        tokens := Tstring (Buffer.contents b) :: !tokens
    | '-' | '0' .. '9' ->
        let start = !pos in
        if src.[!pos] = '-' then incr pos;
        while !pos < n && (match src.[!pos] with '0' .. '9' -> true | _ -> false) do
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        (match int_of_string_opt s with
        | Some v -> tokens := Tint v :: !tokens
        | None -> fail (Printf.sprintf "bad integer %S" s))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while
          !pos < n
          && match src.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
        do
          incr pos
        done;
        tokens := Tident (String.sub src start (!pos - start)) :: !tokens
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

let parse_facts src =
  let tokens = tokenize src in
  let fail msg = raise (Parse_error msg) in
  let rec parse_args acc = function
    | Tstring s :: rest -> after_arg (Fact.str s :: acc) rest
    | Tint v :: rest -> after_arg (Fact.Int v :: acc) rest
    | Tident s :: rest -> after_arg (Fact.sym s :: acc) rest
    | _ -> fail "expected argument"
  and after_arg acc = function
    | Tcomma :: rest -> parse_args acc rest
    | Trparen :: rest -> (List.rev acc, rest)
    | _ -> fail "expected , or ) after argument"
  in
  let rec parse_all acc = function
    | [] -> List.rev acc
    | Tident pred :: Tlparen :: rest -> (
        let args, rest = parse_args [] rest in
        match rest with
        | Tdot :: rest -> parse_all (Fact.make pred args :: acc) rest
        | _ -> fail (Printf.sprintf "expected . after fact %s(...)" pred))
    | Tident pred :: Tdot :: rest ->
        (* Nullary fact written without parentheses. *)
        parse_all (Fact.make pred [] :: acc) rest
    | _ -> fail "expected fact"
  in
  parse_all [] tokens

let parse_base s = Base.of_list (parse_facts s)
