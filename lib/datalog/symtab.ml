(* Global string intern table.

   Fact terms carry interned integer ids instead of string payloads, so
   the grounder's inner loops (substitution matching, atom hashing) are
   integer comparisons; the strings themselves live here.

   The table is shared by every domain of the parallel suite runner.
   Interning takes a mutex; readers go through an atomically published
   snapshot so [to_string] never locks.  Slots are append-only: an id is
   handed out only after its string is stored, and published snapshots
   are never mutated at or below their published length, so a reader
   holding a valid id always finds its string in any later snapshot. *)

type id = int

type snapshot = { strings : string array; len : int }

let mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 1024
let state = Atomic.make { strings = Array.make 1024 ""; len = 0 }

let intern s =
  (* Fast path: already interned (Hashtbl reads race with writes under
     the OCaml memory model only if a writer is active; re-check under
     the lock before deciding to add). *)
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt ids s with
      | Some i -> i
      | None ->
          let snap = Atomic.get state in
          let strings =
            if snap.len < Array.length snap.strings then snap.strings
            else begin
              let bigger = Array.make (2 * Array.length snap.strings) "" in
              Array.blit snap.strings 0 bigger 0 snap.len;
              bigger
            end
          in
          let i = snap.len in
          strings.(i) <- s;
          Atomic.set state { strings; len = i + 1 };
          Hashtbl.add ids s i;
          i)

let to_string i =
  let snap = Atomic.get state in
  if i < 0 || i >= snap.len then
    invalid_arg (Printf.sprintf "Datalog.Symtab.to_string: unknown id %d" i)
  else snap.strings.(i)

let compare_payloads a b =
  if Int.equal a b then 0 else String.compare (to_string a) (to_string b)

let size () = (Atomic.get state).len
