(** Global, thread-safe string intern table backing {!Fact.term}.

    Interned ids give O(1) term equality and hashing in the grounder's
    inner loops; ordering-sensitive consumers compare the underlying
    strings (see {!compare_payloads}) so observable fact order does not
    depend on interning order, which varies across parallel runs. *)

type id = int

(** [intern s] returns the id for [s], allocating one on first sight.
    Safe to call from any domain. *)
val intern : string -> id

(** [to_string i] is the string interned as [i].  Lock-free.
    @raise Invalid_argument on an id never returned by {!intern}. *)
val to_string : id -> string

(** [compare_payloads a b] orders ids by their underlying strings, with
    an O(1) fast path when [a = b]. *)
val compare_payloads : id -> id -> int

(** Number of distinct strings interned so far. *)
val size : unit -> int
