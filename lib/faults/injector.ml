(* Site-keyed decisions through splitmix64: hash the seed and the site
   string into a 64-bit state, then draw from the output stream.  The
   same (seed, site, kind) always draws the same values, so fault
   placement is a pure function of the plan — the property every
   byte-identity guarantee in this repo leans on. *)

let current : Plan.t option Atomic.t = Atomic.make None
let set_plan p = Atomic.set current p
let plan () = Atomic.get current
let active () = Option.is_some (plan ())
let fingerprint () = match plan () with None -> "" | Some p -> Plan.to_string p

(* splitmix64 step. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let state seed key =
  let h = ref (Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L) in
  String.iter
    (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c))))
    key;
  mix !h

(* Uniform draw in [0, 1) from a state, advancing by index so one site
   can consume several independent values. *)
let unit_float seed key i =
  let v = mix (Int64.add (state seed key) (Int64.of_int (i * 0x5851F42D))) in
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.

let draw_int seed key i bound =
  if bound <= 0 then 0 else int_of_float (unit_float seed key i *. float_of_int bound)

let decide p ~site ~kind rate =
  rate > 0. && unit_float p.Plan.seed (site ^ "\x00" ^ kind) 0 < rate

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let counters =
  [ ("recorder", Atomic.make 0); ("store", Atomic.make 0); ("solver", Atomic.make 0);
    ("socket", Atomic.make 0) ]

let count tap =
  match List.assoc_opt tap counters with
  | Some c -> ignore (Atomic.fetch_and_add c 1)
  | None -> ()

let injected () =
  List.filter_map
    (fun (tap, c) -> match Atomic.get c with 0 -> None | n -> Some (tap, n))
    counters

let reset_counters () = List.iter (fun (_, c) -> Atomic.set c 0) counters

(* ------------------------------------------------------------------ *)
(* Per-tap decisions                                                   *)

let first_firing p ~site ~tap kind_name kinds =
  match
    List.find_opt (fun (k, rate) -> decide p ~site ~kind:(kind_name k) rate) kinds
  with
  | Some (k, _) ->
      count tap;
      Some k
  | None -> None

let recorder_fault ~site =
  match plan () with
  | None -> None
  | Some p -> first_firing p ~site ~tap:"recorder" Plan.recorder_kind_name p.Plan.recorder

let store_fault ~site =
  match plan () with
  | None -> None
  | Some p -> first_firing p ~site ~tap:"store" Plan.store_kind_name p.Plan.store

let solver_exhaust ~site =
  match plan () with
  | None -> false
  | Some p ->
      let hit = decide p ~site ~kind:"exhaust" p.Plan.solver_exhaust in
      if hit then count "solver";
      hit

let socket_fault ~site =
  match plan () with
  | None -> None
  | Some p -> first_firing p ~site ~tap:"socket" Plan.socket_kind_name p.Plan.socket

(* Seeded split point for a torn request line: always strictly inside
   the line, so both halves are non-empty and reassembly is exercised. *)
let torn_offset p ~site len =
  if len <= 1 then len else 1 + draw_int p.Plan.seed (site ^ "\x00torn-offset") 0 (len - 1)

(* Seeded chunk size for dribbled short writes, in [1, 7]. *)
let short_write_chunk p ~site i =
  1 + draw_int p.Plan.seed (site ^ "\x00shortwrite-chunk") i 7

(* ------------------------------------------------------------------ *)
(* Text perturbations                                                  *)

(* Cut somewhere in the middle: always removes at least one byte of a
   non-empty text, never the whole thing (offset >= 1), biased away
   from the trivial near-full cut by drawing over the first 90%. *)
let truncate p ~site text =
  let n = String.length text in
  if n <= 1 then text
  else
    let keep = 1 + draw_int p.Plan.seed (site ^ "\x00truncate") 0 (n * 9 / 10) in
    String.sub text 0 (min keep (n - 1))

(* Flip up to three bytes.  XOR with a nonzero mask guarantees each
   touched byte really changes. *)
let garble p ~site text =
  let n = String.length text in
  if n = 0 then text
  else begin
    let b = Bytes.of_string text in
    let flips = 1 + draw_int p.Plan.seed (site ^ "\x00garble") 0 3 in
    for i = 1 to flips do
      let pos = draw_int p.Plan.seed (site ^ "\x00garble") i n in
      let mask = 1 + draw_int p.Plan.seed (site ^ "\x00garble-mask") i 255 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
    done;
    Bytes.to_string b
  end

let split_lines text = String.split_on_char '\n' text

let join_lines lines = String.concat "\n" lines

let pick_line p ~site ~kind lines =
  let eligible = List.length lines in
  if eligible = 0 then -1 else draw_int p.Plan.seed (site ^ "\x00" ^ kind) 0 eligible

let drop_line p ~site text =
  let lines = split_lines text in
  match pick_line p ~site ~kind:"drop" lines with
  | -1 -> text
  | i -> join_lines (List.filteri (fun j _ -> j <> i) lines)

let duplicate_line p ~site text =
  let lines = split_lines text in
  match pick_line p ~site ~kind:"dup" lines with
  | -1 -> text
  | i ->
      join_lines
        (List.concat (List.mapi (fun j l -> if j = i then [ l; l ] else [ l ]) lines))

let perturb p ~site kind text =
  match kind with
  | Plan.Truncate -> truncate p ~site text
  | Plan.Garble -> garble p ~site text
  | Plan.Drop_event -> drop_line p ~site text
  | Plan.Duplicate_event -> duplicate_line p ~site text
