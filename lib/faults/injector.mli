(** Seeded, site-keyed fault injection.

    Every tap point asks the injector one question: "is this site
    perturbed under the current plan, and how?".  A {e site} is a
    stable string naming the execution point independently of
    scheduling — a recorder site names (tool, benchmark, variant,
    trial, run id), a store site names (operation, stage, artifact
    key), a solver site names the instance's graph fingerprints.
    Decisions hash [(plan seed, site, kind)] through splitmix64, so
    they are reproducible across processes and across [-j] levels, and
    independent between sites and kinds. *)

(** {2 The process-wide plan}

    Mirrors the ASP prune toggle: set once at startup (CLI [--faults])
    or per-test, read lock-free from any domain. *)

val set_plan : Plan.t option -> unit
val plan : unit -> Plan.t option
val active : unit -> bool

(** Canonical rendering of the current plan, [""] when none — folded
    into every artifact-store key so faulted runs can never poison (or
    be served from) a clean run's cache. *)
val fingerprint : unit -> string

(** {2 Decisions} *)

(** [decide plan ~site ~kind rate] — true with probability [rate],
    deterministically per [(seed, site, kind)]. *)
val decide : Plan.t -> site:string -> kind:string -> float -> bool

(** First recorder fault that fires for this site under the current
    plan, in [Plan.t] declaration order; [None] when no plan is set.
    Increments the ["recorder"] injection counter. *)
val recorder_fault : site:string -> Plan.recorder_kind option

(** Same, for store I/O sites (["store"] counter). *)
val store_fault : site:string -> Plan.store_kind option

(** Whether the solver's step budget is forced to exhaustion at this
    site (["solver"] counter). *)
val solver_exhaust : site:string -> bool

(** First socket fault that fires for this site (["socket"] counter).
    A socket site names one request on one chaos connection (e.g.
    ["c3/r7"]), so the same plan abuses the same requests in every
    run. *)
val socket_fault : site:string -> Plan.socket_kind option

(** Seeded split point for a torn request line of [len] bytes: strictly
    inside the line when [len > 1], so both pieces are non-empty. *)
val torn_offset : Plan.t -> site:string -> int -> int

(** Seeded chunk size (in [[1, 7]]) for the [i]-th piece of a dribbled
    short write. *)
val short_write_chunk : Plan.t -> site:string -> int -> int

(** {2 Deterministic text perturbations}

    All offsets derive from [(plan seed, site)], never from randomness
    or clock state. *)

val truncate : Plan.t -> site:string -> string -> string
val garble : Plan.t -> site:string -> string -> string
val drop_line : Plan.t -> site:string -> string -> string
val duplicate_line : Plan.t -> site:string -> string -> string

(** Apply a recorder fault to serialized recorder output. *)
val perturb : Plan.t -> site:string -> Plan.recorder_kind -> string -> string

(** {2 Accounting}

    Process-wide injection counts per tap point (["recorder"],
    ["store"], ["solver"]), for operator-facing summaries.  Counts are
    deterministic for a fixed plan and suite because every decision
    is. *)

val injected : unit -> (string * int) list
val reset_counters : unit -> unit
