type recorder_kind = Drop_event | Duplicate_event | Truncate | Garble
type store_kind = Corrupt | Partial_write | Eio
type socket_kind = Stall_read | Torn_line | Disconnect | Short_write

type t = {
  seed : int;
  recorder : (recorder_kind * float) list;
  store : (store_kind * float) list;
  solver_exhaust : float;
  socket : (socket_kind * float) list;
}

let recorder_kind_name = function
  | Drop_event -> "drop"
  | Duplicate_event -> "dup"
  | Truncate -> "truncate"
  | Garble -> "garble"

let store_kind_name = function
  | Corrupt -> "corrupt"
  | Partial_write -> "partial"
  | Eio -> "eio"

let socket_kind_name = function
  | Stall_read -> "stall"
  | Torn_line -> "torn"
  | Disconnect -> "disconnect"
  | Short_write -> "shortwrite"

let recorder_kinds = [ Drop_event; Duplicate_event; Truncate; Garble ]
let store_kinds = [ Corrupt; Partial_write; Eio ]
let socket_kinds = [ Stall_read; Torn_line; Disconnect; Short_write ]

let empty = { seed = 1; recorder = []; store = []; solver_exhaust = 0.; socket = [] }

(* Canonical key order: seed first, then tap points in pipeline order.
   The rendering is part of the artifact-store key contract (a faulted
   run must never share cache entries with a clean one), so it is
   enumerated explicitly rather than derived. *)
let to_string t =
  let entry prefix name rate =
    if rate <= 0. then None else Some (Printf.sprintf "%s.%s=%g" prefix name rate)
  in
  let rate_of kinds k = Option.value (List.assoc_opt k kinds) ~default:0. in
  String.concat ","
    (List.filter_map Fun.id
       (Some (Printf.sprintf "seed=%d" t.seed)
       :: List.map
            (fun k -> entry "recorder" (recorder_kind_name k) (rate_of t.recorder k))
            recorder_kinds
       @ List.map (fun k -> entry "store" (store_kind_name k) (rate_of t.store k)) store_kinds
       @ [ entry "solver" "exhaust" t.solver_exhaust ]
       @ List.map (fun k -> entry "socket" (socket_kind_name k) (rate_of t.socket k)) socket_kinds))

let of_string spec =
  let ( let* ) = Result.bind in
  let rate key v =
    match float_of_string_opt v with
    | Some r when r >= 0. && r <= 1. -> Ok r
    | Some _ -> Error (Printf.sprintf "fault plan: %s rate %s is outside [0, 1]" key v)
    | None -> Error (Printf.sprintf "fault plan: %s expects a probability, got %S" key v)
  in
  let apply plan item =
    match String.index_opt item '=' with
    | None -> Error (Printf.sprintf "fault plan: expected key=value, got %S" item)
    | Some i -> (
        let key = String.trim (String.sub item 0 i) in
        let v = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
        match key with
        | "seed" -> (
            match int_of_string_opt v with
            | Some seed -> Ok { plan with seed }
            | None -> Error (Printf.sprintf "fault plan: seed expects an integer, got %S" v))
        | "recorder.drop" | "recorder.dup" | "recorder.truncate" | "recorder.garble" ->
            let* r = rate key v in
            let kind =
              match key with
              | "recorder.drop" -> Drop_event
              | "recorder.dup" -> Duplicate_event
              | "recorder.truncate" -> Truncate
              | _ -> Garble
            in
            Ok { plan with recorder = plan.recorder @ [ (kind, r) ] }
        | "store.corrupt" | "store.partial" | "store.eio" ->
            let* r = rate key v in
            let kind =
              match key with
              | "store.corrupt" -> Corrupt
              | "store.partial" -> Partial_write
              | _ -> Eio
            in
            Ok { plan with store = plan.store @ [ (kind, r) ] }
        | "solver.exhaust" ->
            let* r = rate key v in
            Ok { plan with solver_exhaust = r }
        | "socket.stall" | "socket.torn" | "socket.disconnect" | "socket.shortwrite" ->
            let* r = rate key v in
            let kind =
              match key with
              | "socket.stall" -> Stall_read
              | "socket.torn" -> Torn_line
              | "socket.disconnect" -> Disconnect
              | _ -> Short_write
            in
            Ok { plan with socket = plan.socket @ [ (kind, r) ] }
        | _ ->
            Error
              (Printf.sprintf
                 "fault plan: unknown key %S (expected seed, recorder.{drop,dup,truncate,garble}, \
                  store.{corrupt,partial,eio}, solver.exhaust or \
                  socket.{stall,torn,disconnect,shortwrite})"
                 key))
  in
  let items =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
  in
  if items = [] then Error "fault plan: empty spec"
  else List.fold_left (fun acc item -> Result.bind acc (fun p -> apply p item)) (Ok empty) items
