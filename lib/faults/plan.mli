(** Deterministic fault plans.

    A plan names the faults to inject at each pipeline boundary ("tap
    point") together with a per-site probability, plus the seed every
    injection decision derives from.  A plan carries no mutable state:
    whether a given site is perturbed is a pure function of
    [(seed, site, kind)], so two runs of the same plan — at any [-j] —
    inject exactly the same faults (see {!Injector}). *)

(** Perturbations of a recorder's native output (the text of a DOT
    graph, an OPUS store dump, or a CamFlow PROV-JSON document). *)
type recorder_kind =
  | Drop_event  (** delete one line/row of the output *)
  | Duplicate_event  (** repeat one line/row of the output *)
  | Truncate  (** cut the output short, as a killed recorder would *)
  | Garble  (** flip bytes in place, as a torn read would *)

(** Artifact-store I/O faults. *)
type store_kind =
  | Corrupt  (** entry bytes flipped at rest; decodes as a miss *)
  | Partial_write  (** entry persisted truncated, as a torn write *)
  | Eio  (** transient I/O error: reads miss, writes are dropped *)

(** Wire-level misbehaviour of a serve client, applied by the chaos
    client driver ({!Serve.Client.chaos_call}) — the daemon under test
    receives real socket abuse, not simulated flags. *)
type socket_kind =
  | Stall_read  (** send a partial request line, then go silent (slow loris) *)
  | Torn_line  (** split the request line across writes with a pause between *)
  | Disconnect  (** hang up right after sending, before reading the response *)
  | Short_write  (** dribble the request out in tiny seeded chunks *)

type t = {
  seed : int;
  recorder : (recorder_kind * float) list;  (** kind, per-site probability *)
  store : (store_kind * float) list;
  solver_exhaust : float;
      (** probability a solve runs with its step budget exhausted,
          forcing the ASP backend's [Unknown] path *)
  socket : (socket_kind * float) list;
}

val recorder_kind_name : recorder_kind -> string
val store_kind_name : store_kind -> string
val socket_kind_name : socket_kind -> string

(** No faults at all (seed 1): the identity plan. *)
val empty : t

(** [of_string spec] parses a comma-separated [key=value] plan spec,
    e.g. ["seed=7,recorder.truncate=0.2,store.eio=0.1,solver.exhaust=0.3"].
    Keys: [seed], [recorder.{drop,dup,truncate,garble}],
    [store.{corrupt,partial,eio}], [solver.exhaust],
    [socket.{stall,torn,disconnect,shortwrite}].  Probabilities
    must lie in [[0, 1]].  Unknown keys and malformed values are
    reported, not ignored. *)
val of_string : string -> (t, string) result

(** Canonical rendering: fixed key order, [%g] floats, zero-rate
    entries omitted.  [of_string (to_string p)] is [p] up to rate
    normalization; the rendering participates in artifact-store keys,
    so it must stay stable. *)
val to_string : t -> string
