let default_max_steps = 10_000_000

let encode g1 g2 =
  Datalog.Base.union
    (Datalog.Encode.graph_to_base ~gid:"1" g1)
    (Datalog.Encode.graph_to_base ~gid:"2" g2)

(* Each entry point carries the pipeline stage it serves as its memo
   tag, so the solve cache reports hits per stage. *)
let run ?(max_steps = default_max_steps) ~program ~memo ~find_optimal g1 g2 =
  let facts = encode g1 g2 in
  Asp.Engine.run ~max_steps ~find_optimal ~memo ~program ~facts ()

let similar ?max_steps g1 g2 =
  match
    run ?max_steps ~program:Asp.Listings.similarity ~memo:"similarity" ~find_optimal:false g1
      g2
  with
  | Asp.Engine.Model _ -> true
  | Asp.Engine.Unsat | Asp.Engine.Unknown -> false

let decode g1 outcome =
  match outcome with
  | Asp.Engine.Model { cost; atoms; optimal = _ } ->
      Some (Matching.of_pairs g1 (Asp.Engine.matching_of_atoms atoms) cost)
  | Asp.Engine.Unsat | Asp.Engine.Unknown -> None

let iso_min_cost ?max_steps g1 g2 =
  decode g1
    (run ?max_steps ~program:Asp.Listings.similarity_min_cost ~memo:"generalization"
       ~find_optimal:true g1 g2)

let sub_iso_min_cost ?max_steps g1 g2 =
  decode g1
    (run ?max_steps ~program:Asp.Listings.subgraph ~memo:"comparison" ~find_optimal:true g1 g2)
