let default_max_steps = 10_000_000

(* Candidate pruning is on by default and togglable process-wide (the
   CLI exposes --no-prune); reads are lock-free so parallel suite
   workers can consult it freely. *)
let prune_flag = Atomic.make true
let set_prune b = Atomic.set prune_flag b
let prune_enabled () = Atomic.get prune_flag

type task = Similarity | Generalization | Comparison

let encode g1 g2 =
  Datalog.Base.union
    (Datalog.Encode.graph_to_base ~gid:"1" g1)
    (Datalog.Encode.graph_to_base ~gid:"2" g2)

(* Colour-compatible candidate pairs.  The exact similarity check may
   use refined Weisfeiler-Leman colours: any label- and
   incidence-preserving bijection maps each element to an equally
   coloured one at every refinement round.  The cost-minimizing
   programs stay at round 0 (labels only) — their hard constraints
   guarantee no more than label and endpoint agreement, so deeper
   rounds could prune pairs an optimal approximate matching uses. *)
let cand_rounds = function
  | Similarity -> Pgraph.Fingerprint.default_rounds
  | Generalization | Comparison -> 0

let cand_pairs pred colours1 colours2 =
  let by_colour = Hashtbl.create 64 in
  List.iter
    (fun (id, c) ->
      let ids = Option.value ~default:[] (Hashtbl.find_opt by_colour c) in
      Hashtbl.replace by_colour c (id :: ids))
    colours2;
  List.concat_map
    (fun (id1, c) ->
      match Hashtbl.find_opt by_colour c with
      | None -> []
      | Some ids ->
          List.map
            (fun id2 ->
              Datalog.Fact.make pred
                [ Datalog.Fact.sym_of_string id1; Datalog.Fact.sym_of_string id2 ])
            ids)
    colours1

let cand_facts task g1 g2 =
  let rounds = cand_rounds task in
  let open Pgraph in
  cand_pairs Asp.Listings.node_cand_predicate
    (Fingerprint.node_colours ~rounds g1)
    (Fingerprint.node_colours ~rounds g2)
  @ cand_pairs Asp.Listings.edge_cand_predicate
      (Fingerprint.edge_colours ~rounds g1)
      (Fingerprint.edge_colours ~rounds g2)

let instance task g1 g2 =
  let base = encode g1 g2 in
  if prune_enabled () then
    let program =
      match task with
      | Similarity -> Asp.Listings.similarity_pruned
      | Generalization -> Asp.Listings.similarity_min_cost_pruned
      | Comparison -> Asp.Listings.subgraph_pruned
    in
    (program, Datalog.Base.union base (Datalog.Base.of_list (cand_facts task g1 g2)))
  else
    let program =
      match task with
      | Similarity -> Asp.Listings.similarity
      | Generalization -> Asp.Listings.similarity_min_cost
      | Comparison -> Asp.Listings.subgraph
    in
    (program, base)

(* Fault tap: a solve site is named by the memo tag and the two graphs'
   Weisfeiler-Leman fingerprints — content, not identity or schedule —
   so forced step-limit exhaustion is reproducible at any [-j].  A
   faulted solve keys the memo under its tiny [max_steps], never
   aliasing an honest solve of the same instance. *)
let solve_site memo g1 g2 =
  Printf.sprintf "solver:%s:%s:%s" memo
    (Pgraph.Fingerprint.to_hex (Pgraph.Fingerprint.of_graph g1))
    (Pgraph.Fingerprint.to_hex (Pgraph.Fingerprint.of_graph g2))

(* Canonical-instance solving: when canonicalization is enabled, the
   instance handed to the solver — and hence every solve-memo key
   derived from it — is built from canonically relabelled graphs, so
   renamed copies of the same pair hit the same memo entry.  Only the
   [h/2] matching atoms mention element ids; they are translated back
   through the inverse relabellings before decoding. *)
let translate_atoms f1 f2 atoms =
  List.map
    (fun (f : Datalog.Fact.t) ->
      if String.equal f.Datalog.Fact.pred Asp.Listings.matching_predicate then
        match f.Datalog.Fact.args with
        | [ x; y ] ->
            let back form t =
              Datalog.Fact.sym_of_string
                (Pgraph.Canon.of_canonical form (Datalog.Fact.string_of_term t))
            in
            Datalog.Fact.make f.Datalog.Fact.pred [ back f1 x; back f2 y ]
        | _ -> f
      else f)
    atoms

(* Each entry point carries the pipeline stage it serves as its memo
   tag, so the solve cache reports hits per stage.  Pruned and unpruned
   instances differ in both program text and cand facts, so they memoize
   under distinct keys automatically. *)
let run_task ?(max_steps = default_max_steps) ~memo ~find_optimal task g1 g2 =
  (* The fault tap keys on WL fingerprints, which are invariant under
     the relabelling below, so faulted sites fire identically with and
     without canonicalization. *)
  let max_steps =
    if Faults.Injector.solver_exhaust ~site:(solve_site memo g1 g2) then 0 else max_steps
  in
  let canonical =
    if Pgraph.Canon.is_enabled () then
      match (Pgraph.Canon.form g1, Pgraph.Canon.form g2) with
      | Some f1, Some f2 -> Some (f1, f2)
      | _ -> None
    else None
  in
  match canonical with
  | Some (f1, f2) -> (
      let c1 = Pgraph.Canon.relabel g1 f1 and c2 = Pgraph.Canon.relabel g2 f2 in
      let program, facts = instance task c1 c2 in
      match Asp.Engine.run ~max_steps ~find_optimal ~memo ~program ~facts () with
      | Asp.Engine.Model { cost; atoms; optimal } ->
          Asp.Engine.Model { cost; atoms = translate_atoms f1 f2 atoms; optimal }
      | outcome -> outcome)
  | None ->
      let program, facts = instance task g1 g2 in
      Asp.Engine.run ~max_steps ~find_optimal ~memo ~program ~facts ()

(* [Unknown] (step limit before any model) and non-optimal models (step
   limit before the optimality proof) both mean the solver ran out of
   budget: surface that so {!Engine} can fall back to VF2 instead of
   reporting a wrong verdict or a suboptimal witness. *)
let similar_checked ?max_steps g1 g2 =
  match run_task ?max_steps ~memo:"similarity" ~find_optimal:false Similarity g1 g2 with
  | Asp.Engine.Model _ -> Ok true
  | Asp.Engine.Unsat -> Ok false
  | Asp.Engine.Unknown -> Error `Step_limit

let similar ?max_steps g1 g2 =
  match similar_checked ?max_steps g1 g2 with Ok b -> b | Error `Step_limit -> false

let decode g1 outcome =
  match outcome with
  | Asp.Engine.Model { cost; atoms; optimal = true } ->
      Ok (Some (Matching.of_pairs g1 (Asp.Engine.matching_of_atoms atoms) cost))
  | Asp.Engine.Model { optimal = false; _ } | Asp.Engine.Unknown -> Error `Step_limit
  | Asp.Engine.Unsat -> Ok None

let iso_min_cost_checked ?max_steps g1 g2 =
  decode g1 (run_task ?max_steps ~memo:"generalization" ~find_optimal:true Generalization g1 g2)

let sub_iso_min_cost_checked ?max_steps g1 g2 =
  decode g1 (run_task ?max_steps ~memo:"comparison" ~find_optimal:true Comparison g1 g2)

(* The unchecked entry points keep the historical behaviour (a limited
   non-optimal model is still returned; [Unknown] maps to [None]). *)
let unchecked ?max_steps memo task g1 g2 =
  match run_task ?max_steps ~memo ~find_optimal:true task g1 g2 with
  | Asp.Engine.Model { cost; atoms; optimal = _ } ->
      Some (Matching.of_pairs g1 (Asp.Engine.matching_of_atoms atoms) cost)
  | Asp.Engine.Unsat | Asp.Engine.Unknown -> None

let iso_min_cost ?max_steps g1 g2 = unchecked ?max_steps "generalization" Generalization g1 g2

let sub_iso_min_cost ?max_steps g1 g2 = unchecked ?max_steps "comparison" Comparison g1 g2
