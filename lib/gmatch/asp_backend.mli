(** Graph matching through the mini-ASP solver, using the paper's
    Listing 3 / Listing 4 specifications: the two graphs are encoded as
    Datalog facts under graph ids [1] and [2], the program is parsed,
    grounded and solved, and the [h/2] atoms of the optimal model are
    decoded back into a {!Matching.t}.

    By default the choice generators are restricted to colour-compatible
    candidate pairs computed from {!Pgraph.Fingerprint} colour classes
    (the pruned Listings variants), which shrinks the grounded [h]
    search space without changing any verdict or optimal cost.  Disable
    with {!set_prune} to run the verbatim paper encodings. *)

(** Step budget handed to the solver; raise for very large graphs. *)
val default_max_steps : int

(** Process-wide toggle for candidate pruning (default [true]).
    Thread-safe; the CLI surfaces it as [--no-prune]. *)
val set_prune : bool -> unit

val prune_enabled : unit -> bool

(** The three matching subproblems of the pipeline: exact similarity
    (Listing 3, any model), bijective min-cost alignment for
    generalization (Listing 3 + cost), approximate subgraph isomorphism
    for comparison (Listing 4). *)
type task = Similarity | Generalization | Comparison

(** [instance task g1 g2] builds the (program, facts) pair that [task]
    would solve, honouring the current prune setting — exposed for
    benchmarks that need to ground without solving. *)
val instance : task -> Pgraph.Graph.t -> Pgraph.Graph.t -> string * Datalog.Base.t

val similar : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

val iso_min_cost : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

val sub_iso_min_cost : ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** {2 Step-limit-aware variants}

    The plain entry points above fold solver exhaustion into their
    answer ([Unknown] reads as "not similar" / "no matching"), which is
    the historical behaviour but conflates "proved absent" with "ran
    out of budget".  The [_checked] variants separate the two so
    {!Engine} can fall back to the VF2 backend when the solver gives up
    — including when a min-cost solve returns a model it could not
    prove optimal.  Solver exhaustion is also a fault-injection tap
    point ([solver.exhaust] in {!Faults.Plan.t}): an injected site runs
    with a zero step budget and reports [`Step_limit]. *)

val similar_checked :
  ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> (bool, [ `Step_limit ]) result

val iso_min_cost_checked :
  ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> (Matching.t option, [ `Step_limit ]) result

val sub_iso_min_cost_checked :
  ?max_steps:int -> Pgraph.Graph.t -> Pgraph.Graph.t -> (Matching.t option, [ `Step_limit ]) result
