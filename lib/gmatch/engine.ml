(* [Auto] is the planner: instead of one fixed solver it consults
   [Planner] per instance — sound bypasses first (canonical digests,
   delta witness reuse), then calibrated argmin dispatch where the
   output cannot depend on the choice (similarity verdicts), and the
   default fixed solver where it could (witness-producing solves).
   It is a distinct variant rather than a process-wide flag so that
   explicitly configured backends keep today's behaviour bit for bit,
   and so "auto" flows into Config.backend_fp like any other backend
   name — cached artifacts never mix planner and fixed-mode runs. *)
type backend = Asp | Direct | Incremental | Auto

let default_backend = Direct

let backend_of_string = function
  | "asp" -> Ok Asp
  | "direct" | "vf2" -> Ok Direct
  | "incremental" | "inc" -> Ok Incremental
  | "auto" -> Ok Auto
  | s ->
      Error (Printf.sprintf "unknown matching backend %S (expected asp, direct, incremental or auto)" s)

let backend_to_string = function
  | Asp -> "asp"
  | Direct -> "direct"
  | Incremental -> "incremental"
  | Auto -> "auto"

(* Process-wide toggle, same discipline as Asp_backend.prune_flag: it
   changes answers only when the ASP solver exhausts its budget, and it
   participates in Config.backend_fp so cached artifacts key on it. *)
let fallback_flag = Atomic.make true
let set_fallback b = Atomic.set fallback_flag b
let fallback_enabled () = Atomic.get fallback_flag

(* Degradation notes are collected per domain.  A benchmark's pipeline
   runs sequentially on one worker domain, so the notes drained after a
   stage are exactly that stage's — deterministic at any [-j].  Notes
   are recorded in emission order and deduplicated on drain. *)
let notes_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let note msg =
  let r = Domain.DLS.get notes_key in
  r := msg :: !r

let drain_notes () =
  let r = Domain.DLS.get notes_key in
  let notes = List.rev !r in
  r := [];
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] notes

(* Monotonic count of every step-limit degradation, across all domains
   and operations: the serve daemon's circuit breaker watches this to
   decide when repeated ASP exhaustion should trip requests straight to
   VF2 for a cooldown window. *)
let degraded_counter = Atomic.make 0
let degraded_total () = Atomic.get degraded_counter

let degraded op =
  Atomic.incr degraded_counter;
  note (Printf.sprintf "asp %s hit its step limit; fell back to vf2" op)

(* ------------------------------------------------------------------ *)
(* Canonical-form fast path                                            *)

(* Solves avoided through Pgraph.Canon, counted per pipeline stage tag
   (same tags as the solve memo).  The counts are a pure function of
   the graphs checked, never of scheduling, so they are safe to print
   in deterministic output. *)
let similarity_skips = Atomic.make 0
let generalization_skips = Atomic.make 0
let comparison_skips = Atomic.make 0

let counter_of = function
  | "similarity" -> Some similarity_skips
  | "generalization" -> Some generalization_skips
  | "comparison" -> Some comparison_skips
  | _ -> None

let canon_skip tag = Option.iter (fun c -> Atomic.incr c) (counter_of tag)

let canon_skips () =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("comparison", Atomic.get comparison_skips);
      ("generalization", Atomic.get generalization_skips);
      ("similarity", Atomic.get similarity_skips);
    ]
  |> List.sort compare

let canon_skip_total () = List.fold_left (fun acc (_, n) -> acc + n) 0 (canon_skips ())

let reset_canon_skips () =
  List.iter (fun c -> Atomic.set c 0) [ similarity_skips; generalization_skips; comparison_skips ]

(* ------------------------------------------------------------------ *)
(* Segmented matching                                                  *)

(* Same process-wide discipline as the prune/canon/fallback flags: the
   toggle (CLI [--no-segment]) and the size threshold participate in
   Config.backend_fp, because segmentation preserves verdicts and
   optimal costs but may pick a different optimal witness than the
   whole-graph solver. *)
let segment_flag = Atomic.make true
let set_segmentation b = Atomic.set segment_flag b
let segmentation_enabled () = Atomic.get segment_flag

(* Below this size whole-graph solving beats the decomposition's
   overhead (and the suite's recorder graphs all stay below it, which
   keeps suite output byte-identical with segmentation on or off). *)
let default_segment_min_nodes = 64
let segment_min_nodes_ref = Atomic.make default_segment_min_nodes
let set_segment_min_nodes n = Atomic.set segment_min_nodes_ref (max 0 n)
let segment_min_nodes () = Atomic.get segment_min_nodes_ref

let segmentable g1 g2 =
  segmentation_enabled ()
  && max (Pgraph.Graph.node_count g1) (Pgraph.Graph.node_count g2) >= segment_min_nodes ()

(* Segment solves are independent, so a pool may run them in parallel.
   The engine cannot depend on Core's domain pool (the dependency goes
   the other way), so the runner is injected: it must run every thunk
   to completion before returning — each thunk writes one slot of a
   result array, so completion order is irrelevant and results are
   deterministic at any parallelism.  [None] runs them sequentially. *)
let segment_runner : ((unit -> unit) list -> unit) option Atomic.t = Atomic.make None
let set_segment_runner r = Atomic.set segment_runner r

let run_segment_thunks thunks =
  match Atomic.get segment_runner with
  | Some run -> run thunks
  | None -> List.iter (fun f -> f ()) thunks

(* Counters, same shape as the canon skip counters: pure functions of
   the pairs checked, never of scheduling.  "skips" are pairs refuted
   outright by the quotient prepass; "pairs" went through segmented
   solving; "solves" counts the individual segment instances; and
   "fallbacks" counts stitched witnesses that failed verification and
   were re-solved whole (a should-not-happen safety net). *)
let seg_sim_skips = Atomic.make 0
let seg_gen_skips = Atomic.make 0
let seg_sim_pairs = Atomic.make 0
let seg_gen_pairs = Atomic.make 0
let seg_solve_count = Atomic.make 0
let seg_fallback_count = Atomic.make 0

let seg_counter_of tbl = function
  | "similarity" -> Some (fst tbl)
  | "generalization" -> Some (snd tbl)
  | _ -> None

let seg_skip tag =
  Option.iter (fun c -> Atomic.incr c) (seg_counter_of (seg_sim_skips, seg_gen_skips) tag)

let seg_mark_pair tag =
  Option.iter (fun c -> Atomic.incr c) (seg_counter_of (seg_sim_pairs, seg_gen_pairs) tag)

let nonzero_sorted entries = List.filter (fun (_, n) -> n > 0) entries |> List.sort compare

let segment_skips () =
  nonzero_sorted
    [
      ("generalization", Atomic.get seg_gen_skips); ("similarity", Atomic.get seg_sim_skips);
    ]

let segment_pairs () =
  nonzero_sorted
    [
      ("generalization", Atomic.get seg_gen_pairs); ("similarity", Atomic.get seg_sim_pairs);
    ]

let segment_solves () = Atomic.get seg_solve_count
let segment_fallbacks () = Atomic.get seg_fallback_count

let reset_segment_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      seg_sim_skips; seg_gen_skips; seg_sim_pairs; seg_gen_pairs; seg_solve_count;
      seg_fallback_count;
    ]

(* ------------------------------------------------------------------ *)
(* Planner dispatch helpers                                            *)

(* Time a dispatched solve, feed the measured duration back into the
   planner's calibration table and log the decision (per-candidate
   counter + per-domain span-tag line with predicted vs actual). *)
let planner_dispatch ~task c feats f =
  let predicted = Planner.predict c feats in
  let t0 = Planner.now_s () in
  let r = f () in
  let dur = Planner.now_s () -. t0 in
  Planner.observe c ~nodes:feats.Planner.f_nodes dur;
  Planner.note ~task c ~predicted ~actual:dur;
  r

(* The delta path under Auto: only a hit is a decision (a miss costs a
   cached rigidity lookup and falls through to the normal dispatch). *)
let auto_delta ~task ~sub f1 f2 g1 g2 =
  let t0 = Planner.now_s () in
  match Incremental.delta ~sub f1 f2 g1 g2 with
  | Some m ->
      let dur = Planner.now_s () -. t0 in
      let feats = Planner.features ~forms:true g1 g2 in
      Planner.observe Planner.Delta ~nodes:feats.Planner.f_nodes dur;
      Planner.note ~task Planner.Delta ~predicted:(Planner.predict Planner.Delta feats) ~actual:dur;
      Some m
  | None -> None

let canon_pair g1 g2 =
  if Pgraph.Canon.is_enabled () then
    match (Pgraph.Canon.form g1, Pgraph.Canon.form g2) with
    | Some f1, Some f2 -> Some (f1, f2)
    | _ -> None
  else None

let same_digest (f1 : Pgraph.Canon.form) (f2 : Pgraph.Canon.form) =
  String.equal f1.Pgraph.Canon.digest f2.Pgraph.Canon.digest

(* The canonical witness is usable for a cost-minimizing matching only
   when its property mismatch cost is zero: cost 0 is trivially optimal
   (costs are non-negative), and a zero-cost matching makes the
   downstream result witness-independent — generalization intersects
   away nothing, comparison subtracts the whole (equal-sized) graph.
   Any positive cost falls through to the solver, whose choice among
   cost-minimal witnesses is part of the observable answer. *)
let zero_cost_witness g1 g2 f1 f2 =
  let m = Matching.of_pairs g1 (Pgraph.Canon.witness f1 f2) 0 in
  if Matching.cost_of g1 g2 m = 0 then Some m else None

(* ------------------------------------------------------------------ *)
(* Segment solving proper.

   Per-segment solves call the backend layers directly (never the
   noting wrappers below): a degrading segment records a flag in its
   result slot instead of a note, and the caller emits one degradation
   note on its own domain after all segments finish.  This keeps the
   merged result tagged degraded exactly once — and keeps notes off the
   pool's worker domains, whose per-domain note buffers the submitting
   benchmark never drains. *)

let segment_similar ~backend (p : Pgraph.Summarize.plan) =
  let segs = Array.of_list p.Pgraph.Summarize.segments in
  let n = Array.length segs in
  let verdicts = Array.make n true in
  let degraded_segs = Array.make n false in
  let thunk i () =
    let s = segs.(i) in
    Atomic.incr seg_solve_count;
    let left = s.Pgraph.Summarize.left and right = s.Pgraph.Summarize.right in
    verdicts.(i) <-
      (match backend with
      (* Auto's segment instances stay on VF2: they are small by
         construction (bounded by the largest ambiguous component) and
         a per-segment calibrated choice could flip memo counters with
         scheduling.  The planner's segmented-vs-whole accounting
         happens at the plan level, on the calling domain. *)
      | Direct | Auto -> Vf2.similar left right
      | Incremental -> Incremental.similar left right
      | Asp -> (
          match Asp_backend.similar_checked left right with
          | Ok b -> b
          | Error `Step_limit ->
              if fallback_enabled () then begin
                degraded_segs.(i) <- true;
                Vf2.similar left right
              end
              else false))
  in
  run_segment_thunks (List.init n thunk);
  if Array.exists Fun.id degraded_segs then degraded "similarity";
  Array.for_all Fun.id verdicts

exception Stitch_mismatch

let segment_iso ~backend g1 g2 (p : Pgraph.Summarize.plan) =
  let segs = Array.of_list p.Pgraph.Summarize.segments in
  let n = Array.length segs in
  let witnesses = Array.make n None in
  let degraded_segs = Array.make n false in
  let thunk i () =
    let s = segs.(i) in
    Atomic.incr seg_solve_count;
    let left = s.Pgraph.Summarize.left and right = s.Pgraph.Summarize.right in
    witnesses.(i) <-
      (match backend with
      | Direct | Auto -> Vf2.iso_min_cost left right
      | Incremental -> Incremental.iso_min_cost left right
      | Asp -> (
          match Asp_backend.iso_min_cost_checked left right with
          | Ok m -> m
          | Error `Step_limit ->
              if fallback_enabled () then begin
                degraded_segs.(i) <- true;
                Vf2.iso_min_cost left right
              end
              else Asp_backend.iso_min_cost left right))
  in
  run_segment_thunks (List.init n thunk);
  if Array.exists Fun.id degraded_segs then degraded "generalization";
  if Array.exists Option.is_none witnesses then
    (* A segment with no bijection refutes the whole pair: every global
       matching restricts to a valid matching of each segment instance. *)
    None
  else
    let seg_pairs =
      Array.to_list witnesses
      |> List.map (fun m ->
             let m = Option.get m in
             m.Matching.node_map @ m.Matching.edge_map)
    in
    let pairs = Pgraph.Summarize.stitch p seg_pairs in
    let probe = Matching.of_pairs g1 pairs 0 in
    let m = { probe with Matching.cost = Matching.cost_of g1 g2 probe } in
    (* Safety net: the decomposition argument says this cannot fail, but
       a wrong stitched witness must never leave the engine — fall back
       to the whole-graph solver instead. *)
    (match Matching.verify ~sub:false g1 g2 m with
    | Ok () -> ()
    | Error _ -> raise Stitch_mismatch);
    Some m

let similar ?(backend = default_backend) g1 g2 =
  let asp_similar () =
    match Asp_backend.similar_checked g1 g2 with
    | Ok b -> b
    | Error `Step_limit ->
        if fallback_enabled () then begin
          degraded "similarity";
          Vf2.similar g1 g2
        end
        else false
  in
  let whole () =
    match backend with
    | Asp -> asp_similar ()
    | Direct -> Vf2.similar g1 g2
    | Incremental -> Incremental.similar g1 g2
    | Auto ->
        (* A verdict is backend-independent, so the calibrated argmin
           is free to follow the cost model wherever it points — but
           nothing observable may depend on where it pointed.  The
           incremental and ASP dispatches run with their counters muted
           (those counters feed the batch CLI's deterministic stats
           epilogue), and a step-limited ASP bet falls back to the
           exact VF2 verdict with no degradation marker: the planner
           merely lost its wager, the answer is one exact solve away. *)
        let feats = Planner.features g1 g2 in
        let c = Planner.choose_similar feats in
        planner_dispatch ~task:"similarity" c feats (fun () ->
            match c with
            | Planner.Incr -> Incremental.similar ~counted:false g1 g2
            | Planner.Asp -> (
                match Asp.Memo.quietly (fun () -> Asp_backend.similar_checked g1 g2) with
                | Ok b -> b
                | Error `Step_limit -> Vf2.similar g1 g2)
            | _ -> Vf2.similar g1 g2)
  in
  match canon_pair g1 g2 with
  | Some (f1, f2) ->
      (* Digest equality is exactly label-isomorphism, which is exactly
         the Section 3.4 similarity every backend decides. *)
      canon_skip "similarity";
      same_digest f1 f2
  | None ->
      if segmentable g1 g2 then
        match Pgraph.Summarize.plan g1 g2 with
        | Pgraph.Summarize.Mismatch ->
            seg_skip "similarity";
            false
        | Pgraph.Summarize.Whole -> whole ()
        | Pgraph.Summarize.Segmented p ->
            seg_mark_pair "similarity";
            if backend = Auto then
              planner_dispatch ~task:"similarity" Planner.Seg (Planner.features g1 g2) (fun () ->
                  segment_similar ~backend p)
            else segment_similar ~backend p
      else whole ()

let generalization_matching ?(backend = default_backend) g1 g2 =
  let whole () =
    match backend with
    | Asp -> (
        match Asp_backend.iso_min_cost_checked g1 g2 with
        | Ok m -> m
        | Error `Step_limit ->
            if fallback_enabled () then begin
              degraded "generalization";
              Vf2.iso_min_cost g1 g2
            end
            else Asp_backend.iso_min_cost g1 g2)
    | Direct -> Vf2.iso_min_cost g1 g2
    | Incremental -> Incremental.iso_min_cost g1 g2
    | Auto ->
        (* Witness-producing: the optimal witness is part of the
           observable answer, so the choice may not float with the
           calibration.  When no sound bypass applied (digest, delta)
           Auto runs the default backend; the dispatch still feeds the
           cost model and the decision log, keeping predictions
           auditable on exactly the instances a bypass missed. *)
        let feats = Planner.features ~forms:false g1 g2 in
        planner_dispatch ~task:"generalization" Planner.Vf2 feats (fun () -> Vf2.iso_min_cost g1 g2)
  in
  let solve () =
    if segmentable g1 g2 then
      match Pgraph.Summarize.plan g1 g2 with
      | Pgraph.Summarize.Mismatch ->
          seg_skip "generalization";
          None
      | Pgraph.Summarize.Whole -> whole ()
      | Pgraph.Summarize.Segmented p -> (
          seg_mark_pair "generalization";
          let segmented () =
            try segment_iso ~backend g1 g2 p
            with Stitch_mismatch ->
              Atomic.incr seg_fallback_count;
              whole ()
          in
          if backend = Auto then
            planner_dispatch ~task:"generalization" Planner.Seg (Planner.features g1 g2) segmented
          else segmented ())
    else whole ()
  in
  match canon_pair g1 g2 with
  | Some (f1, f2) when not (same_digest f1 f2) ->
      (* Not label-isomorphic: no bijective matching exists. *)
      canon_skip "generalization";
      None
  | Some (f1, f2) -> (
      match zero_cost_witness g1 g2 f1 f2 with
      | Some m ->
          canon_skip "generalization";
          Some m
      | None when backend = Auto -> (
          (* Same structure, transient property deltas: reuse the
             provably unique witness instead of solving cold. *)
          match auto_delta ~task:"generalization" ~sub:false f1 f2 g1 g2 with
          | Some m -> Some m
          | None -> solve ())
      | None -> solve ())
  | None -> solve ()

let subgraph_matching ?(backend = default_backend) g1 g2 =
  let solve () =
    match backend with
    | Asp -> (
        match Asp_backend.sub_iso_min_cost_checked g1 g2 with
        | Ok m -> m
        | Error `Step_limit ->
            if fallback_enabled () then begin
              degraded "comparison";
              Vf2.sub_iso_min_cost g1 g2
            end
            else Asp_backend.sub_iso_min_cost g1 g2)
    | Direct -> Vf2.sub_iso_min_cost g1 g2
    | Incremental -> Incremental.sub_iso_min_cost g1 g2
    | Auto ->
        (* Witness-producing, like generalization: fixed dispatch with
           the cost model auditing the prediction. *)
        let feats = Planner.features ~forms:false g1 g2 in
        planner_dispatch ~task:"comparison" Planner.Vf2 feats (fun () -> Vf2.sub_iso_min_cost g1 g2)
  in
  (* Unequal digests prove nothing here (a proper subgraph embedding
     may still exist), so only the equal-digest zero-cost case can
     bypass the search.  Equal digests pin equal sizes, which is what
     extends the delta path's uniqueness argument to embeddings. *)
  match canon_pair g1 g2 with
  | Some (f1, f2) when same_digest f1 f2 -> (
      match zero_cost_witness g1 g2 f1 f2 with
      | Some m ->
          canon_skip "comparison";
          Some m
      | None when backend = Auto -> (
          match auto_delta ~task:"comparison" ~sub:true f1 f2 g1 g2 with
          | Some m -> Some m
          | None -> solve ())
      | None -> solve ())
  | _ -> solve ()
