type backend = Asp | Direct | Incremental

let default_backend = Direct

let backend_of_string = function
  | "asp" -> Ok Asp
  | "direct" | "vf2" -> Ok Direct
  | "incremental" | "inc" -> Ok Incremental
  | s -> Error (Printf.sprintf "unknown matching backend %S (expected asp, direct or incremental)" s)

let backend_to_string = function
  | Asp -> "asp"
  | Direct -> "direct"
  | Incremental -> "incremental"

(* Process-wide toggle, same discipline as Asp_backend.prune_flag: it
   changes answers only when the ASP solver exhausts its budget, and it
   participates in Config.backend_fp so cached artifacts key on it. *)
let fallback_flag = Atomic.make true
let set_fallback b = Atomic.set fallback_flag b
let fallback_enabled () = Atomic.get fallback_flag

(* Degradation notes are collected per domain.  A benchmark's pipeline
   runs sequentially on one worker domain, so the notes drained after a
   stage are exactly that stage's — deterministic at any [-j].  Notes
   are recorded in emission order and deduplicated on drain. *)
let notes_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let note msg =
  let r = Domain.DLS.get notes_key in
  r := msg :: !r

let drain_notes () =
  let r = Domain.DLS.get notes_key in
  let notes = List.rev !r in
  r := [];
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] notes

let degraded op =
  note (Printf.sprintf "asp %s hit its step limit; fell back to vf2" op)

(* ------------------------------------------------------------------ *)
(* Canonical-form fast path                                            *)

(* Solves avoided through Pgraph.Canon, counted per pipeline stage tag
   (same tags as the solve memo).  The counts are a pure function of
   the graphs checked, never of scheduling, so they are safe to print
   in deterministic output. *)
let similarity_skips = Atomic.make 0
let generalization_skips = Atomic.make 0
let comparison_skips = Atomic.make 0

let counter_of = function
  | "similarity" -> Some similarity_skips
  | "generalization" -> Some generalization_skips
  | "comparison" -> Some comparison_skips
  | _ -> None

let canon_skip tag = Option.iter (fun c -> Atomic.incr c) (counter_of tag)

let canon_skips () =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("comparison", Atomic.get comparison_skips);
      ("generalization", Atomic.get generalization_skips);
      ("similarity", Atomic.get similarity_skips);
    ]
  |> List.sort compare

let canon_skip_total () = List.fold_left (fun acc (_, n) -> acc + n) 0 (canon_skips ())

let reset_canon_skips () =
  List.iter (fun c -> Atomic.set c 0) [ similarity_skips; generalization_skips; comparison_skips ]

let canon_pair g1 g2 =
  if Pgraph.Canon.is_enabled () then
    match (Pgraph.Canon.form g1, Pgraph.Canon.form g2) with
    | Some f1, Some f2 -> Some (f1, f2)
    | _ -> None
  else None

let same_digest (f1 : Pgraph.Canon.form) (f2 : Pgraph.Canon.form) =
  String.equal f1.Pgraph.Canon.digest f2.Pgraph.Canon.digest

(* The canonical witness is usable for a cost-minimizing matching only
   when its property mismatch cost is zero: cost 0 is trivially optimal
   (costs are non-negative), and a zero-cost matching makes the
   downstream result witness-independent — generalization intersects
   away nothing, comparison subtracts the whole (equal-sized) graph.
   Any positive cost falls through to the solver, whose choice among
   cost-minimal witnesses is part of the observable answer. *)
let zero_cost_witness g1 g2 f1 f2 =
  let m = Matching.of_pairs g1 (Pgraph.Canon.witness f1 f2) 0 in
  if Matching.cost_of g1 g2 m = 0 then Some m else None

let similar ?(backend = default_backend) g1 g2 =
  match canon_pair g1 g2 with
  | Some (f1, f2) ->
      (* Digest equality is exactly label-isomorphism, which is exactly
         the Section 3.4 similarity every backend decides. *)
      canon_skip "similarity";
      same_digest f1 f2
  | None -> (
      match backend with
      | Asp -> (
          match Asp_backend.similar_checked g1 g2 with
          | Ok b -> b
          | Error `Step_limit ->
              if fallback_enabled () then begin
                degraded "similarity";
                Vf2.similar g1 g2
              end
              else false)
      | Direct -> Vf2.similar g1 g2
      | Incremental -> Incremental.similar g1 g2)

let generalization_matching ?(backend = default_backend) g1 g2 =
  let solve () =
    match backend with
    | Asp -> (
        match Asp_backend.iso_min_cost_checked g1 g2 with
        | Ok m -> m
        | Error `Step_limit ->
            if fallback_enabled () then begin
              degraded "generalization";
              Vf2.iso_min_cost g1 g2
            end
            else Asp_backend.iso_min_cost g1 g2)
    | Direct -> Vf2.iso_min_cost g1 g2
    | Incremental -> Incremental.iso_min_cost g1 g2
  in
  match canon_pair g1 g2 with
  | Some (f1, f2) when not (same_digest f1 f2) ->
      (* Not label-isomorphic: no bijective matching exists. *)
      canon_skip "generalization";
      None
  | Some (f1, f2) -> (
      match zero_cost_witness g1 g2 f1 f2 with
      | Some m ->
          canon_skip "generalization";
          Some m
      | None -> solve ())
  | None -> solve ()

let subgraph_matching ?(backend = default_backend) g1 g2 =
  let solve () =
    match backend with
    | Asp -> (
        match Asp_backend.sub_iso_min_cost_checked g1 g2 with
        | Ok m -> m
        | Error `Step_limit ->
            if fallback_enabled () then begin
              degraded "comparison";
              Vf2.sub_iso_min_cost g1 g2
            end
            else Asp_backend.sub_iso_min_cost g1 g2)
    | Direct -> Vf2.sub_iso_min_cost g1 g2
    | Incremental -> Incremental.sub_iso_min_cost g1 g2
  in
  (* Unequal digests prove nothing here (a proper subgraph embedding
     may still exist), so only the equal-digest zero-cost case can
     bypass the search. *)
  match canon_pair g1 g2 with
  | Some (f1, f2) when same_digest f1 f2 -> (
      match zero_cost_witness g1 g2 f1 f2 with
      | Some m ->
          canon_skip "comparison";
          Some m
      | None -> solve ())
  | _ -> solve ()
