type backend = Asp | Direct | Incremental

let default_backend = Direct

let backend_of_string = function
  | "asp" -> Ok Asp
  | "direct" | "vf2" -> Ok Direct
  | "incremental" | "inc" -> Ok Incremental
  | s -> Error (Printf.sprintf "unknown matching backend %S (expected asp, direct or incremental)" s)

let backend_to_string = function
  | Asp -> "asp"
  | Direct -> "direct"
  | Incremental -> "incremental"

(* Process-wide toggle, same discipline as Asp_backend.prune_flag: it
   changes answers only when the ASP solver exhausts its budget, and it
   participates in Config.backend_fp so cached artifacts key on it. *)
let fallback_flag = Atomic.make true
let set_fallback b = Atomic.set fallback_flag b
let fallback_enabled () = Atomic.get fallback_flag

(* Degradation notes are collected per domain.  A benchmark's pipeline
   runs sequentially on one worker domain, so the notes drained after a
   stage are exactly that stage's — deterministic at any [-j].  Notes
   are recorded in emission order and deduplicated on drain. *)
let notes_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let note msg =
  let r = Domain.DLS.get notes_key in
  r := msg :: !r

let drain_notes () =
  let r = Domain.DLS.get notes_key in
  let notes = List.rev !r in
  r := [];
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] notes

let degraded op =
  note (Printf.sprintf "asp %s hit its step limit; fell back to vf2" op)

let similar ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> (
      match Asp_backend.similar_checked g1 g2 with
      | Ok b -> b
      | Error `Step_limit ->
          if fallback_enabled () then begin
            degraded "similarity";
            Vf2.similar g1 g2
          end
          else false)
  | Direct -> Vf2.similar g1 g2
  | Incremental -> Incremental.similar g1 g2

let generalization_matching ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> (
      match Asp_backend.iso_min_cost_checked g1 g2 with
      | Ok m -> m
      | Error `Step_limit ->
          if fallback_enabled () then begin
            degraded "generalization";
            Vf2.iso_min_cost g1 g2
          end
          else Asp_backend.iso_min_cost g1 g2)
  | Direct -> Vf2.iso_min_cost g1 g2
  | Incremental -> Incremental.iso_min_cost g1 g2

let subgraph_matching ?(backend = default_backend) g1 g2 =
  match backend with
  | Asp -> (
      match Asp_backend.sub_iso_min_cost_checked g1 g2 with
      | Ok m -> m
      | Error `Step_limit ->
          if fallback_enabled () then begin
            degraded "comparison";
            Vf2.sub_iso_min_cost g1 g2
          end
          else Asp_backend.sub_iso_min_cost g1 g2)
  | Direct -> Vf2.sub_iso_min_cost g1 g2
  | Incremental -> Incremental.sub_iso_min_cost g1 g2
