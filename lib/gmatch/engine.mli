(** Backend-dispatching entry points used by the ProvMark pipeline.

    [Asp] runs the paper's Listing 3/4 specifications through the
    mini-ASP solver (the reference semantics); [Direct] runs the native
    VF2-style matcher (much faster on larger graphs).  Both compute the
    same answers — this is enforced by the property-based test suite. *)

type backend =
  | Asp
  | Direct
  | Incremental
      (** creation-order greedy alignment with certified optimality and
          exact fallback (the paper's Section 5.4 suggestion); always
          returns the same answers as [Direct] *)
  | Auto
      (** per-instance cost-based dispatch through {!Planner}: sound
          bypasses first (canonical digests; {!Incremental.delta}
          witness reuse on rigid transient-only pairs), calibrated
          argmin among the solvers for similarity verdicts, and the
          default backend for witness-producing solves — so output is
          byte-identical to the fixed default while the hot path takes
          whichever sound strategy is cheapest.  Participates in
          [Config.backend_fp] as ["auto"] like any fixed backend. *)

val default_backend : backend

val backend_of_string : string -> (backend, string) result
val backend_to_string : backend -> string

(** {2 Graceful degradation}

    When the [Asp] backend exhausts its step budget (genuinely, or
    through an injected [solver.exhaust] fault), the engine falls back
    to the VF2 matcher instead of reporting a wrong verdict, and leaves
    a degradation note behind.  Fallback is on by default and togglable
    process-wide (the CLI exposes [--fallback]); the flag participates
    in the pipeline's backend fingerprint so cached artifacts never mix
    fallback and non-fallback answers. *)

val set_fallback : bool -> unit
val fallback_enabled : unit -> bool

(** Process-lifetime count of step-limit degradations: one per
    degradation note (a whole-graph fallback, or a segmented solve with
    at least one degraded segment).  Monotonic; the serve daemon's
    circuit breaker trips on its rate. *)
val degraded_total : unit -> int

(** {2 Canonical-form fast path}

    When {!Pgraph.Canon} is enabled (the default), the entry points
    below consult canonical digests before grounding anything: digest
    equality decides {!similar} outright; unequal digests make
    {!generalization_matching} return [None]; and an equal-digest pair
    whose canonical witness has zero property-mismatch cost is answered
    with that witness directly (zero cost is trivially optimal and
    makes the downstream generalization/comparison result independent
    of which optimal witness is chosen, so the bypass is byte-identical
    to solving).  Each avoided solve is counted under its pipeline
    stage tag. *)

(** [canon_skip tag] records one solver bypass for stage [tag]
    (["similarity"], ["generalization"] or ["comparison"]; other tags
    are ignored).  Exposed for {!Core}'s digest-bucketing class
    builder, which skips whole pairwise checks. *)
val canon_skip : string -> unit

(** Per-stage bypass counts since the last reset, tag-sorted, zero
    entries omitted — the same shape as [Asp.Memo.stats]. *)
val canon_skips : unit -> (string * int) list

val canon_skip_total : unit -> int
val reset_canon_skips : unit -> unit

(** {2 Segmented matching}

    Pairs at or above {!segment_min_nodes} nodes are decomposed through
    {!Pgraph.Summarize} before any solver sees them: a quotient-graph
    mismatch refutes the pair outright, and otherwise the forced pairs
    are taken as-is while each ambiguous segment becomes an independent
    solve of the selected backend, stitched back into one whole-graph
    witness that is verified before being reported.  The decomposition
    is exact for similarity and generalization; comparison (subgraph
    embedding does not preserve colours in the host graph) always runs
    whole.  Like the prune and canon toggles, segmentation preserves
    verdicts and optimal costs but not necessarily the identity of the
    optimal witness, so the flag and threshold participate in
    [Config.backend_fp].

    A segment solve that exhausts the ASP step budget falls back to VF2
    under [--fallback] like a whole-graph solve would, but the merged
    result carries exactly one degradation note, emitted on the calling
    domain after all segments finish — never one per segment, and never
    on a pool worker domain (whose note buffer the submitting benchmark
    would not drain). *)

val set_segmentation : bool -> unit
val segmentation_enabled : unit -> bool

(** Pairs strictly below this node count solve whole (default
    {!default_segment_min_nodes}): the decomposition only pays for
    itself once grounding dominates. *)
val default_segment_min_nodes : int

val set_segment_min_nodes : int -> unit
val segment_min_nodes : unit -> int

(** [set_segment_runner (Some run)] injects a parallel executor for
    segment solves ([Core]'s pool installs one over its help queue).
    [run thunks] must run every thunk to completion before returning;
    each thunk fills one slot of a result array, so completion order
    never affects the answer. *)
val set_segment_runner : ((unit -> unit) list -> unit) option -> unit

(** Pairs refuted outright by the quotient prepass, per stage tag —
    the segmented counterpart of {!canon_skips}. *)
val segment_skips : unit -> (string * int) list

(** Pairs that went through segmented solving, per stage tag. *)
val segment_pairs : unit -> (string * int) list

(** Individual segment instances solved since the last reset. *)
val segment_solves : unit -> int

(** Stitched witnesses that failed verification and were re-solved
    whole — a should-not-happen safety net, surfaced so it is visible
    if it ever fires. *)
val segment_fallbacks : unit -> int

val reset_segment_stats : unit -> unit

(** [drain_notes ()] returns and clears the degradation notes recorded
    on the calling domain since the last drain, in emission order and
    deduplicated.  A benchmark's pipeline runs sequentially on one
    worker domain, so draining after a stage yields exactly that
    stage's notes — deterministic at any [-j]. *)
val drain_notes : unit -> string list

(** Shape similarity (Section 3.4): do the two graphs admit a label- and
    structure-preserving bijection? *)
val similar : ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

(** Optimal bijective matching between two similar graphs, minimizing
    property mismatches — the generalization-stage matching. *)
val generalization_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** Optimal embedding of the first graph into the second, minimizing
    property mismatches — the comparison-stage matching (background into
    foreground). *)
val subgraph_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
