(** Backend-dispatching entry points used by the ProvMark pipeline.

    [Asp] runs the paper's Listing 3/4 specifications through the
    mini-ASP solver (the reference semantics); [Direct] runs the native
    VF2-style matcher (much faster on larger graphs).  Both compute the
    same answers — this is enforced by the property-based test suite. *)

type backend =
  | Asp
  | Direct
  | Incremental
      (** creation-order greedy alignment with certified optimality and
          exact fallback (the paper's Section 5.4 suggestion); always
          returns the same answers as [Direct] *)

val default_backend : backend

val backend_of_string : string -> (backend, string) result
val backend_to_string : backend -> string

(** {2 Graceful degradation}

    When the [Asp] backend exhausts its step budget (genuinely, or
    through an injected [solver.exhaust] fault), the engine falls back
    to the VF2 matcher instead of reporting a wrong verdict, and leaves
    a degradation note behind.  Fallback is on by default and togglable
    process-wide (the CLI exposes [--fallback]); the flag participates
    in the pipeline's backend fingerprint so cached artifacts never mix
    fallback and non-fallback answers. *)

val set_fallback : bool -> unit
val fallback_enabled : unit -> bool

(** {2 Canonical-form fast path}

    When {!Pgraph.Canon} is enabled (the default), the entry points
    below consult canonical digests before grounding anything: digest
    equality decides {!similar} outright; unequal digests make
    {!generalization_matching} return [None]; and an equal-digest pair
    whose canonical witness has zero property-mismatch cost is answered
    with that witness directly (zero cost is trivially optimal and
    makes the downstream generalization/comparison result independent
    of which optimal witness is chosen, so the bypass is byte-identical
    to solving).  Each avoided solve is counted under its pipeline
    stage tag. *)

(** [canon_skip tag] records one solver bypass for stage [tag]
    (["similarity"], ["generalization"] or ["comparison"]; other tags
    are ignored).  Exposed for {!Core}'s digest-bucketing class
    builder, which skips whole pairwise checks. *)
val canon_skip : string -> unit

(** Per-stage bypass counts since the last reset, tag-sorted, zero
    entries omitted — the same shape as [Asp.Memo.stats]. *)
val canon_skips : unit -> (string * int) list

val canon_skip_total : unit -> int
val reset_canon_skips : unit -> unit

(** [drain_notes ()] returns and clears the degradation notes recorded
    on the calling domain since the last drain, in emission order and
    deduplicated.  A benchmark's pipeline runs sequentially on one
    worker domain, so draining after a stage yields exactly that
    stage's notes — deterministic at any [-j]. *)
val drain_notes : unit -> string list

(** Shape similarity (Section 3.4): do the two graphs admit a label- and
    structure-preserving bijection? *)
val similar : ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

(** Optimal bijective matching between two similar graphs, minimizing
    property mismatches — the generalization-stage matching. *)
val generalization_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** Optimal embedding of the first graph into the second, minimizing
    property mismatches — the comparison-stage matching (background into
    foreground). *)
val subgraph_matching :
  ?backend:backend -> Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option
