open Pgraph

(* Atomic so the counters stay coherent when the parallel suite runner
   matches on several domains at once. *)
let certified = Atomic.make 0
let fallbacks = Atomic.make 0

let stats () = (Atomic.get certified, Atomic.get fallbacks)

let reset_stats () =
  Atomic.set certified 0;
  Atomic.set fallbacks 0

(* Creation order: recorders assign identifiers with increasing numeric
   suffixes (v1, r2, n3, cf:boot:17, ...), which stand in for the
   timestamps of the paper's suggestion. *)
let creation_index id =
  let n = String.length id in
  let rec start i = if i > 0 && id.[i - 1] >= '0' && id.[i - 1] <= '9' then start (i - 1) else i in
  let s = start n in
  if s = n then max_int else int_of_string (String.sub id s (n - s))

let by_creation_nodes g =
  List.sort
    (fun (a : Graph.node) b ->
      let c = Int.compare (creation_index a.Graph.node_id) (creation_index b.Graph.node_id) in
      if c <> 0 then c else String.compare a.Graph.node_id b.Graph.node_id)
    (Graph.nodes g)

let by_creation_edges g =
  List.sort
    (fun (a : Graph.edge) b ->
      let c = Int.compare (creation_index a.Graph.edge_id) (creation_index b.Graph.edge_id) in
      if c <> 0 then c else String.compare a.Graph.edge_id b.Graph.edge_id)
    (Graph.edges g)

(* Greedy order-preserving alignment of two sequences by label: for each
   left element take the first unconsumed right element with the same
   label.  Returns None when some left element finds no partner. *)
let align_by_label left right ~label_of ~id_of =
  let right = Array.of_list right in
  let used = Array.make (Array.length right) false in
  let rec find_from label i =
    if i >= Array.length right then None
    else if (not used.(i)) && String.equal (label_of right.(i)) label then Some i
    else find_from label (i + 1)
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | x :: rest -> (
        match find_from (label_of x) 0 with
        | None -> None
        | Some i ->
            used.(i) <- true;
            go ((id_of x, id_of right.(i)) :: acc) rest)
  in
  go [] left

(* Admissible lower bound on the optimal property cost: every left
   element pays at least its cheapest same-label pairing. *)
let cost_lower_bound g1 g2 =
  let node_lb =
    List.fold_left
      (fun acc (n1 : Graph.node) ->
        let best =
          List.fold_left
            (fun best (n2 : Graph.node) ->
              if String.equal n1.Graph.node_label n2.Graph.node_label then
                min best (Props.mismatch_cost n1.Graph.node_props n2.Graph.node_props)
              else best)
            max_int (Graph.nodes g2)
        in
        if best = max_int then max_int else acc + best)
      0 (Graph.nodes g1)
  in
  if node_lb = max_int then max_int
  else
    List.fold_left
      (fun acc (e1 : Graph.edge) ->
        if acc = max_int then max_int
        else
          let best =
            List.fold_left
              (fun best (e2 : Graph.edge) ->
                if String.equal e1.Graph.edge_label e2.Graph.edge_label then
                  min best (Props.mismatch_cost e1.Graph.edge_props e2.Graph.edge_props)
                else best)
              max_int (Graph.edges g2)
          in
          if best = max_int then max_int else acc + best)
      node_lb (Graph.edges g1)

let greedy ~sub g1 g2 =
  let node_pairs =
    align_by_label (by_creation_nodes g1) (by_creation_nodes g2)
      ~label_of:(fun (n : Graph.node) -> n.Graph.node_label)
      ~id_of:(fun (n : Graph.node) -> n.Graph.node_id)
  in
  let edge_pairs =
    align_by_label (by_creation_edges g1) (by_creation_edges g2)
      ~label_of:(fun (e : Graph.edge) -> e.Graph.edge_label)
      ~id_of:(fun (e : Graph.edge) -> e.Graph.edge_id)
  in
  match (node_pairs, edge_pairs) with
  | Some node_map, Some edge_map ->
      let m = { Matching.node_map; edge_map; cost = 0 } in
      let m = { m with Matching.cost = Matching.cost_of g1 g2 m } in
      if Result.is_ok (Matching.verify ~sub g1 g2 m) then Some m else None
  | _ -> None

(* Accept the greedy alignment only when it is provably optimal. *)
let attempt ~sub g1 g2 =
  match greedy ~sub g1 g2 with
  | Some m when m.Matching.cost = cost_lower_bound g1 g2 ->
      Atomic.incr certified;
      Some m
  | _ ->
      Atomic.incr fallbacks;
      None

(* Similarity ignores properties, so any verified bijection certifies it
   — no cost bound needed.  [~counted:false] is the planner's calibrated
   dispatch: whether an instance lands here depends on measured timings,
   and the certified/fallback counters feed the batch CLI's
   deterministic cache-stats epilogue, so those dispatches must not
   move them. *)
let similar ?(counted = true) g1 g2 =
  match greedy ~sub:false g1 g2 with
  | Some _ ->
      if counted then Atomic.incr certified;
      true
  | None ->
      if counted then Atomic.incr fallbacks;
      Vf2.similar g1 g2

let iso_min_cost g1 g2 =
  match attempt ~sub:false g1 g2 with Some m -> Some m | None -> Vf2.iso_min_cost g1 g2

let sub_iso_min_cost g1 g2 =
  match attempt ~sub:true g1 g2 with Some m -> Some m | None -> Vf2.sub_iso_min_cost g1 g2

(* ------------------------------------------------------------------ *)
(* Delta re-solve: witness reuse across transient-only variations.     *)

(* ProvMark's workload is dominated by consecutive trials of one
   benchmark whose graphs differ only in transient properties — same
   canonical structure digest, different pids/timestamps/tokens.  For
   such pairs a cold solve is pure waste when the structure admits
   exactly one matching.

   The certificate is *rigidity*: if Weisfeiler-Leman refinement at
   the pair's common stable depth separates every node (all colour
   classes singletons) and every edge (label + endpoint colours all
   distinct), the graph has a trivial automorphism group.  Two
   digest-equal graphs then admit exactly ONE label-isomorphism: any
   two would differ by a nontrivial automorphism.  That unique
   bijection is what [Canon.witness] returns (the positional pairing
   of the canonical orders is a label-isomorphism whenever digests are
   equal, hence *the* one), it is trivially cost-optimal for any
   property values (no alternative exists), and it is byte-identical
   to what every backend returns — which is what lets the Auto planner
   take this path without perturbing fixed-backend output.  When the
   counts are equal — canonical digests pin node and edge counts — the
   same argument covers sub-iso embeddings: an injective embedding
   between equal-sized graphs is a bijection, hence the unique iso.

   Rigidity is a pure function of the structure (colours are
   isomorphism-invariant), so the verdict is cached per canonical
   digest: trial 1 of a benchmark pays the refinement and populates
   the entry, trials 2..N reuse it and rebuild the witness from the
   (already cached) canonical forms in linear time.  The cache is a
   performance memo only — a miss recomputes the same verdict — so
   certified/fallback counts are deterministic functions of the pairs
   attempted, while hit counts may depend on scheduling and are only
   surfaced where that is acceptable (serve stats, benches). *)

let delta_certified = Atomic.make 0
let delta_fallbacks = Atomic.make 0
let delta_cache_hits = Atomic.make 0

let delta_stats () = (Atomic.get delta_certified, Atomic.get delta_fallbacks, Atomic.get delta_cache_hits)

let rigidity_mutex = Mutex.create ()
let rigidity_cache : (string, bool) Hashtbl.t = Hashtbl.create 64
let max_rigidity_entries = 16_384

let reset_delta () =
  Atomic.set delta_certified 0;
  Atomic.set delta_fallbacks 0;
  Atomic.set delta_cache_hits 0;
  Mutex.lock rigidity_mutex;
  Hashtbl.reset rigidity_cache;
  Mutex.unlock rigidity_mutex

let all_distinct colours =
  let module S = Set.Make (Int64) in
  let rec go s = function
    | [] -> true
    | (_, c) :: rest -> if S.mem c s then false else go (S.add c s) rest
  in
  go S.empty colours

(* Discrete node and edge partitions at the pair's common stable
   depth.  Checking both graphs is redundant given digest equality
   (class sizes are iso-invariant) but cheap and defensive. *)
let rigid_pair g1 g2 =
  let rounds = max (Fingerprint.stable_rounds g1) (Fingerprint.stable_rounds g2) in
  all_distinct (Fingerprint.node_colours ~rounds g1)
  && all_distinct (Fingerprint.edge_colours ~rounds g1)
  && all_distinct (Fingerprint.node_colours ~rounds g2)
  && all_distinct (Fingerprint.edge_colours ~rounds g2)

let delta ~sub f1 f2 g1 g2 =
  if not (String.equal f1.Canon.digest f2.Canon.digest) then None
  else
    let rigid =
      let key = f1.Canon.digest in
      Mutex.lock rigidity_mutex;
      let cached = Hashtbl.find_opt rigidity_cache key in
      Mutex.unlock rigidity_mutex;
      match cached with
      | Some r ->
          Atomic.incr delta_cache_hits;
          r
      | None ->
          let r = rigid_pair g1 g2 in
          Mutex.lock rigidity_mutex;
          if Hashtbl.length rigidity_cache >= max_rigidity_entries then Hashtbl.reset rigidity_cache;
          Hashtbl.replace rigidity_cache key r;
          Mutex.unlock rigidity_mutex;
          r
    in
    if not rigid then (
      Atomic.incr delta_fallbacks;
      None)
    else
      let m = Matching.of_pairs g1 (Canon.witness f1 f2) 0 in
      let m = { m with Matching.cost = Matching.cost_of g1 g2 m } in
      (* Safety net, same posture as stitched witnesses: the theorem
         says this cannot fail, the verifier makes sure a bug here can
         only cost performance, never correctness. *)
      match Matching.verify ~sub g1 g2 m with
      | Ok () ->
          Atomic.incr delta_certified;
          Some m
      | Error _ ->
          Atomic.incr delta_fallbacks;
          None
