(** Incremental matching — the optimization the paper suggests in
    Section 5.4: "if matched nodes are usually produced in the same
    order (according to timestamps), then it may be possible to
    incrementally match the foreground and background graphs".

    Elements are aligned greedily in creation order (recorders assign
    monotonically increasing identifiers, standing in for timestamps),
    label-compatibly.  The greedy matching is {e certified}: it is
    returned only when it verifies structurally and its property cost
    reaches an admissible lower bound — i.e. when it is provably
    optimal.  Otherwise the exact {!Vf2} search runs, so results are
    always identical to the exact backend; only the time differs. *)

(** How often the fast path succeeded since program start, as
    [(certified, fallbacks)] — exposed so benchmarks can report the hit
    rate. *)
val stats : unit -> int * int

val reset_stats : unit -> unit

(** [?counted:false] leaves the certified/fallback counters untouched —
    used by the planner's calibrated dispatch, whose routing depends on
    measured timings while the counters feed deterministic stdout. *)
val similar : ?counted:bool -> Pgraph.Graph.t -> Pgraph.Graph.t -> bool

val iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

val sub_iso_min_cost : Pgraph.Graph.t -> Pgraph.Graph.t -> Matching.t option

(** {2 Delta re-solve}

    Witness reuse across transient-only variation — consecutive trials
    of one benchmark share a canonical structure digest and differ only
    in property values.  [delta ~sub f1 f2 g1 g2] answers such a pair
    without search when the structure is {e rigid}: Weisfeiler–Leman
    refinement at the pair's common stable depth separates every node
    and every edge, so the automorphism group is trivial and exactly
    one label-isomorphism exists between the digest-equal graphs.
    That unique bijection is [Canon.witness f1 f2]; it is optimal for
    any property values and byte-identical to every backend's answer,
    which is why the Auto planner may take this path without changing
    output.  Equal digests pin the element counts, so with [~sub:true]
    the same argument covers embeddings (injective + equal sizes =
    bijective).

    Returns [None] — never an unsound witness — when the digests
    differ, the structure is not rigid, or the rebuilt witness fails
    verification (theorem says impossible; the verifier turns a bug
    into a performance loss instead of a wrong answer).  Rigidity
    verdicts are cached per digest, so trials 2..N skip the refinement
    too; the cache is a pure performance memo and never changes an
    answer. *)
val delta :
  sub:bool ->
  Pgraph.Canon.form ->
  Pgraph.Canon.form ->
  Pgraph.Graph.t ->
  Pgraph.Graph.t ->
  Matching.t option

(** [(certified, fallbacks, cache_hits)] for the delta path.  Certified
    and fallback counts are pure functions of the pairs attempted;
    cache hits can depend on domain scheduling and are only surfaced
    where that is acceptable (serve stats, benches). *)
val delta_stats : unit -> int * int * int

(** Clear delta counters and the rigidity cache (tests, benches). *)
val reset_delta : unit -> unit
