(* Per-instance cost-based backend selection.

   The engine can answer one match instance five ways — canonical
   digest bypass, delta witness reuse, incremental creation-order
   alignment, VF2, ASP — and their costs differ by orders of magnitude
   depending on the instance's shape.  The planner makes the choice per
   instance instead of per run: it extracts cheap features (sizes,
   colour-class width, form availability), predicts a wall-cost for
   each candidate, and dispatches to the argmin.

   Prediction is calibrated online: every dispatched solve reports its
   measured duration back through [observe], which folds it into an
   EWMA per (candidate x size bucket).  Cold cells fall back to static
   priors whose only job is a sane ordering before the first few
   observations land.  The table is a process-wide resource guarded by
   one mutex (updates are rare — one per dispatched solve — so
   contention is irrelevant); [export]/[import] serialize it so a warm
   serve daemon can start calibrated from the artifact store.

   Witness-identity discipline: calibrated choice is free only where
   the output cannot depend on it.  Similarity verdicts are identical
   across backends, so similarity solves dispatch to the true argmin.
   Witness-producing solves (generalization, comparison) are answered
   by a sound bypass when one applies — the delta path's witnesses are
   unique, hence byte-identical to every backend's — and otherwise go
   to the engine's default backend, so suite output never depends on
   timing.  The cost model still runs on those instances: predictions
   are recorded against the measured duration, which is what makes
   mispredictions auditable in the span tree. *)

open Pgraph

type candidate = Bypass | Delta | Incr | Vf2 | Seg | Asp

let candidate_name = function
  | Bypass -> "bypass"
  | Delta -> "delta"
  | Incr -> "incremental"
  | Vf2 -> "vf2"
  | Seg -> "segmented"
  | Asp -> "asp"

let candidate_of_name = function
  | "bypass" -> Some Bypass
  | "delta" -> Some Delta
  | "incremental" -> Some Incr
  | "vf2" -> Some Vf2
  | "segmented" -> Some Seg
  | "asp" -> Some Asp
  | _ -> None

let candidates = [| Bypass; Delta; Incr; Vf2; Seg; Asp |]
let candidate_index = function Bypass -> 0 | Delta -> 1 | Incr -> 2 | Vf2 -> 3 | Seg -> 4 | Asp -> 5

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

(* Same CLOCK_MONOTONIC stub Trace_span uses; durations are paired on
   one domain so non-negativity holds locally. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* ------------------------------------------------------------------ *)
(* Features                                                            *)

type features = {
  f_nodes : int;  (** max node count of the pair *)
  f_edges : int;  (** max edge count of the pair *)
  f_width : int Lazy.t;
      (** distinct Weisfeiler-Leman node colours at [default_rounds],
          min over the pair — low width relative to [f_nodes] means
          many indistinguishable nodes, i.e. search-tree branching.
          Lazy because only the static priors consume it: once the
          EWMA cells for a bucket are warm, dispatch never pays the
          refinement *)
  f_forms : bool;  (** canonical forms available for both graphs *)
}

let features ?(forms = false) g1 g2 =
  let width g =
    let module S = Set.Make (Int64) in
    Fingerprint.node_colours ~rounds:Fingerprint.default_rounds g
    |> List.fold_left (fun s (_, c) -> S.add c s) S.empty
    |> S.cardinal
  in
  {
    f_nodes = max (Graph.node_count g1) (Graph.node_count g2);
    f_edges = max (Graph.edge_count g1) (Graph.edge_count g2);
    f_width = lazy (max 1 (min (width g1) (width g2)));
    f_forms = forms;
  }

(* ------------------------------------------------------------------ *)
(* Calibration table                                                   *)

(* Size buckets double: <=8, <=16, ... <=512, larger. *)
let buckets = 8

let bucket n =
  let rec go b lim = if b >= buckets - 1 || n <= lim then b else go (b + 1) (lim * 2) in
  go 0 8

let alpha = 0.3
let table_mutex = Mutex.create ()
let table = Array.make_matrix (Array.length candidates) buckets nan
let observation_count = Atomic.make 0

let with_table f =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) f

let observe c ~nodes dur =
  let i = candidate_index c and b = bucket nodes in
  Atomic.incr observation_count;
  with_table (fun () ->
      let prev = table.(i).(b) in
      table.(i).(b) <- (if Float.is_nan prev then dur else prev +. (alpha *. (dur -. prev))))

let observations () = Atomic.get observation_count

(* Static priors, seconds.  They only matter before the EWMA cells
   warm up, so all they encode is the gross ordering the benches
   confirm: linear fast paths, then polynomial search scaled by
   ambiguity, then grounding-dominated ASP. *)
let prior c f =
  let n = float f.f_nodes and e = float (max 1 f.f_edges) in
  let ambiguity =
    let a = float f.f_nodes /. float (Lazy.force f.f_width) in
    a *. a
  in
  match c with
  | Bypass | Delta -> 2e-7 *. (n +. e)
  | Incr -> 5e-8 *. n *. n
  | Vf2 -> 1e-7 *. n *. e *. ambiguity
  | Seg -> 1e-6 *. (n +. e) *. ambiguity
  | Asp -> 2e-6 *. ((n *. n) +. (e *. e))

let predict c f =
  let v = with_table (fun () -> table.(candidate_index c).(bucket f.f_nodes)) in
  if Float.is_nan v then prior c f else v

let calibrated_cells () =
  with_table (fun () ->
      Array.fold_left
        (fun acc row -> Array.fold_left (fun acc v -> if Float.is_nan v then acc else acc + 1) acc row)
        0 table)

(* ------------------------------------------------------------------ *)
(* Choice                                                              *)

(* Similarity verdicts are backend-independent, so the argmin is free
   to follow the calibration wherever it points.  Ties (and the cold
   table, where priors decide) break by list order, keeping the choice
   a deterministic function of the features and table state.

   Cold cells among the candidates are seeded with their prior on the
   first choice in a bucket: candidates the argmin never picks would
   otherwise stay cold forever, and every subsequent dispatch would
   re-derive their priors — forcing the width refinement each time.
   Seeding bounds that cost to once per size bucket; a wrong seed is
   corrected by the EWMA the first time the candidate is measured. *)
let choose_similar f =
  let candidates = [ Vf2; Incr; Asp ] in
  with_table (fun () ->
      let b = bucket f.f_nodes in
      List.iter
        (fun c ->
          if Float.is_nan table.(candidate_index c).(b) then
            table.(candidate_index c).(b) <- prior c f)
        candidates);
  let best (bc, bp) c =
    let p = predict c f in
    if p < bp then (c, p) else (bc, bp)
  in
  fst (List.fold_left best (Vf2, predict Vf2 f) [ Incr; Asp ])

(* ------------------------------------------------------------------ *)
(* Decisions, mispredictions, span tags                                *)

let decision_counters = Array.init (Array.length candidates) (fun _ -> Atomic.make 0)
let misprediction_count = Atomic.make 0

(* Per-domain decision log, drained into the enclosing stage's span
   tags by [Stage.compute] (same caveat as the engine's degradation
   notes: decisions made on pool domains surface on that domain's next
   drained stage — a profiling aid, not an accounting guarantee). *)
let decisions_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let note ~task c ~predicted ~actual =
  Atomic.incr decision_counters.(candidate_index c);
  if actual > 1e-4 && actual > 2. *. predicted then Atomic.incr misprediction_count;
  let log = Domain.DLS.get decisions_key in
  log :=
    Printf.sprintf "%s=%s predicted_ms=%.3f actual_ms=%.3f" task (candidate_name c)
      (predicted *. 1e3) (actual *. 1e3)
    :: !log

let drain_decisions () =
  let log = Domain.DLS.get decisions_key in
  let ds = List.rev !log in
  log := [];
  ds

let decision_counts () =
  Array.to_list
    (Array.map (fun c -> (candidate_name c, Atomic.get decision_counters.(candidate_index c))) candidates)

let decisions_total () = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 decision_counters
let mispredictions () = Atomic.get misprediction_count

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

(* Line-based rendering (no JSON dependency down here): a version
   header, then one [candidate bucket seconds] triple per warm cell.
   [import] ignores anything it does not recognize, so a stale or
   corrupt store entry degrades to a cold start, never an error. *)
let export () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "planner-calibration v1\n";
  with_table (fun () ->
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun b v ->
              if not (Float.is_nan v) then
                Buffer.add_string buf (Printf.sprintf "%s %d %.9e\n" (candidate_name candidates.(i)) b v))
            row)
        table);
  Buffer.contents buf

let import s =
  match String.split_on_char '\n' s with
  | header :: rest when String.equal header "planner-calibration v1" ->
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ name; b; v ] -> (
              match (candidate_of_name name, int_of_string_opt b, float_of_string_opt v) with
              | Some c, Some b, Some v when b >= 0 && b < buckets && Float.is_finite v && v >= 0. ->
                  with_table (fun () -> table.(candidate_index c).(b) <- v)
              | _ -> ())
          | _ -> ())
        rest
  | _ -> ()

(* ------------------------------------------------------------------ *)

let reset () =
  with_table (fun () ->
      Array.iter (fun row -> Array.fill row 0 (Array.length row) nan) table);
  Array.iter (fun a -> Atomic.set a 0) decision_counters;
  Atomic.set misprediction_count 0;
  Atomic.set observation_count 0;
  Domain.DLS.get decisions_key := []
