(** Per-instance cost-based backend selection.

    Under the [Auto] backend the engine asks the planner, per match
    instance, which of its strategies to run: it extracts cheap
    features, predicts a wall-cost for every candidate from an
    online-calibrated table (EWMA per candidate x size bucket, learned
    from measured dispatch durations), and picks the argmin.

    The witness-identity discipline the engine enforces on top:
    calibrated choice is free for {e similarity} (the verdict is
    backend-independent); {e witness-producing} instances are answered
    by a sound bypass when one applies (canonical digests, the delta
    path's provably unique witnesses) and otherwise by the default
    backend, so printed output never depends on timing.  Predictions
    are recorded against measured durations either way — the decision
    log surfaces [planner.N] span tags with predicted and actual cost,
    making mispredictions auditable in any trace export. *)

type candidate = Bypass | Delta | Incr | Vf2 | Seg | Asp

val candidate_name : candidate -> string

(** {2 Features} *)

type features = {
  f_nodes : int;  (** max node count of the pair *)
  f_edges : int;  (** max edge count of the pair *)
  f_width : int Lazy.t;
      (** distinct WL node colours at [Fingerprint.default_rounds],
          min over the pair: the ambiguity signal — many same-coloured
          nodes mean search-tree branching.  Lazy: only the static
          priors force it, so calibrated dispatch pays no refinement *)
  f_forms : bool;  (** canonical forms available for both graphs *)
}

(** [features ?forms g1 g2] extracts the cost-model features.  The
    counts are cheap; the width refinement is deferred until a cold
    cell actually consults a prior. *)
val features : ?forms:bool -> Pgraph.Graph.t -> Pgraph.Graph.t -> features

(** {2 Prediction and choice} *)

(** Predicted wall-cost in seconds: the calibrated EWMA cell when one
    is warm, a static prior otherwise. *)
val predict : candidate -> features -> float

(** Argmin over the similarity-capable solvers ([Vf2], [Incr], [Asp]);
    deterministic given the features and table state. *)
val choose_similar : features -> candidate

(** {2 Calibration} *)

(** [observe c ~nodes dur] folds a measured dispatch duration into the
    EWMA cell for [c] at [nodes]'s size bucket.  Mutex-disciplined:
    safe from any domain. *)
val observe : candidate -> nodes:int -> float -> unit

(** Observations folded in since the last [reset] (or [import] — the
    imported cells do not count). *)
val observations : unit -> int

(** Warm EWMA cells currently in the table. *)
val calibrated_cells : unit -> int

(** {2 Decision accounting} *)

(** [note ~task c ~predicted ~actual] records one dispatch decision:
    bumps the per-candidate counter, flags a misprediction when the
    measured cost exceeds twice the prediction, and appends a line to
    the per-domain decision log. *)
val note : task:string -> candidate -> predicted:float -> actual:float -> unit

(** Drain this domain's decision log (oldest first) — [Stage.compute]
    turns the lines into [planner.N] span tags. *)
val drain_decisions : unit -> string list

val decision_counts : unit -> (string * int) list
val decisions_total : unit -> int
val mispredictions : unit -> int

(** {2 Persistence}

    The calibration table serializes to a line-based text form so warm
    serve daemons can start calibrated from the artifact store.
    [import] is tolerant: unrecognized content degrades to a cold
    start. *)

val export : unit -> string
val import : string -> unit

(** Monotonic seconds (the engine times dispatches with this). *)
val now_s : unit -> float

(** Clear the table, counters and decision log (tests, benches). *)
val reset : unit -> unit
