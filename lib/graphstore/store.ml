type node_record = {
  n_id : int;
  n_labels : string list;
  n_props : (string * string) list;
}

type rel_record = {
  r_id : int;
  r_src : int;
  r_tgt : int;
  r_type : string;
  r_props : (string * string) list;
}

type t = {
  nodes : (int, node_record) Hashtbl.t;
  rels : (int, rel_record) Hashtbl.t;
  label_index : (string, int list ref) Hashtbl.t;
  out_index : (int, int list ref) Hashtbl.t;
  in_index : (int, int list ref) Hashtbl.t;
  mutable next_id : int;
  mutable opened : bool;
}

exception Closed

let create () =
  {
    nodes = Hashtbl.create 64;
    rels = Hashtbl.create 64;
    label_index = Hashtbl.create 16;
    out_index = Hashtbl.create 64;
    in_index = Hashtbl.create 64;
    next_id = 0;
    opened = false;
  }

(* Deterministic warm-up standing in for JVM startup, page-cache
   population and index loading.  The volume of work is fixed so the
   measured cost is stable across runs. *)
let warmup_iterations = 6_000_000

let open_db t =
  if not t.opened then (
    let acc = ref 0x9E3779B97F4A7C15L in
    for i = 1 to warmup_iterations do
      acc := Int64.mul (Int64.logxor !acc (Int64.of_int i)) 0xBF58476D1CE4E5B9L
    done;
    (* Keep the result observable so the loop cannot be optimized away. *)
    if Int64.equal !acc 0L then print_string "";
    t.opened <- true)

let is_open t = t.opened

let require_open t = if not t.opened then raise Closed

let index_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace tbl key (ref [ v ])

let create_node t ~labels ~props =
  let n_id = t.next_id in
  t.next_id <- n_id + 1;
  Hashtbl.replace t.nodes n_id { n_id; n_labels = labels; n_props = props };
  List.iter (fun l -> index_add t.label_index l n_id) labels;
  n_id

let create_rel t ~src ~tgt ~rel_type ~props =
  if not (Hashtbl.mem t.nodes src) then invalid_arg "Store.create_rel: unknown source";
  if not (Hashtbl.mem t.nodes tgt) then invalid_arg "Store.create_rel: unknown target";
  let r_id = t.next_id in
  t.next_id <- r_id + 1;
  Hashtbl.replace t.rels r_id { r_id; r_src = src; r_tgt = tgt; r_type = rel_type; r_props = props };
  index_add t.out_index src r_id;
  index_add t.in_index tgt r_id;
  r_id

let node_count t = Hashtbl.length t.nodes
let rel_count t = Hashtbl.length t.rels

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let all_nodes t =
  require_open t;
  List.sort (fun a b -> Int.compare a.n_id b.n_id) (sorted_values t.nodes)

let all_rels t =
  require_open t;
  List.sort (fun a b -> Int.compare a.r_id b.r_id) (sorted_values t.rels)

let find_node t id =
  require_open t;
  Hashtbl.find_opt t.nodes id

let nodes_with_label t label =
  require_open t;
  match Hashtbl.find_opt t.label_index label with
  | None -> []
  | Some ids -> List.filter_map (Hashtbl.find_opt t.nodes) (List.sort Int.compare !ids)

let rels_of_index t idx id =
  require_open t;
  match Hashtbl.find_opt idx id with
  | None -> []
  | Some ids -> List.filter_map (Hashtbl.find_opt t.rels) (List.sort Int.compare !ids)

let rels_from t id = rels_of_index t t.out_index id
let rels_to t id = rels_of_index t t.in_index id

(* ------------------------------------------------------------------ *)
(* Text serialization                                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string b "\\t"
      | '\n' -> Buffer.add_string b "\\n"
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then (
        (match s.[i + 1] with
        | 't' -> Buffer.add_char b '\t'
        | 'n' -> Buffer.add_char b '\n'
        | c -> Buffer.add_char b c);
        go (i + 2))
      else (
        Buffer.add_char b s.[i];
        go (i + 1))
  in
  go 0;
  Buffer.contents b

let props_to_string props =
  String.concat "\t" (List.map (fun (k, v) -> escape k ^ "=" ^ escape v) props)

exception Load_error of { line : int; reason : string }

let load_fail line fmt =
  Printf.ksprintf (fun reason -> raise (Load_error { line; reason })) fmt

let props_of_fields ~line fields =
  List.map
    (fun f ->
      match String.index_opt f '=' with
      | None -> load_fail line "malformed property %S (expected key=value)" f
      | Some i -> (unescape (String.sub f 0 i), unescape (String.sub f (i + 1) (String.length f - i - 1))))
    (List.filter (fun f -> String.length f > 0) fields)

let dump t =
  let b = Buffer.create 1024 in
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "N\t%d\t%s\t%s\n" n.n_id
           (String.concat "," (List.map escape n.n_labels))
           (props_to_string n.n_props)))
    (List.sort (fun a b -> Int.compare a.n_id b.n_id) (sorted_values t.nodes));
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "R\t%d\t%d\t%d\t%s\t%s\n" r.r_id r.r_src r.r_tgt (escape r.r_type)
           (props_to_string r.r_props)))
    (List.sort (fun a b -> Int.compare a.r_id b.r_id) (sorted_values t.rels));
  Buffer.contents b

(* Truncated or garbled dumps (torn writes, injected recorder faults)
   must fail with a located diagnosis, not a bare [Failure
   "int_of_string"]: every reject carries the 1-based line number and a
   reason, and no other exception escapes. *)
let load text =
  let t = create () in
  let lines = String.split_on_char '\n' text in
  let int_field ln what s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> load_fail ln "malformed %s %S (expected an integer)" what s
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if String.length line > 0 then
        match String.split_on_char '\t' line with
        | "N" :: id :: labels :: props ->
            let n_id = int_field ln "node id" id in
            let n_labels =
              List.filter (fun l -> l <> "") (List.map unescape (String.split_on_char ',' labels))
            in
            Hashtbl.replace t.nodes n_id { n_id; n_labels; n_props = props_of_fields ~line:ln props };
            List.iter (fun l -> index_add t.label_index l n_id) n_labels;
            t.next_id <- max t.next_id (n_id + 1)
        | "R" :: id :: src :: tgt :: rtype :: props ->
            let r_id = int_field ln "relationship id" id in
            let r = {
              r_id;
              r_src = int_field ln "relationship source" src;
              r_tgt = int_field ln "relationship target" tgt;
              r_type = unescape rtype;
              r_props = props_of_fields ~line:ln props;
            } in
            if not (Hashtbl.mem t.nodes r.r_src && Hashtbl.mem t.nodes r.r_tgt) then
              load_fail ln "relationship %d references missing node" r_id;
            Hashtbl.replace t.rels r_id r;
            index_add t.out_index r.r_src r_id;
            index_add t.in_index r.r_tgt r_id;
            t.next_id <- max t.next_id (r_id + 1)
        | _ -> load_fail ln "malformed line %S (expected an N or R record)" line)
    lines;
  t
