(** An embedded property-graph database, standing in for the Neo4j
    instance OPUS stores provenance in.

    The store is mutable, maintains a label index, and must be
    {!open_db}'d before reads — opening performs a deterministic
    warm-up computation emulating the JVM/database startup cost that
    dominates OPUS's transformation times in the paper's Figures 6
    and 9 (the absolute cost is scaled down; the {e shape} — OPUS an
    order of magnitude above the other tools — is preserved). *)

type node_record = {
  n_id : int;
  n_labels : string list;
  n_props : (string * string) list;
}

type rel_record = {
  r_id : int;
  r_src : int;
  r_tgt : int;
  r_type : string;
  r_props : (string * string) list;
}

type t

val create : unit -> t

(** Warm up the store for querying.  Idempotent; the first call on a
    store performs the startup work. *)
val open_db : t -> unit

(** True once {!open_db} has run. *)
val is_open : t -> bool

exception Closed

val create_node : t -> labels:string list -> props:(string * string) list -> int

(** Raises [Invalid_argument] if either endpoint does not exist. *)
val create_rel : t -> src:int -> tgt:int -> rel_type:string -> props:(string * string) list -> int

val node_count : t -> int
val rel_count : t -> int

(** Read queries raise {!Closed} unless the store has been opened. *)

val all_nodes : t -> node_record list
val all_rels : t -> rel_record list
val find_node : t -> int -> node_record option
val nodes_with_label : t -> string -> node_record list
val rels_from : t -> int -> rel_record list
val rels_to : t -> int -> rel_record list

(** Structured load failure: 1-based line number of the offending dump
    line plus a reason.  The only exception {!load} raises. *)
exception Load_error of { line : int; reason : string }

(** Serialize to a line-oriented text format; [load] parses it back.
    Raises {!Load_error} on truncated or garbled input. *)
val dump : t -> string

val load : string -> t
