type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) j =
  let b = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char b '\n' in
  let rec go depth j =
    match j with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Number f -> Buffer.add_string b (number_to_string f)
    | String s -> escape_string b s
    | Array [] -> Buffer.add_string b "[]"
    | Array items ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then (Buffer.add_char b ','; newline ());
            indent (depth + 1);
            go (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char b ']'
    | Object [] -> Buffer.add_string b "{}"
    | Object members ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then (Buffer.add_char b ','; newline ());
            indent (depth + 1);
            escape_string b k;
            Buffer.add_string b (if pretty then ": " else ":");
            go (depth + 1) v)
          members;
        newline ();
        indent depth;
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

(* Internal located reject; converted to {!Parse_error} (message form)
   or [Error (offset, reason)] (structured form) at the entry points. *)
exception Located of int * string

let error st msg = raise (Located (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when Char.equal c c' -> advance st
  | _ -> error st (Printf.sprintf "expected %c" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.equal (String.sub st.src st.pos n) word then (
    st.pos <- st.pos + n;
    value)
  else error st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some n -> n
  | None -> error st "bad \\u escape"

(* Encode a Unicode scalar value as UTF-8. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  else if cp < 0x10000 then (
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents b
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let hi = parse_hex4 st in
                if hi >= 0xD800 && hi <= 0xDBFF then (
                  (* surrogate pair *)
                  expect st '\\';
                  expect st 'u';
                  let lo = parse_hex4 st in
                  if lo < 0xDC00 || lo > 0xDFFF then error st "invalid low surrogate";
                  add_utf8 b (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)))
                else add_utf8 b hi
            | _ -> error st "bad escape character");
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec eat () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        eat ()
    | _ -> ()
  in
  eat ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> String (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Object []
  | _ ->
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            members ((key, value) :: acc)
        | Some '}' ->
            advance st;
            Object (List.rev ((key, value) :: acc))
        | _ -> error st "expected , or } in object"
      in
      members []

and parse_array st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      Array []
  | _ ->
      let rec items acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            items (value :: acc)
        | Some ']' ->
            advance st;
            Array (List.rev (value :: acc))
        | _ -> error st "expected , or ] in array"
      in
      items []

let parse_document st =
  let v = parse_value st in
  skip_ws st;
  (match peek st with None -> () | Some _ -> error st "trailing garbage");
  v

let of_string_located s =
  let st = { src = s; pos = 0 } in
  match parse_document st with
  | v -> Ok v
  | exception Located (offset, reason) -> Error (offset, reason)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_document st with
  | v -> v
  | exception Located (offset, reason) ->
      raise (Parse_error (Printf.sprintf "%s at offset %d" reason offset))

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Object members -> ( match List.assoc_opt key members with Some v -> v | None -> Null)
  | _ -> invalid_arg "Json.member: not an object"

let mem key = function
  | Object members -> List.mem_assoc key members
  | _ -> invalid_arg "Json.mem: not an object"

let to_assoc = function Object members -> members | _ -> invalid_arg "Json.to_assoc: not an object"
let to_list = function Array items -> items | _ -> invalid_arg "Json.to_list: not an array"
let to_str = function String s -> s | _ -> invalid_arg "Json.to_str: not a string"
let to_number = function Number f -> f | _ -> invalid_arg "Json.to_number: not a number"

let to_int = function
  | Number f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.to_int: not an integer"

let to_bool = function Bool b -> b | _ -> invalid_arg "Json.to_bool: not a boolean"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Number x, Number y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Array xs, Array ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Object xs, Object ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | (Null | Bool _ | Number _ | String _ | Array _ | Object _), _ -> false

let pp ppf j = Format.pp_print_string ppf (to_string ~pretty:true j)
