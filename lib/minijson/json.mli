(** A minimal JSON implementation (vendored substitute for yojson, which
    is not available in the sealed build environment).  It supports the
    full JSON grammar needed by the W3C PROV-JSON serialization used by
    CamFlow: objects, arrays, strings with escapes, numbers, booleans and
    null. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

(** [to_string ?pretty j] serializes [j].  With [pretty:true] (default
    false) the output is indented with two spaces.  Object member order is
    preserved. *)
val to_string : ?pretty:bool -> t -> string

(** [of_string s] parses a JSON document.  Raises {!Parse_error} with a
    message including the offending position on malformed input. *)
val of_string : string -> t

(** [of_string_located s] parses like {!of_string} but reports malformed
    input as [Error (offset, reason)]: the absolute byte offset blamed
    plus the bare reason, with no " at offset N" message suffix to
    re-parse.  Consumers that need the position — the PROV-JSON
    reader's {!Recorders.Provjson.Format_error} — use this form. *)
val of_string_located : string -> (t, int * string) result

(** {2 Accessors}

    Accessors raise [Invalid_argument] when the value has the wrong
    shape; [member] returns [Null] for a missing member, mirroring
    common JSON library conventions. *)

val member : string -> t -> t
val mem : string -> t -> bool
val to_assoc : t -> (string * t) list
val to_list : t -> t list
val to_str : t -> string
val to_number : t -> float
val to_int : t -> int
val to_bool : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
