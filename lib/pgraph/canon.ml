(* Exact canonical forms for property graphs.

   Colour refinement (continuing the Weisfeiler-Leman colours of
   {!Fingerprint} to a fixpoint) partitions the nodes into
   isomorphism-invariant classes; when the partition is not discrete,
   individualization-refinement branches on the members of one
   non-singleton cell and the minimum certificate over all leaves is
   the canonical labelling.  The certificate is a complete structural
   rendering (labels and incidences under the canonical order, never
   the hash colours themselves), so equal digests imply a genuine
   label-isomorphism even if the refinement hashes collide — a
   collision can only make the search explore a coarser tree, not
   declare non-isomorphic graphs equal.

   Properties are deliberately excluded: similarity (Section 3.4) is
   shape-only, and the solver-bypass built on top re-checks property
   mismatch costs explicitly before trusting a canonical witness. *)

module H = Fingerprint.Hash

type form = {
  digest : string;
  node_order : string array;  (* original node ids, canonical positions *)
  edge_order : string array;  (* original edge ids, canonical positions *)
}

(* Process-wide toggle, mirroring Asp_backend.prune_flag: the CLI
   exposes it as --no-canon, and Config.backend_fp fingerprints it so
   cached artifacts never mix canon and no-canon witnesses. *)
let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* The individualization-refinement tree has one leaf per refinement of
   the partition to a discrete one; symmetric graphs can have
   factorially many.  The budget bounds the leaves explored, and the
   *decision* to give up is isomorphism-invariant: the tree's shape
   (hence its total leaf count) is a function of the graph's structure
   only, so two isomorphic graphs either both finish or both abort. *)
let leaf_budget = 256

exception Budget

(* ------------------------------------------------------------------ *)
(* Graph view: arrays indexed by position in the id-sorted node/edge
   lists, so refinement works on int-indexed arrays instead of maps.   *)

type view = {
  nodes : Graph.node array;
  edges : Graph.edge array;
  outs : (H.h * int) list array;  (* node idx -> (edge label hash, tgt idx) *)
  ins : (H.h * int) list array;   (* node idx -> (marked edge label hash, src idx) *)
  esrc : int array;               (* edge idx -> src node idx *)
  etgt : int array;
}

let view_of g =
  let nodes = Array.of_list (Graph.nodes g) in
  let edges = Array.of_list (Graph.edges g) in
  let idx = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i (n : Graph.node) -> Hashtbl.replace idx n.Graph.node_id i) nodes;
  let node_idx id = Hashtbl.find idx id in
  let outs = Array.make (Array.length nodes) [] in
  let ins = Array.make (Array.length nodes) [] in
  let esrc = Array.make (Array.length edges) 0 in
  let etgt = Array.make (Array.length edges) 0 in
  Array.iteri
    (fun ei (e : Graph.edge) ->
      let s = node_idx e.Graph.edge_src and t = node_idx e.Graph.edge_tgt in
      let lab = H.string H.seed e.Graph.edge_label in
      let lab_in = H.string (H.string H.seed "in") e.Graph.edge_label in
      esrc.(ei) <- s;
      etgt.(ei) <- t;
      outs.(s) <- (lab, t) :: outs.(s);
      ins.(t) <- (lab_in, s) :: ins.(t))
    edges;
  { nodes; edges; outs; ins; esrc; etgt }

(* ------------------------------------------------------------------ *)
(* Refinement                                                          *)

let distinct colours =
  let module S = Set.Make (Int64) in
  S.cardinal (Array.fold_left (fun s c -> S.add c s) S.empty colours)

let refine_once view colours =
  Array.mapi
    (fun i c ->
      let fold side = H.combine_sorted (List.map (fun (lab, j) -> H.int64 lab colours.(j)) side) in
      H.int64 (H.int64 c (fold view.outs.(i))) (fold view.ins.(i)))
    colours

(* Each productive round strictly grows the number of colour classes
   (hash refinement never merges classes, barring collisions), so the
   fixpoint is reached in at most [n] rounds. *)
let refine_fix view colours =
  let rec loop colours k =
    let k' = distinct colours in
    if k' = k then colours else loop (refine_once view colours) k'
  in
  loop colours (-1)

let indiv_mark = H.string H.seed "individualized"

(* The cell to branch on: among non-singleton colour classes, the one
   with the fewest members, ties broken by colour value — a pure
   function of the (isomorphism-invariant) colouring. *)
let non_singleton_cell colours =
  let module M = Map.Make (Int64) in
  let cells =
    Array.to_seqi colours
    |> Seq.fold_left (fun m (i, c) -> M.update c (function None -> Some [ i ] | Some l -> Some (i :: l)) m) M.empty
  in
  M.fold
    (fun _c members best ->
      let size = List.length members in
      if size < 2 then best
      else
        match best with
        | Some (bsize, _) when bsize <= size -> best
        | _ -> Some (size, List.rev members))
    cells None
  |> Option.map snd

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

(* Canonical node order of a discrete colouring: positions sorted by
   colour.  The certificate renders the complete structure under that
   order (length-prefixed tokens, so no label can alias a separator). *)
let certificate view colours =
  let n = Array.length colours in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int64.compare colours.(a) colours.(b)) order;
  let pos = Array.make n 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  let buf = Buffer.create 256 in
  let token s = Buffer.add_string buf (Printf.sprintf "%d:%s;" (String.length s) s) in
  Buffer.add_string buf (Printf.sprintf "g%d,%d|" n (Array.length view.edges));
  Array.iter (fun i -> token view.nodes.(i).Graph.node_label) order;
  Buffer.add_char buf '|';
  let triples =
    Array.to_list
      (Array.mapi
         (fun ei (e : Graph.edge) -> (pos.(view.esrc.(ei)), pos.(view.etgt.(ei)), e.Graph.edge_label, ei))
         view.edges)
  in
  let triples =
    List.sort
      (fun (s1, t1, l1, e1) (s2, t2, l2, e2) ->
        match compare (s1, t1) (s2, t2) with
        | 0 -> ( match String.compare l1 l2 with 0 -> compare e1 e2 | c -> c)
        | c -> c)
      triples
  in
  List.iter
    (fun (s, t, l, _) ->
      Buffer.add_string buf (Printf.sprintf "%d>%d," s t);
      token l)
    triples;
  (Buffer.contents buf, order, Array.of_list (List.map (fun (_, _, _, ei) -> ei) triples))

(* ------------------------------------------------------------------ *)
(* Individualization-refinement search                                 *)

let search view =
  let n = Array.length view.nodes in
  let initial = Array.make n H.seed in
  Array.iteri (fun i (node : Graph.node) -> initial.(i) <- H.string H.seed node.Graph.node_label) view.nodes;
  let leaves = ref 0 in
  let best = ref None in
  let rec go colours =
    let colours = refine_fix view colours in
    match non_singleton_cell colours with
    | None ->
        incr leaves;
        if !leaves > leaf_budget then raise Budget;
        let cert, order, eorder = certificate view colours in
        (match !best with
        | Some (bcert, _, _) when String.compare bcert cert <= 0 -> ()
        | _ -> best := Some (cert, order, eorder))
    | Some members ->
        List.iter
          (fun v ->
            let colours' = Array.copy colours in
            colours'.(v) <- H.int64 colours'.(v) indiv_mark;
            go colours')
          members
  in
  match go initial with () -> !best | exception Budget -> None

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

(* [form] is called repeatedly for the same graphs (once per pairwise
   check, per memo rekey, per stage digest), so results are cached
   under a structural rendering of the graph *including identifiers*
   but excluding properties — the form never depends on properties,
   but its witness arrays are id-sensitive.  Shared across domains;
   bounded wholesale like Asp.Memo. *)

let cache_mutex = Mutex.create ()
let cache : (string, form option) Hashtbl.t = Hashtbl.create 256
let max_cache_entries = 16_384

(* Hot-path accounting: [forms_computed] counts actual
   individualization-refinement searches, [cache_hits] counts calls
   answered from the cache.  Every consumer of canonical forms — the
   engine's digest bypass, the memo's rename-invariant keys, the
   artifact store's graph digests, the planner's delta certificates —
   goes through [form], so [forms_computed] staying at one per
   distinct graph is the proof that none of them re-canonicalizes. *)
let forms_computed = Atomic.make 0
let cache_hits = Atomic.make 0

let stats () = (Atomic.get forms_computed, Atomic.get cache_hits)

let reset_stats () =
  Atomic.set forms_computed 0;
  Atomic.set cache_hits 0

let cache_key g =
  let buf = Buffer.create 256 in
  List.iter
    (fun (n : Graph.node) -> Buffer.add_string buf (Printf.sprintf "n%s\x00%s\n" n.Graph.node_id n.Graph.node_label))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "e%s\x00%s\x00%s\x00%s\n" e.Graph.edge_id e.Graph.edge_src e.Graph.edge_tgt
           e.Graph.edge_label))
    (Graph.edges g);
  Digest.string (Buffer.contents buf)

let with_lock f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let clear () = with_lock (fun () -> Hashtbl.reset cache)

let compute_form g =
  let view = view_of g in
  match search view with
  | None -> None
  | Some (cert, order, eorder) ->
      Some
        {
          digest = Digest.to_hex (Digest.string cert);
          node_order = Array.map (fun i -> view.nodes.(i).Graph.node_id) order;
          edge_order = Array.map (fun ei -> view.edges.(ei).Graph.edge_id) eorder;
        }

let form g =
  let key = cache_key g in
  let cached = with_lock (fun () -> Hashtbl.find_opt cache key) in
  match cached with
  | Some f ->
      Atomic.incr cache_hits;
      f
  | None ->
      Atomic.incr forms_computed;
      let f = compute_form g in
      with_lock (fun () ->
          if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
          Hashtbl.replace cache key f);
      f

let digest g = Option.map (fun f -> f.digest) (form g)

(* ------------------------------------------------------------------ *)
(* Relabelling and witnesses                                           *)

let canonical_node_id i = Printf.sprintf "n%d" i
let canonical_edge_id i = Printf.sprintf "e%d" i

let to_canonical f =
  let tbl = Hashtbl.create (Array.length f.node_order + Array.length f.edge_order) in
  Array.iteri (fun i id -> Hashtbl.replace tbl id (canonical_node_id i)) f.node_order;
  Array.iteri (fun i id -> Hashtbl.replace tbl id (canonical_edge_id i)) f.edge_order;
  fun id -> match Hashtbl.find_opt tbl id with Some c -> c | None -> id

let of_canonical f =
  let tbl = Hashtbl.create (Array.length f.node_order + Array.length f.edge_order) in
  Array.iteri (fun i id -> Hashtbl.replace tbl (canonical_node_id i) id) f.node_order;
  Array.iteri (fun i id -> Hashtbl.replace tbl (canonical_edge_id i) id) f.edge_order;
  fun id -> match Hashtbl.find_opt tbl id with Some c -> c | None -> id

let relabel g f = Graph.map_ids (to_canonical f) g

let witness f1 f2 =
  if not (String.equal f1.digest f2.digest) then
    invalid_arg "Canon.witness: forms have different digests";
  let pair a b = Array.to_list (Array.map2 (fun x y -> (x, y)) a b) in
  pair f1.node_order f2.node_order @ pair f1.edge_order f2.edge_order
