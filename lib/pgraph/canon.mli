(** Exact canonical forms for property graphs.

    [form g] computes a deterministic canonical labelling of [g]'s
    underlying directed labelled graph by colour refinement (the
    {!Fingerprint} Weisfeiler–Leman colours continued to a fixpoint)
    with individualization–refinement branching on colour-class ties.
    Two graphs are label-isomorphic (similar in the Section 3.4 sense,
    i.e. ignoring properties) {e if and only if} their canonical
    digests are equal — unlike {!Fingerprint.of_graph}, which is only
    complete in one direction.

    Soundness does not rest on the refinement hashes: the digest is
    computed from a full structural certificate (node labels and edge
    incidences under the canonical order), so a hash collision can
    slow the search down but never equate non-isomorphic graphs.

    Forms are cached process-wide (keyed on structure and identifiers,
    which the witness arrays depend on; properties are irrelevant to
    the form), and the cache is safe to share across domains. *)

type form = {
  digest : string;
      (** canonical certificate digest; equal iff the graphs are
          label-isomorphic *)
  node_order : string array;
      (** original node ids listed in canonical order — position [i]
          holds the node canonically labelled [i] *)
  edge_order : string array;  (** likewise for edges *)
}

(** {2 Process-wide toggle}

    Canonicalization is on by default; the CLI exposes [--no-canon].
    The flag participates in {!Config}'s backend fingerprint: the
    canonical fast paths preserve every verdict and optimal cost, but
    (like candidate pruning) not necessarily the optimal {e witness}
    an ASP solve returns, so cached artifacts never mix the modes. *)

val set_enabled : bool -> unit

val is_enabled : unit -> bool

(** [form g] is the canonical form of [g], or [None] when the
    individualization–refinement search exceeds its leaf budget (very
    symmetric graphs).  The budget decision is itself
    isomorphism-invariant: isomorphic graphs either both canonicalize
    or both give up, so callers can treat [None] as "fall back to the
    solver" without risking asymmetric answers. *)
val form : Graph.t -> form option

(** [digest g] is [Option.map (fun f -> f.digest) (form g)]. *)
val digest : Graph.t -> string option

(** [relabel g f] renames [g]'s elements to their canonical names
    ([n0], [n1], … / [e0], [e1], …).  Isomorphic graphs relabel to
    structurally identical graphs (properties ride along untouched),
    which is what makes solve-memo keys rename-invariant. *)
val relabel : Graph.t -> form -> Graph.t

(** Original-id → canonical-id mapping of a form (identity on ids the
    form does not know). *)
val to_canonical : form -> string -> string

(** Canonical-id → original-id mapping — the translation step applied
    to model atoms solved on a canonically relabelled instance. *)
val of_canonical : form -> string -> string

(** [witness f1 f2] pairs the two canonical orders positionally into
    [(left id, right id)] node and edge pairs — a label- and
    incidence-preserving bijection whenever the digests are equal
    (raises [Invalid_argument] otherwise).  Property mismatch costs
    are {e not} considered; callers must re-check them before using
    the witness where costs matter. *)
val witness : form -> form -> (string * string) list

(** Drop every cached form (for benchmarks timing cold
    canonicalization). *)
val clear : unit -> unit

(** [(computed, cache_hits)] — individualization-refinement searches
    actually run vs. calls answered from the form cache, process-wide.
    Every consumer of canonical forms (digest bypass, memo rekeying,
    store digests, the planner's delta certificates) shares the one
    cache, so [computed] staying at one per distinct graph proves the
    hot path never canonicalizes twice. *)
val stats : unit -> int * int

val reset_stats : unit -> unit
