type t = int64

(* FNV-1a over bytes, widened to 64 bits; deterministic across runs. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hash_int64 h x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  hash_string h (Bytes.to_string b)

let combine_sorted hashes =
  (* Order-independent inputs are sorted first so the result is invariant
     under renaming of identifiers. *)
  List.fold_left hash_int64 fnv_offset (List.sort Int64.compare hashes)

module Hash = struct
  type h = int64

  let seed = fnv_offset
  let string = hash_string
  let int64 = hash_int64
  let combine_sorted = combine_sorted
end

(* The one refinement-depth knob for bounded consumers: of_graph and
   the exact-similarity candidate pruning in Gmatch.Asp_backend refine
   this deep; Canon continues the same refinement to a fixpoint. *)
let default_rounds = 3

module Smap = Map.Make (String)

(* Round 0 colours a node by its label alone; each further round folds in
   the sorted multisets of (edge label, neighbour colour) pairs over
   incoming and outgoing edges — standard Weisfeiler–Leman refinement. *)
let node_colour_map g rounds =
  let initial =
    List.fold_left
      (fun m (n : Graph.node) ->
        Smap.add n.Graph.node_id (hash_string fnv_offset n.Graph.node_label) m)
      Smap.empty (Graph.nodes g)
  in
  let refine colours =
    Smap.mapi
      (fun id c ->
        let outs =
          List.map
            (fun (e : Graph.edge) ->
              hash_int64 (hash_string fnv_offset e.Graph.edge_label)
                (Smap.find e.Graph.edge_tgt colours))
            (Graph.out_edges g id)
        in
        let ins =
          List.map
            (fun (e : Graph.edge) ->
              hash_int64 (hash_string (hash_string fnv_offset "in") e.Graph.edge_label)
                (Smap.find e.Graph.edge_src colours))
            (Graph.in_edges g id)
        in
        hash_int64 (hash_int64 c (combine_sorted outs)) (combine_sorted ins))
      colours
  in
  let rec loop i colours = if i = 0 then colours else loop (i - 1) (refine colours) in
  loop rounds initial

let node_colours ?(rounds = 0) g = Smap.bindings (node_colour_map g rounds)

let edge_colours ?(rounds = 0) g =
  let colours = node_colour_map g rounds in
  List.map
    (fun (e : Graph.edge) ->
      let c = hash_string fnv_offset e.Graph.edge_label in
      let c = hash_int64 c (Smap.find e.Graph.edge_src colours) in
      (e.Graph.edge_id, hash_int64 c (Smap.find e.Graph.edge_tgt colours)))
    (Graph.edges g)

let of_graph g =
  let final = node_colour_map g default_rounds in
  let node_part = combine_sorted (List.map snd (Smap.bindings final)) in
  let edge_part =
    combine_sorted
      (List.map (fun (e : Graph.edge) -> hash_string fnv_offset e.Graph.edge_label) (Graph.edges g))
  in
  hash_int64 (hash_int64 (hash_int64 fnv_offset node_part) edge_part)
    (Int64.of_int (Graph.size g))

let equal = Int64.equal
let compare = Int64.compare
let to_hex t = Printf.sprintf "%016Lx" t
let pp ppf t = Format.pp_print_string ppf (to_hex t)
