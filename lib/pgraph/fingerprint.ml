type t = int64

(* FNV-1a over bytes, widened to 64 bits; deterministic across runs. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hash_int64 h x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  hash_string h (Bytes.to_string b)

let combine_sorted hashes =
  (* Order-independent inputs are sorted first so the result is invariant
     under renaming of identifiers. *)
  List.fold_left hash_int64 fnv_offset (List.sort Int64.compare hashes)

module Hash = struct
  type h = int64

  let seed = fnv_offset
  let string = hash_string
  let int64 = hash_int64
  let combine_sorted = combine_sorted
end

(* The one refinement-depth knob for bounded consumers: of_graph and
   the exact-similarity candidate pruning in Gmatch.Asp_backend refine
   this deep; Canon continues the same refinement to a fixpoint. *)
let default_rounds = 3

module Smap = Map.Make (String)

(* Round 0 colours a node by its label alone; each further round folds in
   the sorted multisets of (edge label, neighbour colour) pairs over
   incoming and outgoing edges — standard Weisfeiler–Leman refinement. *)
let initial_colours g =
  List.fold_left
    (fun m (n : Graph.node) ->
      Smap.add n.Graph.node_id (hash_string fnv_offset n.Graph.node_label) m)
    Smap.empty (Graph.nodes g)

let refine g colours =
  Smap.mapi
    (fun id c ->
      let outs =
        List.map
          (fun (e : Graph.edge) ->
            hash_int64 (hash_string fnv_offset e.Graph.edge_label)
              (Smap.find e.Graph.edge_tgt colours))
          (Graph.out_edges g id)
      in
      let ins =
        List.map
          (fun (e : Graph.edge) ->
            hash_int64 (hash_string (hash_string fnv_offset "in") e.Graph.edge_label)
              (Smap.find e.Graph.edge_src colours))
          (Graph.in_edges g id)
      in
      hash_int64 (hash_int64 c (combine_sorted outs)) (combine_sorted ins))
    colours

let node_colour_map g rounds =
  let rec loop i colours = if i = 0 then colours else loop (i - 1) (refine g colours) in
  loop rounds (initial_colours g)

module Iset = Set.Make (Int64)

let distinct_count colours =
  Iset.cardinal (Smap.fold (fun _ c acc -> Iset.add c acc) colours Iset.empty)

(* Smallest depth at which one more refinement round no longer splits a
   colour class, capped at the node count (exact WL partitions are
   monotone, so the class count strictly grows until the fixpoint; the
   cap guards against a pathological hash collision shrinking it).
   Note this returns a depth, not the colours: colour hashes keep
   changing value past the partition fixpoint, so a pair of graphs must
   be compared at one common round — callers take the max of the two
   depths and rerun {!node_colours} at that round on both graphs. *)
let stable_rounds g =
  let cap = Graph.node_count g in
  let rec loop r colours k =
    if r >= cap then r
    else
      let colours' = refine g colours in
      let k' = distinct_count colours' in
      if k' <= k then r else loop (r + 1) colours' k'
  in
  let initial = initial_colours g in
  loop 0 initial (distinct_count initial)

let node_colours ?(rounds = 0) g = Smap.bindings (node_colour_map g rounds)

let edge_colours ?(rounds = 0) g =
  let colours = node_colour_map g rounds in
  List.map
    (fun (e : Graph.edge) ->
      let c = hash_string fnv_offset e.Graph.edge_label in
      let c = hash_int64 c (Smap.find e.Graph.edge_src colours) in
      (e.Graph.edge_id, hash_int64 c (Smap.find e.Graph.edge_tgt colours)))
    (Graph.edges g)

let of_graph g =
  let final = node_colour_map g default_rounds in
  let node_part = combine_sorted (List.map snd (Smap.bindings final)) in
  let edge_part =
    combine_sorted
      (List.map (fun (e : Graph.edge) -> hash_string fnv_offset e.Graph.edge_label) (Graph.edges g))
  in
  hash_int64 (hash_int64 (hash_int64 fnv_offset node_part) edge_part)
    (Int64.of_int (Graph.size g))

let equal = Int64.equal
let compare = Int64.compare
let to_hex t = Printf.sprintf "%016Lx" t
let pp ppf t = Format.pp_print_string ppf (to_hex t)
