(** Cheap isomorphism-invariant fingerprints for property graphs.

    Two graphs with different fingerprints cannot be similar (isomorphic
    up to properties); equal fingerprints are only a heuristic signal.
    ProvMark's generalization stage uses fingerprints to bucket trial runs
    into candidate similarity classes before invoking the exact solver,
    and the regression-testing use case uses them as a fast change
    detector. *)

type t

(** [of_graph g] computes a fingerprint from label multisets and a
    bounded Weisfeiler–Leman colour refinement of the underlying
    directed labelled graph.  Properties are ignored (similarity is
    shape-only, per Section 3.4). *)
val of_graph : Graph.t -> t

(** [node_colours ?rounds g] lists [(node_id, colour)] for every node,
    where colours are isomorphism-invariant equivalence-class hashes.
    [rounds = 0] (the default) colours by node label alone; each further
    round applies one Weisfeiler–Leman refinement step over incoming and
    outgoing labelled edges.  Two nodes matched by any label-respecting
    isomorphism necessarily share colours at every round; at round 0 the
    guarantee weakens to label equality, which is what the approximate
    (cost-minimizing) matchings in Listing 3/4 require. *)
val node_colours : ?rounds:int -> Graph.t -> (string * int64) list

(** [edge_colours ?rounds g] lists [(edge_id, colour)] where an edge's
    colour combines its label with the round-[rounds] colours of its
    endpoints.  At round 0 this is (label, src label, tgt label), which
    is sound for all matching encodings: the hard constraints force
    matched edges to agree on label and on matched endpoints. *)
val edge_colours : ?rounds:int -> Graph.t -> (string * int64) list

val equal : t -> t -> bool
val compare : t -> t -> int

(** Stable hexadecimal rendering, usable as a dictionary key. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit
