(** Cheap isomorphism-invariant fingerprints for property graphs.

    Two graphs with different fingerprints cannot be similar (isomorphic
    up to properties); equal fingerprints are only a heuristic signal.
    ProvMark's generalization stage uses fingerprints to bucket trial runs
    into candidate similarity classes before invoking the exact solver,
    and the regression-testing use case uses them as a fast change
    detector. *)

type t

(** The shared Weisfeiler–Leman refinement depth used by every refined
    consumer: {!of_graph}, the exact-similarity candidate pruning in
    [Gmatch.Asp_backend] and the starting colouring of {!Canon}.

    The soundness ordering to keep in mind when choosing a depth for a
    new consumer: colours at {e every} round are isomorphism-invariant
    (any label- and incidence-preserving bijection maps each element
    to an equally coloured one), so deeper rounds are always safe for
    {e exact} isomorphism questions and only sharpen the partition.
    Round 0, by contrast, guarantees exactly label equality — which is
    all the {e approximate} (cost-minimizing) Listing 3/4 matchings
    may assume, since their hard constraints enforce nothing beyond
    label and endpoint agreement.  Exact consumers should refine
    [default_rounds] deep (or, like [Canon], continue to a fixpoint);
    approximate consumers must stay at round 0. *)
val default_rounds : int

(** [of_graph g] computes a fingerprint from label multisets and a
    [default_rounds]-deep Weisfeiler–Leman colour refinement of the
    underlying directed labelled graph.  Properties are ignored
    (similarity is shape-only, per Section 3.4). *)
val of_graph : Graph.t -> t

(** [node_colours ?rounds g] lists [(node_id, colour)] for every node,
    where colours are isomorphism-invariant equivalence-class hashes.
    [rounds = 0] (the default) colours by node label alone; each further
    round applies one Weisfeiler–Leman refinement step over incoming and
    outgoing labelled edges.  Two nodes matched by any label-respecting
    isomorphism necessarily share colours at every round; at round 0 the
    guarantee weakens to label equality — see {!default_rounds} for the
    resulting usage rule. *)
val node_colours : ?rounds:int -> Graph.t -> (string * int64) list

(** [stable_rounds g] is the smallest refinement depth at which one more
    round no longer splits a colour class (capped at the node count).
    Colour hash {e values} keep changing past the partition fixpoint, so
    two graphs are only comparable at one common round: pair consumers
    such as [Summarize] take [max (stable_rounds g1) (stable_rounds g2)]
    and evaluate {!node_colours} at that round on both graphs.  Colours
    at any round are isomorphism-invariant, so any common round is sound
    — a deeper one merely sharpens the partition. *)
val stable_rounds : Graph.t -> int

(** [edge_colours ?rounds g] lists [(edge_id, colour)] where an edge's
    colour combines its label with the round-[rounds] colours of its
    endpoints.  At round 0 this is (label, src label, tgt label), which
    is sound for all matching encodings: the hard constraints force
    matched edges to agree on label and on matched endpoints. *)
val edge_colours : ?rounds:int -> Graph.t -> (string * int64) list

val equal : t -> t -> bool
val compare : t -> t -> int

(** The FNV-1a hash combinators the colours are built from, exposed so
    {!Canon} can extend the same refinement (identical hashing keeps
    its fixpoint colours comparable with the bounded rounds here). *)
module Hash : sig
  type h = int64

  val seed : h
  val string : h -> string -> h
  val int64 : h -> h -> h

  (** Order-independent combination: inputs are sorted before folding,
      so the result is invariant under element renaming. *)
  val combine_sorted : h list -> h
end

(** Stable hexadecimal rendering, usable as a dictionary key. *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit
