type motif = Chain | Fan | Diamond

type spec = {
  nodes : int;
  density : float;
  motif_weights : (motif * int) list;
  node_types : (string * int) list;
  edge_types : (string * int) list;
  transient_ratio : float;
}

(* The node vocabulary mirrors what the recorders emit: "task" and
   "process_memory" land in the PROV-JSON activity section, "machine"
   in agent, the rest in entity.  The edge vocabulary covers the five
   standard relation sections plus one non-standard label that
   exercises the generic [relation] section. *)
let default_node_types =
  [ ("task", 3); ("process_memory", 1); ("file", 4); ("path", 2); ("pipe", 1); ("machine", 1) ]

let default_edge_types =
  [
    ("used", 3);
    ("wasGeneratedBy", 3);
    ("wasInformedBy", 2);
    ("wasDerivedFrom", 1);
    ("wasAssociatedWith", 1);
    ("wasTriggeredBy", 1);
  ]

let default_spec ~nodes =
  {
    nodes;
    density = 0.3;
    motif_weights = [ (Chain, 1); (Fan, 1); (Diamond, 1) ];
    node_types = default_node_types;
    edge_types = default_edge_types;
    transient_ratio = 0.25;
  }

let max_nodes = 100_000

let validate spec =
  let weights_ok ws = ws <> [] && List.for_all (fun (_, w) -> w >= 0) ws
                      && List.exists (fun (_, w) -> w > 0) ws in
  if spec.nodes < 1 || spec.nodes > max_nodes then
    Error (Printf.sprintf "nodes must be in [1, %d], got %d" max_nodes spec.nodes)
  else if not (Float.is_finite spec.density) || spec.density < 0. then
    Error "density must be a non-negative finite float"
  else if not (weights_ok spec.motif_weights) then Error "motif_weights needs a positive weight"
  else if not (weights_ok spec.node_types) then Error "node_types needs a positive weight"
  else if not (weights_ok spec.edge_types) then Error "edge_types needs a positive weight"
  else if
    (not (Float.is_finite spec.transient_ratio))
    || spec.transient_ratio < 0. || spec.transient_ratio > 1.
  then Error "transient_ratio must be in [0, 1]"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Canonical spec rendering                                            *)
(* ------------------------------------------------------------------ *)

let motif_name = function Chain -> "chain" | Fan -> "fan" | Diamond -> "diamond"

let motif_of_name = function
  | "chain" -> Ok Chain
  | "fan" -> Ok Fan
  | "diamond" -> Ok Diamond
  | m -> Error (Printf.sprintf "unknown motif %S" m)

let weights_to_string name_of ws =
  String.concat "," (List.map (fun (k, w) -> Printf.sprintf "%s:%d" (name_of k) w) ws)

let spec_to_string spec =
  Printf.sprintf "nodes=%d;density=%.4f;motifs=%s;types=%s;edges=%s;transient=%.4f" spec.nodes
    spec.density
    (weights_to_string motif_name spec.motif_weights)
    (weights_to_string Fun.id spec.node_types)
    (weights_to_string Fun.id spec.edge_types)
    spec.transient_ratio

let weights_of_string of_name s =
  let parse_one item =
    match String.rindex_opt item ':' with
    | None -> Error (Printf.sprintf "weight entry %S lacks ':'" item)
    | Some i -> (
        let name = String.sub item 0 i in
        let w = String.sub item (i + 1) (String.length item - i - 1) in
        match (of_name name, int_of_string_opt w) with
        | Ok k, Some w -> Ok (k, w)
        | Error e, _ -> Error e
        | _, None -> Error (Printf.sprintf "bad weight in %S" item))
  in
  List.fold_left
    (fun acc item ->
      match (acc, parse_one item) with
      | Ok acc, Ok kv -> Ok (acc @ [ kv ])
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    (Ok [])
    (String.split_on_char ',' s)

let spec_of_string s =
  let fields =
    List.filter_map
      (fun part ->
        match String.index_opt part '=' with
        | None -> None
        | Some i ->
            Some (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1)))
      (String.split_on_char ';' s)
  in
  let field k = List.assoc_opt k fields in
  let ( let* ) = Result.bind in
  let req k conv =
    match field k with
    | None -> Error (Printf.sprintf "spec %S lacks field %s" s k)
    | Some v -> conv v
  in
  let int_field v = Option.to_result ~none:"not an int" (int_of_string_opt v) in
  let float_field v = Option.to_result ~none:"not a float" (float_of_string_opt v) in
  let* nodes = req "nodes" int_field in
  let* density = req "density" float_field in
  let* motif_weights = req "motifs" (weights_of_string motif_of_name) in
  let* node_types = req "types" (weights_of_string Result.ok) in
  let* edge_types = req "edges" (weights_of_string Result.ok) in
  let* transient_ratio = req "transient" float_field in
  let spec = { nodes; density; motif_weights; node_types; edge_types; transient_ratio } in
  let* () = validate spec in
  Ok spec

(* ------------------------------------------------------------------ *)
(* Site-keyed splitmix64 draws (the PR 4 fault-injector idiom)         *)
(* ------------------------------------------------------------------ *)

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let state seed key =
  let h = ref (Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L) in
  String.iter (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c)))) key;
  mix !h

let unit_float seed key i =
  let v = mix (Int64.add (state seed key) (Int64.of_int (i * 0x5851F42D))) in
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.

let draw_int seed key i bound =
  if bound <= 0 then 0 else int_of_float (unit_float seed key i *. float_of_int bound)

let hex_token seed key i =
  Printf.sprintf "%08Lx"
    (Int64.logand (mix (Int64.add (state seed key) (Int64.of_int (i * 0x2545F491)))) 0xFFFFFFFFL)

let draw_weighted seed key i weights =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 weights in
  if total <= 0 then fst (List.hd weights)
  else
    let target = draw_int seed key i total in
    let rec pick acc = function
      | [] -> fst (List.hd weights)
      | (k, w) :: rest ->
          let acc = acc + max 0 w in
          if target < acc then k else pick acc rest
    in
    pick 0 weights

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(* Motifs consume consecutive node indices and wire them with
   backward edges (later index -> earlier), so every graph is a DAG
   whose undirected form is connected — the shape of a real trace.
   Block starts additionally link back into the already-built graph. *)
let motif_size = function Chain -> 3 | Fan -> 4 | Diamond -> 4

(* Edges contributed by one motif over the consecutive indices
   [start .. start+size-1], as (src index, tgt index) pairs.  A block
   truncated by the node budget degrades to a chain over what remains. *)
let motif_edges motif ~start ~size =
  let full = motif_size motif in
  if size < full then List.init (max 0 (size - 1)) (fun i -> (start + i + 1, start + i))
  else
    match motif with
    | Chain -> [ (start + 1, start); (start + 2, start + 1) ]
    | Fan -> [ (start + 3, start); (start + 3, start + 1); (start + 3, start + 2) ]
    | Diamond ->
        [ (start + 1, start); (start + 2, start); (start + 3, start + 1); (start + 3, start + 2) ]

let generate ?(run = 1) ~seed spec =
  (match validate spec with Ok () -> () | Error m -> invalid_arg ("Provgen.generate: " ^ m));
  let n = spec.nodes in
  let node_id i = Printf.sprintf "n%d" i in
  (* Nodes: label and persistent properties depend on (seed, site)
     only; the transient token also folds in [run]. *)
  let g = ref Graph.empty in
  for i = 0 to n - 1 do
    let site = Printf.sprintf "node/%d" i in
    let label = draw_weighted seed (site ^ "/label") 0 spec.node_types in
    let persistent =
      [ ("seq", string_of_int i); ("name", Printf.sprintf "%s_%s" label (hex_token seed site 1)) ]
    in
    let props =
      if unit_float seed (site ^ "/transient?") 0 < spec.transient_ratio then
        ("token", hex_token seed (Printf.sprintf "%s/run%d" site run) 2) :: persistent
      else persistent
    in
    g := Graph.add_node !g ~id:(node_id i) ~label ~props:(Props.of_list props)
  done;
  (* Edges: motif blocks over consecutive indices, a connector from
     each block start into the earlier graph, then the extra density
     draws.  All decisions are keyed on stable sites, so edge [k]'s
     labels and endpoints never depend on other draws. *)
  let eid = ref 0 in
  let add_edge ~src ~tgt =
    let site = Printf.sprintf "edge/%d" !eid in
    let label = draw_weighted seed (site ^ "/label") 0 spec.edge_types in
    let persistent = [ ("op", hex_token seed site 1) ] in
    let props =
      if unit_float seed (site ^ "/transient?") 0 < spec.transient_ratio then
        ("t", hex_token seed (Printf.sprintf "%s/run%d" site run) 2) :: persistent
      else persistent
    in
    g :=
      Graph.add_edge !g
        ~id:(Printf.sprintf "e%d" !eid)
        ~src:(node_id src) ~tgt:(node_id tgt) ~label ~props:(Props.of_list props);
    incr eid
  in
  let i = ref 1 in
  let block = ref 0 in
  while !i < n do
    let start = !i in
    let motif = draw_weighted seed (Printf.sprintf "motif/%d" !block) 0 spec.motif_weights in
    let size = min (motif_size motif) (n - start + 1) in
    (* The block reuses index [start - 1] as its first node so blocks
       overlap by one element and the graph stays connected even
       without the explicit connector. *)
    List.iter (fun (s, t) -> add_edge ~src:(start - 1 + s) ~tgt:(start - 1 + t))
      (motif_edges motif ~start:0 ~size);
    (* Connector from the block start back into the earlier graph. *)
    if start > 1 then
      add_edge ~src:(start - 1)
        ~tgt:(draw_int seed (Printf.sprintf "connect/%d" !block) 0 (start - 1));
    i := start + size - 1;
    incr block
  done;
  (* Density: expected [density] extra backward edges per node. *)
  for v = 1 to n - 1 do
    let site = Printf.sprintf "density/%d" v in
    let whole = int_of_float spec.density in
    let frac = spec.density -. float_of_int whole in
    let extra = whole + (if unit_float seed (site ^ "/frac") 0 < frac then 1 else 0) in
    for k = 1 to extra do
      add_edge ~src:v ~tgt:(draw_int seed site k v)
    done
  done;
  !g

let pair ~seed spec = (generate ~run:1 ~seed spec, generate ~run:2 ~seed spec)

let match_pair ~seed spec =
  let g1 = generate ~run:1 ~seed spec in
  let g2 = generate ~run:2 ~seed spec in
  (* Random identifier permutation of the second trial, so matching it
     against the first exercises rename invariance at scale. *)
  let permute kind ids =
    let arr = Array.of_list ids in
    let key = "perm/" ^ kind in
    for i = Array.length arr - 1 downto 1 do
      let j = draw_int seed key i (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    let tbl = Hashtbl.create (Array.length arr) in
    Array.iteri (fun i id -> Hashtbl.add tbl id (Printf.sprintf "%s%d" kind i)) arr;
    tbl
  in
  let node_map = permute "m" (Graph.node_ids g2) in
  let edge_map = permute "f" (Graph.edge_ids g2) in
  let lookup tbl id = match Hashtbl.find_opt tbl id with Some x -> x | None -> id in
  (g1, Graph.map_ids (fun id -> lookup node_map (lookup edge_map id)) g2)

(* ------------------------------------------------------------------ *)
(* Expected-shape envelope                                             *)
(* ------------------------------------------------------------------ *)

let edge_bounds spec =
  let n = spec.nodes in
  if n <= 1 then (0, 0)
  else
    (* Motif blocks advance by at least one index and contribute at
       most 4 edges plus a connector; chains contribute 2 edges per 2
       consumed indices.  Density adds at most ceil(density) per node. *)
    let low = n - 1 in
    let per_node_max = 5.0 +. Float.of_int (int_of_float spec.density + 1) in
    (low, int_of_float (Float.of_int n *. per_node_max) + 4)

(* ------------------------------------------------------------------ *)
(* Corpus tiers                                                        *)
(* ------------------------------------------------------------------ *)

type tier = Light | Scaled | Large | Full

let tier_name = function Light -> "light" | Scaled -> "scaled" | Large -> "large" | Full -> "full"

let tier_of_string = function
  | "light" -> Ok Light
  | "scaled" -> Ok Scaled
  | "large" -> Ok Large
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown tier %S (known: light, scaled, large, full)" s)

(* Each tier extends the previous one, openml-to-prov ladder style.
   The light tier adds two shape variants so shape controls are
   exercised even in CI. *)
let tier_own = function
  | Light ->
      [
        ("light_100", default_spec ~nodes:100);
        ("light_200", default_spec ~nodes:200);
        ("light_300", default_spec ~nodes:300);
        ( "light_100_chainy",
          { (default_spec ~nodes:100) with motif_weights = [ (Chain, 6); (Fan, 1); (Diamond, 1) ];
            density = 0.05 } );
        ( "light_100_dense",
          { (default_spec ~nodes:100) with motif_weights = [ (Fan, 2); (Diamond, 2); (Chain, 1) ];
            density = 1.2; transient_ratio = 0.5 } );
      ]
  | Scaled ->
      [
        ("scaled_1k", default_spec ~nodes:1_000);
        ("scaled_2k", { (default_spec ~nodes:2_000) with density = 0.5 });
        ("scaled_5k", default_spec ~nodes:5_000);
      ]
  | Large ->
      [
        ("large_10k", default_spec ~nodes:10_000);
        ("large_30k", { (default_spec ~nodes:30_000) with density = 0.2 });
        ("large_50k", default_spec ~nodes:50_000);
      ]
  | Full -> [ ("full_100k", default_spec ~nodes:100_000) ]

let tier_specs tier =
  let upto = match tier with Light -> [ Light ] | Scaled -> [ Light; Scaled ]
    | Large -> [ Light; Scaled; Large ] | Full -> [ Light; Scaled; Large; Full ]
  in
  List.concat_map tier_own upto
