(** ProvGen-style synthetic provenance-graph generator.

    Produces property graphs with predictable structure at parameterized
    scale (10² to 10⁵ nodes), following Firth & Missier's ProvGen idea:
    graphs are grown from a seed as a mix of small provenance motifs
    (chains, fans, diamonds) over a typed node vocabulary, with a
    controllable density of extra cross edges and a controllable ratio
    of transient properties — the per-run noise the generalization
    stage must strip.

    {2 Determinism model}

    Generation is a {e pure function} of [(spec, seed, run)].  Every
    random decision is drawn through splitmix64 keyed on the seed and a
    per-element site string (the fault injector's PR 4 idiom), never
    from shared mutable generator state, so the value drawn for node
    [i] does not depend on how many values other nodes drew, on
    evaluation order, or on which worker domain generated the graph.
    Two runs — or a [-j1] and a [-j4] corpus materialization — produce
    byte-identical output.

    [run] selects the trial: persistent structure and persistent
    property values depend only on [(spec, seed)], transient property
    values additionally on [run].  Generalizing across two runs of the
    same spec therefore strips exactly the transient values, mirroring
    what the recorders' per-run noise does to real benchmarks. *)

type motif = Chain | Fan | Diamond

type spec = {
  nodes : int;  (** node count; supported range 1 to 100_000 *)
  density : float;
      (** expected extra backward edges per node beyond the motif
          edges, [0.0] for motif-only graphs *)
  motif_weights : (motif * int) list;
      (** relative weights of the motif mix; zero-total falls back to
          chains *)
  node_types : (string * int) list;
      (** node-label distribution (weighted).  The default vocabulary
          is the PROV vocabulary the recorders use, so generated graphs
          serialize into the same PROV-JSON sections real CamFlow
          output occupies. *)
  edge_types : (string * int) list;  (** edge-label distribution (weighted) *)
  transient_ratio : float;
      (** probability that an element carries a transient property
          whose value differs between runs, in [0, 1] *)
}

(** [default_spec ~nodes] uses the recorders' PROV vocabulary, an even
    motif mix, density [0.3] and transient ratio [0.25]. *)
val default_spec : nodes:int -> spec

(** [validate spec] rejects out-of-range fields with a reason. *)
val validate : spec -> (unit, string) result

(** Stable one-line canonical rendering of a spec — the corpus
    manifest format, and the fingerprint under which generated inputs
    are keyed in the artifact store. *)
val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result

(** [generate ?run ~seed spec] generates one graph ([run] defaults to
    [1]).  Nodes are [n0..n<k>], edges [e0..e<k>] in creation order;
    raises [Invalid_argument] on an invalid spec. *)
val generate : ?run:int -> seed:int -> spec -> Graph.t

(** [pair ~seed spec] is [(generate ~run:1, generate ~run:2)] — two
    trials of the same benchmark: identical structure and persistent
    properties, transient values redrawn. *)
val pair : seed:int -> spec -> Graph.t * Graph.t

(** [match_pair ~seed spec] is a matching workload like
    {!Bench_gen.match_pair} at generator scale: the run-1 graph paired
    with its run-2 trial under a random identifier permutation — similar
    by construction with a small nonzero optimal alignment cost. *)
val match_pair : seed:int -> spec -> Graph.t * Graph.t

(** {2 Expected-shape envelope}

    The generator's structural guarantees, used by the property suite:
    the edge count always lies within {!edge_bounds} and each node
    label's frequency is within a few standard deviations of its
    weight share (see the test suite for the exact tolerance). *)

(** [edge_bounds spec] is an inclusive [(low, high)] envelope for the
    edge count of any graph generated from [spec]: at least a spanning
    connectivity's worth of edges, at most the motif maximum plus the
    density draws. *)
val edge_bounds : spec -> int * int

(** {2 Corpus tiers}

    The CI-friendly ladder (openml-to-prov's corpus modes): each tier
    includes every lighter tier, so [Full] is the whole corpus.
    [Light] stays small enough for CI; [Full] tops out at 10⁵ nodes. *)

type tier = Light | Scaled | Large | Full

val tier_of_string : string -> (tier, string) result

val tier_name : tier -> string

(** [tier_specs tier] lists the [(name, spec)] entries the tier
    materializes, lighter tiers first, in a stable order. *)
val tier_specs : tier -> (string * spec) list
