module Smap = Map.Make (String)
module Sset = Set.Make (String)
module Imap = Map.Make (Int64)

(* Keys for edge aggregation: (source class index, target class index,
   label) for quotients, (g2 source id, g2 target id, label) for
   forced-edge bundles. *)
module Iemap = Map.Make (struct
  type t = int * int * string

  let compare = compare
end)

module Bmap = Map.Make (struct
  type t = string * string * string

  let compare = compare
end)

(* The prefix starts with a control byte no recorder or generator ever
   emits in a label, so anchor labels cannot collide with real ones.
   Instances are solver-internal and never serialized. *)
let anchor_prefix = "\x01anchor:"

let is_anchor_label l =
  String.length l >= String.length anchor_prefix
  && String.equal (String.sub l 0 (String.length anchor_prefix)) anchor_prefix

let anchor_label counterpart = anchor_prefix ^ counterpart

let colour_map g rounds =
  List.fold_left
    (fun m (id, c) -> Smap.add id c m)
    Smap.empty
    (Fingerprint.node_colours ~rounds g)

let colour_classes colours =
  Smap.fold
    (fun id c m ->
      Imap.update c (function None -> Some [ id ] | Some ids -> Some (id :: ids)) m)
    colours Imap.empty
  |> Imap.map (List.sort String.compare)

(* ------------------------------------------------------------------ *)
(* Quotient graphs                                                     *)

type quotient = {
  qgraph : Graph.t;
  classes : (int64 * string list) list;
  rounds : int;
}

let quotient ?rounds g =
  let rounds = match rounds with Some r -> r | None -> Fingerprint.stable_rounds g in
  let classes = Imap.bindings (colour_classes (colour_map g rounds)) in
  let node_class, _ =
    List.fold_left
      (fun (m, i) (_, ids) ->
        (List.fold_left (fun m id -> Smap.add id i m) m ids, i + 1))
      (Smap.empty, 0) classes
  in
  let qg, _ =
    List.fold_left
      (fun (qg, i) (c, ids) ->
        ( Graph.add_node qg ~id:(Printf.sprintf "q%d" i)
            ~label:(Printf.sprintf "%016Lx*%d" c (List.length ids))
            ~props:Props.empty,
          i + 1 ))
      (Graph.empty, 0) classes
  in
  let bundles =
    List.fold_left
      (fun m (e : Graph.edge) ->
        let k =
          (Smap.find e.Graph.edge_src node_class, Smap.find e.Graph.edge_tgt node_class,
           e.Graph.edge_label)
        in
        Iemap.update k (function None -> Some 1 | Some n -> Some (n + 1)) m)
      Iemap.empty (Graph.edges g)
  in
  let qg, _ =
    Iemap.fold
      (fun (si, ti, lbl) n (qg, j) ->
        ( Graph.add_edge qg ~id:(Printf.sprintf "qe%d" j) ~src:(Printf.sprintf "q%d" si)
            ~tgt:(Printf.sprintf "q%d" ti)
            ~label:(Printf.sprintf "%s*%d" lbl n)
            ~props:Props.empty,
          j + 1 ))
      bundles (qg, 0)
  in
  { qgraph = qg; classes; rounds }

let render_graph b g =
  let render_props p =
    List.iter
      (fun (k, v) ->
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v;
        Buffer.add_char b ';')
      (Props.to_list p)
  in
  List.iter
    (fun (n : Graph.node) ->
      Buffer.add_string b n.Graph.node_id;
      Buffer.add_char b '\x00';
      Buffer.add_string b n.Graph.node_label;
      Buffer.add_char b '\x00';
      render_props n.Graph.node_props;
      Buffer.add_char b '\n')
    (List.sort
       (fun (a : Graph.node) b -> String.compare a.Graph.node_id b.Graph.node_id)
       (Graph.nodes g));
  List.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string b e.Graph.edge_id;
      Buffer.add_char b '\x00';
      Buffer.add_string b e.Graph.edge_src;
      Buffer.add_char b '\x00';
      Buffer.add_string b e.Graph.edge_tgt;
      Buffer.add_char b '\x00';
      Buffer.add_string b e.Graph.edge_label;
      Buffer.add_char b '\x00';
      render_props e.Graph.edge_props;
      Buffer.add_char b '\n')
    (List.sort
       (fun (a : Graph.edge) b -> String.compare a.Graph.edge_id b.Graph.edge_id)
       (Graph.edges g))

let quotient_digest q =
  let b = Buffer.create 256 in
  render_graph b q.qgraph;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Segmentation plans                                                  *)

type segment = {
  left : Graph.t;
  right : Graph.t;
  pieces : int;
  digest : string;
}

type plan = {
  rounds : int;
  forced_nodes : (string * string) list;
  forced_edges : (string * string) list;
  segments : segment list;
  frontier_edges : int;
}

type outcome = Mismatch | Whole | Segmented of plan

exception Bail of outcome

let digest_pair l r =
  let b = Buffer.create 1024 in
  render_graph b l;
  Buffer.add_string b "\x00--\x00";
  render_graph b r;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Weakly connected components of the subgraph induced by [amb], as
   sorted member lists in ascending-seed order. *)
let components g amb =
  let visited = Hashtbl.create 64 in
  let comps = ref [] in
  List.iter
    (fun seed ->
      if not (Hashtbl.mem visited seed) then begin
        let comp = ref [] in
        let queue = Queue.create () in
        Queue.add seed queue;
        Hashtbl.add visited seed ();
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          comp := u :: !comp;
          List.iter
            (fun (e : Graph.edge) ->
              let v =
                if String.equal e.Graph.edge_src u then e.Graph.edge_tgt else e.Graph.edge_src
              in
              if Sset.mem v amb && not (Hashtbl.mem visited v) then begin
                Hashtbl.add visited v ();
                Queue.add v queue
              end)
            (Graph.incident_edges g u)
        done;
        comps := List.sort String.compare !comp :: !comps
      end)
    (Sset.elements amb);
  List.rev !comps

(* Per-component edge partition, computed in one pass over the edges:
   [intra.(i)] are edges with both endpoints ambiguous (necessarily the
   same component), [frontier.(i)] edges with exactly one ambiguous
   endpoint (the other forced).  Forced-forced edges are handled
   separately and never reach a segment. *)
let classify_edges g comp_index ncomps =
  let intra = Array.make (max 1 ncomps) [] in
  let frontier = Array.make (max 1 ncomps) [] in
  List.iter
    (fun (e : Graph.edge) ->
      match (Smap.find_opt e.Graph.edge_src comp_index, Smap.find_opt e.Graph.edge_tgt comp_index)
      with
      | Some i, Some _ -> intra.(i) <- e :: intra.(i)
      | Some i, None | None, Some i -> frontier.(i) <- e :: frontier.(i)
      | None, None -> ())
    (Graph.edges g);
  let sort_edges =
    List.sort (fun (a : Graph.edge) b -> String.compare a.Graph.edge_id b.Graph.edge_id)
  in
  (Array.map sort_edges intra, Array.map sort_edges frontier)

(* Isomorphism-invariant component signature used to pair left and
   right components: member colour multiset, intra-edge descriptors
   (label and endpoint colours) and frontier descriptors (direction,
   label and the g2 identity of the forced endpoint — forced nodes are
   translated through the forced map so both sides speak g2 ids).  Any
   label-isomorphism maps a component onto one with an equal signature,
   so unequal per-signature counts refute the pair, and equal-signature
   components are interchangeable only among themselves. *)
let comp_signature colours counterpart members intra frontier =
  let mset = Sset.of_list members in
  let b = Buffer.create 128 in
  List.map (fun id -> Smap.find id colours) members
  |> List.sort Int64.compare
  |> List.iter (fun c -> Buffer.add_string b (Printf.sprintf "%016Lx," c));
  Buffer.add_char b '|';
  List.map
    (fun (e : Graph.edge) ->
      Printf.sprintf "%s:%016Lx:%016Lx" e.Graph.edge_label
        (Smap.find e.Graph.edge_src colours)
        (Smap.find e.Graph.edge_tgt colours))
    intra
  |> List.sort String.compare
  |> List.iter (fun s ->
         Buffer.add_string b s;
         Buffer.add_char b ';');
  Buffer.add_char b '|';
  List.map
    (fun (e : Graph.edge) ->
      if Sset.mem e.Graph.edge_src mset then
        Printf.sprintf "out:%s:%s" e.Graph.edge_label (counterpart e.Graph.edge_tgt)
      else Printf.sprintf "in:%s:%s" e.Graph.edge_label (counterpart e.Graph.edge_src))
    frontier
  |> List.sort String.compare
  |> List.iter (fun s ->
         Buffer.add_string b s;
         Buffer.add_char b ';');
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Builds one side of a segment instance from a group of components.
   Members keep their labels and properties; forced neighbours become
   anchors — original id, [anchor_label] of their g2 counterpart, empty
   properties — and only edges with at least one ambiguous endpoint are
   included.  Insertion happens in sorted order so the instance is a
   deterministic value. *)
let build_side g counterpart comp_members comp_edges =
  let members = List.concat comp_members |> List.sort String.compare in
  let mset = Sset.of_list members in
  let edges =
    List.concat comp_edges
    |> List.sort (fun (a : Graph.edge) b -> String.compare a.Graph.edge_id b.Graph.edge_id)
  in
  let anchors =
    List.fold_left
      (fun s (e : Graph.edge) ->
        let s = if Sset.mem e.Graph.edge_src mset then s else Sset.add e.Graph.edge_src s in
        if Sset.mem e.Graph.edge_tgt mset then s else Sset.add e.Graph.edge_tgt s)
      Sset.empty edges
  in
  let side =
    List.fold_left
      (fun acc id ->
        match Graph.find_node g id with
        | Some n -> Graph.add_node acc ~id ~label:n.Graph.node_label ~props:n.Graph.node_props
        | None -> acc)
      Graph.empty members
  in
  let side =
    Sset.fold
      (fun id acc ->
        Graph.add_node acc ~id ~label:(anchor_label (counterpart id)) ~props:Props.empty)
      anchors side
  in
  List.fold_left
    (fun acc (e : Graph.edge) ->
      Graph.add_edge acc ~id:e.Graph.edge_id ~src:e.Graph.edge_src ~tgt:e.Graph.edge_tgt
        ~label:e.Graph.edge_label ~props:e.Graph.edge_props)
    side edges

let plan ?rounds g1 g2 =
  try
    if Graph.node_count g1 <> Graph.node_count g2 || Graph.edge_count g1 <> Graph.edge_count g2
    then raise (Bail Mismatch);
    let rounds =
      match rounds with
      | Some r -> r
      | None -> max (Fingerprint.stable_rounds g1) (Fingerprint.stable_rounds g2)
    in
    (* Quotients first: any label-isomorphism preserves colours exactly
       (the hashes are computed identically on both sides), so a
       matchable pair has structurally equal quotients — equal class
       histograms and equal class-to-class edge bundles — even under
       hash collisions, which merge the same classes on both sides. *)
    let q1 = quotient ~rounds g1 and q2 = quotient ~rounds g2 in
    if not (Graph.equal_structure q1.qgraph q2.qgraph) then raise (Bail Mismatch);
    let col1 = colour_map g1 rounds and col2 = colour_map g2 rounds in
    let cls1 = colour_classes col1 and cls2 = colour_classes col2 in
    if not (Imap.equal (fun a b -> List.length a = List.length b) cls1 cls2) then
      raise (Bail Mismatch);
    let forced_nodes =
      Imap.fold
        (fun c ids acc ->
          match ids with [ a ] -> (a, List.hd (Imap.find c cls2)) :: acc | _ -> acc)
        cls1 []
      |> List.rev
    in
    (* Defensive: a hash collision could in principle pair nodes with
       different labels; the decomposition would be unsound, so give the
       pair back to the whole-graph solver instead. *)
    List.iter
      (fun (a, b) ->
        match (Graph.find_node g1 a, Graph.find_node g2 b) with
        | Some n1, Some n2 when String.equal n1.Graph.node_label n2.Graph.node_label -> ()
        | _ -> raise (Bail Whole))
      forced_nodes;
    let forced_map = List.fold_left (fun m (a, b) -> Smap.add a b m) Smap.empty forced_nodes in
    let forced1 = List.fold_left (fun s (a, _) -> Sset.add a s) Sset.empty forced_nodes in
    let forced2 = List.fold_left (fun s (_, b) -> Sset.add b s) Sset.empty forced_nodes in
    (* Forced-forced edge bundles, keyed in g2 coordinates.  An
       isomorphism maps each bundle bijectively onto its counterpart, so
       the sizes must agree in both directions. *)
    let cons id = function None -> Some [ id ] | Some ids -> Some (id :: ids) in
    let bundle1 =
      List.fold_left
        (fun m (e : Graph.edge) ->
          if Sset.mem e.Graph.edge_src forced1 && Sset.mem e.Graph.edge_tgt forced1 then
            Bmap.update
              (Smap.find e.Graph.edge_src forced_map, Smap.find e.Graph.edge_tgt forced_map,
               e.Graph.edge_label)
              (cons e.Graph.edge_id) m
          else m)
        Bmap.empty (Graph.edges g1)
      |> Bmap.map (List.sort String.compare)
    in
    let bundle2 =
      List.fold_left
        (fun m (e : Graph.edge) ->
          if Sset.mem e.Graph.edge_src forced2 && Sset.mem e.Graph.edge_tgt forced2 then
            Bmap.update
              (e.Graph.edge_src, e.Graph.edge_tgt, e.Graph.edge_label)
              (cons e.Graph.edge_id) m
          else m)
        Bmap.empty (Graph.edges g2)
      |> Bmap.map (List.sort String.compare)
    in
    if not (Bmap.equal (fun a b -> List.length a = List.length b) bundle1 bundle2) then
      raise (Bail Mismatch);
    let forced_edges, bundle_segments =
      Bmap.fold
        (fun key ids1 (fe, segs) ->
          let ids2 = Bmap.find key bundle2 in
          match (ids1, ids2) with
          | [ a ], [ b ] -> ((a, b) :: fe, segs)
          | _ ->
              (* A parallel bundle: the edges are interchangeable up to
                 property cost, so solve them as a mini assignment
                 instance between the two anchored endpoints. *)
              let side g ids counterpart =
                let e0 =
                  match Graph.find_edge g (List.hd ids) with
                  | Some e -> e
                  | None -> raise (Bail Whole)
                in
                let side =
                  Graph.add_node Graph.empty ~id:e0.Graph.edge_src
                    ~label:(anchor_label (counterpart e0.Graph.edge_src))
                    ~props:Props.empty
                in
                let side =
                  if String.equal e0.Graph.edge_src e0.Graph.edge_tgt then side
                  else
                    Graph.add_node side ~id:e0.Graph.edge_tgt
                      ~label:(anchor_label (counterpart e0.Graph.edge_tgt))
                      ~props:Props.empty
                in
                List.fold_left
                  (fun acc id ->
                    match Graph.find_edge g id with
                    | Some e ->
                        Graph.add_edge acc ~id ~src:e.Graph.edge_src ~tgt:e.Graph.edge_tgt
                          ~label:e.Graph.edge_label ~props:e.Graph.edge_props
                    | None -> acc)
                  side ids
              in
              let left = side g1 ids1 (fun id -> Smap.find id forced_map) in
              let right = side g2 ids2 (fun id -> id) in
              (fe, { left; right; pieces = 1; digest = digest_pair left right } :: segs))
        bundle1 ([], [])
    in
    let forced_edges = List.rev forced_edges in
    (* Ambiguous components on both sides. *)
    let amb g forced =
      List.fold_left
        (fun s id -> if Sset.mem id forced then s else Sset.add id s)
        Sset.empty (Graph.node_ids g)
    in
    let amb1 = amb g1 forced1 and amb2 = amb g2 forced2 in
    let comps1 = components g1 amb1 and comps2 = components g2 amb2 in
    let index comps =
      List.fold_left
        (fun (m, i) members ->
          (List.fold_left (fun m id -> Smap.add id i m) m members, i + 1))
        (Smap.empty, 0) comps
      |> fst
    in
    let idx1 = index comps1 and idx2 = index comps2 in
    let intra1, frontier1 = classify_edges g1 idx1 (List.length comps1) in
    let intra2, frontier2 = classify_edges g2 idx2 (List.length comps2) in
    let sigs comps colours counterpart intra frontier =
      List.mapi
        (fun i members -> comp_signature colours counterpart members intra.(i) frontier.(i))
        comps
    in
    let sig1 = sigs comps1 col1 (fun id -> Smap.find id forced_map) intra1 frontier1 in
    let sig2 = sigs comps2 col2 (fun id -> id) intra2 frontier2 in
    let group sigs =
      List.fold_left
        (fun (m, i) s -> (Smap.update s (cons i) m, i + 1))
        (Smap.empty, 0) sigs
      |> fst
      |> Smap.map (List.sort compare)
    in
    let grp1 = group sig1 and grp2 = group sig2 in
    if not (Smap.equal (fun a b -> List.length a = List.length b) grp1 grp2) then
      raise (Bail Mismatch);
    let comp_segments =
      Smap.fold
        (fun key is1 acc ->
          let is2 = Smap.find key grp2 in
          let pick comps intra frontier is =
            ( List.map (fun i -> List.nth comps i) is,
              List.map (fun i -> intra.(i) @ frontier.(i)) is )
          in
          let members1, edges1 = pick comps1 intra1 frontier1 is1 in
          let members2, edges2 = pick comps2 intra2 frontier2 is2 in
          let left = build_side g1 (fun id -> Smap.find id forced_map) members1 edges1 in
          let right = build_side g2 (fun id -> id) members2 edges2 in
          { left; right; pieces = List.length is1; digest = digest_pair left right } :: acc)
        grp1 []
    in
    let segments =
      List.sort (fun a b -> String.compare a.digest b.digest) (bundle_segments @ comp_segments)
    in
    let frontier_edges = Array.fold_left (fun acc es -> acc + List.length es) 0 frontier1 in
    let max_seg =
      List.fold_left (fun acc s -> max acc (Graph.node_count s.left)) 0 segments
    in
    if max_seg >= Graph.node_count g1 && Graph.node_count g1 > 0 then Whole
    else Segmented { rounds; forced_nodes; forced_edges; segments; frontier_edges }
  with Bail o -> o

let max_segment_nodes p =
  List.fold_left (fun acc s -> max acc (Graph.node_count s.left)) 0 p.segments

let stitch p witnesses =
  let forced = List.fold_left (fun s (a, _) -> Sset.add a s) Sset.empty p.forced_nodes in
  p.forced_nodes @ p.forced_edges
  @ List.concat_map (List.filter (fun (a, _) -> not (Sset.mem a forced))) witnesses
