(** Type-aggregated quotient graphs and exact pair segmentation.

    Big graphs should not hit the matching solver whole.  Following
    Moreau's aggregation by provenance types, nodes are grouped by their
    k-round Weisfeiler–Leman colour (the {!Fingerprint} refinement, a
    provenance-type signature), which yields two things:

    - a {e quotient graph} — one node per colour class, one edge per
      (source class, target class, label) bundle — small enough to
      compare structurally in linear time.  Isomorphic graphs have
      identical quotients (colour hashes are content-comparable across
      graphs and classes are emitted in colour order), so a quotient
      mismatch refutes similarity outright;

    - a {e segmentation plan} for an equal-quotient pair: nodes whose
      colour class is a singleton in both graphs are {e forced} (every
      label-isomorphism must pair them, because isomorphisms preserve
      colours), and the remaining {e ambiguous} nodes split into the
      weakly connected components of the subgraph they induce.  By
      construction no edge joins two different components, so each
      component — padded with its forced neighbours as uniquely
      relabelled {e anchor} nodes and the boundary edges to them — is an
      independent matching instance, and the global minimum cost is
      exactly the forced cost plus the sum of per-segment minima.
      Components are grouped by an isomorphism-invariant signature;
      groups with several interchangeable components are merged into one
      instance so the solver, not the planner, picks the component
      assignment.  The decomposition is exact for bijective matching
      (similarity and generalization); subgraph embedding does not
      preserve colours in the host graph, so comparison must stay
      whole-graph. *)

(** A quotient graph plus the colour classes it aggregates.  [qgraph]'s
    node ids are [q<i>] in ascending colour order with labels
    [<colour-hex>*<class-size>]; its edges aggregate original edges by
    (source class, target class, label) with the multiplicity folded
    into the label.  Two graphs related by any label-isomorphism produce
    structurally equal quotients ({!Graph.equal_structure}). *)
type quotient = {
  qgraph : Graph.t;
  classes : (int64 * string list) list;  (** colour -> sorted member ids *)
  rounds : int;  (** refinement depth the classes were computed at *)
}

(** [quotient ?rounds g] aggregates [g] by colour class.  Without
    [?rounds] the depth is [Fingerprint.stable_rounds g]; pair consumers
    must pass one common depth for both graphs (colour hashes are only
    comparable at equal rounds). *)
val quotient : ?rounds:int -> Graph.t -> quotient

(** Deterministic content digest of the quotient graph, usable as a
    cache key component or counter label. *)
val quotient_digest : quotient -> string

(** One independent matching instance cut out of a pair: the ambiguous
    component(s) of each side plus anchor copies of adjacent forced
    nodes.  An anchor keeps its original identifier but is relabelled
    [\x01anchor:<g2-id>] — the label names its forced counterpart, so
    label equality alone pins every anchor to its image — and its
    properties are emptied on both sides (the forced pair's property
    cost is accounted once, outside the segment).  [pieces] counts the
    interchangeable components merged into the instance. *)
type segment = {
  left : Graph.t;
  right : Graph.t;
  pieces : int;
  digest : string;  (** deterministic content digest of the instance pair *)
}

type plan = {
  rounds : int;  (** common refinement depth used for both graphs *)
  forced_nodes : (string * string) list;
      (** singleton-class pairs, colour-ascending: g1 id -> g2 id *)
  forced_edges : (string * string) list;
      (** unique edges between forced endpoints: g1 edge id -> g2 edge id *)
  segments : segment list;  (** digest-sorted independent instances *)
  frontier_edges : int;  (** boundary edges anchored into segments (left side) *)
}

type outcome =
  | Mismatch
      (** provably no label-isomorphism exists (class histogram, forced
          bundle or component-signature disagreement) — sound even under
          colour-hash collisions, which only coarsen classes *)
  | Whole
      (** no productive decomposition (the largest instance is as big as
          the whole graph, or a defensive check failed): solve whole *)
  | Segmented of plan

(** [plan ?rounds g1 g2] decides the pair's decomposition.  Deterministic:
    a pure function of the two graphs (and [?rounds]); segment instances
    are built in sorted member/edge order and listed digest-sorted. *)
val plan : ?rounds:int -> Graph.t -> Graph.t -> outcome

(** Largest left-instance node count, 0 for a fully forced plan — the
    quantity solver grounding cost now scales in. *)
val max_segment_nodes : plan -> int

(** [stitch p witnesses] merges per-segment witnesses (element-pair
    lists, in [p.segments] order) with the forced pairs into one
    whole-graph pair list.  Anchor pairs repeat forced pairs and are
    dropped; every other id is an original id, so the result is directly
    a whole-pair matching. *)
val stitch : plan -> (string * string) list list -> (string * string) list

(** Recognizes the reserved anchor labels (exposed for tests). *)
val is_anchor_label : string -> bool
