type t = {
  read : unit -> string option;
  mutable buf : string;  (* the one resident chunk *)
  mutable off : int;  (* next unconsumed index within [buf] *)
  mutable base : int;  (* absolute offset of [buf.[0]] *)
  mutable eof : bool;
  mutable chunks : int;
}

let create read = { read; buf = ""; off = 0; base = 0; eof = false; chunks = 0 }

let of_string ?(chunk = 4096) s =
  let chunk = max 1 chunk in
  let pos = ref 0 in
  create (fun () ->
      if !pos >= String.length s then None
      else begin
        let len = min chunk (String.length s - !pos) in
        let piece = String.sub s !pos len in
        pos := !pos + len;
        Some piece
      end)

let of_channel ?(chunk = 4096) ic =
  let chunk = max 1 chunk in
  let buf = Bytes.create chunk in
  create (fun () ->
      match input ic buf 0 chunk with
      | 0 -> None
      | n -> Some (Bytes.sub_string buf 0 n)
      | exception End_of_file -> None)

(* Drop the exhausted chunk and pull the next non-empty one. *)
let rec refill t =
  if (not t.eof) && t.off >= String.length t.buf then begin
    t.base <- t.base + String.length t.buf;
    t.off <- 0;
    match t.read () with
    | None ->
        t.buf <- "";
        t.eof <- true
    | Some chunk ->
        t.buf <- chunk;
        t.chunks <- t.chunks + 1;
        if String.length chunk = 0 then refill t
  end

let peek t =
  refill t;
  if t.off < String.length t.buf then Some t.buf.[t.off] else None

let advance t =
  refill t;
  if t.off < String.length t.buf then t.off <- t.off + 1

let pos t = t.base + t.off

let chunks_read t = t.chunks
