(** Chunked input cursor shared by the streaming DOT and PROV-JSON
    readers.

    A cursor pulls text from a [read] thunk one chunk at a time and
    exposes single-character lookahead over the concatenated stream
    without ever materializing it: at any moment exactly one chunk is
    resident, so parsing an arbitrarily large input is O(chunk size)
    in memory.  Positions are {e absolute} byte offsets into the whole
    stream — the invariant that lets a streaming parse blame the same
    byte as an in-memory parse of the concatenated text. *)

type t

(** [create read] wraps a chunk producer.  [read ()] returns the next
    chunk or [None] at end of stream; empty chunks are skipped. *)
val create : (unit -> string option) -> t

(** [of_string ?chunk s] streams [s] in [chunk]-byte pieces (default
    4096) — the test harness's way of forcing chunk boundaries. *)
val of_string : ?chunk:int -> string -> t

(** [of_channel ?chunk ic] streams a channel without loading it. *)
val of_channel : ?chunk:int -> in_channel -> t

(** Next character without consuming it; [None] at end of stream. *)
val peek : t -> char option

(** Consume one character (no-op at end of stream). *)
val advance : t -> unit

(** Absolute byte offset of the next unconsumed character — equal to
    the total stream length once the stream is exhausted. *)
val pos : t -> int

(** Number of chunks pulled so far.  A parser that buffers no input
    beyond the cursor requests at most [ceil (length / chunk)] chunks;
    the fuzz suite pins that bound. *)
val chunks_read : t -> int
